#!/usr/bin/env python3
"""One-stop observability demo: every plane from a single session.

Runs a seeded, fault-injected dumbbell workload with the full
observability plane enabled and produces, from that one run:

- the per-hop timeline of a retransmitted segment (and the original
  transmission of the same sequence number, for comparison),
- the sim-time profiler report,
- the latency/occupancy histogram summaries,
- counter time-series (trunk queue, trunk faults, engine) exported to
  JSON/CSV,
- optionally a pcap of the trunk (``--pcap``) and the full netstat
  JSON dump (``--json``).

Usage::

    PYTHONPATH=src python tools/obstool.py --outdir /tmp/obs
    PYTHONPATH=src python tools/obstool.py --pairs 4 --drop 0.02 \
        --pcap /tmp/trunk.pcap --json /tmp/netstat.json
"""

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro import netstat, obs  # noqa: E402
from repro.metrics import measure_fabric_transfers  # noqa: E402
from repro.net.faults import FaultInjector  # noqa: E402
from repro.obs.recorder import FlightRecorder  # noqa: E402
from repro.testbed import FabricTestbed  # noqa: E402
from repro.trace import WireTrace  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="obstool", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--pairs", type=int, default=3, help="dumbbell pairs")
    parser.add_argument(
        "--bytes", type=int, default=120_000, help="bytes per flow"
    )
    parser.add_argument("--drop", type=float, default=0.01, help="trunk drop rate")
    parser.add_argument("--seed", type=int, default=7, help="fault RNG seed")
    parser.add_argument(
        "--interval", type=float, default=0.02, help="flight-recorder tick (s)"
    )
    parser.add_argument(
        "--outdir", default=".", help="where the time-series exports land"
    )
    parser.add_argument("--pcap", default=None, help="also capture the trunk here")
    parser.add_argument(
        "--json", dest="json_path", default=None,
        help="also dump the full netstat JSON report here",
    )
    parser.add_argument(
        "--timelines", type=int, default=1,
        help="how many retransmitted segments to print timelines for",
    )
    args = parser.parse_args(argv)

    session = obs.enable(span_capacity=65536)
    try:
        bed = FabricTestbed(
            kind="dumbbell",
            organization="userlib",
            pairs=args.pairs,
            faults=FaultInjector(drop_rate=args.drop, seed=args.seed),
        )
        flight = FlightRecorder(bed.sim, interval=args.interval)
        queue = bed.bottleneck.queue
        flight.watch(
            "trunk.queue",
            lambda: {
                "depth_bytes": queue.depth_bytes,
                "peak_bytes": queue.peak_bytes,
                "dropped": queue.stats["dropped"],
            },
        )
        # Link.stats is a merged copy per access: use a callable so each
        # tick samples fresh numbers.
        flight.watch("trunk.faults", lambda: bed.faulted_link.stats)
        flight.watch("engine", bed.sim.engine_stats)
        flight.start()
        capture = WireTrace(bed.bottleneck.link) if args.pcap else None

        result = measure_fabric_transfers(bed, bytes_per_flow=args.bytes)
        flight.stop()

        print(
            f"dumbbell pairs={args.pairs} drop={args.drop:.1%} seed={args.seed}:"
            f" aggregate {result.aggregate_mbps:.2f} Mb/s,"
            f" fairness {result.fairness:.3f}"
        )

        # -- 1. retransmitted-segment timelines ------------------------
        recorder = session.spans
        retrans = recorder.traces_matching("retransmit")
        print()
        if not retrans:
            print("no retransmissions observed (raise --drop or --bytes)")
        for tid in retrans[: args.timelines]:
            birth = recorder._births.get(tid)
            detail = birth[1] if birth else ""
            seq = next(
                (tok for tok in detail.split() if tok.startswith("seq=")), None
            )
            if seq is not None:
                # Same seq AND same sending node: sequence spaces are
                # per-connection, so seq alone collides across flows.
                events = recorder.timeline(tid)
                sender = events[0].node if events else None
                originals = [
                    o
                    for o in recorder.traces_matching(seq + " ")
                    if o != tid
                    and o not in retrans
                    and (tl := recorder.timeline(o))
                    and tl[0].node == sender
                ]
                if originals:
                    print(f"original transmission of {seq}:")
                    print(recorder.render_timeline(originals[0]))
            print(f"retransmission ({detail}):")
            print(recorder.render_timeline(tid))
            print()

        # -- 2. profiler -----------------------------------------------
        print(netstat.render_profile(top=12))
        print()

        # -- 3. histograms ---------------------------------------------
        print(netstat.render_hist())
        print()

        # -- 4. time-series export -------------------------------------
        os.makedirs(args.outdir, exist_ok=True)
        json_path = os.path.join(args.outdir, "obs_timeseries.json")
        csv_path = os.path.join(args.outdir, "obs_timeseries.csv")
        flight.export_json(json_path)
        flight.export_csv(csv_path)
        print(
            f"time-series: {flight.samples_taken} samples x"
            f" {len(flight.to_dict())} watches -> {json_path}, {csv_path}"
        )

        # -- 5. optional extras ----------------------------------------
        if capture is not None:
            written = capture.export_pcap(args.pcap)
            capture.detach()
            print(f"pcap: {written} trunk frames -> {args.pcap}")
        if args.json_path:
            with open(args.json_path, "w", encoding="utf-8") as fh:
                json.dump(netstat.as_json(bed), fh, indent=2)
            print(f"netstat json -> {args.json_path}")
    finally:
        obs.disable()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
