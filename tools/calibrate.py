#!/usr/bin/env python3
"""Calibration sweep: run the paper's whole evaluation grid and print
measured vs published values.  Development tool for tuning
repro/costs.py; the benchmark suite asserts only shape relations.

Usage: python tools/calibrate.py [table2|table3|table4|all]
"""

import sys

sys.path.insert(0, "benchmarks")

from paper_targets import TABLE2, TABLE2_SIZES, TABLE3, TABLE3_SIZES, TABLE4

from repro.metrics import measure_latency, measure_setup, measure_throughput
from repro.testbed import Testbed


def table2():
    print("=== Table 2: throughput (Mb/s), measured vs paper ===")
    for network in ("ethernet", "an1"):
        for org in ("ultrix", "mach-ux", "userlib"):
            if (network, org) not in TABLE2:
                continue
            row = []
            for size in TABLE2_SIZES:
                tb = Testbed(network=network, organization=org)
                result = measure_throughput(
                    tb, total_bytes=400_000, chunk_size=size
                )
                paper = TABLE2[(network, org)][size]
                row.append(f"{size}: {result.throughput_mbps:5.2f} ({paper})")
            print(f"  {network:9s} {org:9s} " + "  ".join(row))


def table3():
    print("=== Table 3: RTT (ms), measured vs paper ===")
    for network in ("ethernet", "an1"):
        for org in ("ultrix", "mach-ux", "userlib"):
            if (network, org) not in TABLE3:
                continue
            row = []
            for size in TABLE3_SIZES:
                tb = Testbed(network=network, organization=org)
                result = measure_latency(tb, message_size=size, rounds=40)
                paper = TABLE3[(network, org)][size]
                row.append(f"{size}: {result.rtt_ms:5.2f} ({paper})")
            print(f"  {network:9s} {org:9s} " + "  ".join(row))


def table4():
    print("=== Table 4: connection setup (ms), measured vs paper ===")
    for (network, org), paper in TABLE4.items():
        tb = Testbed(network=network, organization=org)
        result = measure_setup(tb, rounds=8)
        print(f"  {network:9s} {org:9s} {result.setup_ms:6.2f} ({paper})")


if __name__ == "__main__":
    which = sys.argv[1] if len(sys.argv) > 1 else "all"
    if which in ("table2", "all"):
        table2()
    if which in ("table3", "all"):
        table3()
    if which in ("table4", "all"):
        table4()
