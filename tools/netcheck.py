#!/usr/bin/env python3
"""Command-line wrapper for the conformance campaign.

Equivalent to ``python -m repro.check``; exists so the tool is
discoverable next to ``tools/calibrate.py``::

    PYTHONPATH=src python tools/netcheck.py run --quick
    PYTHONPATH=src python tools/netcheck.py replay report.json --cell 3
    PYTHONPATH=src python tools/netcheck.py shrink report.json --cell 3
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.check.__main__ import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
