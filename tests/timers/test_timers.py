"""Unit tests run against all three timer facilities."""

import pytest

from repro.timers import HashedWheel, HeapTimers, HierarchicalWheel

FACILITIES = [
    pytest.param(lambda: HeapTimers(), id="heap"),
    pytest.param(lambda: HashedWheel(tick=0.01, slots=32), id="hashed"),
    pytest.param(
        lambda: HierarchicalWheel(tick=0.01, slots=8, levels=4), id="hier"
    ),
]


@pytest.fixture(params=FACILITIES)
def timers(request):
    return request.param()


def test_single_timer_fires_at_deadline(timers):
    fired = []
    timers.schedule(0.5, lambda: fired.append(timers.now))
    timers.advance_to(0.4)
    assert fired == []
    timers.advance_to(0.6)
    assert fired == [pytest.approx(0.5)]


def test_timers_fire_in_deadline_order(timers):
    fired = []
    for delay in (0.30, 0.10, 0.20, 0.15):
        timers.schedule(delay, lambda d=delay: fired.append(d))
    timers.advance_to(1.0)
    assert fired == [0.10, 0.15, 0.20, 0.30]


def test_same_deadline_fires_in_schedule_order(timers):
    fired = []
    for tag in ("a", "b", "c"):
        timers.schedule(0.25, lambda t=tag: fired.append(t))
    timers.advance_to(1.0)
    assert fired == ["a", "b", "c"]


def test_cancel_prevents_firing(timers):
    fired = []
    handle = timers.schedule(0.5, lambda: fired.append("x"))
    handle.cancel()
    timers.advance_to(1.0)
    assert fired == []
    assert not handle.active


def test_cancel_after_firing_is_noop(timers):
    fired = []
    handle = timers.schedule(0.1, lambda: fired.append("x"))
    timers.advance_to(1.0)
    handle.cancel()
    assert fired == ["x"]
    assert handle.fired


def test_pending_counts_only_armed(timers):
    h1 = timers.schedule(0.5, lambda: None)
    h2 = timers.schedule(0.7, lambda: None)
    assert timers.pending == 2
    h1.cancel()
    assert timers.pending == 1
    timers.advance_to(1.0)
    assert timers.pending == 0
    assert h2.fired


def test_next_deadline(timers):
    assert timers.next_deadline() is None
    timers.schedule(0.9, lambda: None)
    early = timers.schedule(0.3, lambda: None)
    assert timers.next_deadline() == pytest.approx(0.3)
    early.cancel()
    assert timers.next_deadline() == pytest.approx(0.9)


def test_reschedule_from_callback(timers):
    fired = []

    def rearm():
        fired.append(timers.now)
        if len(fired) < 3:
            timers.schedule(0.2, rearm)

    timers.schedule(0.2, rearm)
    timers.advance_to(2.0)
    assert [pytest.approx(t) for t in (0.2, 0.4, 0.6)] == fired


def test_advance_returns_fire_count(timers):
    for delay in (0.1, 0.2, 0.9):
        timers.schedule(delay, lambda: None)
    assert timers.advance_to(0.5) == 2
    assert timers.advance_to(1.0) == 1


def test_negative_delay_rejected(timers):
    with pytest.raises(ValueError):
        timers.schedule(-0.1, lambda: None)


def test_past_deadline_rejected(timers):
    timers.advance_to(1.0)
    with pytest.raises(ValueError):
        timers.schedule_at(0.5, lambda: None)


def test_backwards_advance_rejected(timers):
    timers.advance_to(1.0)
    with pytest.raises(ValueError):
        timers.advance_to(0.5)


def test_timer_beyond_one_revolution(timers):
    # Longer than one full revolution of the hashed wheel (32 * 0.01).
    fired = []
    timers.schedule(0.77, lambda: fired.append(timers.now))
    timers.advance_to(0.5)
    assert fired == []
    timers.advance_to(1.0)
    assert fired == [pytest.approx(0.77)]


def test_dense_and_sparse_mix(timers):
    fired = []
    for i in range(50):
        timers.schedule(0.01 * (i + 1), lambda i=i: fired.append(i))
    timers.schedule(3.0, lambda: fired.append("late"))
    timers.advance_to(2.0)
    assert fired == list(range(50))
    timers.advance_to(3.5)
    assert fired[-1] == "late"


def test_incremental_advance_equivalent_to_jump():
    jump = HashedWheel(tick=0.01, slots=32)
    step = HashedWheel(tick=0.01, slots=32)
    jump_fired, step_fired = [], []
    for delay in (0.05, 0.11, 0.42, 0.43):
        jump.schedule(delay, lambda d=delay: jump_fired.append(d))
        step.schedule(delay, lambda d=delay: step_fired.append(d))
    jump.advance_to(1.0)
    t = 0.0
    while t < 1.0:
        t = round(t + 0.007, 10)
        step.advance_to(t)
    assert jump_fired == step_fired


def test_hierarchical_horizon_enforced():
    wheel = HierarchicalWheel(tick=0.01, slots=4, levels=2)
    assert wheel.horizon == pytest.approx(0.01 * 16)
    with pytest.raises(ValueError):
        wheel.schedule(1.0, lambda: None)


def test_hierarchical_cascade_fires_exactly_once():
    wheel = HierarchicalWheel(tick=0.01, slots=4, levels=3)
    fired = []
    # Deadline deep in the coarsest wheel; must cascade twice.
    wheel.schedule(0.55, lambda: fired.append(wheel.now))
    t = 0.0
    while t < 1.0:
        t = round(t + 0.01, 10)
        wheel.advance_to(t)
    assert fired == [pytest.approx(0.55)]


def test_constructor_validation():
    with pytest.raises(ValueError):
        HashedWheel(tick=0)
    with pytest.raises(ValueError):
        HashedWheel(slots=1)
    with pytest.raises(ValueError):
        HierarchicalWheel(levels=0)


def test_ops_counter_increases():
    wheel = HashedWheel(tick=0.01, slots=16)
    before = wheel.ops
    wheel.schedule(0.05, lambda: None)
    assert wheel.ops > before
    wheel.advance_to(0.1)
    assert wheel.ops > before + 1
