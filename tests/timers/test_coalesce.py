"""CoalescedTimers: many armed timers, one engine wakeup.

The facility holds the timers; the engine sees exactly one Timeout for
the earliest pending deadline, lazily re-armed as earlier deadlines
arrive and retired by ``Event.cancel`` tombstones the engine skips.
"""

import pytest

from repro.sim import Simulator
from repro.timers import (
    CoalescedTimers,
    HashedWheel,
    HeapTimers,
    HierarchicalWheel,
)


@pytest.fixture(params=[HeapTimers, HashedWheel, HierarchicalWheel])
def service(request):
    sim = Simulator()
    return sim, CoalescedTimers(sim, request.param())


def test_same_deadline_timers_share_one_engine_wakeup(service):
    sim, timers = service
    fired = []
    for i in range(50):
        timers.schedule(1e-2, lambda i=i: fired.append(i))
    assert timers.pending == 50
    assert timers.wakeups == 1  # One engine event for all fifty.
    sim.run()
    assert sorted(fired) == list(range(50))
    assert timers.fired == 50
    assert timers.pending == 0
    # The whole volley cost the engine a single processed event.
    assert sim.engine_stats()["events"] == 1


def test_earlier_deadline_rearms_and_tombstones_stale_wakeup(service):
    sim, timers = service
    fired = []
    timers.schedule(5e-2, lambda: fired.append("late"))
    timers.schedule(1e-2, lambda: fired.append("early"))
    # The second schedule beat the armed wakeup: re-armed, stale one
    # lazily cancelled (no heap surgery, just a tombstone).
    assert timers.wakeups == 2
    assert timers.wakeups_cancelled == 1
    sim.run()
    assert fired == ["early", "late"]
    assert sim.engine_stats()["cancelled"] == 1
    assert sim.engine_stats()["skipped"] >= 1


def test_later_deadline_rides_existing_wakeup(service):
    sim, timers = service
    fired = []
    timers.schedule(1e-2, lambda: fired.append("a"))
    timers.schedule(5e-2, lambda: fired.append("b"))
    assert timers.wakeups == 1  # No earlier deadline, nothing re-armed.
    sim.run()
    assert fired == ["a", "b"]
    assert timers.wakeups == 2  # The second volley armed after the first.


def test_cancelled_timer_does_not_fire(service):
    sim, timers = service
    fired = []
    handle = timers.schedule(1e-2, lambda: fired.append("doomed"))
    timers.schedule(1e-2, lambda: fired.append("keep"))
    handle.cancel()
    sim.run()
    assert fired == ["keep"]
    assert timers.fired == 1


def test_schedule_during_callback_rearms(service):
    sim, timers = service
    fired = []

    def chain():
        fired.append(len(fired))
        if len(fired) < 5:
            timers.schedule(1e-3, chain)

    timers.schedule(1e-3, chain)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]
    assert timers.fired == 5


def test_negative_delay_rejected(service):
    _sim, timers = service
    with pytest.raises(ValueError):
        timers.schedule(-1.0, lambda: None)
