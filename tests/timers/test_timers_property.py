"""Property-based tests: all timer facilities agree with a naive oracle."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timers import HashedWheel, HeapTimers, HierarchicalWheel


def _run_schedule(factory, plan):
    """Execute a (delay, cancel_index) plan; return firing order tags."""
    timers = factory()
    fired = []
    handles = []
    for i, (delay, _) in enumerate(plan):
        handles.append(
            timers.schedule(delay, lambda i=i: fired.append(i))
        )
    for i, (_, cancel) in enumerate(plan):
        if cancel:
            handles[i].cancel()
    horizon = max((d for d, _ in plan), default=0.0) + 1.0
    t = 0.0
    while t < horizon:
        t = round(t + 0.013, 10)
        timers.advance_to(t)
    return fired


plan_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=2.0, allow_nan=False, width=32),
        st.booleans(),
    ),
    min_size=0,
    max_size=40,
)


def _oracle(plan):
    """Expected firing order: by (deadline, insertion index), minus cancels."""
    entries = [
        (delay, i) for i, (delay, cancel) in enumerate(plan) if not cancel
    ]
    return [i for _, i in sorted(entries)]


@settings(max_examples=150, deadline=None)
@given(plan=plan_strategy)
def test_heap_matches_oracle(plan):
    assert _run_schedule(HeapTimers, plan) == _oracle(plan)


@settings(max_examples=150, deadline=None)
@given(plan=plan_strategy)
def test_hashed_wheel_matches_oracle(plan):
    assert (
        _run_schedule(lambda: HashedWheel(tick=0.01, slots=16), plan)
        == _oracle(plan)
    )


@settings(max_examples=150, deadline=None)
@given(plan=plan_strategy)
def test_hierarchical_wheel_matches_oracle(plan):
    assert (
        _run_schedule(
            lambda: HierarchicalWheel(tick=0.01, slots=8, levels=3), plan
        )
        == _oracle(plan)
    )


@settings(max_examples=100, deadline=None)
@given(
    plan=plan_strategy,
    chunk=st.floats(min_value=0.001, max_value=0.5, allow_nan=False),
)
def test_advance_granularity_does_not_change_results(plan, chunk):
    """Firing order is independent of how finely time is advanced."""
    coarse = HashedWheel(tick=0.01, slots=16)
    fine = HashedWheel(tick=0.01, slots=16)
    coarse_fired, fine_fired = [], []
    for i, (delay, _) in enumerate(plan):
        coarse.schedule(delay, lambda i=i: coarse_fired.append(i))
        fine.schedule(delay, lambda i=i: fine_fired.append(i))
    horizon = max((d for d, _ in plan), default=0.0) + 1.0
    coarse.advance_to(horizon)
    t = 0.0
    while t < horizon:
        t = min(horizon, round(t + chunk, 10))
        fine.advance_to(t)
    assert coarse_fired == fine_fired
