"""Tests for ICMP destination-unreachable generation and parsing."""

import pytest

from repro.net.headers import PROTO_ICMP, PROTO_UDP, Ipv4Header, UdpHeader
from repro.protocols import (
    UNREACH_PORT,
    decode_unreachable,
    encode_unreachable,
    encode_datagram,
)
from repro.testbed import IP_A, IP_B, Testbed


def test_unreachable_codec_round_trip():
    original = (
        Ipv4Header(src=IP_A, dst=IP_B, protocol=PROTO_UDP, total_length=36).pack()
        + encode_datagram(1111, 2222, b"lost", IP_A, IP_B)
    )
    wire = encode_unreachable(UNREACH_PORT, original)
    message = decode_unreachable(wire)
    assert message is not None
    assert message.code == UNREACH_PORT
    assert message.original == original[:28]
    # The quoted bytes include the UDP ports of the offender.
    quoted_udp = UdpHeader.unpack(message.original[20:])
    assert (quoted_udp.sport, quoted_udp.dport) == (1111, 2222)


def test_unreachable_corruption_rejected():
    wire = bytearray(encode_unreachable(UNREACH_PORT, b"\x45" + b"\x00" * 27))
    wire[-1] ^= 0x01
    assert decode_unreachable(bytes(wire)) is None


def test_decode_unreachable_ignores_echo():
    from repro.protocols import encode_echo

    assert decode_unreachable(encode_echo(True, 1, 1)) is None


def test_udp_to_closed_port_draws_port_unreachable():
    testbed = Testbed(network="ethernet", organization="userlib")
    unreachables = []

    original_rx = testbed.host_a._kernel_rx

    def spying_rx(ethertype, payload, link_info):
        from repro.net.headers import ETHERTYPE_IP

        if ethertype == ETHERTYPE_IP:
            try:
                header = Ipv4Header.unpack(payload, verify=False)
            except Exception:
                header = None
            if header is not None and header.protocol == PROTO_ICMP:
                message = decode_unreachable(payload[Ipv4Header.LENGTH:])
                if message is not None:
                    unreachables.append(message)
        yield from original_rx(ethertype, payload, link_info)

    testbed.host_a.netio.kernel_rx = spying_rx

    def sender():
        wire = encode_datagram(4444, 59999, b"nobody home", IP_A, IP_B)
        yield from testbed.host_a.ip_send(IP_B, PROTO_UDP, wire)
        yield testbed.sim.timeout(0.5)

    proc = testbed.spawn(sender(), name="sender")
    testbed.run(until=proc)
    assert len(unreachables) == 1
    assert unreachables[0].code == UNREACH_PORT
    quoted_udp = UdpHeader.unpack(unreachables[0].original[20:])
    assert quoted_udp.dport == 59999


def test_udp_to_bound_port_draws_no_unreachable():
    testbed = Testbed(network="ethernet", organization="userlib")
    testbed.host_b.udp_ports.bind(53, lambda d: None)
    icmp_seen = []

    original_rx = testbed.host_a._kernel_rx

    def spying_rx(ethertype, payload, link_info):
        from repro.net.headers import ETHERTYPE_IP

        if ethertype == ETHERTYPE_IP:
            try:
                header = Ipv4Header.unpack(payload, verify=False)
                if header.protocol == PROTO_ICMP:
                    icmp_seen.append(payload)
            except Exception:
                pass
        yield from original_rx(ethertype, payload, link_info)

    testbed.host_a.netio.kernel_rx = spying_rx

    def sender():
        wire = encode_datagram(4444, 53, b"query", IP_A, IP_B)
        yield from testbed.host_a.ip_send(IP_B, PROTO_UDP, wire)
        yield testbed.sim.timeout(0.5)

    proc = testbed.spawn(sender(), name="sender")
    testbed.run(until=proc)
    assert icmp_seen == []
