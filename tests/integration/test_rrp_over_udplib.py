"""RRP over the user-level UDP library: the paper's two protocol
species — byte-stream and request/response — running as co-existing
user-level libraries on the same hosts."""

import pytest

from repro.net.faults import FaultInjector
from repro.org.udplib import LibraryUdpService
from repro.protocols.rrp import (
    Complete,
    Failed,
    RrpClient,
    RrpServer,
    SendDatagram,
    SetRetry,
)
from repro.testbed import IP_A, IP_B, Testbed


def run_rrp_endpoint(testbed, endpoint, engine, is_server):
    """Plumbing: drive a sans-io RRP engine over a UdpEndpoint."""
    sim = testbed.sim
    completions = {}

    def execute(actions):
        for action in actions:
            if isinstance(action, SendDatagram):
                yield from endpoint.sendto(action.ip, action.port, action.data)
            elif isinstance(action, SetRetry):
                sim.process(retry_timer(action.transaction, action.delay))
            elif isinstance(action, Complete):
                completions[action.transaction] = action.payload
            elif isinstance(action, Failed):
                completions[action.transaction] = None

    def retry_timer(transaction, delay):
        yield sim.timeout(delay)
        yield from execute(engine.on_retry(transaction))

    def receive_loop():
        while True:
            try:
                data, addr = yield from endpoint.recvfrom()
            except OSError:
                return
            if is_server:
                actions = engine.on_datagram(data, addr, sim.now)
            else:
                actions = engine.on_datagram(data)
            yield from execute(actions)

    testbed.spawn(receive_loop(), name="rrp-rx")
    return execute, completions


@pytest.mark.parametrize("network", ["ethernet", "an1"])
def test_rrp_call_over_udplib(network):
    testbed = Testbed(network=network, organization="userlib")
    udp_a = LibraryUdpService(testbed.host_a, testbed.app_a, testbed.registry_a)
    udp_b = LibraryUdpService(testbed.host_b, testbed.app_b, testbed.registry_b)
    results = {}

    def scenario():
        server_ep = yield from udp_b.bind(6100)
        client_ep = yield from udp_a.bind(0)
        server = RrpServer(lambda req: b"answered:" + req)
        client = RrpClient()
        run_rrp_endpoint(testbed, server_ep, server, is_server=True)
        execute, completions = run_rrp_endpoint(
            testbed, client_ep, client, is_server=False
        )
        for i in range(3):
            tid, actions = client.call(IP_B, 6100, f"q{i}".encode())
            yield from execute(actions)
            while tid not in completions:
                yield testbed.sim.timeout(0.01)
            results[i] = completions[tid]
        results["executed"] = server.stats["executed"]

    proc = testbed.spawn(scenario(), name="scenario")
    testbed.run(until=proc)
    assert results[0] == b"answered:q0"
    assert results[2] == b"answered:q2"
    assert results["executed"] == 3


def test_rrp_at_most_once_under_loss():
    """Drop some requests and responses: retransmission completes the
    call, the handler still runs exactly once per transaction."""
    testbed = Testbed(
        network="ethernet",
        organization="userlib",
        faults=FaultInjector(drop_rate=0.25, seed=13),
    )
    udp_a = LibraryUdpService(testbed.host_a, testbed.app_a, testbed.registry_a)
    udp_b = LibraryUdpService(testbed.host_b, testbed.app_b, testbed.registry_b)
    executions = []
    results = {}

    def scenario():
        server_ep = yield from udp_b.bind(6200)
        client_ep = yield from udp_a.bind(0)
        server = RrpServer(
            lambda req: (executions.append(req) or b"ok:" + req)
        )
        client = RrpClient(timeout=0.3, retries=10)
        run_rrp_endpoint(testbed, server_ep, server, is_server=True)
        execute, completions = run_rrp_endpoint(
            testbed, client_ep, client, is_server=False
        )
        for i in range(4):
            tid, actions = client.call(IP_B, 6200, f"tx{i}".encode())
            yield from execute(actions)
            deadline = testbed.sim.now + 20.0
            while tid not in completions and testbed.sim.now < deadline:
                yield testbed.sim.timeout(0.05)
            results[i] = completions.get(tid)
        results["stats"] = dict(client.stats)

    proc = testbed.spawn(scenario(), name="scenario")
    testbed.run(until=proc)
    for i in range(4):
        assert results[i] == f"ok:tx{i}".encode()
    # Each transaction executed exactly once despite retransmissions.
    assert sorted(executions) == sorted(f"tx{i}".encode() for i in range(4))
    assert results["stats"]["retransmits"] >= 1  # Loss really bit.


def test_rrp_latency_beats_tcp_setup():
    """The motivation quantified: one RRP exchange completes in less
    time than a TCP connect() alone (no handshake, no registry work)."""
    testbed = Testbed(network="ethernet", organization="userlib")
    udp_a = LibraryUdpService(testbed.host_a, testbed.app_a, testbed.registry_a)
    udp_b = LibraryUdpService(testbed.host_b, testbed.app_b, testbed.registry_b)
    timings = {}

    def scenario():
        server_ep = yield from udp_b.bind(6300)
        client_ep = yield from udp_a.bind(0)
        # Warm ARP so both measurements start level.
        yield from testbed.host_a.resolve_link(IP_B)
        server = RrpServer(lambda req: b"r")
        client = RrpClient()
        run_rrp_endpoint(testbed, server_ep, server, is_server=True)
        execute, completions = run_rrp_endpoint(
            testbed, client_ep, client, is_server=False
        )
        start = testbed.sim.now
        tid, actions = client.call(IP_B, 6300, b"quick")
        yield from execute(actions)
        while tid not in completions:
            yield testbed.sim.timeout(0.001)
        timings["rrp"] = testbed.sim.now - start

        start = testbed.sim.now
        yield from testbed.service_a.connect(IP_B, 6301)
        timings["tcp_setup"] = testbed.sim.now - start

    def tcp_server():
        listener = yield from testbed.service_b.listen(6301)
        yield from listener.accept()

    testbed.spawn(tcp_server(), name="tcp-server")
    proc = testbed.spawn(scenario(), name="scenario")
    testbed.run(until=proc)
    # An RRP round trip is a couple of datagram times; TCP setup pays
    # the whole registry path (Table 4: ~12 ms).
    assert timings["rrp"] < 0.005
    assert timings["rrp"] < timings["tcp_setup"] / 2
