"""Integration tests: TCP, ICMP, and netstat across routed fabrics."""

import pytest

from repro import netstat
from repro.metrics import measure_fabric_transfers
from repro.net.headers import (
    ETHERTYPE_IP,
    HeaderError,
    Ipv4Header,
    PROTO_ICMP,
)
from repro.protocols import icmp
from repro.testbed import FabricTestbed


def capture_icmp(host):
    """Spy on a host's kernel receive path, collecting ICMP payloads
    as (icmp_bytes, src_ip) while everything still flows normally."""
    captured = []
    original = host.netio.kernel_rx

    def spy(ethertype, payload, link_info):
        if ethertype == ETHERTYPE_IP:
            try:
                header = Ipv4Header.unpack(payload)
            except HeaderError:
                header = None
            if header is not None and header.protocol == PROTO_ICMP:
                captured.append(
                    (payload[Ipv4Header.LENGTH : header.total_length], header.src)
                )
        yield from original(ethertype, payload, link_info)

    host.netio.kernel_rx = spy
    return captured


# ----------------------------------------------------------------------
# TCP across a router
# ----------------------------------------------------------------------


@pytest.mark.parametrize("organization", ["userlib", "ultrix"])
def test_tcp_bulk_across_router(organization):
    """Handshake + 50 KB bulk transfer between subnets via one router."""
    fabric = FabricTestbed(
        kind="chain", organization=organization, n_routers=1
    )
    host_a, host_b = fabric.hosts
    total = 50_000
    marks = {}

    def server():
        listener = yield from fabric.service(host_b).listen(4000)
        conn = yield from listener.accept()
        received = 0
        while received < total:
            data = yield from conn.recv(4096)
            if not data:
                break
            received += len(data)
        marks["received"] = received
        yield from conn.close()

    def client():
        conn = yield from fabric.service(host_a).connect(host_b.ip, 4000)
        sent = 0
        while sent < total:
            chunk = b"m" * min(4096, total - sent)
            yield from conn.send(chunk)
            sent += len(chunk)
        yield from conn.close()

    done = fabric.spawn(server(), name="server")
    fabric.spawn(client(), name="client")
    fabric.run(until=done)

    assert marks["received"] == total
    router = fabric.routers[0]
    # Data one way, ACKs the other: traffic crossed in both directions.
    assert router.stats["forwarded"] > total // 1460
    assert router.stats["ttl_expired"] == 0
    assert router.stats["no_route"] == 0


def test_ping_router_interface():
    """The router answers ICMP echo addressed to its own interface."""
    fabric = FabricTestbed(kind="chain", n_routers=1)
    host_a, _ = fabric.hosts
    router = fabric.routers[0]
    near_ip = router.interfaces[0].ip
    captured = capture_icmp(host_a)

    def pinger():
        yield from host_a.ip_send(
            near_ip, PROTO_ICMP, icmp.encode_echo(True, 21, 1, b"probe")
        )

    fabric.spawn(pinger(), name="ping")
    fabric.run(until=1.0)

    assert router.stats["delivered_local"] == 1
    replies = [
        icmp.decode_echo(data)
        for data, src in captured
        if src == near_ip
    ]
    assert any(
        r is not None and not r.is_request and r.payload == b"probe"
        for r in replies
    )


# ----------------------------------------------------------------------
# ICMP errors from the middle of the network
# ----------------------------------------------------------------------


def test_ttl_expiry_draws_time_exceeded():
    """A TTL-1 probe through two routers dies at the first one, which
    sends ICMP time-exceeded quoting the probe — traceroute's machinery."""
    fabric = FabricTestbed(kind="chain", n_routers=2)
    host_a, host_b = fabric.hosts
    captured = capture_icmp(host_a)

    def probe():
        yield from host_a.ip_send(
            host_b.ip, PROTO_ICMP, icmp.encode_echo(True, 33, 1), ttl=1
        )

    fabric.spawn(probe(), name="probe")
    fabric.run(until=1.0)

    first, second = fabric.routers
    assert first.stats["ttl_expired"] == 1
    assert second.stats["forwarded"] == 0  # Never got past hop one.
    assert host_b.ip_stack.stats["received"] == 0

    exceeded = [
        icmp.decode_time_exceeded(data) for data, _ in captured
    ]
    exceeded = [m for m in exceeded if m is not None]
    assert len(exceeded) == 1
    message = exceeded[0]
    assert message.code == icmp.TTL_EXPIRED_IN_TRANSIT
    # The quoted original identifies the probe: our IP header + 8 bytes.
    quoted = Ipv4Header.unpack(message.original, verify=False)
    assert quoted.src == host_a.ip
    assert quoted.dst == host_b.ip
    assert quoted.ttl <= 1


def test_unroutable_destination_draws_net_unreachable():
    fabric = FabricTestbed(kind="chain", n_routers=1)
    host_a, _ = fabric.hosts
    router = fabric.routers[0]
    captured = capture_icmp(host_a)
    from repro.net.headers import str_to_ip

    nowhere = str_to_ip("172.16.9.9")

    def probe():
        yield from host_a.ip_send(
            nowhere, PROTO_ICMP, icmp.encode_echo(True, 44, 1)
        )

    fabric.spawn(probe(), name="probe")
    fabric.run(until=1.0)

    assert router.stats["no_route"] == 1
    unreachable = [
        icmp.decode_unreachable(data) for data, _ in captured
    ]
    unreachable = [m for m in unreachable if m is not None]
    assert len(unreachable) == 1
    assert unreachable[0].code == icmp.UNREACH_NET
    assert Ipv4Header.unpack(
        unreachable[0].original, verify=False
    ).dst == nowhere


def test_router_never_errors_an_icmp_error():
    """An expiring packet that is itself an ICMP error dies silently
    (RFC 1122) — no error-about-an-error loops."""
    fabric = FabricTestbed(kind="chain", n_routers=2)
    host_a, host_b = fabric.hosts
    captured = capture_icmp(host_a)
    error_payload = icmp.encode_time_exceeded(b"\x45" + b"\x00" * 27)

    def probe():
        yield from host_a.ip_send(host_b.ip, PROTO_ICMP, error_payload, ttl=1)

    fabric.spawn(probe(), name="probe")
    fabric.run(until=1.0)

    assert fabric.routers[0].stats["ttl_expired"] == 1
    assert captured == []  # Nothing came back.


# ----------------------------------------------------------------------
# Dumbbell + netstat
# ----------------------------------------------------------------------


def test_dumbbell_transfers_and_netstat():
    """Four flows share the trunk; everyone finishes, loss stays at the
    bottleneck, and netstat renders the fabric state."""
    fabric = FabricTestbed(kind="dumbbell", pairs=4)
    result = measure_fabric_transfers(fabric, bytes_per_flow=80_000)

    assert all(f.bytes_moved == 80_000 for f in result.flows)
    assert result.other_drops == 0
    assert result.aggregate_mbps <= 10.0
    assert result.fairness > 0.5

    report = netstat.render(fabric)
    assert "Switch ports" in report
    assert "swL[0]" in report  # The bottleneck trunk port.
    assert "taildrop" in report
    assert "Links" in report
    # The trunk port actually carried the data.
    trunk_rows = [
        entry for entry in netstat.switch_table(fabric)
        if entry.name == "swL[0]"
    ]
    assert trunk_rows[0].tx_frames > 4 * 80_000 // 1514
