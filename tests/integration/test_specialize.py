"""Tests for the application-profile protocol specializer."""

import pytest

from repro.specialize import (
    AppProfile,
    FILE_TRANSFER,
    INTERACTIVE,
    ProfileError,
    REMOTE_LOGIN,
    RPC,
    WAN_BULK,
    specialize,
)
from repro.protocols.tcp import TcpConfig
from repro.testbed import IP_B, Testbed


def test_interactive_profile_disables_nagle():
    config = specialize(INTERACTIVE)
    assert not config.nagle
    assert config.delack_time <= 0.05


def test_bulk_profile_grows_windows_and_uses_reno():
    config = specialize(FILE_TRANSFER)
    assert config.snd_buffer >= 32768
    assert config.rcv_buffer >= 32768
    assert config.flavor == "reno"


def test_lossy_profile_tunes_recovery():
    config = specialize(WAN_BULK)
    assert config.flavor == "reno"
    assert config.min_rto <= 0.3


def test_remote_login_enables_keepalive():
    config = specialize(REMOTE_LOGIN)
    assert config.keepalive
    assert not config.nagle


def test_max_outstanding_bounds_buffers():
    config = specialize(AppProfile(bulk=True, max_outstanding=4096))
    assert config.snd_buffer == 8192
    assert config.rcv_buffer == 8192


def test_conflicting_profile_rejected():
    with pytest.raises(ProfileError):
        specialize(AppProfile(latency_sensitive=True, bulk=True))


def test_invalid_values_rejected():
    with pytest.raises(ProfileError):
        specialize(AppProfile(message_size=0))
    with pytest.raises(ProfileError):
        specialize(AppProfile(expected_loss=1.5))


def test_base_config_preserved_where_unspecified():
    base = TcpConfig(msl=5.0, mss=512)
    config = specialize(RPC, base=base)
    assert config.msl == 5.0
    assert config.mss == 512
    assert not config.nagle  # RPC is latency-sensitive.


def test_specialized_config_runs_end_to_end():
    """A derived variant actually drives a connection."""
    testbed = Testbed(
        network="ethernet",
        organization="userlib",
        config=specialize(REMOTE_LOGIN),
    )
    got = {}

    def server():
        listener = yield from testbed.service_b.listen(23)
        conn = yield from listener.accept()
        got["data"] = yield from conn.recv_exactly(5)

    def client():
        conn = yield from testbed.service_a.connect(IP_B, 23)
        yield from conn.send(b"login")
        yield testbed.sim.timeout(0.5)

    testbed.spawn(server(), name="server")
    proc = testbed.spawn(client(), name="client")
    testbed.run(until=proc)
    assert got["data"] == b"login"
