"""Tests for the wire tracer."""

import pytest

from repro.trace import WireTrace
from repro.testbed import IP_B, Testbed


def run_small_transfer(testbed):
    def server():
        listener = yield from testbed.service_b.listen(9100)
        conn = yield from listener.accept()
        data = yield from conn.recv_exactly(100)
        yield from conn.send(data)

    def client():
        conn = yield from testbed.service_a.connect(IP_B, 9100)
        yield from conn.send(b"t" * 100)
        yield from conn.recv_exactly(100)

    testbed.spawn(server(), name="server")
    proc = testbed.spawn(client(), name="client")
    testbed.run(until=proc)


def test_trace_captures_handshake_and_data():
    testbed = Testbed(network="ethernet", organization="userlib")
    trace = WireTrace(testbed.link)
    run_small_transfer(testbed)
    tcp = trace.matching("tcp")
    assert len(tcp) >= 5  # SYN, SYN|ACK, ACK, data, ack, data...
    # The first TCP record is the SYN with an MSS option.
    assert "[S]" in tcp[0].summary
    assert "mss=1460" in tcp[0].summary
    assert any("len=100" in r.summary for r in tcp)
    # ARP resolution happened on Ethernet.
    assert len(trace.matching("arp")) >= 2


def test_trace_decodes_an1_bqi_fields():
    testbed = Testbed(network="an1", organization="userlib")
    trace = WireTrace(testbed.link)
    run_small_transfer(testbed)
    tcp = trace.matching("tcp")
    # Handshake SYN advertises a ring in the AN1 spare field.
    assert any("adv" in r.summary for r in tcp)
    # Data segments are stamped with the discovered (non-zero) BQI.
    data_records = [r for r in tcp if "len=100" in r.summary]
    assert data_records
    assert all("[bqi 0" not in r.summary for r in data_records)


def test_trace_printer_and_detach():
    testbed = Testbed(network="ethernet", organization="userlib")
    lines = []
    trace = WireTrace(testbed.link, printer=lines.append)
    run_small_transfer(testbed)
    assert lines
    assert all("ms" in line for line in lines)
    captured = len(trace.records)
    trace.detach()
    run_small_transfer_again = run_small_transfer  # Same helper, new run.
    # After detaching nothing more is captured.
    testbed2_proc_count = len(trace.records)
    assert testbed2_proc_count == captured


def test_trace_summary_counts():
    testbed = Testbed(network="ethernet", organization="userlib")
    trace = WireTrace(testbed.link)
    run_small_transfer(testbed)
    counts = trace.summary_counts()
    assert counts.get("tcp", 0) > 0
    assert counts.get("arp", 0) > 0


def test_trace_decodes_udp_and_fragments():
    from repro.net.headers import PROTO_UDP
    from repro.protocols.udp import encode_datagram
    from repro.testbed import IP_A

    testbed = Testbed(network="ethernet", organization="userlib")
    trace = WireTrace(testbed.link)

    def sender():
        # A datagram big enough to fragment at the 1500-byte MTU.
        wire = encode_datagram(1111, 2222, b"u" * 3000, IP_A, IP_B)
        yield from testbed.host_a.ip_send(IP_B, PROTO_UDP, wire)

    proc = testbed.spawn(sender(), name="udp")
    testbed.run(until=proc)
    testbed.run(until=testbed.sim.now + 0.1)
    frags = trace.matching("ip-frag")
    assert len(frags) >= 2  # Last fragment decodes as ip-frag too.
    assert any("MF" in r.summary for r in frags)


def test_trace_decodes_icmp_echo():
    from repro.net.headers import PROTO_ICMP
    from repro.protocols.icmp import encode_echo

    testbed = Testbed(network="ethernet", organization="userlib")
    trace = WireTrace(testbed.link)

    def pinger():
        yield from testbed.host_a.ip_send(
            IP_B, PROTO_ICMP, encode_echo(True, 9, 1, b"hi")
        )
        yield testbed.sim.timeout(0.2)

    proc = testbed.spawn(pinger(), name="ping")
    testbed.run(until=proc)
    icmp = trace.matching("icmp")
    assert any("echo-request" in r.summary for r in icmp)
    assert any("echo-reply" in r.summary for r in icmp)


def test_trace_decode_never_raises_on_corrupted_frames():
    """decode() must survive arbitrary damage: every truncation and a
    sweep of single-byte mutations of real frames decode to *some*
    record, with garbage tagged ``malformed`` rather than raised."""
    testbed = Testbed(network="ethernet", organization="userlib")
    trace = WireTrace(testbed.link, capture=False)
    frames = []
    testbed.link.fault_observers.append(
        lambda link, frame, plan: frames.append(frame)
    )
    run_small_transfer(testbed)
    assert frames

    sample = frames[0]
    saw_malformed = False
    for cut in range(len(sample)):
        record = trace.decode(0.0, sample[:cut])
        assert record.protocol  # Decoded or tagged, never raised.
        saw_malformed = saw_malformed or record.protocol == "malformed"
    assert saw_malformed  # Link-header truncation must hit the tag.
    for offset in range(len(sample)):
        mutated = bytearray(sample)
        mutated[offset] ^= 0xFF
        record = trace.decode(0.0, bytes(mutated))
        assert record.protocol  # Bit flips decode or tag, never raise.


def test_trace_tags_short_frame_as_malformed():
    testbed = Testbed(network="ethernet", organization="userlib")
    trace = WireTrace(testbed.link, capture=False)
    record = trace.decode(1.5, b"\x00\x01\x02")
    assert record.protocol == "malformed"
    assert "malformed" in record.summary
    assert record.length == 3


def test_trace_export_is_json_serializable():
    import json

    testbed = Testbed(network="ethernet", organization="userlib")
    trace = WireTrace(testbed.link)
    run_small_transfer(testbed)
    exported = trace.export()
    assert exported
    round_tripped = json.loads(json.dumps(exported))
    assert round_tripped == exported
    first = exported[0]
    assert {"time", "summary", "protocol", "length", "layers"} <= set(first)
