"""Tests for the user-level UDP library: protected channels for a
connectionless protocol, with BQI discovery on AN1 (paper §5)."""

import pytest

from repro.netio import TemplateViolation
from repro.org.udplib import LibraryUdpService
from repro.testbed import IP_A, IP_B, Testbed


def make_services(network="ethernet"):
    testbed = Testbed(network=network, organization="userlib")
    udp_a = LibraryUdpService(testbed.host_a, testbed.app_a, testbed.registry_a)
    udp_b = LibraryUdpService(testbed.host_b, testbed.app_b, testbed.registry_b)
    return testbed, udp_a, udp_b


@pytest.mark.parametrize("network", ["ethernet", "an1"])
def test_udp_datagram_round_trip(network):
    testbed, udp_a, udp_b = make_services(network)
    got = {}

    def server():
        endpoint = yield from udp_b.bind(5353)
        data, (src_ip, src_port) = yield from endpoint.recvfrom()
        got["request"] = data
        yield from endpoint.sendto(src_ip, src_port, b"response:" + data)

    def client():
        endpoint = yield from udp_a.bind(0)
        yield from endpoint.sendto(IP_B, 5353, b"ping")
        data, addr = yield from endpoint.recvfrom()
        got["reply"] = data
        got["reply_from"] = addr

    testbed.spawn(server(), name="server")
    proc = testbed.spawn(client(), name="client")
    testbed.run(until=proc)
    assert got["request"] == b"ping"
    assert got["reply"] == b"response:ping"
    assert got["reply_from"] == (IP_B, 5353)


def test_udp_ethernet_uses_channel_demux():
    testbed, udp_a, udp_b = make_services("ethernet")

    def scenario():
        endpoint_b = yield from udp_b.bind(6000)
        endpoint_a = yield from udp_a.bind(0)
        for i in range(5):
            yield from endpoint_a.sendto(IP_B, 6000, f"m{i}".encode())
        for i in range(5):
            data, _ = yield from endpoint_b.recvfrom()
        return endpoint_b

    proc = testbed.spawn(scenario(), name="scenario")
    endpoint_b = testbed.run(until=proc)
    # All five datagrams were demultiplexed straight to the channel.
    assert endpoint_b.stats["received"] == 5
    assert testbed.host_b.netio.stats["rx_demuxed"] >= 5


def test_udp_an1_bqi_discovery():
    """First datagram travels BQI 0 (kernel path); the response carries
    the advertised ring index; everything after rides hardware demux."""
    testbed, udp_a, udp_b = make_services("an1")
    state = {}

    def scenario():
        endpoint_b = yield from udp_b.bind(7000)
        endpoint_a = yield from udp_a.bind(0)
        assert endpoint_a.peer_bqi == {}  # Nothing discovered yet.
        ring_deliveries_before = endpoint_b.channel.ring.stats["delivered"]

        # First request: the sender knows no BQI -> kernel path.
        yield from endpoint_a.sendto(IP_B, 7000, b"first")
        data, (src_ip, src_port) = yield from endpoint_b.recvfrom()
        state["first_via_ring"] = (
            endpoint_b.channel.ring.stats["delivered"]
            > ring_deliveries_before
        )
        # B learned A's ring from the datagram's advertised BQI.
        assert endpoint_b.peer_bqi.get(IP_A) == endpoint_a.channel.ring.bqi

        # Response: B now stamps A's ring; A learns B's ring from it.
        yield from endpoint_b.sendto(src_ip, src_port, b"pong")
        yield from endpoint_a.recvfrom()
        assert endpoint_a.peer_bqi.get(IP_B) == endpoint_b.channel.ring.bqi

        # Second request: hardware demux straight into B's ring.
        before = endpoint_b.channel.ring.stats["delivered"]
        yield from endpoint_a.sendto(IP_B, 7000, b"second")
        yield from endpoint_b.recvfrom()
        state["second_via_ring"] = (
            endpoint_b.channel.ring.stats["delivered"] == before + 1
        )

    proc = testbed.spawn(scenario(), name="scenario")
    testbed.run(until=proc)
    assert not state["first_via_ring"]  # Kernel fallback.
    assert state["second_via_ring"]  # Hardware path after discovery.


def test_udp_template_blocks_spoofed_source():
    from repro.net.headers import Ipv4Header, PROTO_UDP
    from repro.protocols.udp import encode_datagram

    testbed, udp_a, udp_b = make_services("ethernet")

    def scenario():
        endpoint = yield from udp_a.bind(4000)
        # Forge a datagram claiming a different source port.
        udp = encode_datagram(4999, 53, b"spoof", IP_A, IP_B)
        packet = (
            Ipv4Header(
                src=IP_A, dst=IP_B, protocol=PROTO_UDP,
                total_length=Ipv4Header.LENGTH + len(udp),
            ).pack()
            + udp
        )
        from repro.testbed import MAC_B

        with pytest.raises(TemplateViolation):
            yield from testbed.host_a.netio.send(
                testbed.app_a, endpoint.channel, packet, link_dst=MAC_B
            )
        return True

    proc = testbed.spawn(scenario(), name="scenario")
    assert testbed.run(until=proc)


def test_udp_port_conflict_via_registry():
    testbed, udp_a, udp_b = make_services("ethernet")
    udp_a2 = LibraryUdpService(
        testbed.host_a, testbed.host_a.create_task("app-a2"), testbed.registry_a
    )

    def scenario():
        yield from udp_a.bind(4100)
        with pytest.raises(OSError):
            yield from udp_a2.bind(4100)
        return True

    proc = testbed.spawn(scenario(), name="scenario")
    assert testbed.run(until=proc)


def test_udp_close_releases_port_without_linger():
    testbed, udp_a, udp_b = make_services("ethernet")

    def scenario():
        endpoint = yield from udp_a.bind(4200)
        yield from endpoint.close()
        yield testbed.sim.timeout(0.1)
        # Datagram ports are reusable immediately (no 2MSL).
        endpoint2 = yield from udp_a.bind(4200)
        return endpoint2 is not None

    proc = testbed.spawn(scenario(), name="scenario")
    assert testbed.run(until=proc)


def test_udp_app_crash_reclaims_port():
    testbed, udp_a, udp_b = make_services("ethernet")

    def scenario():
        yield from udp_a.bind(4300)
        testbed.app_a.terminate()
        yield testbed.sim.timeout(0.1)
        # A different app can claim the port now.
        other = LibraryUdpService(
            testbed.host_a,
            testbed.host_a.create_task("survivor"),
            testbed.registry_a,
        )
        endpoint = yield from other.bind(4300)
        return endpoint is not None

    proc = testbed.spawn(scenario(), name="scenario")
    assert testbed.run(until=proc)


def test_udp_coexists_with_tcp_on_same_hosts():
    """The paper's co-existence story: both libraries, same app."""
    testbed, udp_a, udp_b = make_services("ethernet")
    got = {}

    def tcp_server():
        listener = yield from testbed.service_b.listen(8080)
        conn = yield from listener.accept()
        got["tcp"] = yield from conn.recv_exactly(9)

    def udp_server():
        endpoint = yield from udp_b.bind(8081)
        data, _ = yield from endpoint.recvfrom()
        got["udp"] = data

    def client():
        conn = yield from testbed.service_a.connect(IP_B, 8080)
        endpoint = yield from udp_a.bind(0)
        yield from conn.send(b"tcp bytes")
        yield from endpoint.sendto(IP_B, 8081, b"udp bytes")
        yield testbed.sim.timeout(0.5)

    testbed.spawn(tcp_server(), name="tcp-server")
    testbed.spawn(udp_server(), name="udp-server")
    proc = testbed.spawn(client(), name="client")
    testbed.run(until=proc)
    assert got["tcp"] == b"tcp bytes"
    assert got["udp"] == b"udp bytes"
