"""Registry-server behaviour: the paper's §3.4 semantics end-to-end."""

import pytest

from repro.netio import SecurityViolation, TemplateViolation
from repro.protocols.tcp import State, TcpConfig
from repro.registry.namespace import PortInUse, PortNamespace
from repro.testbed import IP_A, IP_B, Testbed


# ----------------------------------------------------------------------
# Port namespace unit behaviour
# ----------------------------------------------------------------------


def test_namespace_reserve_and_conflict():
    ns = PortNamespace(msl=1.0)
    ns.reserve(80, "a", now=0.0)
    with pytest.raises(PortInUse):
        ns.reserve(80, "b", now=0.0)


def test_namespace_linger_blocks_until_2msl():
    ns = PortNamespace(msl=1.0)
    ns.reserve(80, "a", now=0.0)
    ns.release(80, now=10.0, linger=True)
    assert ns.is_lingering(80, now=10.5)
    with pytest.raises(PortInUse):
        ns.reserve(80, "b", now=11.0)  # Within 2*MSL.
    ns.reserve(80, "b", now=12.5)  # After 2*MSL: free again.


def test_namespace_release_without_linger():
    ns = PortNamespace(msl=1.0)
    ns.reserve(80, "a", now=0.0)
    ns.release(80, now=0.0, linger=False)
    ns.reserve(80, "b", now=0.0)


def test_namespace_ephemeral_unique():
    ns = PortNamespace()
    ports = {ns.allocate_ephemeral("x", 0.0) for _ in range(100)}
    assert len(ports) == 100
    assert all(p >= PortNamespace.EPHEMERAL_START for p in ports)


def test_namespace_bad_port_rejected():
    ns = PortNamespace()
    with pytest.raises(ValueError):
        ns.reserve(0, "a", 0.0)
    with pytest.raises(ValueError):
        ns.reserve(70000, "a", 0.0)


# ----------------------------------------------------------------------
# Registry end-to-end semantics
# ----------------------------------------------------------------------


def test_registry_bypassed_on_data_path():
    """Figure 2: after setup, data transfer never touches the registry."""
    testbed = Testbed(network="ethernet", organization="userlib")
    done = {}

    def server():
        listener = yield from testbed.service_b.listen(8000)
        conn = yield from listener.accept()
        data = yield from conn.recv_exactly(50_000)
        done["data"] = data

    def client():
        conn = yield from testbed.service_a.connect(IP_B, 8000)
        segs_before = testbed.registry_a.stats["handshake_segments"]
        ipcs_before = testbed.host_a.kernel.counters.get("ipc_messages", 0)
        yield from conn.send(b"z" * 50_000)
        yield testbed.sim.timeout(0.5)
        done["segs_delta"] = (
            testbed.registry_a.stats["handshake_segments"] - segs_before
        )
        done["ipc_delta"] = (
            testbed.host_a.kernel.counters.get("ipc_messages", 0) - ipcs_before
        )

    testbed.spawn(server(), name="server")
    client_proc = testbed.spawn(client(), name="client")
    testbed.run(until=client_proc)
    assert done["data"] == b"z" * 50_000
    # The registry saw no segments and no IPC during the transfer.
    assert done["segs_delta"] == 0
    assert done["ipc_delta"] == 0


def test_port_lingers_after_release():
    testbed = Testbed(
        network="ethernet", organization="userlib", config=TcpConfig(msl=5.0)
    )

    def scenario():
        listener = yield from testbed.service_b.listen(8100)
        conn_proc = testbed.spawn(
            testbed.service_a.connect(IP_B, 8100), name="c"
        )
        server_conn = yield from listener.accept()
        client_conn = yield conn_proc
        port = client_conn.local_port
        yield from client_conn.close()
        yield from server_conn.close()
        # Still bound through FIN exchange and TIME-WAIT (2*MSL = 10 s).
        yield testbed.sim.timeout(1.0)
        bound_during = testbed.registry_a.ports.is_bound(port, testbed.sim.now)
        # After TIME-WAIT ends the library releases; the registry then
        # holds the port lingering for another protocol delay.
        yield testbed.sim.timeout(10.0)
        lingering_after = testbed.registry_a.ports.is_lingering(
            port, testbed.sim.now
        )
        return bound_during and lingering_after

    proc = testbed.spawn(scenario(), name="scenario")
    assert testbed.run(until=proc)


def test_abnormal_exit_resets_peer():
    """Paper: "To guard against an abnormal application termination,
    the protocol server issues a reset message to the remote peer."""
    testbed = Testbed(network="ethernet", organization="userlib")
    outcome = {}

    def server():
        listener = yield from testbed.service_b.listen(8200)
        conn = yield from listener.accept()
        outcome["server_conn"] = conn
        while True:
            data = yield from conn.recv(1024)
            if not data:
                break
            outcome.setdefault("chunks", []).append(data)

    def client_then_crash():
        conn = yield from testbed.service_a.connect(IP_B, 8200)
        yield from conn.send(b"before the crash")
        yield testbed.sim.timeout(0.5)
        # Abnormal termination: the task dies without closing.
        testbed.app_a.terminate()

    testbed.spawn(server(), name="server")
    crash = testbed.spawn(client_then_crash(), name="crasher")
    testbed.run(until=crash)
    testbed.run(until=testbed.sim.now + 2.0)
    assert testbed.registry_a.stats["inherited"] == 1
    assert testbed.registry_a.stats["resets_sent"] >= 1
    server_conn = outcome["server_conn"]
    assert server_conn.runner.closed_reason == "reset"


def test_clean_exit_does_not_reset():
    testbed = Testbed(network="ethernet", organization="userlib")

    def scenario():
        listener = yield from testbed.service_b.listen(8300)
        conn_proc = testbed.spawn(
            testbed.service_a.connect(IP_B, 8300), name="c"
        )
        server_conn = yield from listener.accept()
        client_conn = yield conn_proc
        yield from client_conn.close()
        yield from server_conn.close()
        yield testbed.sim.timeout(1.0)
        testbed.app_a.terminate()  # Exit after closing: nothing to reset.
        yield testbed.sim.timeout(0.5)

    proc = testbed.spawn(scenario(), name="scenario")
    testbed.run(until=proc)
    assert testbed.registry_a.stats["resets_sent"] == 0


def test_listen_port_conflict_between_apps():
    testbed = Testbed(network="ethernet", organization="userlib")
    service_b2 = testbed.library_service("bob", "app-b2")

    def scenario():
        yield from testbed.service_b.listen(8400)
        with pytest.raises(OSError):
            yield from service_b2.listen(8400)
        return True

    proc = testbed.spawn(scenario(), name="scenario")
    assert testbed.run(until=proc)


def test_connection_handoff_inetd_style():
    """Paper §3.2: a connection can be passed to another application
    without involving the registry server or the network I/O module."""
    testbed = Testbed(network="ethernet", organization="userlib")
    worker_service = testbed.library_service("bob", "worker")
    worker_app = worker_service.app
    got = {}

    def inetd():
        listener = yield from testbed.service_b.listen(8500)
        conn = yield from listener.accept()
        registry_segments = testbed.registry_b.stats["handshake_segments"]
        # Hand the established connection to the worker task.
        worker_conn = conn.hand_off(worker_app, worker_service)
        got["registry_untouched"] = (
            testbed.registry_b.stats["handshake_segments"] == registry_segments
        )
        testbed.spawn(worker(worker_conn), name="worker")

    def worker(conn):
        data = yield from conn.recv_exactly(11)
        yield from conn.send(data.upper())
        yield from conn.close()

    def client():
        conn = yield from testbed.service_a.connect(IP_B, 8500)
        yield from conn.send(b"hello inetd")
        got["reply"] = yield from conn.recv_exactly(11)
        yield from conn.close()

    testbed.spawn(inetd(), name="inetd")
    client_proc = testbed.spawn(client(), name="client")
    testbed.run(until=client_proc)
    assert got["reply"] == b"HELLO INETD"
    assert got["registry_untouched"]


def test_intruder_cannot_use_anothers_channel():
    """The send capability is bound to the owning task."""
    testbed = Testbed(network="ethernet", organization="userlib")
    intruder = testbed.host_a.create_task("intruder")
    result = {}

    def server():
        listener = yield from testbed.service_b.listen(8600)
        conn = yield from listener.accept()
        yield from conn.recv(100)

    def client():
        conn = yield from testbed.service_a.connect(IP_B, 8600)
        packet = b"\x00" * 40  # Doesn't even matter: ownership fails first.
        with pytest.raises(SecurityViolation):
            yield from testbed.host_a.netio.send(
                intruder, conn.channel, packet
            )
        result["refused"] = testbed.host_a.netio.stats["tx_refused"]
        yield from conn.send(b"legitimate")

    testbed.spawn(server(), name="server")
    client_proc = testbed.spawn(client(), name="client")
    testbed.run(until=client_proc)
    assert result["refused"] >= 1


def test_owner_cannot_spoof_other_connection():
    """Template matching: even the owner can't send forged headers."""
    from repro.net.headers import Ipv4Header, PROTO_TCP
    from repro.protocols.tcp import Segment, encode_segment
    from repro.net.headers import TCP_ACK

    testbed = Testbed(network="ethernet", organization="userlib")

    def client():
        conn = yield from testbed.service_a.connect(IP_B, 8700)
        # Forge a packet claiming a different source port.
        seg = Segment(
            sport=9999, dport=8700, seq=1, ack=1, flags=TCP_ACK, window=0
        )
        tcp = encode_segment(seg, IP_A, IP_B)
        packet = (
            Ipv4Header(
                src=IP_A, dst=IP_B, protocol=PROTO_TCP,
                total_length=20 + len(tcp),
            ).pack()
            + tcp
        )
        with pytest.raises(TemplateViolation):
            yield from testbed.host_a.netio.send(
                testbed.app_a, conn.channel, packet
            )
        return True

    def server():
        listener = yield from testbed.service_b.listen(8700)
        yield from listener.accept()

    testbed.spawn(server(), name="server")
    proc = testbed.spawn(client(), name="client")
    assert testbed.run(until=proc)
