"""Host-level behaviours: ARP resolution, slow-timer housekeeping,
NIC burst overflow, and TCP recovery from it."""

import pytest

from repro.net.headers import PROTO_TCP, str_to_ip
from repro.protocols.tcp import TcpConfig
from repro.testbed import IP_A, IP_B, Testbed


def test_resolve_link_unknown_host_fails():
    testbed = Testbed(network="ethernet", organization="userlib")

    def resolver():
        with pytest.raises(LookupError):
            yield from testbed.host_a.resolve_link(str_to_ip("10.0.0.99"))
        return True

    proc = testbed.spawn(resolver(), name="resolver")
    assert testbed.run(until=proc)


def test_resolve_link_an1_uses_static_table():
    testbed = Testbed(network="an1", organization="userlib")

    def resolver():
        station = yield from testbed.host_a.resolve_link(IP_B)
        return station

    proc = testbed.spawn(resolver(), name="resolver")
    assert testbed.run(until=proc) == 2


def test_arp_cache_warm_after_first_resolution():
    testbed = Testbed(network="ethernet", organization="userlib")

    def resolver():
        yield from testbed.host_a.resolve_link(IP_B)
        frames_before = testbed.link.stats["frames"]
        yield from testbed.host_a.resolve_link(IP_B)  # Cache hit.
        return testbed.link.stats["frames"] - frames_before

    proc = testbed.spawn(resolver(), name="resolver")
    assert testbed.run(until=proc) == 0


def test_slow_timer_expires_stale_reassembly():
    testbed = Testbed(network="ethernet", organization="userlib")
    receiver_ip = testbed.host_b.ip_stack

    def scenario():
        # Deliver only the first fragment of a two-fragment datagram.
        packets = testbed.host_a.ip_stack.send(
            IP_B, PROTO_TCP, b"f" * 2500, mtu=1500
        )
        mac = yield from testbed.host_a.resolve_link(IP_B)
        yield from testbed.host_a.netio.kernel_send(packets[0], mac)
        yield testbed.sim.timeout(1.0)
        assert receiver_ip.pending_reassemblies == 1
        # The host's slow timer reaps it after the reassembly timeout.
        yield testbed.sim.timeout(receiver_ip.REASSEMBLY_TIMEOUT + 2.0)
        return receiver_ip.pending_reassemblies

    proc = testbed.spawn(scenario(), name="scenario")
    assert testbed.run(until=proc) == 0
    assert receiver_ip.stats["expired"] == 1


def test_nic_burst_overflow_recovered_by_tcp():
    """A window larger than the receive staging capacity makes bursts
    overflow the board; TCP's loss recovery must still complete the
    transfer (an emergent interaction, pinned here)."""
    from repro.metrics import measure_throughput
    from repro.net.nic.pmadd import PmaddNic

    config = TcpConfig(
        rcv_buffer=61440, snd_buffer=61440, min_rto=0.3, initial_rto=0.6
    )
    testbed = Testbed(network="ethernet", organization="userlib", config=config)
    # Shrink the staging capacity so the big window overflows it.
    original = PmaddNic.BOARD_BUFFERS
    result = None
    try:
        PmaddNic.BOARD_BUFFERS = 6
        result = measure_throughput(
            testbed, total_bytes=200_000, chunk_size=4096
        )
    finally:
        PmaddNic.BOARD_BUFFERS = original
    assert result.bytes_moved > 0
    dropped = testbed.host_b.nic.stats["rx_dropped_no_buffer"]
    assert dropped > 0  # The overflow really happened...
    # ...and the transfer completed anyway (recovery worked).


def test_hosts_have_independent_cpus():
    testbed = Testbed(network="ethernet", organization="ultrix")

    def burn(host):
        yield from host.kernel.cpu.consume(0.5)

    start = testbed.sim.now
    a = testbed.spawn(burn(testbed.host_a), name="a")
    b = testbed.spawn(burn(testbed.host_b), name="b")
    testbed.run(until=a)
    testbed.run(until=b)
    # Parallel execution: both finish in 0.5s, not 1.0s.
    assert testbed.sim.now - start == pytest.approx(0.5)
