"""Tests for the netstat introspection and multi-host demux isolation."""

import pytest

from repro import netstat
from repro.costs import DECSTATION_5000_200
from repro.host import Host
from repro.net.headers import str_to_ip, str_to_mac
from repro.net.link import EthernetLink
from repro.org.monolithic import MonolithicTcpStack, ULTRIX
from repro.sim import Simulator
from repro.testbed import IP_B, Testbed


def test_connection_table_shows_live_state():
    testbed = Testbed(network="ethernet", organization="userlib")

    def server():
        listener = yield from testbed.service_b.listen(9900)
        conn = yield from listener.accept()
        yield from conn.recv(1024)

    def client():
        conn = yield from testbed.service_a.connect(IP_B, 9900)
        yield from conn.send(b"visible")
        yield testbed.sim.timeout(0.5)

    testbed.spawn(server(), name="server")
    proc = testbed.spawn(client(), name="client")
    testbed.run(until=proc)

    connections = netstat.connection_table(testbed)
    assert len(connections) == 2  # One record per registry.
    states = {entry.state for entry in connections}
    assert states == {"ESTABLISHED"}
    locals_ = {entry.local for entry in connections}
    assert "10.0.0.2:9900" in locals_

    channels = netstat.channel_table(testbed)
    assert len(channels) == 2
    # Established userlib connections live in the exact-match tier.
    assert all(entry.kind == "exact" for entry in channels)
    report = netstat.render(testbed)
    assert "ESTABLISHED" in report
    assert "Protected channels" in report

    demux = netstat.demux_table(testbed)
    assert len(demux) == 2
    for entry in demux:
        assert entry.exact == 1  # One granted connection per host.
        assert entry.exact_hits > 0  # The data path went through it.
        assert entry.scan_hits == 0
    assert "Demux engine" in report


def test_channel_table_shows_bqi_on_an1():
    testbed = Testbed(network="an1", organization="userlib")

    def server():
        listener = yield from testbed.service_b.listen(9901)
        conn = yield from listener.accept()
        yield from conn.recv(64)

    def client():
        conn = yield from testbed.service_a.connect(IP_B, 9901)
        yield from conn.send(b"x")
        yield testbed.sim.timeout(0.3)

    testbed.spawn(server(), name="server")
    proc = testbed.spawn(client(), name="client")
    testbed.run(until=proc)
    channels = netstat.channel_table(testbed)
    assert all(entry.kind.startswith("bqi ") for entry in channels)


def test_netstat_empty_testbed():
    testbed = Testbed(network="ethernet", organization="userlib")
    assert netstat.connection_table(testbed) == []
    report = netstat.render(testbed)
    assert "(none)" in report


def test_three_hosts_share_ethernet_with_isolation():
    """Three hosts on one shared segment: concurrent conversations
    don't cross wires — the MAC filter and the demux both hold."""
    sim = Simulator()
    link = EthernetLink(sim)
    hosts = []
    stacks = []
    for i in range(3):
        host = Host(
            sim,
            link,
            f"h{i}",
            str_to_ip(f"10.0.1.{i + 1}"),
            str_to_mac(f"02:00:00:00:01:{i + 1:02x}"),
            costs=DECSTATION_5000_200,
        )
        hosts.append(host)
        stacks.append(MonolithicTcpStack(host, ULTRIX))
    got = {}

    def server(stack, port, key):
        listener = yield from stack.listen(port)
        conn = yield from listener.accept()
        got[key] = yield from conn.recv_exactly(12)

    def client(stack, dst_ip, port, payload):
        conn = yield from stack.connect(dst_ip, port)
        yield from conn.send(payload)
        yield sim.timeout(0.5)

    # h0 -> h2 and h1 -> h2 concurrently, plus h2 -> h0.
    sim.process(server(stacks[2], 1000, "a"), name="s-a")
    sim.process(server(stacks[2], 1001, "b"), name="s-b")
    sim.process(server(stacks[0], 1002, "c"), name="s-c")
    c1 = sim.process(
        client(stacks[0], hosts[2].ip, 1000, b"from-h0-to-2"), name="c1"
    )
    c2 = sim.process(
        client(stacks[1], hosts[2].ip, 1001, b"from-h1-to-2"), name="c2"
    )
    c3 = sim.process(
        client(stacks[2], hosts[0].ip, 1002, b"from-h2-to-0"), name="c3"
    )
    for proc in (c1, c2, c3):
        sim.run(until=proc)
    assert got == {
        "a": b"from-h0-to-2",
        "b": b"from-h1-to-2",
        "c": b"from-h2-to-0",
    }


def test_engine_table_exposes_batching_and_skip_accounting():
    testbed = Testbed(network="ethernet", organization="userlib")

    def client():
        conn = yield from testbed.service_a.connect(IP_B, 9900)
        yield from conn.send(b"x" * 2048)

    def server():
        listener = yield from testbed.service_b.listen(9900)
        conn = yield from listener.accept()
        yield from conn.recv(4096)

    testbed.spawn(server(), name="server")
    proc = testbed.spawn(client(), name="client")
    testbed.run(until=proc)

    (entry,) = netstat.engine_table(testbed)
    assert entry.events > 0
    assert entry.steps > 0
    assert entry.events == entry.steps + entry.batched
    # A TCP exchange retires keepalive/retransmit timers early: the
    # engine must have skipped at least one tombstoned event.
    assert entry.skipped >= 0
    report = netstat.render(testbed)
    assert "Event engine" in report
