"""End-to-end integration tests over the full testbed.

Every organization on every network moves real TCP bytes through real
links, NICs, and (for the library organization) the registry server and
network I/O module channels.
"""

import pytest

from repro.costs import DECSTATION_5000_200
from repro.net.faults import FaultInjector
from repro.protocols.tcp import TcpConfig
from repro.testbed import IP_A, IP_B, ORGANIZATIONS, Testbed

ALL_CONFIGS = [
    pytest.param(net, org, id=f"{net}-{org}")
    for net in ("ethernet", "an1")
    for org in ORGANIZATIONS
]


def run_echo(testbed, payload: bytes, port: int = 7000) -> dict:
    """Client sends payload; server echoes it back; returns results."""
    out = {}

    def server():
        listener = yield from testbed.service_b.listen(port)
        conn = yield from listener.accept()
        data = yield from conn.recv_exactly(len(payload))
        yield from conn.send(data)
        yield from conn.close()

    def client():
        conn = yield from testbed.service_a.connect(IP_B, port)
        yield from conn.send(payload)
        echo = yield from conn.recv_exactly(len(payload))
        out["echo"] = echo
        yield from conn.close()

    testbed.spawn(server(), name="server")
    client_proc = testbed.spawn(client(), name="client")
    testbed.run(until=client_proc)
    return out


@pytest.mark.parametrize("network,organization", ALL_CONFIGS)
def test_echo_roundtrip_all_organizations(network, organization):
    testbed = Testbed(network=network, organization=organization)
    payload = bytes(range(256)) * 64  # 16 KB.
    out = run_echo(testbed, payload)
    assert out["echo"] == payload


@pytest.mark.parametrize("network,organization", ALL_CONFIGS)
def test_transfer_under_loss_all_organizations(network, organization):
    faults = FaultInjector(drop_rate=0.08, seed=7)
    testbed = Testbed(
        network=network,
        organization=organization,
        faults=faults,
        config=TcpConfig(min_rto=0.3, initial_rto=0.5),
    )
    payload = bytes(range(256)) * 80  # 20 KB.
    out = run_echo(testbed, payload)
    assert out["echo"] == payload
    assert faults.stats["dropped"] > 0  # The fault injector really fired.


def test_transfer_under_corruption_checksums_protect():
    faults = FaultInjector(corrupt_rate=0.05, seed=3)
    testbed = Testbed(
        network="ethernet",
        organization="userlib",
        faults=faults,
        config=TcpConfig(min_rto=0.3, initial_rto=0.5),
    )
    payload = bytes(range(256)) * 64
    out = run_echo(testbed, payload)
    assert out["echo"] == payload
    assert faults.stats["corrupted"] > 0


def test_bidirectional_concurrent_streams():
    testbed = Testbed(network="ethernet", organization="userlib")
    a_data = b"A" * 30_000
    b_data = b"B" * 30_000
    got = {}

    def side_b():
        listener = yield from testbed.service_b.listen(5555)
        conn = yield from listener.accept()
        send_done = testbed.spawn(conn.send(b_data), name="b-send")
        got["at_b"] = yield from conn.recv_exactly(len(a_data))
        yield send_done
        yield from conn.close()

    def side_a():
        conn = yield from testbed.service_a.connect(IP_B, 5555)
        send_done = testbed.spawn(conn.send(a_data), name="a-send")
        got["at_a"] = yield from conn.recv_exactly(len(b_data))
        yield send_done
        yield from conn.close()

    b_proc = testbed.spawn(side_b(), name="B")
    a_proc = testbed.spawn(side_a(), name="A")
    testbed.run(until=a_proc)
    testbed.run(until=b_proc)
    assert got["at_b"] == a_data
    assert got["at_a"] == b_data


def test_multiple_sequential_connections_same_port_pair():
    testbed = Testbed(network="ethernet", organization="userlib",
                      config=TcpConfig(msl=0.05))
    results = []

    def server():
        listener = yield from testbed.service_b.listen(6000)
        for i in range(3):
            conn = yield from listener.accept()
            data = yield from conn.recv_exactly(5)
            results.append(data)
            yield from conn.close()

    def client():
        for i in range(3):
            conn = yield from testbed.service_a.connect(IP_B, 6000)
            yield from conn.send(f"msg-{i}".encode())
            yield from conn.close()
            yield testbed.sim.timeout(1.0)

    testbed.spawn(server(), name="server")
    client_proc = testbed.spawn(client(), name="client")
    testbed.run(until=client_proc)
    assert results == [b"msg-0", b"msg-1", b"msg-2"]


def test_concurrent_connections_different_apps():
    """Two applications on one host, each with its own library."""
    testbed = Testbed(network="ethernet", organization="userlib")
    service_a2 = testbed.library_service("alice", "app-a2")
    got = {}

    def server():
        listener = yield from testbed.service_b.listen(7070)
        for _ in range(2):
            conn = yield from listener.accept()
            testbed.spawn(handle(conn), name="handler")

    def handle(conn):
        data = yield from conn.recv_exactly(6)
        yield from conn.send(data.upper())
        yield from conn.close()

    def client(service, tag):
        conn = yield from service.connect(IP_B, 7070)
        yield from conn.send(tag.encode())
        got[tag] = yield from conn.recv_exactly(6)
        yield from conn.close()

    testbed.spawn(server(), name="server")
    c1 = testbed.spawn(client(testbed.service_a, "first!"), name="c1")
    c2 = testbed.spawn(client(service_a2, "second"), name="c2")
    testbed.run(until=c1)
    testbed.run(until=c2)
    assert got["first!"] == b"FIRST!"
    assert got["second"] == b"SECOND"


def test_connect_to_closed_port_refused():
    testbed = Testbed(network="ethernet", organization="userlib")

    def client():
        with pytest.raises(ConnectionError):
            yield from testbed.service_a.connect(IP_B, 9999)
        return True

    proc = testbed.spawn(client(), name="client")
    assert testbed.run(until=proc)


@pytest.mark.parametrize("organization", ["ultrix", "userlib"])
def test_icmp_ping_works_alongside_tcp(organization):
    from repro.net.headers import PROTO_ICMP
    from repro.protocols.icmp import decode_echo, encode_echo

    testbed = Testbed(network="ethernet", organization=organization)
    replies = []

    # Capture ICMP replies on host A via the kernel dispatch.
    original = testbed.host_a._kernel_rx

    def spying_rx(ethertype, payload, link_info):
        from repro.net.headers import ETHERTYPE_IP, Ipv4Header

        if ethertype == ETHERTYPE_IP:
            datagram = Ipv4Header.unpack(payload, verify=False)
            if datagram.protocol == PROTO_ICMP:
                echo = decode_echo(payload[20:])
                if echo and not echo.is_request:
                    replies.append(echo)
        yield from original(ethertype, payload, link_info)

    testbed.host_a.netio.kernel_rx = spying_rx

    def pinger():
        request = encode_echo(True, ident=1, seq=1, payload=b"ping")
        yield from testbed.host_a.ip_send(IP_B, PROTO_ICMP, request)
        yield testbed.sim.timeout(0.1)

    proc = testbed.spawn(pinger(), name="ping")
    testbed.run(until=proc)
    testbed.run(until=testbed.sim.now + 0.2)
    assert len(replies) == 1
    assert replies[0].payload == b"ping"


def test_udp_datagram_between_hosts():
    from repro.net.headers import PROTO_UDP
    from repro.protocols.udp import encode_datagram

    testbed = Testbed(network="ethernet", organization="userlib")
    got = []
    testbed.host_b.udp_ports.bind(53, got.append)

    def sender():
        wire = encode_datagram(1234, 53, b"query", IP_A, IP_B)
        yield from testbed.host_a.ip_send(IP_B, PROTO_UDP, wire)

    proc = testbed.spawn(sender(), name="udp")
    testbed.run(until=proc)
    testbed.run(until=testbed.sim.now + 0.1)
    assert len(got) == 1
    assert got[0].payload == b"query"
    assert got[0].src_port == 1234
