"""Tests for the BSD-style socket facade."""

import pytest

from repro.sockets import Socket, SocketError, socket
from repro.testbed import IP_B, Testbed


@pytest.fixture
def testbed():
    return Testbed(network="ethernet", organization="userlib")


def test_socket_lifecycle_echo(testbed):
    got = {}

    def server():
        sock = socket(testbed.service_b)
        sock.bind(7)
        yield from sock.listen()
        child = yield from sock.accept()
        data = yield from child.recv_exactly(5)
        yield from child.send(data.upper())
        yield from child.close()
        yield from sock.close()

    def client():
        sock = socket(testbed.service_a)
        yield from sock.connect(IP_B, 7)
        sent = yield from sock.send(b"hello")
        got["sent"] = sent
        got["reply"] = yield from sock.recv_exactly(5)
        yield from sock.close()

    testbed.spawn(server(), name="server")
    proc = testbed.spawn(client(), name="client")
    testbed.run(until=proc)
    assert got["sent"] == 5
    assert got["reply"] == b"HELLO"


def test_socket_works_over_monolithic_stack():
    testbed = Testbed(network="ethernet", organization="ultrix")
    got = {}

    def server():
        sock = socket(testbed.service_b)
        sock.bind(8)
        yield from sock.listen()
        child = yield from sock.accept()
        got["data"] = yield from child.recv_exactly(4)

    def client():
        sock = socket(testbed.service_a)
        yield from sock.connect(IP_B, 8)
        yield from sock.send(b"ping")

    testbed.spawn(server(), name="server")
    proc = testbed.spawn(client(), name="client")
    testbed.run(until=proc)
    testbed.run(until=testbed.sim.now + 1.0)
    assert got["data"] == b"ping"


def test_socket_state_machine_enforced(testbed):
    sock = socket(testbed.service_a)
    with pytest.raises(SocketError):
        sock._connected()  # Not connected.
    with pytest.raises(SocketError):
        sock.bind(99999)  # Bad port.
    sock.bind(1234)
    with pytest.raises(SocketError):
        sock.bind(1234)  # Already bound.

    def bad_listen():
        fresh = socket(testbed.service_a)
        with pytest.raises(SocketError):
            yield from fresh.listen()
        return True

    proc = testbed.spawn(bad_listen(), name="bad")
    assert testbed.run(until=proc)


def test_socket_unsupported_type_rejected(testbed):
    with pytest.raises(SocketError):
        Socket(testbed.service_a, family="AF_UNIX")


def test_socket_recv_eof_after_peer_close(testbed):
    got = {}

    def server():
        sock = socket(testbed.service_b)
        sock.bind(9)
        yield from sock.listen()
        child = yield from sock.accept()
        yield from child.send(b"bye")
        yield from child.close()

    def client():
        sock = socket(testbed.service_a)
        yield from sock.connect(IP_B, 9)
        got["data"] = yield from sock.recv_exactly(3)
        got["eof"] = yield from sock.recv(10)
        yield from sock.close()

    testbed.spawn(server(), name="server")
    proc = testbed.spawn(client(), name="client")
    testbed.run(until=proc)
    assert got["data"] == b"bye"
    assert got["eof"] == b""


def test_socket_bound_port_used_for_connect(testbed):
    got = {}

    def server():
        sock = socket(testbed.service_b)
        sock.bind(10)
        yield from sock.listen()
        child = yield from sock.accept()
        got["peer_port"] = child.connection.remote_port

    def client():
        sock = socket(testbed.service_a)
        sock.bind(4321)
        yield from sock.connect(IP_B, 10)
        yield from sock.send(b"x")

    testbed.spawn(server(), name="server")
    proc = testbed.spawn(client(), name="client")
    testbed.run(until=proc)
    testbed.run(until=testbed.sim.now + 0.5)
    assert got["peer_port"] == 4321
