"""pcap export round-trip: what WireTrace captures must come back
byte-identical (and re-decodable) through the standard file format."""

import struct

import pytest

from repro.trace import (
    LINKTYPE_AN1,
    LINKTYPE_ETHERNET,
    PCAP_MAGIC,
    WireTrace,
    read_pcap,
    write_pcap,
)
from repro.testbed import Testbed

from .test_trace import run_small_transfer


def test_pcap_round_trip_ethernet(tmp_path):
    testbed = Testbed(network="ethernet", organization="userlib")
    trace = WireTrace(testbed.link)
    run_small_transfer(testbed)
    path = tmp_path / "capture.pcap"

    written = trace.export_pcap(path)
    assert written == len(trace.records)

    linktype, frames = read_pcap(path)
    assert linktype == LINKTYPE_ETHERNET
    assert len(frames) == written
    for record, (time, raw) in zip(trace.records, frames):
        assert raw == record.raw
        # Timestamps survive at microsecond resolution.
        assert time == pytest.approx(record.time, abs=1e-6)
        # Re-decoding the file's bytes reproduces the live decode.
        assert trace.decode(time, raw).summary == record.summary


def test_pcap_global_header_is_standard(tmp_path):
    testbed = Testbed(network="ethernet", organization="userlib")
    trace = WireTrace(testbed.link)
    run_small_transfer(testbed)
    path = tmp_path / "capture.pcap"
    trace.export_pcap(path)
    header = path.read_bytes()[:24]
    magic, major, minor, _tz, _sig, snaplen, linktype = struct.unpack(
        "<IHHiIII", header
    )
    assert magic == PCAP_MAGIC == 0xA1B2C3D4
    assert (major, minor) == (2, 4)
    assert snaplen == 65535
    assert linktype == 1  # LINKTYPE_ETHERNET: opens in Wireshark/tcpdump


def test_pcap_an1_uses_private_linktype(tmp_path):
    testbed = Testbed(network="an1", organization="userlib")
    trace = WireTrace(testbed.link)
    run_small_transfer(testbed)
    path = tmp_path / "an1.pcap"
    trace.export_pcap(path)
    linktype, frames = read_pcap(path)
    assert linktype == LINKTYPE_AN1 == 147  # DLT_USER0
    assert frames


def test_write_pcap_skips_rawless_records(tmp_path):
    testbed = Testbed(network="ethernet", organization="userlib")
    trace = WireTrace(testbed.link)
    run_small_transfer(testbed)
    trace.records[0].raw = b""  # e.g. a record decoded from a live wire
    path = tmp_path / "partial.pcap"
    assert write_pcap(path, trace.records) == len(trace.records) - 1


def test_read_pcap_rejects_garbage(tmp_path):
    path = tmp_path / "not.pcap"
    path.write_bytes(b"\x00" * 64)
    with pytest.raises(ValueError, match="magic"):
        read_pcap(path)
    path.write_bytes(b"\x01")
    with pytest.raises(ValueError, match="truncated"):
        read_pcap(path)
