"""Every invariant checker must *fire*: one known-violating synthetic
trace per invariant, plus the conformant shape it must not flag."""

from repro.check.evidence import FaultEvent, RunEvidence, WireSegment
from repro.check.invariants import (
    check_all,
    check_checksums,
    check_conservation,
    check_retransmissions,
    check_seq_ack,
    check_socket_integrity,
    check_state_transitions,
)
from repro.metrics import CheckedTransfer
from repro.net.faults import FaultPlan
from repro.net.headers import (
    ETHERTYPE_IP,
    PROTO_TCP,
    TCP_ACK,
    EthernetHeader,
    Ipv4Header,
    str_to_ip,
    str_to_mac,
)
from repro.netstat import invariant_table, render_invariants
from repro.protocols.tcp import Segment, State
from repro.protocols.tcp.wire import encode_segment

IP_A = str_to_ip("10.0.0.1")
IP_B = str_to_ip("10.0.0.2")
MAC_A = str_to_mac("02:00:00:00:00:01")
MAC_B = str_to_mac("02:00:00:00:00:02")


def seg(time, direction, seq, ack=0, flags=TCP_ACK, data_len=0, window=16384):
    """A synthetic wire capture: 'a' is 10.0.0.1:1000 -> 10.0.0.2:2000."""
    if direction == "a":
        src, sport, dst, dport = IP_A, 1000, IP_B, 2000
    else:
        src, sport, dst, dport = IP_B, 2000, IP_A, 1000
    return WireSegment(
        time=time, src_ip=src, dst_ip=dst, sport=sport, dport=dport,
        seq=seq, ack=ack, flags=flags, window=window, data_len=data_len,
    )


class StubMachine:
    def __init__(self, transitions, retransmits=0):
        self.transitions = transitions
        self.stats = {"retransmits": retransmits}


# ----------------------------------------------------------------------
# state-transitions
# ----------------------------------------------------------------------


def test_state_checker_fires_on_illegal_transition():
    machine = StubMachine([(State.LISTEN, State.ESTABLISHED)])
    result = check_state_transitions(RunEvidence(machines=[("m", machine)]))
    assert len(result.violations) == 1
    assert "LISTEN" in result.violations[0].detail


def test_state_checker_accepts_simultaneous_open_and_resets():
    machine = StubMachine(
        [
            (State.CLOSED, State.SYN_SENT),
            (State.SYN_SENT, State.SYN_RCVD),  # Simultaneous open.
            (State.SYN_RCVD, State.ESTABLISHED),
            (State.ESTABLISHED, State.CLOSED),  # Reset: always legal.
        ]
    )
    result = check_state_transitions(RunEvidence(machines=[("m", machine)]))
    assert result.ok
    assert result.checked == 4


# ----------------------------------------------------------------------
# seq-ack-monotonic
# ----------------------------------------------------------------------


def test_seq_ack_checker_fires_on_backward_ack():
    segments = [
        seg(0.00, "a", seq=100, ack=5000),
        seg(0.01, "a", seq=100, ack=4000),  # ACK moved backwards.
    ]
    result = check_seq_ack(RunEvidence(segments=segments))
    assert len(result.violations) == 1
    assert "backwards" in result.violations[0].detail


def test_seq_ack_checker_fires_on_window_overrun():
    segments = [
        seg(0.00, "a", seq=1000, data_len=100),
        seg(0.01, "b", seq=50, ack=1100),  # Peer acknowledges 1100.
        # Way past acked + max window (1100 + 65536): a gross overrun.
        seg(0.02, "a", seq=1100 + 65536 + 5000, data_len=100),
    ]
    result = check_seq_ack(RunEvidence(segments=segments))
    assert len(result.violations) == 1
    assert "window" in result.violations[0].detail


def test_seq_ack_checker_accepts_normal_flow():
    segments = [
        seg(0.00, "a", seq=1000, data_len=100),
        seg(0.01, "b", seq=50, ack=1100),
        seg(0.02, "a", seq=1100, data_len=100),
        seg(0.03, "b", seq=50, ack=1200),
    ]
    assert check_seq_ack(RunEvidence(segments=segments)).ok


# ----------------------------------------------------------------------
# socket-integrity
# ----------------------------------------------------------------------


def _transfer(payload, received, done=True, reason="done"):
    return CheckedTransfer(
        index=0, port=7000, payload=payload, received=received,
        client_done=done, server_done=done,
        client_close_reason=reason, server_close_reason=reason,
    )


def test_socket_checker_fires_on_corruption():
    ev = RunEvidence(transfers=[_transfer(b"abcdef", b"abXdef")])
    result = check_socket_integrity(ev)
    assert len(result.violations) == 1
    assert "offset 2" in result.violations[0].detail


def test_socket_checker_fires_on_duplicated_tail():
    ev = RunEvidence(transfers=[_transfer(b"abc", b"abcabc")])
    result = check_socket_integrity(ev)
    assert len(result.violations) == 1
    assert "duplicated" in result.violations[0].detail


def test_socket_checker_fires_on_loss_despite_clean_close():
    ev = RunEvidence(transfers=[_transfer(b"abcdef", b"abc")])
    result = check_socket_integrity(ev)
    assert len(result.violations) == 1
    assert "clean close" in result.violations[0].detail


def test_socket_checker_tolerates_truncation_on_failed_transfer():
    # A transfer that gave up (timeout) may be short — but never wrong.
    ev = RunEvidence(
        transfers=[_transfer(b"abcdef", b"abc", done=False, reason="timeout")]
    )
    assert check_socket_integrity(ev).ok


# ----------------------------------------------------------------------
# retx-justified
# ----------------------------------------------------------------------


def test_retx_checker_fires_on_unjustified_retransmission():
    segments = [
        seg(0.000, "a", seq=1000, data_len=100),
        seg(0.010, "a", seq=1000, data_len=100),  # 10ms, no dup ACKs.
    ]
    result = check_retransmissions(RunEvidence(segments=segments))
    assert result.checked == 1
    assert len(result.violations) == 1
    assert "unjustified" in result.violations[0].detail


def test_retx_checker_accepts_fast_retransmit_after_three_dup_acks():
    segments = [
        seg(0.000, "a", seq=1000, data_len=100),
        seg(0.001, "b", seq=50, ack=1000),
        seg(0.002, "b", seq=50, ack=1000),
        seg(0.003, "b", seq=50, ack=1000),
        seg(0.004, "a", seq=1000, data_len=100),  # Fast retransmit.
    ]
    result = check_retransmissions(RunEvidence(segments=segments))
    assert result.checked == 1
    assert result.ok


def test_retx_checker_accepts_timeout_retransmission():
    segments = [
        seg(0.000, "a", seq=1000, data_len=100),
        seg(0.600, "a", seq=1000, data_len=100),  # Past the RTO floor.
    ]
    result = check_retransmissions(
        RunEvidence(segments=segments, min_rto=0.5)
    )
    assert result.checked == 1
    assert result.ok


def test_retx_checker_skips_segment_with_new_bytes():
    # A "retransmission" that coalesces fresh data advances coverage and
    # is not judged (the fresh bytes were never transmitted before).
    segments = [
        seg(0.000, "a", seq=1000, data_len=100),
        seg(0.010, "a", seq=1000, data_len=200),
    ]
    result = check_retransmissions(RunEvidence(segments=segments))
    assert result.checked == 0
    assert result.ok


# ----------------------------------------------------------------------
# checksum-rejection
# ----------------------------------------------------------------------


def _tcp_frame(payload):
    body = encode_segment(
        Segment(
            sport=1000, dport=2000, seq=1, ack=1,
            flags=TCP_ACK, window=8192, payload=payload,
        ),
        IP_A, IP_B,
    )
    ip = Ipv4Header(
        src=IP_A, dst=IP_B, protocol=PROTO_TCP,
        total_length=Ipv4Header.LENGTH + len(body),
    )
    eth = EthernetHeader(dst=MAC_B, src=MAC_A, ethertype=ETHERTYPE_IP)
    return eth.pack() + ip.pack() + body


def test_checksum_checker_fires_on_collision():
    # A corruption that *recomputes* the checksums models the worst case:
    # damage the protocol checksum cannot see.  The checker must flag it.
    original = _tcp_frame(b"hello")
    forged = _tcp_frame(b"jello")
    event = FaultEvent(
        time=0.01, frame=original,
        plan=FaultPlan(deliveries=((0.0, forged),), corrupted=True),
    )
    result = check_checksums(RunEvidence(fault_events=[event]))
    assert result.checked == 1
    assert len(result.violations) == 1
    assert "passed every checksum" in result.violations[0].detail


def test_checksum_checker_accepts_detectable_corruption():
    # A real single-bit flip breaks the internet checksum; the receive
    # path rejects it and the invariant is satisfied.
    original = _tcp_frame(b"hello")
    flipped = bytearray(original)
    flipped[-3] ^= 0x10  # Inside the TCP payload.
    event = FaultEvent(
        time=0.01, frame=original,
        plan=FaultPlan(deliveries=((0.0, bytes(flipped)),), corrupted=True),
    )
    result = check_checksums(RunEvidence(fault_events=[event]))
    assert result.checked == 1
    assert result.ok


# ----------------------------------------------------------------------
# fault-conservation
# ----------------------------------------------------------------------


def test_conservation_fires_on_link_injector_disagreement():
    ev = RunEvidence(
        injector_stats={
            "dropped": 2, "corrupted": 0, "duplicated": 0, "delayed": 0,
        },
        link_stats={"dropped": 1, "corrupted": 0, "duplicated": 0},
    )
    result = check_conservation(ev)
    assert any("link reports" in v.detail for v in result.violations)


def test_conservation_fires_on_retransmit_without_cause():
    machine = StubMachine([], retransmits=3)
    ev = RunEvidence(machines=[("m", machine)])
    result = check_conservation(ev)
    assert any("fault-free" in v.detail for v in result.violations)


def test_conservation_fires_on_fault_log_mismatch():
    event = FaultEvent(
        time=0.0, frame=b"x",
        plan=FaultPlan(deliveries=(), dropped=True),
    )
    ev = RunEvidence(fault_events=[event])  # Injector says 0 drops.
    result = check_conservation(ev)
    assert any("injector counted 0" in v.detail for v in result.violations)


def test_conservation_accepts_consistent_run():
    ev = RunEvidence(
        injector_stats={
            "dropped": 0, "corrupted": 0, "duplicated": 0, "delayed": 0,
        },
        link_stats={"dropped": 0, "corrupted": 0, "duplicated": 0},
        machines=[("m", StubMachine([]))],
    )
    assert check_conservation(ev).ok


# ----------------------------------------------------------------------
# Queue-induced loss: RED vs tail-drop under the checkers
# ----------------------------------------------------------------------


def _congested_dumbbell(red):
    from repro.check.evidence import collect_evidence
    from repro.testbed import FabricTestbed

    bed = FabricTestbed(
        kind="dumbbell", organization="userlib", pairs=3,
        queue_bytes=6000, red=red, red_seed=5,
    )
    evidence = collect_evidence(
        bed, transfers=3, payload_bytes=120_000, seed=4, deadline=60.0,
    )
    return bed, evidence


def test_taildrop_congestion_satisfies_all_invariants():
    bed, evidence = _congested_dumbbell(red=False)
    results = check_all(evidence)
    assert all(r.ok for r in results), [
        str(v) for r in results for v in r.violations
    ]
    # The loss really happened — at the queue, not the injector — and the
    # conservation checker must attribute retransmits to it.
    assert evidence.queue_drops > 0
    assert evidence.injector_stats["dropped"] == 0
    queue = bed.bottleneck.queue
    assert queue.stats["dropped"] > 0
    assert queue.stats.get("early_dropped", 0) == 0


def test_red_congestion_satisfies_all_invariants():
    bed, evidence = _congested_dumbbell(red=True)
    results = check_all(evidence)
    assert all(r.ok for r in results), [
        str(v) for r in results for v in r.violations
    ]
    assert evidence.queue_drops > 0
    # RED drops early, before the queue is full.
    assert bed.bottleneck.queue.stats.get("early_dropped", 0) > 0


# ----------------------------------------------------------------------
# netstat summary table
# ----------------------------------------------------------------------


def test_invariant_table_renders_verdicts():
    machine = StubMachine([(State.LISTEN, State.ESTABLISHED)])
    results = check_all(RunEvidence(machines=[("m", machine)]))
    entries = invariant_table(results)
    assert len(entries) == 7
    text = render_invariants(results)
    assert "state-transitions" in text
    assert "VIOLATED" in text
    assert "fault-conservation" in text
    assert "cc-sanity" in text
