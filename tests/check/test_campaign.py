"""Campaign runner: grid sweeps, JSON reports, deterministic replay of a
seeded violation, and shrinking a failing cell to its minimal config."""

import json

from repro.check.campaign import (
    CampaignReport,
    CellSpec,
    grid_specs,
    quick_specs,
    replay_cell,
    run_campaign,
    run_cell,
    shrink_cell,
)

# A deliberately broken stack: fast-retransmit on the FIRST duplicate
# ACK (conformant value is 3).  With duplicated ACKs on the wire this
# retransmits prematurely, and the retx-justified checker must fire.
# Verified to produce violations on every seed 1-7; seed 1 gives 5.
SABOTAGED = CellSpec(
    topology="loopback",
    organization="userlib",
    seed=1,
    drop_rate=0.05,
    duplicate_rate=0.2,
    transfers=2,
    payload_bytes=16_384,
    deadline=60.0,
    dup_ack_threshold=1,
)


def test_quick_campaign_passes_clean():
    report = run_campaign(quick_specs(seed=1))
    assert report.cells
    assert report.ok, report.summary()
    for cell in report.cells:
        assert cell.completed_transfers == cell.total_transfers


def test_full_grid_shape_covers_both_topologies_and_orgs():
    specs = grid_specs(seed=1)
    combos = {(s.topology, s.organization) for s in specs}
    assert combos == {
        ("loopback", "userlib"),
        ("loopback", "ultrix"),
        ("dumbbell", "userlib"),
        ("dumbbell", "ultrix"),
    }
    # At least a 3x3 (drop x corrupt) grid per topology/organization.
    rates = {(s.drop_rate, s.corrupt_rate) for s in specs}
    assert len(rates) >= 9
    # Every cell gets its own seed so failures name a reproducible run.
    assert len({s.seed for s in specs}) == len(specs)


def test_grid_cc_axis_multiplies_and_preserves_seeds():
    base = grid_specs(seed=1)
    multi = grid_specs(seed=1, ccs=("reno", "cubic", "bbr"))
    assert len(multi) == 3 * len(base)
    # The reno block is identical to the pre-axis grid: every recorded
    # replay token (and the golden wire digests) stays valid.
    assert multi[: len(base)] == base
    assert {s.cc for s in multi} == {"reno", "cubic", "bbr"}
    assert len({s.seed for s in multi}) == len(multi)


def test_cli_cc_flag_parses_lists_and_all():
    from repro.check.__main__ import _parse_ccs

    assert _parse_ccs("all") == ("reno", "cubic", "bbr")
    assert _parse_ccs("cubic") == ("cubic",)
    assert _parse_ccs("reno, bbr") == ("reno", "bbr")


def test_cell_spec_round_trips_through_json():
    spec = SABOTAGED
    data = json.loads(json.dumps(spec.as_dict()))
    assert CellSpec.from_dict(data) == spec
    # Unknown keys (from a newer report format) are ignored.
    data["future_field"] = 42
    assert CellSpec.from_dict(data) == spec


def test_sabotaged_stack_is_caught():
    result = run_cell(SABOTAGED)
    assert not result.ok
    assert all(
        v.invariant == "retx-justified" for v in result.violations
    )


def test_seeded_violation_replays_deterministically(tmp_path):
    first = run_cell(SABOTAGED)
    assert first.violations
    report = CampaignReport(cells=[first])
    path = tmp_path / "report.json"
    report.save(path)

    loaded = json.loads(path.read_text())
    replayed = replay_cell(loaded, 0)
    assert [v.as_dict() for v in replayed.violations] == loaded["cells"][0][
        "violations"
    ]


def test_report_records_failing_cells(tmp_path):
    clean = run_cell(CellSpec(transfers=1, payload_bytes=4096))
    bad = run_cell(SABOTAGED)
    report = CampaignReport(cells=[clean, bad])
    assert not report.ok
    assert report.failing_cells == [bad]
    data = report.as_dict()
    assert data["total_cells"] == 2
    assert data["failing_cells"] == 1
    assert data["total_violations"] == len(bad.violations)
    assert "1 failing" in report.summary()


def test_shrink_finds_smaller_failing_config():
    shrunk = shrink_cell(SABOTAGED)
    assert shrunk.violations  # The minimal spec still fails...
    assert shrunk.minimal.payload_bytes <= SABOTAGED.payload_bytes
    rate_budget = (
        shrunk.minimal.drop_rate
        + shrunk.minimal.corrupt_rate
        + shrunk.minimal.duplicate_rate
    )
    assert rate_budget < (
        SABOTAGED.drop_rate
        + SABOTAGED.corrupt_rate
        + SABOTAGED.duplicate_rate
    )
    assert shrunk.steps  # ...and the search trail is recorded...
    assert shrunk.trace_excerpt  # ...with the wire trace at the failure.


def test_cli_run_quick_and_replay(tmp_path, capsys):
    from repro.check.__main__ import main

    out = tmp_path / "report.json"
    assert main(["run", "--quick", "--out", str(out)]) == 0
    assert out.exists()
    captured = capsys.readouterr().out
    assert "Conformance invariants" in captured

    assert main(["replay", str(out), "--cell", "0"]) == 0
