"""The cc-sanity checker must fire: synthetic traces and cc-event logs
for each sub-check — window-edge overrun on the wire, a missing RTO
collapse, a missing multiplicative decrease — plus the conformant
shapes (including a rate-based model's exemption) it must not flag."""

from repro.check.evidence import RunEvidence, WireSegment
from repro.check.invariants import check_cc_sanity
from repro.net.headers import TCP_ACK
from repro.protocols.tcp.cc import make_cc

IP_A = 0x0A000001
IP_B = 0x0A000002


def seg(time, direction, seq, ack=0, flags=TCP_ACK, data_len=0, window=16384):
    if direction == "a":
        src, sport, dst, dport = IP_A, 1000, IP_B, 2000
    else:
        src, sport, dst, dport = IP_B, 2000, IP_A, 1000
    return WireSegment(
        time=time, src_ip=src, dst_ip=dst, sport=sport, dport=dport,
        seq=seq, ack=ack, flags=flags, window=window, data_len=data_len,
    )


class CcStubMachine:
    """A machine exposing only the cc_events log the checker reads."""

    def __init__(self, cc_events):
        self.cc_events = cc_events


def cc_event(kind, *, cwnd_before, cwnd_after, ssthresh_after, flight,
             mss=1000, loss_based=True, time=1.0):
    return {
        "time": time, "kind": kind, "cwnd_before": cwnd_before,
        "cwnd_after": cwnd_after, "ssthresh_after": ssthresh_after,
        "flight": flight, "mss": mss, "loss_based": loss_based,
    }


# ----------------------------------------------------------------------
# (a) wire-level window-edge discipline
# ----------------------------------------------------------------------


def conversation(burst_end: int):
    """b grants a with ack=1000, window=8000 (edge 8000 past base 1000);
    a then sends 1000-byte segments up to ``burst_end``."""
    segs = [
        seg(0.0, "a", seq=1000, ack=500, data_len=1000),  # Base for a.
        seg(0.1, "b", seq=500, ack=2000, window=8000),  # Edge: rel 9000.
    ]
    t = 0.2
    start = 2000
    while start < burst_end:
        segs.append(seg(t, "a", seq=start, ack=500, data_len=1000))
        start += 1000
        t += 0.01
    return segs


def test_burst_within_window_edge_passes():
    # Edge is rel(2000)+8000 = 9000 past a's base of 1000, i.e. seq
    # 10000; with one MSS of slack anything through 11000 is fine.
    evidence = RunEvidence(segments=conversation(10_000))
    result = check_cc_sanity(evidence)
    assert result.ok
    assert result.checked > 0


def test_burst_beyond_window_edge_fires():
    evidence = RunEvidence(segments=conversation(14_000))
    result = check_cc_sanity(evidence)
    assert not result.ok
    assert any("beyond the advertised window" in v.detail
               for v in result.violations)


def test_window_update_raises_the_edge():
    # A later, larger grant legitimizes the deeper burst.
    segs = conversation(10_000)
    segs.append(seg(0.5, "b", seq=500, ack=6000, window=16384))
    segs.append(seg(0.6, "a", seq=12_000, ack=500, data_len=1000))
    result = check_cc_sanity(RunEvidence(segments=segs))
    assert result.ok


# ----------------------------------------------------------------------
# (b) machine-side window response
# ----------------------------------------------------------------------


def test_missing_rto_collapse_fires():
    machine = CcStubMachine([
        cc_event("timeout", cwnd_before=16000, cwnd_after=8000,
                 ssthresh_after=8000, flight=16000),
    ])
    result = check_cc_sanity(RunEvidence(machines=[("m", machine)]))
    assert not result.ok
    assert "collapse" in result.violations[0].detail


def test_rto_collapse_passes():
    machine = CcStubMachine([
        cc_event("timeout", cwnd_before=16000, cwnd_after=1000,
                 ssthresh_after=8000, flight=16000),
    ])
    assert check_cc_sanity(RunEvidence(machines=[("m", machine)])).ok


def test_missing_multiplicative_decrease_fires():
    # ssthresh stayed at the pre-loss window: no decrease at all.
    machine = CcStubMachine([
        cc_event("fast_retransmit", cwnd_before=16000, cwnd_after=16000,
                 ssthresh_after=16000, flight=16000),
    ])
    result = check_cc_sanity(RunEvidence(machines=[("m", machine)]))
    assert not result.ok
    assert "multiplicative decrease" in result.violations[0].detail


def test_reno_halving_passes():
    machine = CcStubMachine([
        cc_event("fast_retransmit", cwnd_before=16000, cwnd_after=11000,
                 ssthresh_after=8000, flight=16000),
    ])
    assert check_cc_sanity(RunEvidence(machines=[("m", machine)])).ok


def test_two_segment_floor_is_not_a_violation():
    # Tiny window: ssthresh lands on 2*mss even though that exceeds
    # MD_FACTOR * window — the standard floor, explicitly allowed.
    machine = CcStubMachine([
        cc_event("fast_retransmit", cwnd_before=1000, cwnd_after=1000,
                 ssthresh_after=2000, flight=1000),
    ])
    assert check_cc_sanity(RunEvidence(machines=[("m", machine)])).ok


def test_rate_based_model_exempt_from_decrease():
    # BBR keeps its window on a convicted loss; loss_based=False makes
    # that conformant.
    machine = CcStubMachine([
        cc_event("fast_retransmit", cwnd_before=16000, cwnd_after=16000,
                 ssthresh_after=65535, flight=16000, loss_based=False),
    ])
    assert check_cc_sanity(RunEvidence(machines=[("m", machine)])).ok


def test_rate_based_model_still_held_to_rto_collapse():
    machine = CcStubMachine([
        cc_event("timeout", cwnd_before=16000, cwnd_after=16000,
                 ssthresh_after=65535, flight=16000, loss_based=False),
    ])
    assert not check_cc_sanity(RunEvidence(machines=[("m", machine)])).ok


# ----------------------------------------------------------------------
# The live algorithms against the judge
# ----------------------------------------------------------------------


def test_live_algorithms_satisfy_the_judge():
    """Drive each real algorithm through a loss and hand the resulting
    numbers to the checker — the implementations must satisfy their own
    invariant."""
    for name in ("reno", "cubic", "bbr"):
        cc = make_cc(name, mss=1000)
        cc.cwnd = 16_000
        events = []
        before = cc.cwnd
        for _ in range(3):
            convicted = cc.on_duplicate_ack(16_000)
        assert convicted
        events.append(cc_event(
            "fast_retransmit", cwnd_before=before, cwnd_after=cc.cwnd,
            ssthresh_after=cc.ssthresh, flight=16_000,
            loss_based=cc.loss_based,
        ))
        before = cc.cwnd
        cc.on_timeout(16_000)
        events.append(cc_event(
            "timeout", cwnd_before=before, cwnd_after=cc.cwnd,
            ssthresh_after=cc.ssthresh, flight=16_000,
            loss_based=cc.loss_based,
        ))
        result = check_cc_sanity(
            RunEvidence(machines=[(name, CcStubMachine(events))])
        )
        assert result.ok, f"{name}: {result.violations}"
