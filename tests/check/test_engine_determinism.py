"""The conformance checker must be bit-for-bit deterministic under the
batched bucket-heap engine.

The chaos campaign's whole value is seeded replay: a violation report
names a (spec, seed) cell and anyone can re-run it.  Same-timestamp
event batching changed how the engine drains the schedule, so these
tests pin that two independent runs of a cell — clean or sabotaged —
produce identical JSON, and that replay-from-report still matches.
"""

import json

from repro.check.campaign import (
    CampaignReport,
    CellSpec,
    quick_specs,
    replay_cell,
    run_campaign,
    run_cell,
)

# Same deliberately broken stack the campaign tests use: premature fast
# retransmit on the first duplicate ACK, guaranteed violations on seed 1.
SABOTAGED = CellSpec(
    topology="loopback",
    organization="userlib",
    seed=1,
    drop_rate=0.05,
    duplicate_rate=0.2,
    transfers=2,
    payload_bytes=16_384,
    deadline=60.0,
    dup_ack_threshold=1,
)


def test_quick_campaign_runs_are_bit_identical():
    first = run_campaign(quick_specs(seed=7))
    second = run_campaign(quick_specs(seed=7))
    assert json.dumps(first.as_dict(), sort_keys=True) == json.dumps(
        second.as_dict(), sort_keys=True
    )


def test_sabotaged_cell_violations_are_bit_identical():
    first = run_cell(SABOTAGED)
    second = run_cell(SABOTAGED)
    assert first.violations  # The premature-retransmit bug fires...
    assert json.dumps(first.as_dict(), sort_keys=True) == json.dumps(
        second.as_dict(), sort_keys=True
    )


def test_replay_from_report_matches_under_batched_engine():
    result = run_cell(SABOTAGED)
    report = json.loads(json.dumps(CampaignReport(cells=[result]).as_dict()))
    replayed = replay_cell(report, 0)
    assert replayed.as_dict() == report["cells"][0]
