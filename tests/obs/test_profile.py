"""Sim-time profiler unit tests: attribution, rollup, rendering."""

import pytest

from repro.obs.profile import SimProfiler


def make_profiler():
    p = SimProfiler()
    p.charge("tcp.input", 2e-3)
    p.charge("tcp.input", 1e-3)
    p.charge("tcp.output", 3e-3)
    p.charge("demux.classify", 4e-3, wall_seconds=0.5e-3)
    return p


def test_report_sorted_by_self_time_with_shares():
    rows = make_profiler().report()
    assert [r.site for r in rows] == ["demux.classify", "tcp.input", "tcp.output"]
    assert rows[0].sim_share == pytest.approx(0.4)
    assert rows[1].calls == 2
    assert sum(r.sim_share for r in rows) == pytest.approx(1.0)


def test_cumulative_rolls_up_by_dotted_prefix():
    rows = {r.site: r for r in make_profiler().report()}
    # tcp.* = input (3 ms) + output (3 ms)
    assert rows["tcp.input"].cumulative_seconds == pytest.approx(6e-3)
    assert rows["tcp.output"].cumulative_seconds == pytest.approx(6e-3)
    assert rows["demux.classify"].cumulative_seconds == pytest.approx(4e-3)


def test_wall_time_is_tracked_separately():
    rows = {r.site: r for r in make_profiler().report()}
    assert rows["demux.classify"].wall_seconds == pytest.approx(0.5e-3)
    assert rows["tcp.input"].wall_seconds == 0.0


def test_top_limits_rows():
    assert len(make_profiler().report(top=2)) == 2


def test_empty_profiler():
    p = SimProfiler()
    assert p.report() == []
    assert p.total_sim_seconds() == 0.0
    assert "no charges" in p.render()


def test_zero_total_yields_zero_shares():
    p = SimProfiler()
    p.charge("site.a", 0.0, wall_seconds=1e-3)
    (row,) = p.report()
    assert row.sim_share == 0.0


def test_render_and_as_dict():
    p = make_profiler()
    text = p.render(top=3)
    assert "demux.classify" in text and "share" in text
    d = p.report()[0].as_dict()
    assert d["site"] == "demux.classify"
    assert d["sim_us"] == pytest.approx(4000.0)
    assert d["wall_ms"] == pytest.approx(0.5)
