"""The ISSUE's acceptance scenario: one seeded dumbbell session yields
the retransmit timeline, a profiler report led by protocol callbacks,
populated histograms, netstat JSON, and exported counter time-series."""

import json

import pytest

from repro import netstat, obs
from repro.metrics import measure_fabric_transfers
from repro.net.faults import FaultInjector
from repro.obs.recorder import FlightRecorder
from repro.testbed import FabricTestbed


@pytest.fixture(autouse=True)
def _obs_clean():
    """Override the per-test disable from conftest: these tests share
    one module-scoped instrumented run (torn down by the fixture)."""
    yield


@pytest.fixture(scope="module")
def session_artifacts(tmp_path_factory):
    """One instrumented faulted-dumbbell run shared by every assertion."""
    obs.disable()
    session = obs.enable(span_capacity=65536)
    bed = FabricTestbed(
        kind="dumbbell",
        organization="userlib",
        pairs=2,
        faults=FaultInjector(drop_rate=0.02, seed=11),
    )
    flight = FlightRecorder(bed.sim, interval=0.02)
    queue = bed.bottleneck.queue
    flight.watch("trunk.queue", lambda: {"depth": queue.depth_bytes})
    # Link.stats is a merged *copy* per access — watch via a callable so
    # each tick sees fresh numbers.
    flight.watch("trunk.faults", lambda: bed.faulted_link.stats)
    flight.start()
    result = measure_fabric_transfers(bed, bytes_per_flow=80_000)
    flight.stop()
    outdir = tmp_path_factory.mktemp("obs")
    flight.export_json(outdir / "series.json")
    yield {
        "session": session,
        "bed": bed,
        "result": result,
        "flight": flight,
        "series_path": outdir / "series.json",
    }
    obs.disable()


def test_transfer_succeeded_with_retransmits(session_artifacts):
    result = session_artifacts["result"]
    assert all(f.bytes_moved == 80_000 for f in result.flows)
    assert result.total_retransmits > 0, "2% trunk drop must force retransmits"


def test_retransmitted_segment_timeline(session_artifacts):
    rec = session_artifacts["session"].spans
    retrans = rec.traces_matching("retransmit")
    assert retrans
    # At least one retransmitted segment made it end-to-end with every
    # hop attributed: wire, bottleneck queue wait, demux, delivery.
    complete = None
    for tid in retrans:
        stages = [e.stage for e in rec.timeline(tid)]
        if "tcp.input" in stages:
            complete = stages
            break
    assert complete is not None
    for expected in ("encode", "nic.tx", "link.tx", "queue.enq",
                     "demux", "deliver", "tcp.input"):
        assert expected in complete, f"missing {expected} in {complete}"
    # Queue *wait* is recorded whenever a frame could not be handed
    # straight to an idle port — with two flows sharing the trunk that
    # must have happened somewhere this run.
    assert any(e.stage == "queue.deq" for e in rec.events)


def test_profiler_top_sites_are_protocol_callbacks(session_artifacts):
    rows = session_artifacts["session"].profiler.report(top=3)
    assert len(rows) == 3
    protocol_sites = {
        "tcp.output", "tcp.input", "netio.deliver", "netio.send",
        "lib.wakeup", "demux.classify", "ip.input",
    }
    assert all(r.site in protocol_sites for r in rows)
    assert all(r.sim_share > 0.05 for r in rows)
    assert sum(r.sim_share for r in rows) > 0.5


def test_histograms_populated_with_sane_quantiles(session_artifacts):
    reg = session_artifacts["session"].histograms
    for name in ("tcp.rtt", "delivery.latency", "queue.occupancy",
                 "flow.completion"):
        hist = reg.get(name)
        assert hist is not None and hist.count > 0, f"{name} never recorded"
    rtt = reg.get("tcp.rtt")
    assert 0 < rtt.percentile(50) <= rtt.percentile(99) <= rtt.max
    occupancy = reg.get("queue.occupancy")
    assert occupancy.max <= 1.0  # a fraction of queue capacity


def test_netstat_json_covers_every_table(session_artifacts):
    doc = netstat.as_json(session_artifacts["bed"])
    text = json.dumps(doc)  # must be JSON-serializable
    assert set(doc) >= {
        "connections", "channels", "demux", "copy", "links",
        "switch_ports", "engine", "spans", "profile", "histograms",
    }
    assert doc["switch_ports"], "dumbbell has switch ports"
    assert doc["spans"]["traces"], "span section populated"
    assert doc["profile"], "profile section populated"
    assert "tcp.rtt" in doc["histograms"]
    assert "retransmit" in text


def test_time_series_exported(session_artifacts):
    data = json.loads(session_artifacts["series_path"].read_text())
    assert set(data) == {"trunk.queue", "trunk.faults"}
    queue = data["trunk.queue"]
    assert len(queue["times"]) > 5
    assert max(queue["series"]["depth"]) > 0, "queue never filled?"
    assert max(data["trunk.faults"]["series"]["dropped"]) > 0


def test_span_tables_render(session_artifacts):
    entries = netstat.span_table(limit=5)
    assert 0 < len(entries) <= 5
    assert all(entry.hops >= 1 for entry in entries)
    assert "Packet spans" in netstat.render_spans(limit=5)
    assert "site" in netstat.render_profile(top=5)
    assert "tcp.rtt" in netstat.render_hist()
