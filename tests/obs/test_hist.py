"""Log-bucketed histogram edge cases: empty, single-sample, overflow,
merging, serialisation."""

import json
import math
import random

import pytest

from repro.obs.hist import HistogramRegistry, LogHistogram


def test_empty_histogram_reports_zeros():
    h = LogHistogram()
    assert h.count == 0
    assert h.mean == 0.0
    assert h.percentile(50) == 0.0
    assert h.percentile(99.9) == 0.0
    s = h.summary()
    assert s["count"] == 0
    assert s["min"] == 0.0 and s["max"] == 0.0


def test_single_sample_is_exact_at_every_quantile():
    h = LogHistogram(min_value=1e-6, max_value=10.0)
    h.record(0.0042)
    for p in (0, 50, 90, 99, 99.9, 100):
        assert h.percentile(p) == pytest.approx(0.0042)
    assert h.mean == pytest.approx(0.0042)
    assert h.min == h.max == 0.0042


def test_quantile_relative_error_is_bounded_by_bucket_width():
    h = LogHistogram(min_value=1e-6, max_value=10.0, buckets_per_decade=20)
    rng = random.Random(42)
    samples = sorted(rng.uniform(1e-4, 1.0) for _ in range(5000))
    for v in samples:
        h.record(v)
    # One bucket spans a factor of 10**(1/20) ~= 1.122; the geometric
    # midpoint is within ~6% of any sample in the bucket.
    for p in (50, 90, 99):
        exact = samples[math.ceil(len(samples) * p / 100.0) - 1]
        assert h.percentile(p) == pytest.approx(exact, rel=0.13)


def test_overflow_underflow_and_zero_samples_are_tracked():
    h = LogHistogram(min_value=1e-3, max_value=1.0)
    h.record(0.0)        # zero bucket
    h.record(-1.0)       # negatives count as zeros
    h.record(1e-5)       # below min_value -> underflow
    h.record(50.0)       # above max_value -> overflow
    h.record(0.1)        # in range
    assert h.zeros == 2
    assert h.underflow == 1
    assert h.overflow == 1
    assert h.count == 5
    # Extremes stay exact even though they fell outside the range.
    assert h.max == 50.0
    assert h.min == -1.0
    assert h.percentile(100) == 50.0


def test_overflow_dominated_histogram_reports_observed_max():
    h = LogHistogram(min_value=1e-3, max_value=1.0)
    for _ in range(100):
        h.record(7.0)
    assert h.overflow == 100
    assert h.percentile(50) == 7.0  # clamped to observed extremes


def test_merge_of_disjoint_ranges():
    a = LogHistogram(min_value=1e-6, max_value=10.0)
    b = LogHistogram(min_value=1e-6, max_value=10.0)
    for _ in range(100):
        a.record(1e-4)
    for _ in range(100):
        b.record(1e-1)
    a.merge(b)
    assert a.count == 200
    assert a.min == pytest.approx(1e-4)
    assert a.max == pytest.approx(1e-1)
    # Median sits at the boundary between the two populations.
    assert a.percentile(25) == pytest.approx(1e-4, rel=0.13)
    assert a.percentile(75) == pytest.approx(1e-1, rel=0.13)
    # b is unchanged by the merge.
    assert b.count == 100


def test_merge_rejects_mismatched_configuration():
    a = LogHistogram(min_value=1e-6, max_value=10.0)
    b = LogHistogram(min_value=1e-6, max_value=100.0)
    with pytest.raises(ValueError, match="different configurations"):
        a.merge(b)
    c = LogHistogram(min_value=1e-6, max_value=10.0, buckets_per_decade=30)
    with pytest.raises(ValueError):
        a.merge(c)


def test_merge_with_empty_histogram_is_identity():
    a = LogHistogram()
    a.record(0.5)
    a.merge(LogHistogram())
    assert a.count == 1
    assert a.percentile(50) == 0.5


def test_serialization_round_trip_preserves_quantiles():
    h = LogHistogram(min_value=1e-6, max_value=10.0)
    rng = random.Random(7)
    for _ in range(1000):
        h.record(rng.uniform(1e-3, 1.0))
    h.record(0.0)
    h.record(100.0)
    data = json.loads(json.dumps(h.to_dict()))  # must be JSON-safe
    back = LogHistogram.from_dict(data)
    assert back.count == h.count
    assert back.summary() == h.summary()
    # And the round-tripped histogram still merges with the original.
    back.merge(h)
    assert back.count == 2 * h.count


def test_fixed_memory_regardless_of_sample_count():
    h = LogHistogram(min_value=1e-6, max_value=10.0)
    buckets = len(h.counts)
    for i in range(100_000):
        h.record((i % 997 + 1) * 1e-5)
    assert len(h.counts) == buckets


def test_registry_creates_on_first_record_and_honours_config():
    reg = HistogramRegistry()
    reg.configure("queue", min_value=1e-4, max_value=2.0, buckets_per_decade=30)
    reg.record("queue", 0.5)
    reg.record("rtt", 0.01)
    assert reg.names() == ["queue", "rtt"]
    assert reg.get("queue").buckets_per_decade == 30
    assert reg.get("rtt").buckets_per_decade == 20  # default
    summaries = reg.summaries()
    assert summaries["queue"]["count"] == 1
    assert json.dumps(reg.to_dict())  # JSON-safe
