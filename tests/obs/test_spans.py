"""Span recorder tests: trace-id plumbing and packet lifecycles under
drop / retransmit / duplicate fault injection."""

from repro import obs
from repro.net.buf import PacketBuffer, as_wire_bytes, prepend
from repro.net.faults import FaultInjector
from repro.obs.spans import SpanRecorder
from repro.testbed import IP_B, Testbed


def transfer(testbed, nbytes=4000, port=9200):
    def server():
        listener = yield from testbed.service_b.listen(port)
        conn = yield from listener.accept()
        yield from conn.recv_exactly(nbytes)

    def client():
        conn = yield from testbed.service_a.connect(IP_B, port)
        yield from conn.send(b"x" * nbytes)
        yield from conn.close()

    # Wait on the *server*: the client's send() returns once the data is
    # buffered, long before the last segment crosses the wire.
    proc = testbed.spawn(server(), name="server")
    testbed.spawn(client(), name="client")
    testbed.run(until=proc)


# -- unit-level ------------------------------------------------------


def test_mint_record_timeline_order():
    rec = SpanRecorder()
    tid = rec.mint(1.0, "seq=1")
    rec.record(tid, "encode", 1.0, "app-a")
    rec.record(tid, "deliver", 1.5, "netio-b", cost=1e-6)
    other = rec.mint(1.2)
    rec.record(other, "encode", 1.2, "app-b")
    events = rec.timeline(tid)
    assert [e.stage for e in events] == ["encode", "deliver"]
    assert rec.traces() == [tid, other]
    assert rec.birth(tid) == 1.0
    text = rec.render_timeline(tid)
    assert "encode" in text and "@netio-b" in text


def test_trace_of_resolves_every_carrier_shape():
    rec = SpanRecorder()
    tid = rec.mint(0.0)
    buf = PacketBuffer([b"hdr", b"payload"])
    buf.trace_id = tid
    assert rec.trace_of(buf) == tid
    # Encapsulation: prepend() wraps the traced buffer, id inherited.
    outer = prepend(b"link", buf)
    assert rec.trace_of(outer) == tid
    # Fused wire bytes resolve through the identity map...
    wire = as_wire_bytes(outer)
    rec.bind_wire(wire, tid)
    assert rec.trace_of(wire) == tid
    # ...and a memoryview of the wire resolves through its exporter.
    assert rec.trace_of(memoryview(wire)) == tid
    assert rec.trace_of(b"untraced") is None


def test_event_ring_is_bounded():
    rec = SpanRecorder(capacity=64)
    first = rec.mint(0.0)
    rec.record(first, "encode", 0.0, "a")
    for i in range(200):
        tid = rec.mint(float(i))
        rec.record(tid, "encode", float(i), "a")
    assert len(rec.events) == 64
    assert rec.timeline(first) == []  # evicted
    assert rec.recorded == 201
    assert "no events" in rec.render_timeline(first)


def test_wire_map_is_bounded():
    rec = SpanRecorder(capacity=64, wire_capacity=8)
    frames = [bytes([i]) * 8 for i in range(20)]  # keep objects alive
    for i, frame in enumerate(frames):
        rec.bind_wire(frame, i + 1)
    assert len(rec._wire) == 8
    assert rec.trace_of(frames[0]) is None
    assert rec.trace_of(frames[-1]) == 20


# -- lifecycle under faults ------------------------------------------


def test_clean_transfer_spans_cover_every_hop():
    session = obs.enable(profile_on=False, hist_on=False)
    testbed = Testbed(network="ethernet", organization="userlib")
    transfer(testbed)
    rec = session.spans
    data_traces = [
        t for t in rec.traces_matching("len=1460")
    ] or rec.traces_matching("len=")
    assert data_traces
    stages = [e.stage for e in rec.timeline(data_traces[0])]
    for expected in (
        "encode", "netio.send", "nic.tx", "link.tx",
        "nic.rx", "demux", "deliver", "tcp.input",
    ):
        assert expected in stages, f"missing {expected} in {stages}"
    # Hops are recorded in time order ending at the receiving TCP.
    assert stages[0] == "encode" and stages[-1] == "tcp.input"


def test_dropped_frames_end_at_link_drop_and_retransmit_is_flagged():
    session = obs.enable(profile_on=False, hist_on=False)
    testbed = Testbed(
        network="ethernet",
        organization="userlib",
        faults=FaultInjector(drop_rate=0.08, seed=3),
    )
    transfer(testbed, nbytes=30_000)
    rec = session.spans
    drops = [e for e in rec.events if e.stage == "link.drop"]
    assert drops, "fault injector dropped nothing at 8%"
    assert all(e.detail == "fault" for e in drops)
    # A dropped frame's timeline ends at the wire: no receive-side hops.
    dropped_tid = drops[0].trace_id
    stages = [e.stage for e in rec.timeline(dropped_tid)]
    assert "link.drop" in stages
    assert "tcp.input" not in stages[stages.index("link.drop"):]
    # The loss forced retransmissions, and they are flagged at birth.
    retrans = rec.traces_matching("retransmit")
    assert retrans, "no retransmission traces despite drops"
    first = rec.timeline(retrans[0])[0]
    assert first.stage == "encode" and "retransmit" in first.detail


def test_duplicated_frames_are_annotated_and_delivered_twice():
    session = obs.enable(profile_on=False, hist_on=False)
    testbed = Testbed(
        network="ethernet",
        organization="userlib",
        faults=FaultInjector(duplicate_rate=1.0, seed=1),
    )
    transfer(testbed, nbytes=4000)
    rec = session.spans
    dup_events = [e for e in rec.events if e.stage == "link.tx" and "dup" in e.detail]
    assert dup_events, "duplicate_rate=1.0 produced no dup annotations"
    # Both copies of a duplicated data frame reach the NIC: its trace
    # shows at least two nic.rx hops.
    tid = dup_events[0].trace_id
    nic_rx = [e for e in rec.timeline(tid) if e.stage == "nic.rx"]
    assert len(nic_rx) >= 2


def test_disabled_plane_records_nothing():
    testbed = Testbed(network="ethernet", organization="userlib")
    transfer(testbed)
    from repro.obs import spans as spans_mod

    assert spans_mod.RECORDER is None  # and the transfer still worked
