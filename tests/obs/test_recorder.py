"""Flight-recorder tests: sim-timer sampling, ring bounds, exports."""

import csv
import json

from repro.counters import Counters
from repro.obs.recorder import FlightRecorder
from repro.sim import Simulator


def test_periodic_sampling_of_counters_and_callables():
    sim = Simulator()
    counters = Counters()
    rec = FlightRecorder(sim, interval=0.01)
    rec.watch("counters", counters)
    rec.watch("derived", lambda: {"t": sim.now})

    def workload():
        for i in range(10):
            counters["ticks"] += 1
            yield sim.timeout(0.01)
        rec.stop()

    rec.start()
    sim.process(workload(), name="workload")
    sim.run_all()
    series = rec.series("counters")
    assert len(series) >= 9
    times = [t for t, _ in series]
    assert times == sorted(times)
    # Samples reflect the counter's value *at sample time*.
    assert series[-1][1]["ticks"] > series[0][1].get("ticks", 0)
    assert rec.series("derived")[-1][1]["t"] >= 0.09


def test_ring_depth_bounds_memory():
    sim = Simulator()
    rec = FlightRecorder(sim, interval=0.001, depth=16)
    rec.watch("w", lambda: {"n": rec.samples_taken})

    def workload():
        yield sim.timeout(1.0)
        rec.stop()

    rec.start()
    sim.process(workload(), name="workload")
    sim.run_all()
    assert rec.samples_taken > 16
    samples = rec.series("w")
    assert len(samples) == 16
    # The ring keeps the newest samples (counter is incremented before
    # sources run, so the last sample sees the final value).
    assert samples[-1][1]["n"] == rec.samples_taken


def test_start_is_idempotent_and_stop_ends_process():
    sim = Simulator()
    rec = FlightRecorder(sim, interval=0.01)
    rec.watch("w", lambda: {})
    rec.start()
    rec.start()  # no second process
    rec.stop()
    sim.run_all()
    # One sample per live process tick before stop took effect.
    assert rec.samples_taken <= 2


def test_json_and_csv_export(tmp_path):
    sim = Simulator()
    counters = Counters()
    rec = FlightRecorder(sim, interval=0.01)
    rec.watch("net", counters)

    def workload():
        counters["rx"] += 5
        yield sim.timeout(0.05)
        counters["tx"] += 3  # second key appears mid-run
        yield sim.timeout(0.05)
        rec.stop()

    rec.start()
    sim.process(workload(), name="workload")
    sim.run_all()

    json_path = tmp_path / "series.json"
    rec.export_json(json_path)
    data = json.loads(json_path.read_text())
    assert set(data) == {"net"}
    assert len(data["net"]["times"]) == len(data["net"]["series"]["rx"])
    # Keys absent at a sample are padded with 0 (union-of-keys export).
    assert data["net"]["series"]["tx"][0] == 0
    assert data["net"]["series"]["tx"][-1] == 3

    csv_path = tmp_path / "series.csv"
    rec.export_csv(csv_path)
    with open(csv_path, newline="") as fh:
        rows = list(csv.reader(fh))
    assert rows[0][0] == "time"
    assert "net.rx" in rows[0]
    assert len(rows) == len(data["net"]["times"]) + 1


def test_counters_snapshot_never_materializes_zero_keys():
    """Sampling a Counters must not create keys as a side effect, and
    zero-valued stores must not linger (the lazy-read fix)."""
    counters = Counters()
    _ = counters["never_written"]  # defaultdict-style read
    assert "never_written" not in counters.snapshot()
    counters["x"] += 1
    counters["x"] -= 1  # back to zero -> key evicted
    counters["y"] += 2
    assert counters.snapshot() == {"y": 2}
    assert "x" not in dict(counters)
    # update() routes through the same zero-skip logic.
    counters.update({"z": 0, "w": 4})
    assert counters.snapshot() == {"y": 2, "w": 4}
