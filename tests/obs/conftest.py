"""The observability plane is module-global state; make sure no test
leaks an enabled plane into the rest of the suite."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _obs_clean():
    obs.disable()
    yield
    obs.disable()
