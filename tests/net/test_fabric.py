"""Unit tests for the switched fabric: links, queues, switches, routes."""

import pytest

from repro.net.fabric import (
    RedQueue,
    RouteTable,
    Switch,
    TailDropQueue,
    prefix_mask,
    star,
)
from repro.net.faults import FaultInjector
from repro.net.headers import PROTO_ICMP, PROTO_UDP, str_to_ip
from repro.net.link import DuplexLink, EthernetLink
from repro.protocols.icmp import encode_echo
from repro.sim import Simulator


class FakeNic:
    """Minimal link endpoint for link-level tests."""

    def __init__(self, link, name):
        self.name = name
        self.received = []
        link.attach(self)

    def accepts(self, dst):
        return True

    def wire_deliver(self, frame):
        self.received.append(frame)


# ----------------------------------------------------------------------
# Link satellite fixes: attach guard, fault accounting
# ----------------------------------------------------------------------


def test_attach_rejects_double_attach():
    sim = Simulator()
    link = EthernetLink(sim)
    nic = FakeNic(link, "a")
    with pytest.raises(ValueError):
        link.attach(nic)


def test_link_counts_injected_faults():
    sim = Simulator()
    faults = FaultInjector(drop_rate=1.0, seed=1)
    link = DuplexLink(sim, faults=faults)
    sender = FakeNic(link, "tx")
    receiver = FakeNic(link, "rx")

    def send():
        yield from link.transmit(sender, b"x" * 100)

    sim.process(send())
    sim.run(until=0.1)
    assert receiver.received == []
    # The plan's outcome is visible on the link itself, not only
    # inside the injector.
    assert link.stats["dropped"] == 1
    assert link.stats["corrupted"] == 0

    faults2 = FaultInjector(corrupt_rate=1.0, duplicate_rate=1.0, seed=2)
    link2 = DuplexLink(sim, faults=faults2)
    sender2 = FakeNic(link2, "tx2")
    receiver2 = FakeNic(link2, "rx2")

    def send2():
        yield from link2.transmit(sender2, b"y" * 100)

    sim.process(send2())
    sim.run(until=0.2)
    assert link2.stats["corrupted"] == 1
    assert link2.stats["duplicated"] == 1
    assert len(receiver2.received) == 2  # Original + duplicate.


# ----------------------------------------------------------------------
# Egress queues
# ----------------------------------------------------------------------


def test_taildrop_queue_drops_at_capacity():
    sim = Simulator()
    queue = TailDropQueue(sim, capacity_bytes=1000)
    frame = b"z" * 400
    assert queue.offer(frame)
    assert queue.offer(frame)
    assert not queue.offer(frame)  # 1200 > 1000: tail drop.
    assert queue.stats["dropped"] == 1
    assert queue.stats["dropped_bytes"] == 400
    assert queue.depth_bytes == 800
    assert queue.peak_bytes == 800
    # Draining frees capacity again.
    got = queue.get()
    assert got.triggered and got._value == frame
    assert queue.offer(frame)
    assert 0.0 < queue.mean_occupancy() < 1.0


def test_queue_hands_frame_to_waiting_getter():
    sim = Simulator()
    queue = TailDropQueue(sim, capacity_bytes=1000)
    event = queue.get()  # Transmitter waiting before any arrival.
    assert not event.triggered
    queue.offer(b"hello")
    assert event.triggered and event._value == b"hello"
    assert queue.depth_bytes == 0  # Never occupied the queue.


def test_red_queue_early_drops_between_thresholds():
    sim = Simulator()
    queue = RedQueue(
        sim, capacity_bytes=10_000, min_th=2_000, max_th=8_000, seed=3
    )
    frame = b"r" * 500
    outcomes = [queue.offer(frame) for _ in range(40)]
    assert not all(outcomes)  # Some arrival was shed early.
    # ``early_dropped`` only counts probabilistic sheds taken while
    # physical space remained — proof RED acted before the queue filled.
    assert queue.stats["early_dropped"] > 0
    assert queue.discipline == "red"


def test_red_queue_still_taildrops_when_full():
    sim = Simulator()
    # max_p=0 disables probabilistic drops below max_th.
    queue = RedQueue(
        sim, capacity_bytes=2_000, min_th=500, max_th=2_000, max_p=0.0, seed=0
    )
    frame = b"f" * 400
    results = [queue.offer(frame) for _ in range(6)]
    assert results[:5] == [True] * 5
    assert results[5] is False
    assert queue.stats["dropped"] >= 1


# ----------------------------------------------------------------------
# Route tables
# ----------------------------------------------------------------------


def test_route_table_longest_prefix_match():
    table = RouteTable()
    table.add_default(str_to_ip("10.0.0.254"))
    table.add(str_to_ip("10.1.0.0"), 16, str_to_ip("10.0.0.1"))
    table.add(str_to_ip("10.1.2.0"), 24, str_to_ip("10.0.0.2"))

    assert table.lookup(str_to_ip("10.1.2.9")).gateway == str_to_ip("10.0.0.2")
    assert table.lookup(str_to_ip("10.1.9.9")).gateway == str_to_ip("10.0.0.1")
    assert table.lookup(str_to_ip("8.8.8.8")).gateway == str_to_ip("10.0.0.254")


def test_route_table_next_hop_gateway_vs_onlink():
    table = RouteTable()
    table.add(str_to_ip("10.0.0.0"), 24)  # Connected: no gateway.
    table.add_default(str_to_ip("10.0.0.254"))
    on_link = str_to_ip("10.0.0.7")
    far = str_to_ip("192.168.1.1")
    assert table.next_hop(on_link) == on_link
    assert table.next_hop(far) == str_to_ip("10.0.0.254")


def test_prefix_mask_bounds():
    assert prefix_mask(0) == 0
    assert prefix_mask(24) == 0xFFFFFF00
    assert prefix_mask(32) == 0xFFFFFFFF
    with pytest.raises(ValueError):
        prefix_mask(33)


# ----------------------------------------------------------------------
# Switch behaviour
# ----------------------------------------------------------------------


def test_switch_floods_unknown_then_unicasts_learned():
    sim = Simulator()
    topo = star(sim, 3)
    h0, h1, h2 = topo.hosts
    switch = topo.switches[0]

    def pinger():
        yield from h0.ip_send(h1.ip, PROTO_ICMP, encode_echo(True, 1, 1))

    sim.process(pinger())
    sim.run(until=0.5)

    # The reply made it back, so the whole exchange worked.
    assert h0.ip_stack.stats["received"] == 1
    assert h1.ip_stack.stats["received"] == 1
    # Only the broadcast ARP request was flooded; every subsequent
    # frame went out exactly one learned port.
    assert switch.stats["flooded"] == 1
    assert switch.stats["forwarded"] == 3  # ARP reply, echo, echo reply.
    # The bystander saw the flood and nothing else.
    assert h2.nic.stats["rx_frames"] == 1
    table = switch.mac_table
    assert len(table) == 2
    assert set(table.values()) == {0, 1}


def test_switch_filters_same_port_destination():
    """A frame whose destination was learned on the ingress port is
    dropped, not echoed back out."""
    sim = Simulator()
    switch = Switch(sim, "sw")
    shared = DuplexLink(sim)  # Both fake stations reach port 0.
    port = switch.add_port(shared)
    switch._learn(b"\x02" + b"\x00" * 5, port)
    switch._learn(b"\x04" + b"\x00" * 5, port)
    from repro.net.headers import ETHERTYPE_IP, EthernetHeader

    frame = EthernetHeader(
        dst=b"\x02" + b"\x00" * 5, src=b"\x04" + b"\x00" * 5,
        ethertype=ETHERTYPE_IP,
    ).pack() + b"p"
    switch._ingress(port, frame)
    assert switch.stats["filtered"] == 1
    assert len(port.queue) == 0


def test_saturated_port_tail_drops():
    """Two senders blasting one receiver oversubscribe its edge port
    2:1; the drops land there and nowhere else."""
    sim = Simulator()
    topo = star(sim, 3)
    h0, h1, h2 = topo.hosts
    switch = topo.switches[0]
    payload = b"u" * 1400

    def blast(src):
        mac = yield from src.resolve_link(h2.ip)
        for _ in range(100):
            yield from src.ip_send(h2.ip, PROTO_UDP, payload, link_dst=mac)

    sim.process(blast(h0))
    sim.process(blast(h1))
    sim.run(until=2.0)

    victim_port = switch.ports[2]  # h2's edge.
    assert victim_port.drops > 0
    for port in switch.ports:
        if port is not victim_port:
            assert port.drops == 0
    # The queue saw deep occupancy while saturated.
    assert victim_port.queue.peak_bytes > victim_port.queue.capacity // 2


def test_switch_ignores_malformed_frames():
    sim = Simulator()
    switch = Switch(sim, "sw")
    port = switch.add_port(DuplexLink(sim))
    switch._ingress(port, b"short")
    assert switch.stats["malformed"] == 1
    assert switch.stats["frames"] == 0
