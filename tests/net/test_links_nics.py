"""Tests for simulated links, fault injection, and the two NICs."""

import pytest

from repro.costs import DECSTATION_5000_200, FREE
from repro.mach import Kernel
from repro.net import (
    An1Header,
    An1Link,
    An1Nic,
    BROADCAST_MAC,
    ETHERTYPE_IP,
    EthernetHeader,
    EthernetLink,
    FaultInjector,
    PmaddNic,
    str_to_mac,
)
from repro.sim import Simulator

MAC_A = str_to_mac("02:00:00:00:00:01")
MAC_B = str_to_mac("02:00:00:00:00:02")
MAC_C = str_to_mac("02:00:00:00:00:03")


def eth_frame(dst, src, payload=b"x" * 100):
    return EthernetHeader(dst, src, ETHERTYPE_IP).pack() + payload


def an1_frame(dst, src, payload=b"y" * 100, bqi=0):
    return An1Header(dst, src, ETHERTYPE_IP, bqi).pack() + payload


def make_eth_world(costs=FREE, n_hosts=2, faults=None):
    sim = Simulator()
    link = EthernetLink(sim, faults=faults)
    kernels, nics = [], []
    macs = [MAC_A, MAC_B, MAC_C][:n_hosts]
    for i, mac in enumerate(macs):
        kernel = Kernel(sim, costs, name=f"h{i}")
        nic = PmaddNic(kernel, link, mac, name=f"nic{i}")
        kernels.append(kernel)
        nics.append(nic)
    return sim, link, kernels, nics


def collect_handler(received):
    def handler(frame, context):
        received.append((frame, context))
        yield from ()

    return handler


# ----------------------------------------------------------------------
# Fault injector
# ----------------------------------------------------------------------


def test_fault_injector_perfect_by_default():
    injector = FaultInjector()
    plan = injector.plan(b"data")
    assert not plan.dropped
    assert plan.deliveries == ((0.0, b"data"),)


def test_fault_injector_always_drop():
    injector = FaultInjector(drop_rate=1.0)
    plan = injector.plan(b"data")
    assert plan.dropped
    assert plan.deliveries == ()
    assert injector.stats["dropped"] == 1


def test_fault_injector_corrupts_one_bit():
    injector = FaultInjector(corrupt_rate=1.0, seed=3)
    plan = injector.plan(b"\x00" * 16)
    assert plan.corrupted
    (delay, data), = plan.deliveries
    diff = [i for i in range(16) if data[i] != 0]
    assert len(diff) == 1
    assert bin(data[diff[0]]).count("1") == 1


def test_fault_injector_duplicates():
    injector = FaultInjector(duplicate_rate=1.0)
    plan = injector.plan(b"twice")
    assert len(plan.deliveries) == 2


def test_fault_injector_deterministic_with_seed():
    a = FaultInjector(drop_rate=0.5, seed=42)
    b = FaultInjector(drop_rate=0.5, seed=42)
    decisions_a = [a.plan(b"x").dropped for _ in range(100)]
    decisions_b = [b.plan(b"x").dropped for _ in range(100)]
    assert decisions_a == decisions_b
    assert any(decisions_a) and not all(decisions_a)


def test_fault_injector_validation():
    with pytest.raises(ValueError):
        FaultInjector(drop_rate=1.5)
    with pytest.raises(ValueError):
        FaultInjector(max_extra_delay=-1)


# ----------------------------------------------------------------------
# Ethernet link + PMADD
# ----------------------------------------------------------------------


def test_ethernet_delivers_to_addressee_only():
    sim, link, kernels, nics = make_eth_world(n_hosts=3)
    got_b, got_c = [], []
    nics[1].rx_handler = collect_handler(got_b)
    nics[2].rx_handler = collect_handler(got_c)
    frame = eth_frame(MAC_B, MAC_A)

    def send():
        yield from nics[0].driver_transmit(frame)

    sim.process(send())
    sim.run()
    assert len(got_b) == 1
    assert got_b[0][0] == frame
    assert got_c == []


def test_ethernet_broadcast_reaches_all_others():
    sim, link, kernels, nics = make_eth_world(n_hosts=3)
    got_b, got_c = [], []
    nics[1].rx_handler = collect_handler(got_b)
    nics[2].rx_handler = collect_handler(got_c)

    def send():
        yield from nics[0].driver_transmit(eth_frame(BROADCAST_MAC, MAC_A))

    sim.process(send())
    sim.run()
    assert len(got_b) == 1 and len(got_c) == 1


def test_ethernet_wire_time_includes_overheads():
    link_sim = Simulator()
    link = EthernetLink(link_sim)
    # 1514-byte frame: (8 + 1514 + 4) * 8 bits / 10 Mb/s.
    assert link.frame_time(1514) == pytest.approx((8 + 1514 + 4) * 8 / 10e6)
    # Runt frames are padded to 64 bytes.
    assert link.frame_time(10) == pytest.approx((8 + 64 + 4) * 8 / 10e6)


def test_ethernet_serializes_transmissions():
    sim, link, kernels, nics = make_eth_world()
    got = []
    nics[1].rx_handler = collect_handler(got)
    frame = eth_frame(MAC_B, MAC_A, b"p" * 1500)

    def send_two():
        yield from nics[0].driver_transmit(frame)
        yield from nics[0].driver_transmit(frame)

    sim.process(send_two())
    sim.run()
    assert len(got) == 2
    # Two maximum frames take at least twice the frame time.
    assert sim.now >= 2 * link.frame_time(1514)


def test_ethernet_oversized_frame_rejected():
    sim, link, kernels, nics = make_eth_world()

    def send():
        with pytest.raises(ValueError):
            yield from link.transmit(nics[0], b"z" * 2000)

    sim.run(until=sim.process(send()))


def test_pmadd_charges_pio_costs():
    sim, link, kernels, nics = make_eth_world(costs=DECSTATION_5000_200)
    got = []
    nics[1].rx_handler = collect_handler(got)
    frame = eth_frame(MAC_B, MAC_A, b"q" * 1000)

    def send():
        yield from nics[0].driver_transmit(frame)

    sim.process(send())
    sim.run()
    costs = DECSTATION_5000_200
    # Sender paid PIO out; receiver paid interrupt + PIO in.
    assert kernels[0].cpu.busy_time == pytest.approx(
        costs.pio_cost(len(frame)) + costs.pmadd_per_packet
    )
    assert kernels[1].cpu.busy_time == pytest.approx(
        costs.interrupt + costs.pio_cost(len(frame))
    )


def test_pmadd_rx_overflow_drops():
    # Real costs so interrupt handling actually needs the CPU, which we
    # hog for the whole test: the board's staging buffers must overflow.
    sim, link, kernels, nics = make_eth_world(costs=DECSTATION_5000_200)
    request = nics[1].kernel.cpu._resource.request()  # Hog B's CPU.

    def send_many():
        for _ in range(PmaddNic.BOARD_BUFFERS + 4):
            yield from nics[0].driver_transmit(eth_frame(MAC_B, MAC_A))

    sim.process(send_many())
    sim.run()
    assert nics[1].stats["rx_dropped_no_buffer"] >= 1


def test_pmadd_corruption_reaches_handler():
    injector = FaultInjector(corrupt_rate=1.0, seed=1)
    sim, link, kernels, nics = make_eth_world(faults=injector)
    got = []
    nics[1].rx_handler = collect_handler(got)
    frame = eth_frame(MAC_B, MAC_A)

    def send():
        yield from nics[0].driver_transmit(frame)

    sim.process(send())
    sim.run()
    # Corrupted bits may fall in the dst MAC, in which case the NIC
    # filter discards the frame; otherwise the handler sees damage.
    if got:
        assert got[0][0] != frame


# ----------------------------------------------------------------------
# AN1 link + controller
# ----------------------------------------------------------------------


def make_an1_world(costs=FREE, driver_mtu=1500):
    sim = Simulator()
    link = An1Link(sim)
    k0 = Kernel(sim, costs, name="h0")
    k1 = Kernel(sim, costs, name="h1")
    n0 = An1Nic(k0, link, station=1, name="an1-0", driver_mtu_data=driver_mtu)
    n1 = An1Nic(k1, link, station=2, name="an1-1", driver_mtu_data=driver_mtu)
    n0.install_default_ring()
    n1.install_default_ring()
    return sim, link, (k0, k1), (n0, n1)


def test_an1_delivers_via_default_bqi():
    sim, link, kernels, nics = make_an1_world()
    got = []
    nics[1].rx_handler = collect_handler(got)

    def send():
        yield from nics[0].driver_transmit(an1_frame(2, 1))

    sim.process(send())
    sim.run()
    assert len(got) == 1
    frame, ring = got[0]
    assert ring.bqi == 0


def test_an1_nonzero_bqi_selects_ring():
    sim, link, kernels, nics = make_an1_world()
    ring = nics[1].allocate_bqi(capacity=4, owner="app")
    got = []
    nics[1].rx_handler = collect_handler(got)

    def send():
        yield from nics[0].driver_transmit(an1_frame(2, 1, bqi=ring.bqi))

    sim.process(send())
    sim.run()
    _, got_ring = got[0]
    assert got_ring is ring
    assert ring.stats["delivered"] == 1
    assert ring.available == 3


def test_an1_unknown_bqi_falls_back_to_kernel_ring():
    sim, link, kernels, nics = make_an1_world()
    got = []
    nics[1].rx_handler = collect_handler(got)

    def send():
        yield from nics[0].driver_transmit(an1_frame(2, 1, bqi=999))

    sim.process(send())
    sim.run()
    assert got[0][1].bqi == 0


def test_an1_ring_exhaustion_drops():
    sim, link, kernels, nics = make_an1_world()
    ring = nics[1].allocate_bqi(capacity=2, owner="app")
    got = []
    nics[1].rx_handler = collect_handler(got)

    def send():
        for _ in range(5):
            yield from nics[0].driver_transmit(an1_frame(2, 1, bqi=ring.bqi))

    sim.process(send())
    sim.run()
    assert len(got) == 2  # Ring capacity, never replenished.
    assert ring.stats["dropped"] == 3


def test_an1_ring_replenish_resumes_delivery():
    sim, link, kernels, nics = make_an1_world()
    ring = nics[1].allocate_bqi(capacity=1, owner="app")
    got = []

    def handler(frame, ctx):
        got.append(frame)
        ctx.replenish()  # Library hands the buffer back.
        yield from ()

    nics[1].rx_handler = handler

    def send():
        for _ in range(5):
            yield from nics[0].driver_transmit(an1_frame(2, 1, bqi=ring.bqi))

    sim.process(send())
    sim.run()
    assert len(got) == 5


def test_an1_no_cpu_cost_per_byte():
    sim, link, kernels, nics = make_an1_world(costs=DECSTATION_5000_200)
    got = []
    nics[1].rx_handler = collect_handler(got)
    frame = an1_frame(2, 1, payload=b"r" * 1400)

    def send():
        yield from nics[0].driver_transmit(frame)

    sim.process(send())
    sim.run()
    costs = DECSTATION_5000_200
    # DMA: sender pays only descriptor setup, receiver only the interrupt.
    assert kernels[0].cpu.busy_time == pytest.approx(costs.an1_dma_setup)
    assert kernels[1].cpu.busy_time == pytest.approx(costs.interrupt)


def test_an1_driver_mtu_enforced_and_liftable():
    sim, link, kernels, nics = make_an1_world(driver_mtu=1500)

    def send_big():
        with pytest.raises(ValueError):
            yield from nics[0].driver_transmit(an1_frame(2, 1, b"b" * 4000))

    sim.run(until=sim.process(send_big()))
    # The hardware itself accepts far larger frames when the driver allows.
    sim2, link2, kernels2, nics2 = make_an1_world(driver_mtu=65536)
    got = []
    nics2[1].rx_handler = collect_handler(got)

    def send_huge():
        yield from nics2[0].driver_transmit(an1_frame(2, 1, b"B" * 60000))

    sim2.process(send_huge())
    sim2.run()
    assert len(got) == 1


def test_an1_full_duplex():
    sim, link, kernels, nics = make_an1_world()
    got0, got1 = [], []
    nics[0].rx_handler = collect_handler(got0)
    nics[1].rx_handler = collect_handler(got1)
    payload = b"f" * 1400

    def send(nic, dst, src):
        yield from nic.driver_transmit(an1_frame(dst, src, payload))

    sim.process(send(nics[0], 2, 1))
    sim.process(send(nics[1], 1, 2))
    sim.run()
    assert len(got0) == 1 and len(got1) == 1
    # Both directions proceeded concurrently: total elapsed well under
    # two serialized frame times plus interrupt handling.
    assert sim.now < 2 * link.frame_time(1408)


def test_an1_bqi_release():
    sim, link, kernels, nics = make_an1_world()
    ring = nics[1].allocate_bqi(capacity=2)
    nics[1].release_bqi(ring.bqi)
    assert ring.bqi not in nics[1].bqi_table
    with pytest.raises(ValueError):
        nics[1].release_bqi(0)


def test_link_stats_read_through_to_injector():
    """The injector's counters are the single source of truth: the link
    merges them into its stats instead of keeping a parallel count."""
    injector = FaultInjector(drop_rate=1.0, seed=7)
    sim, link, kernels, nics = make_eth_world(faults=injector)

    def send():
        yield from nics[0].driver_transmit(eth_frame(MAC_B, MAC_A))

    sim.process(send())
    sim.run()
    assert injector.stats["dropped"] == 1
    assert link.stats["dropped"] == 1
    # Reads go through live — no copy to drift out of sync.
    injector.stats["dropped"] += 10
    assert link.stats["dropped"] == 11
    # snapshot() is decoupled from later activity.
    snap = injector.snapshot()
    injector.stats["dropped"] += 1
    assert snap["dropped"] == 11


def test_fault_observers_see_every_plan():
    injector = FaultInjector(drop_rate=1.0, seed=3)
    sim, link, kernels, nics = make_eth_world(faults=injector)
    seen = []
    link.fault_observers.append(
        lambda lnk, frame, plan: seen.append((frame, plan))
    )

    def send():
        yield from nics[0].driver_transmit(eth_frame(MAC_B, MAC_A))

    sim.process(send())
    sim.run()
    assert len(seen) == 1
    frame, plan = seen[0]
    assert plan.dropped
    assert plan.deliveries == ()
