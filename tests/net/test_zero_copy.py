"""Byte-equivalence fuzz for the zero-copy datapath.

The scatter-gather refactor must be invisible on the wire: every frame a
chain builds has to be bit-identical to what the legacy concatenating
path produced, the RFC 1624 incremental checksums must equal full
resums, and the template encoder must match :func:`encode_segment`
exactly — including across retransmissions and ack/window patches.
"""

import random

import pytest

from repro.net import buf
from repro.net.buf import PacketBuffer, as_wire_bytes, prepend, slice_view
from repro.net.checksum import (
    checksum_parts,
    incremental_update,
    internet_checksum,
    pseudo_header,
)
from repro.net.headers import (
    PROTO_TCP,
    TCP_ACK,
    TCP_FIN,
    TCP_PSH,
    TCP_SYN,
    Ipv4Header,
    PROTO_UDP,
    TcpHeader,
)
from repro.protocols.ip import IpStack, forwarded_copy
from repro.protocols.tcp.wire import (
    Segment,
    TcpSegmentEncoder,
    decode_segment,
    encode_segment,
)
from repro.protocols.udp import decode_datagram, encode_datagram

IP_A = 0x0A000001
IP_B = 0x0A000002

#: Payload sizes that have historically hidden bugs: empty, single byte,
#: odd lengths (checksum tail byte), and a full MTU's worth.
SIZES = [0, 1, 3, 17, 128, 555, 1024, 1460]


@pytest.fixture(autouse=True)
def _chain_mode():
    """Each test starts in the default chain mode with clean counters."""
    buf.set_mode("chain")
    buf.reset_stats()
    yield
    buf.set_mode("chain")


def payload_of(size: int, seed: int = 0) -> bytes:
    return bytes(random.Random(seed ^ size).randrange(256) for _ in range(size))


def in_both_modes(build):
    """Run ``build()`` in chain then eager mode; return flat wire bytes."""
    buf.set_mode("chain")
    chained = as_wire_bytes(build())
    buf.set_mode("eager")
    eager = as_wire_bytes(build())
    buf.set_mode("chain")
    return chained, eager


# ----------------------------------------------------------------------
# PacketBuffer mechanics
# ----------------------------------------------------------------------

def test_packet_buffer_basic_ops():
    chain = PacketBuffer((b"head", memoryview(b"body-odd"), b""))
    assert len(chain) == 12
    assert chain.tobytes() == b"headbody-odd"
    assert chain[0] == ord("h") and chain[-1] == ord("d")
    assert chain[4:8] == b"body"
    assert list(chain) == list(b"headbody-odd")
    assert chain == b"headbody-odd"

    chain.prepend_header(b"eth|")
    assert chain.tobytes() == b"eth|headbody-odd"
    head, tail = chain.split(8)
    assert head.tobytes() == b"eth|head"
    assert tail.tobytes() == b"body-odd"
    assert tail.trim(4).tobytes() == b"body"


def test_packet_buffer_concat_operators():
    chain = b"one" + PacketBuffer((b"two",)) + b"three"
    assert isinstance(chain, PacketBuffer)
    assert chain.tobytes() == b"onetwothree"


def test_prepend_shares_but_never_mutates_payload_chain():
    """The retransmit cache depends on prepend not growing its input."""
    segment_image = PacketBuffer((b"tcp-header", b"payload"))
    framed = prepend(b"ip-header", segment_image)
    prepend(b"eth-header", framed)
    assert segment_image.tobytes() == b"tcp-headerpayload"
    assert len(segment_image.fragments) == 2


def test_materialization_is_cached_and_counted_once():
    buf.reset_stats()
    chain = PacketBuffer((b"a" * 100, b"b" * 50))
    first = as_wire_bytes(chain)
    second = as_wire_bytes(chain)
    assert first is second
    assert buf.STATS.materialized_bytes == 150
    assert buf.STATS.materialize_ops == 1


# ----------------------------------------------------------------------
# Checksums: parts == flat, incremental == full resum
# ----------------------------------------------------------------------

@pytest.mark.parametrize("trial", range(40))
def test_checksum_parts_matches_flat_sum(trial):
    rng = random.Random(trial)
    data = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 200)))
    cuts = sorted(rng.randrange(len(data) + 1) for _ in range(rng.randrange(4)))
    parts, prev = [], 0
    for cut in cuts + [len(data)]:
        parts.append(data[prev:cut])
        prev = cut
    # Mix in the bytes-like zoo, including a nested chain.
    parts = [
        memoryview(p) if i % 3 == 1 else bytearray(p) if i % 3 == 2 else p
        for i, p in enumerate(parts)
    ]
    assert checksum_parts(*parts) == internet_checksum(data)
    assert checksum_parts(PacketBuffer(
        bytes(p) for p in parts if len(p)
    )) == internet_checksum(data)


@pytest.mark.parametrize("trial", range(40))
def test_incremental_update_matches_full_resum(trial):
    rng = random.Random(1000 + trial)
    data = bytearray(
        rng.randrange(256) for _ in range(2 * rng.randrange(2, 40))
    )
    checksum = internet_checksum(data)
    width = rng.choice([2, 4])
    offset = rng.randrange(0, len(data) - width + 1, 2)
    old = bytes(data[offset:offset + width])
    new = bytes(rng.randrange(256) for _ in range(width))
    updated = incremental_update(checksum, old, new)
    data[offset:offset + width] = new
    assert updated == internet_checksum(data), (
        f"offset={offset} old={old.hex()} new={new.hex()}"
    )


# ----------------------------------------------------------------------
# Encode equivalence: chain arm == eager (legacy concatenation) arm
# ----------------------------------------------------------------------

@pytest.mark.parametrize("size", SIZES)
def test_tcp_encode_chain_equals_eager(size):
    segment = Segment(
        sport=1234, dport=80, seq=7, ack=99,
        flags=TCP_ACK | TCP_PSH, window=8192, payload=payload_of(size),
    )
    chained, eager = in_both_modes(
        lambda: encode_segment(segment, IP_A, IP_B)
    )
    assert chained == eager
    assert isinstance(eager, bytes)
    decoded = decode_segment(chained, IP_A, IP_B)
    assert bytes(decoded.payload) == segment.payload


@pytest.mark.parametrize("size", SIZES)
def test_udp_encode_chain_equals_eager(size):
    data = payload_of(size, seed=7)
    chained, eager = in_both_modes(
        lambda: encode_datagram(4000, 53, data, IP_A, IP_B)
    )
    assert chained == eager
    datagram = decode_datagram(chained, IP_A, IP_B)
    assert (datagram.src_port, datagram.dst_port) == (4000, 53)
    assert bytes(datagram.payload) == data


@pytest.mark.parametrize("size", SIZES + [4000])
def test_ip_send_chain_equals_eager(size):
    data = payload_of(size, seed=13)

    def build():
        stack = IpStack(IP_A)
        packets = stack.send(IP_B, PROTO_UDP, data, mtu=1500)
        return PacketBuffer(as_wire_bytes(p) for p in packets)

    chained, eager = in_both_modes(build)
    assert chained == eager


def test_forwarded_copy_chain_equals_eager_and_resums():
    stack = IpStack(IP_A)
    packet = as_wire_bytes(
        stack.send(IP_B, PROTO_UDP, payload_of(333), mtu=1500)[0]
    )
    header = Ipv4Header.unpack(packet)

    chained, eager = in_both_modes(lambda: forwarded_copy(header, packet))
    assert chained == eager
    rewritten = Ipv4Header.unpack(chained, verify=True)  # checksum still valid
    assert rewritten.ttl == header.ttl - 1


# ----------------------------------------------------------------------
# Template encoder == encode_segment, always
# ----------------------------------------------------------------------

def _random_segment(rng, seq, payload):
    flags = TCP_ACK
    if rng.random() < 0.1:
        flags |= TCP_PSH
    if rng.random() < 0.05:
        flags |= TCP_FIN
    return Segment(
        sport=5000, dport=80, seq=seq,
        ack=rng.randrange(1 << 32), flags=flags,
        window=rng.randrange(1 << 16), payload=payload,
    )


@pytest.mark.parametrize("trial", range(10))
def test_template_encoder_fuzz_matches_full_encode(trial):
    """Random send/retransmit/ack-advance traffic: every image the
    template encoder emits equals a from-scratch encode."""
    rng = random.Random(5000 + trial)
    encoder = TcpSegmentEncoder(sport=5000, dport=80, src_ip=IP_A, dst_ip=IP_B)
    history = []
    seq = rng.randrange(1 << 32)
    for _ in range(120):
        if history and rng.random() < 0.3:
            # Retransmission: same seq/payload; ack and window may move.
            base = rng.choice(history[-8:])
            segment = Segment(
                sport=base.sport, dport=base.dport, seq=base.seq,
                ack=rng.choice([base.ack, rng.randrange(1 << 32)]),
                flags=base.flags,
                window=rng.choice([base.window, rng.randrange(1 << 16)]),
                payload=base.payload,
            )
        else:
            size = rng.choice(SIZES)
            segment = _random_segment(rng, seq, payload_of(size, rng.randrange(99)))
            seq = (seq + max(size, 1)) % (1 << 32)
            history.append(segment)
        fast = as_wire_bytes(encoder.encode(segment))
        slow = as_wire_bytes(encode_segment(segment, IP_A, IP_B))
        assert fast == slow, f"template mismatch on {segment!r}"
    hits = (
        encoder.stats["template_patches"] + encoder.stats["retransmit_reuses"]
    )
    assert hits > 0, "fuzz traffic never exercised the fast path"


def test_template_encoder_syn_and_foreign_ports_take_slow_path():
    encoder = TcpSegmentEncoder(sport=5000, dport=80, src_ip=IP_A, dst_ip=IP_B)
    syn = Segment(
        sport=5000, dport=80, seq=1, ack=0,
        flags=TCP_SYN, window=4096, mss=1460,
    )
    assert as_wire_bytes(encoder.encode(syn)) == as_wire_bytes(
        encode_segment(syn, IP_A, IP_B)
    )
    other = Segment(
        sport=6000, dport=80, seq=1, ack=2, flags=TCP_ACK, window=4096,
    )
    assert as_wire_bytes(encoder.encode(other)) == as_wire_bytes(
        encode_segment(other, IP_A, IP_B)
    )
    assert encoder.stats["template_patches"] == 0
    assert encoder.stats["retransmit_reuses"] == 0


def test_template_patch_is_checksum_correct():
    """An ack/window patch must leave a segment that verifies."""
    encoder = TcpSegmentEncoder(sport=5000, dport=80, src_ip=IP_A, dst_ip=IP_B)
    data = payload_of(555)
    first = Segment(
        sport=5000, dport=80, seq=10, ack=20,
        flags=TCP_ACK, window=1000, payload=data,
    )
    encoder.encode(first)
    patched = Segment(
        sport=5000, dport=80, seq=10, ack=0xFFFF0001,
        flags=TCP_ACK, window=0, payload=data,
    )
    wire = as_wire_bytes(encoder.encode(patched))
    assert encoder.stats["template_patches"] == 1
    pseudo = pseudo_header(IP_A, IP_B, PROTO_TCP, len(wire))
    assert checksum_parts(pseudo, wire) == 0
    decoded = decode_segment(wire, IP_A, IP_B)
    assert (decoded.ack, decoded.window) == (0xFFFF0001, 0)


def test_retransmit_reuses_cached_header_image():
    encoder = TcpSegmentEncoder(sport=5000, dport=80, src_ip=IP_A, dst_ip=IP_B)
    segment = Segment(
        sport=5000, dport=80, seq=42, ack=7,
        flags=TCP_ACK, window=512, payload=payload_of(128),
    )
    first = as_wire_bytes(encoder.encode(segment))
    again = as_wire_bytes(encoder.encode(segment))
    assert first == again
    assert encoder.stats["retransmit_reuses"] == 1


# ----------------------------------------------------------------------
# Views are windows into the original octets
# ----------------------------------------------------------------------

def test_slice_view_modes():
    data = bytes(range(100))
    buf.set_mode("chain")
    view = slice_view(data, 10, 20)
    assert isinstance(view, memoryview)
    assert bytes(view) == data[10:20]
    buf.set_mode("eager")
    copied = slice_view(data, 10, 20)
    assert isinstance(copied, bytes)
    assert copied == data[10:20]


def test_decode_payload_is_zero_copy_view():
    data = payload_of(1024)
    segment = Segment(
        sport=1, dport=2, seq=3, ack=4,
        flags=TCP_ACK, window=5, payload=data,
    )
    wire = as_wire_bytes(encode_segment(segment, IP_A, IP_B))
    decoded = decode_segment(wire, IP_A, IP_B)
    assert isinstance(decoded.payload, memoryview)
    assert decoded.payload.obj is wire  # a window, not a copy
    assert bytes(decoded.payload) == data
