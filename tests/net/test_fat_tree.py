"""The k-ary fat-tree builder: shape, addressing, routing, delivery."""

import pytest

from repro.net.fabric import fabric_mac, fat_tree
from repro.net.headers import PROTO_UDP, ip_to_str, str_to_ip
from repro.protocols.udp import encode_datagram
from repro.sim import Simulator


# ----------------------------------------------------------------------
# fabric_mac: multi-byte indices and collision guarding
# ----------------------------------------------------------------------


def test_fabric_mac_small_and_large_indices_are_distinct():
    macs = {fabric_mac(n) for n in (1, 255, 256, 257, 65535, 65536, 2**20)}
    assert len(macs) == 7
    for mac in macs:
        assert len(mac) == 6
        assert mac[0] == 0x02  # Locally administered.


def test_fabric_mac_index_256_no_longer_wraps_onto_0():
    # The old single-byte encoding truncated: index 256 == index 0.
    assert fabric_mac(256) != fabric_mac(0)
    assert fabric_mac(256)[-2:] == bytes([1, 0])


def test_fabric_mac_rejects_out_of_range():
    with pytest.raises(ValueError):
        fabric_mac(-1)
    with pytest.raises(ValueError):
        fabric_mac(1 << 32)


def test_topology_alloc_mac_guards_collisions():
    from repro.net.fabric.topology import Topology

    sim = Simulator()
    topo = Topology(sim, "t")
    topo.alloc_mac(7)
    with pytest.raises(ValueError, match="duplicate fabric MAC"):
        topo.alloc_mac(7)


def test_topology_next_mac_is_sequential_and_fabric_shaped():
    from repro.net.fabric.topology import Topology

    sim = Simulator()
    topo = Topology(sim, "t")
    first, second = topo.next_mac(), topo.next_mac()
    assert first == fabric_mac(1)
    assert second == fabric_mac(2)


# ----------------------------------------------------------------------
# Shape and addressing
# ----------------------------------------------------------------------


def test_fat_tree_k4_shape():
    sim = Simulator()
    topo = fat_tree(sim, k=4)  # hosts_per_edge defaults to k/2 = 2.
    assert len(topo.hosts) == 16
    assert len(topo.switches) == 8  # 4 pods x 2 edges.
    # 4 pods x 2 aggs + (k/2)^2 = 4 cores.
    assert len(topo.routers) == 12
    # Per pod: 2 edges x 2 agg cables + 2 hosts x 2 edges; plus
    # 4 aggs-per-pod-row x ... — just pin the total.
    assert len(topo.links) == 48
    assert topo.meta["k"] == 4
    assert topo.meta["hosts_per_edge"] == 2


def test_fat_tree_host_addressing_and_unique_macs():
    sim = Simulator()
    topo = fat_tree(sim, k=4)
    ips = {host.ip for host in topo.hosts}
    assert len(ips) == len(topo.hosts)
    assert str_to_ip("10.0.0.1") in ips
    assert str_to_ip("10.3.1.2") in ips
    # Sequential allocation: every MAC in the fabric is distinct.
    macs = {host.nic.mac for host in topo.hosts}
    for router in topo.routers:
        macs.update(iface.mac for iface in router.interfaces)
    assert len(macs) == len(topo.hosts) + sum(
        len(r.interfaces) for r in topo.routers
    )


def test_fat_tree_rejects_odd_or_tiny_k():
    sim = Simulator()
    with pytest.raises(ValueError):
        fat_tree(sim, k=3)
    with pytest.raises(ValueError):
        fat_tree(sim, k=0)
    with pytest.raises(ValueError):
        fat_tree(sim, k=4, hosts_per_edge=200)


def test_fat_tree_gateway_spreading_is_deterministic():
    sim = Simulator()
    topo = fat_tree(sim, k=4, hosts_per_edge=4)
    # Host h on any edge default-routes via agg h % (k/2): .200/.201.
    pod0_edge0 = [h for h in topo.hosts if h.name.startswith("h-p0e0")]
    gateways = [
        ip_to_str(h.routes.lookup(str_to_ip("10.3.1.1")).gateway)
        for h in sorted(pod0_edge0, key=lambda h: h.name)
    ]
    assert gateways == ["10.0.0.200", "10.0.0.201", "10.0.0.200", "10.0.0.201"]


# ----------------------------------------------------------------------
# End-to-end forwarding
# ----------------------------------------------------------------------


def _send_udp(sim, src, dst_ip, payload=b"ping"):
    datagram = encode_datagram(5000, 7000, payload, src.ip, dst_ip)

    def go():
        yield from src.ip_send(dst_ip, PROTO_UDP, datagram)

    sim.process(go())


def test_cross_pod_delivery_traverses_agg_and_core():
    sim = Simulator()
    topo = fat_tree(sim, k=4)
    src = topo.hosts[0]  # h-p0e0n0, 10.0.0.1, gateway agg-p0a0.
    dst = next(h for h in topo.hosts if h.name == "h-p3e1n1")
    got = []
    dst.udp_ports.bind(7000, lambda dg: got.append(dg.payload))
    _send_udp(sim, src, dst.ip)
    sim.run()
    assert got == [b"ping"]
    # Deterministic spreading: host 0 uses agg q=0; agg-p0a0 reaches
    # pod 3 via core (0, (3+0) % 2 = 1); pod 3's downlink lands on
    # agg-p3a0.
    by_name = {r.name: r for r in topo.routers}
    assert by_name["agg-p0a0"].stats["forwarded"] == 1
    assert by_name["core-0-1"].stats["forwarded"] == 1
    assert by_name["agg-p3a0"].stats["forwarded"] == 1
    # No other router touched the packet.
    touched = [r.name for r in topo.routers if r.stats["forwarded"]]
    assert sorted(touched) == ["agg-p0a0", "agg-p3a0", "core-0-1"]


def test_same_edge_delivery_stays_on_l2():
    sim = Simulator()
    topo = fat_tree(sim, k=4)
    src = next(h for h in topo.hosts if h.name == "h-p0e0n0")
    dst = next(h for h in topo.hosts if h.name == "h-p0e0n1")
    got = []
    dst.udp_ports.bind(7000, lambda dg: got.append(dg.payload))
    _send_udp(sim, src, dst.ip)
    sim.run()
    assert got == [b"ping"]
    assert all(r.stats["forwarded"] == 0 for r in topo.routers)


def test_intra_pod_cross_edge_goes_through_one_agg_router():
    sim = Simulator()
    topo = fat_tree(sim, k=4)
    src = next(h for h in topo.hosts if h.name == "h-p0e0n0")
    dst = next(h for h in topo.hosts if h.name == "h-p0e1n0")
    got = []
    dst.udp_ports.bind(7000, lambda dg: got.append(dg.payload))
    _send_udp(sim, src, dst.ip)
    sim.run()
    assert got == [b"ping"]
    touched = [r.name for r in topo.routers if r.stats["forwarded"]]
    # 10.0.1.0/24 is directly connected on agg-p0a0 (host 0's gateway):
    # one hop down into edge 1, no core transit.
    assert touched == ["agg-p0a0"]


def test_all_pairs_smoke_on_k2():
    sim = Simulator()
    topo = fat_tree(sim, k=2, hosts_per_edge=2)
    got = []
    for host in topo.hosts:
        host.udp_ports.bind(7000, lambda dg: got.append(dg.payload))
    pairs = 0
    for src in topo.hosts:
        for dst in topo.hosts:
            if src is not dst:
                _send_udp(sim, src, dst.ip)
                pairs += 1
    sim.run()
    assert len(got) == pairs
