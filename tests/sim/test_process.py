"""Unit tests for processes: chaining, interrupts, failure propagation."""

import pytest

from repro.sim import Interrupt, SimError, Simulator


def test_process_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        return 99

    p = sim.process(proc())
    assert sim.run(until=p) == 99


def test_process_is_alive_until_done():
    sim = Simulator()

    def proc():
        yield sim.timeout(5.0)

    p = sim.process(proc())
    assert p.is_alive
    sim.run()
    assert not p.is_alive


def test_waiting_on_another_process():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return "child-result"

    def parent():
        result = yield sim.process(child())
        return result

    assert sim.run(until=sim.process(parent())) == "child-result"


def test_yield_from_subgenerator():
    sim = Simulator()

    def helper():
        yield sim.timeout(1.0)
        return 7

    def proc():
        value = yield from helper()
        return value * 2

    assert sim.run(until=sim.process(proc())) == 14


def test_exception_in_process_propagates_to_waiter():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise ValueError("broken")

    def parent():
        with pytest.raises(ValueError):
            yield sim.process(bad())
        return "recovered"

    assert sim.run(until=sim.process(parent())) == "recovered"


def test_unhandled_process_exception_surfaces_at_run():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise ValueError("escapes")

    p = sim.process(bad())
    with pytest.raises(ValueError):
        sim.run(until=p)


def test_interrupt_delivers_cause():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    victim = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(3.0)
        victim.interrupt("wake up")

    sim.process(interrupter())
    sim.run()
    assert log == [(3.0, "wake up")]


def test_interrupted_process_not_resumed_by_original_event():
    sim = Simulator()
    resumes = []

    def sleeper():
        try:
            yield sim.timeout(5.0)
            resumes.append("timeout")
        except Interrupt:
            resumes.append("interrupt")
            yield sim.timeout(10.0)
            resumes.append("second-sleep")

    victim = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(1.0)
        victim.interrupt()

    sim.process(interrupter())
    sim.run()
    assert resumes == ["interrupt", "second-sleep"]
    assert sim.now == 11.0


def test_interrupt_on_finished_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(SimError):
        p.interrupt()


def test_self_interrupt_rejected():
    sim = Simulator()

    def proc():
        with pytest.raises(SimError):
            me.interrupt()
        yield sim.timeout(1.0)

    me = sim.process(proc())
    sim.run()


def test_interrupt_races_with_completion_is_dropped():
    # Interrupt scheduled for the same instant the process completes:
    # the process ends first and the interrupt must be silently dropped.
    sim = Simulator()

    def sleeper():
        yield sim.timeout(1.0)

    victim = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(1.0)
        if victim.is_alive:
            victim.interrupt()

    sim.process(interrupter())
    sim.run()  # Must not raise.


def test_yielding_non_event_raises_inside_process():
    sim = Simulator()

    def proc():
        try:
            yield "not an event"
        except SimError:
            return "caught"

    assert sim.run(until=sim.process(proc())) == "caught"


def test_non_generator_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_process_name_defaults_and_overrides():
    sim = Simulator()

    def my_proc():
        yield sim.timeout(0)

    p = sim.process(my_proc())
    assert "my_proc" in repr(p) or "process" in repr(p)
    q = sim.process(my_proc(), name="custom")
    assert "custom" in repr(q)
    sim.run()


def test_yield_already_processed_event_continues_immediately():
    sim = Simulator()
    ev = sim.timeout(0.0, value="early")
    sim.run()

    def proc():
        value = yield ev
        return value

    assert sim.run(until=sim.process(proc())) == "early"


def test_condition_all_of():
    sim = Simulator()
    t1 = sim.timeout(1.0, value="a")
    t2 = sim.timeout(2.0, value="b")

    def proc():
        results = yield sim.all_of([t1, t2])
        return sorted(results.values())

    assert sim.run(until=sim.process(proc())) == ["a", "b"]
    assert sim.now == 2.0


def test_condition_any_of():
    sim = Simulator()
    t1 = sim.timeout(1.0, value="fast")
    t2 = sim.timeout(9.0, value="slow")

    def proc():
        results = yield sim.any_of([t1, t2])
        return list(results.values())

    sim_result = sim.run(until=sim.process(proc()))
    assert sim_result == ["fast"]
    assert sim.now == 1.0


def test_condition_empty_fires_immediately():
    sim = Simulator()

    def proc():
        yield sim.all_of([])
        return sim.now

    assert sim.run(until=sim.process(proc())) == 0.0
