"""The bucket-heap engine against the original tuple-heap engine.

:class:`~repro.sim.LegacySimulator` is the pre-refactor engine kept
verbatim; these tests use it as the ordering oracle.  The batched
engine must execute every workload in byte-identical order — URGENT
before NORMAL at equal times, FIFO within a priority, events scheduled
mid-batch joining the live batch exactly where the tuple heap would
have put them — and its lazy-cancellation bookkeeping must add up.
"""

import random

import pytest

from repro.sim import (
    NORMAL,
    URGENT,
    LegacySimulator,
    Simulator,
    Timeout,
)
from repro.sim.events import Event


def _recorded_event(sim, order, label, rng=None, depth=0):
    """An event whose callback records ``label`` and, when ``rng`` is
    given, schedules a few more events with seeded-random delay and
    priority.  Both engines replay the same seed: as long as execution
    order matches, the RNG draws align, so any ordering divergence
    shows up as differing transcripts."""
    event = Event(sim)
    event._ok = True

    def callback(_ev):
        order.append(label)
        if rng is None or depth >= 2:
            return
        for k in range(rng.randrange(0, 3)):
            child = _recorded_event(
                sim, order, f"{label}.{k}", rng, depth + 1
            )
            delay = rng.choice([0.0, 0.0, 1e-3, 2e-3])
            priority = rng.choice([NORMAL, NORMAL, NORMAL, URGENT])
            sim.schedule(child, delay=delay, priority=priority)

    event.callbacks.append(callback)
    return event


def _run_script(sim_cls, seed):
    rng = random.Random(seed)
    sim = sim_cls()
    order = []
    # Seed phase: events piled onto few distinct timestamps so buckets
    # actually form, with a sprinkle of URGENT.
    for i in range(40):
        event = _recorded_event(sim, order, f"seed{i}", rng)
        delay = rng.choice([0.0, 1e-3, 1e-3, 2e-3, 5e-3])
        priority = URGENT if rng.random() < 0.2 else NORMAL
        sim.schedule(event, delay=delay, priority=priority)
    sim.run()
    return order


@pytest.mark.parametrize("seed", range(8))
def test_batched_order_identical_to_legacy(seed):
    assert _run_script(Simulator, seed) == _run_script(LegacySimulator, seed)


@pytest.mark.parametrize("sim_cls", [Simulator, LegacySimulator])
def test_urgent_before_normal_fifo_within_priority(sim_cls):
    sim = sim_cls()
    order = []
    for i in range(3):
        sim.schedule(_recorded_event(sim, order, f"n{i}"), delay=1e-3)
    for i in range(3):
        sim.schedule(
            _recorded_event(sim, order, f"u{i}"), delay=1e-3, priority=URGENT
        )
    sim.schedule(_recorded_event(sim, order, "n3"), delay=1e-3)
    sim.run()
    assert order == ["u0", "u1", "u2", "n0", "n1", "n2", "n3"]


@pytest.mark.parametrize("sim_cls", [Simulator, LegacySimulator])
def test_urgent_scheduled_mid_batch_preempts_remaining_normals(sim_cls):
    sim = sim_cls()
    order = []

    first = Event(sim)
    first._ok = True

    def inject(_ev):
        order.append("first")
        # Scheduled at the live batch's own timestamp: must run before
        # the NORMALs that were already queued ahead of it.
        sim.schedule(
            _recorded_event(sim, order, "late-urgent"), priority=URGENT
        )

    first.callbacks.append(inject)
    sim.schedule(first, delay=1e-3)
    sim.schedule(_recorded_event(sim, order, "n0"), delay=1e-3)
    sim.schedule(_recorded_event(sim, order, "n1"), delay=1e-3)
    sim.run()
    assert order == ["first", "late-urgent", "n0", "n1"]


@pytest.mark.parametrize("sim_cls", [Simulator, LegacySimulator])
def test_mid_batch_same_time_normal_joins_batch_tail(sim_cls):
    sim = sim_cls()
    order = []

    head = Event(sim)
    head._ok = True

    def inject(_ev):
        order.append("head")
        sim.schedule(_recorded_event(sim, order, "tail"))  # delay 0.

    head.callbacks.append(inject)
    sim.schedule(head, delay=1e-3)
    sim.schedule(_recorded_event(sim, order, "mid"), delay=1e-3)
    sim.run()
    assert order == ["head", "mid", "tail"]


def test_cancelled_timer_never_fires_and_is_counted():
    sim = Simulator()
    fired = []
    keep = Timeout(sim, 1e-3, value="keep")
    keep.callbacks.append(lambda ev: fired.append(ev._value))
    doomed = Timeout(sim, 1e-3, value="doomed")
    doomed.callbacks.append(lambda ev: fired.append(ev._value))

    assert doomed.cancel()
    assert doomed.cancelled and not doomed.processed
    assert not doomed.cancel()  # Idempotent: one tombstone, one count.
    sim.run()

    assert fired == ["keep"]
    stats = sim.engine_stats()
    assert stats["cancelled"] == 1
    assert stats["skipped"] == 1  # The tombstone was popped and skipped.
    assert stats["events"] == 2


def test_duplicate_schedule_is_skipped_and_counted():
    sim = Simulator()
    runs = []
    event = Event(sim)
    event._ok = True
    event.callbacks.append(lambda ev: runs.append(1))
    sim.schedule(event, delay=1e-3)
    sim.schedule(event, delay=2e-3)  # Duplicate: same event, later slot.
    sim.run()

    assert runs == [1]  # Callbacks detach on first processing.
    stats = sim.engine_stats()
    assert stats["skipped"] == 1
    assert stats["cancelled"] == 0  # A duplicate, not a cancellation.
    assert stats["events"] == 2


def test_stop_mid_batch_preserves_same_time_remainder():
    """``run(until=...)`` stopping inside a batch must leave the
    unprocessed same-timestamp tail schedulable, exactly like the tuple
    heap's one-event-per-step behaviour."""
    results = {}
    for sim_cls in (Simulator, LegacySimulator):
        sim = sim_cls()
        order = []
        sim.schedule(_recorded_event(sim, order, "a"), delay=1e-3)
        stop = Event(sim)
        stop._ok = True
        sim.schedule(stop, delay=1e-3)
        sim.schedule(_recorded_event(sim, order, "b"), delay=1e-3)
        sim.schedule(_recorded_event(sim, order, "c"), delay=1e-3)
        sim.run(until=stop)
        first_phase = list(order)
        sim.run()
        results[sim_cls.__name__] = (first_phase, order)

    batched, legacy = results["Simulator"], results["LegacySimulator"]
    assert batched == legacy
    assert batched[0] == ["a"]  # Stopped before b and c...
    assert batched[1] == ["a", "b", "c"]  # ...which survive the stop.


def test_engine_stats_track_batching():
    sim = Simulator()
    order = []
    for i in range(10):
        sim.schedule(_recorded_event(sim, order, f"e{i}"), delay=1e-3)
    sim.schedule(_recorded_event(sim, order, "solo"), delay=2e-3)
    sim.run()
    stats = sim.engine_stats()
    assert stats["events"] == 11
    assert stats["steps"] == 2  # One batch of 10, one singleton.
    assert stats["batched"] == 9
    assert stats["max_batch"] == 10


def test_legacy_simulator_counts_events_too():
    sim = LegacySimulator()
    order = []
    for i in range(5):
        sim.schedule(_recorded_event(sim, order, f"e{i}"), delay=1e-3)
    sim.run()
    stats = sim.engine_stats()
    assert stats["events"] == 5
    assert stats["steps"] == 5  # One heap pop per event, by design.
    assert stats["batched"] == 0
