"""Unit tests for Store, Resource, and CPU primitives."""

import pytest

from repro.sim import CPU, Resource, SimError, Simulator, Store


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for item in ("a", "b", "c"):
            yield store.put(item)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == ["a", "b", "c"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    times = []

    def consumer():
        item = yield store.get()
        times.append((sim.now, item))

    def producer():
        yield sim.timeout(5.0)
        yield store.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert times == [(5.0, "late")]


def test_store_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer():
        yield store.put(1)
        log.append(("put1", sim.now))
        yield store.put(2)
        log.append(("put2", sim.now))

    def consumer():
        yield sim.timeout(3.0)
        item = yield store.get()
        log.append(("got", item, sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert ("put1", 0.0) in log
    assert ("put2", 3.0) in log  # Second put waited for the get.


def test_store_try_put_and_try_get():
    sim = Simulator()
    store = Store(sim, capacity=2)
    assert store.try_get() is None
    assert store.try_put("x")
    assert store.try_put("y")
    assert not store.try_put("z")  # Full.
    assert store.try_get() == "x"
    assert store.try_put("z")
    assert store.try_get() == "y"
    assert store.try_get() == "z"


def test_store_len():
    sim = Simulator()
    store = Store(sim)
    assert len(store) == 0
    store.try_put(1)
    store.try_put(2)
    assert len(store) == 2


def test_store_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_store_waiting_getter_receives_direct_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    got = []

    def consumer(tag):
        item = yield store.get()
        got.append((tag, item))

    sim.process(consumer("first"))
    sim.process(consumer("second"))

    def producer():
        yield store.put("A")
        yield store.put("B")

    sim.process(producer())
    sim.run()
    assert got == [("first", "A"), ("second", "B")]


# ----------------------------------------------------------------------
# Resource
# ----------------------------------------------------------------------


def test_resource_serializes_users():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    spans = []

    def worker(tag, hold):
        req = res.request()
        yield req
        start = sim.now
        yield sim.timeout(hold)
        res.release(req)
        spans.append((tag, start, sim.now))

    sim.process(worker("a", 2.0))
    sim.process(worker("b", 3.0))
    sim.run()
    assert spans == [("a", 0.0, 2.0), ("b", 2.0, 5.0)]


def test_resource_capacity_two_admits_two():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    starts = []

    def worker(tag):
        req = res.request()
        yield req
        starts.append((tag, sim.now))
        yield sim.timeout(1.0)
        res.release(req)

    for tag in ("a", "b", "c"):
        sim.process(worker(tag))
    sim.run()
    assert starts == [("a", 0.0), ("b", 0.0), ("c", 1.0)]


def test_resource_release_unheld_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def worker():
        req = res.request()
        yield req
        res.release(req)
        with pytest.raises(SimError):
            res.release(req)

    sim.process(worker())
    sim.run()


def test_resource_cancel_pending_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder():
        req = res.request()
        yield req
        yield sim.timeout(10.0)
        res.release(req)

    sim.process(holder())

    def impatient():
        yield sim.timeout(1.0)
        req = res.request()
        # Not granted yet; withdraw.
        req.cancel()
        return "gave-up"

    p = sim.process(impatient())
    assert sim.run(until=p) == "gave-up"
    assert res.queued == 0


def test_resource_counts():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    observed = []

    def holder():
        req = res.request()
        yield req
        observed.append((res.count, res.queued))
        yield sim.timeout(2.0)
        res.release(req)

    def waiter():
        yield sim.timeout(1.0)
        req = res.request()
        observed.append((res.count, res.queued))
        yield req
        res.release(req)

    sim.process(holder())
    sim.process(waiter())
    sim.run()
    assert observed == [(1, 0), (1, 1)]


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


# ----------------------------------------------------------------------
# CPU
# ----------------------------------------------------------------------


def test_cpu_consume_advances_clock_and_meters():
    sim = Simulator()
    cpu = CPU(sim)

    def proc():
        yield from cpu.consume(0.5)

    sim.run(until=sim.process(proc()))
    assert sim.now == 0.5
    assert cpu.busy_time == 0.5


def test_cpu_serializes_consumers():
    sim = Simulator()
    cpu = CPU(sim)
    done = []

    def proc(tag, cost):
        yield from cpu.consume(cost)
        done.append((tag, sim.now))

    sim.process(proc("a", 1.0))
    sim.process(proc("b", 1.0))
    sim.run()
    assert done == [("a", 1.0), ("b", 2.0)]
    assert cpu.busy_time == 2.0


def test_cpu_zero_cost_is_free():
    sim = Simulator()
    cpu = CPU(sim)

    def proc():
        yield from cpu.consume(0.0)
        yield sim.timeout(0)

    sim.run(until=sim.process(proc()))
    assert sim.now == 0.0
    assert cpu.busy_time == 0.0


def test_cpu_negative_cost_rejected():
    sim = Simulator()
    cpu = CPU(sim)

    def proc():
        with pytest.raises(ValueError):
            yield from cpu.consume(-1.0)
        yield sim.timeout(0)

    sim.run(until=sim.process(proc()))
