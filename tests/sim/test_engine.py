"""Unit tests for the discrete-event engine: clock, run modes, ordering."""

import pytest

from repro.sim import EmptySchedule, Event, SimError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_starts_at_initial_time():
    sim = Simulator(initial_time=5.0)
    assert sim.now == 5.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(2.5)
    sim.run()
    assert sim.now == 2.5


def test_run_until_time_stops_exactly():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run(until=4.0)
    assert sim.now == 4.0


def test_run_until_past_time_raises():
    sim = Simulator(initial_time=10.0)
    with pytest.raises(ValueError):
        sim.run(until=5.0)


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        return "done"

    result = sim.run(until=sim.process(proc()))
    assert result == "done"
    assert sim.now == 1.0


def test_run_until_processed_event_returns_immediately():
    sim = Simulator()
    ev = sim.timeout(0.0, value=42)
    sim.run()
    assert sim.run(until=ev) == 42


def test_run_until_unreachable_event_raises():
    sim = Simulator()
    ev = sim.event()  # Never triggered.
    with pytest.raises(RuntimeError):
        sim.run(until=ev)


def test_step_on_empty_schedule_raises():
    sim = Simulator()
    with pytest.raises(EmptySchedule):
        sim.step()


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []

    def watcher(delay):
        yield sim.timeout(delay)
        fired.append(delay)

    for delay in (3.0, 1.0, 2.0):
        sim.process(watcher(delay))
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_simultaneous_events_fire_in_creation_order():
    sim = Simulator()
    fired = []

    def watcher(tag):
        yield sim.timeout(1.0)
        fired.append(tag)

    for tag in ("a", "b", "c"):
        sim.process(watcher(tag))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(7.0)
    assert sim.peek() == 7.0


def test_event_value_unavailable_before_trigger():
    sim = Simulator()
    ev = Event(sim)
    with pytest.raises(SimError):
        _ = ev.value
    with pytest.raises(SimError):
        _ = ev.ok


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimError):
        ev.succeed(2)
    with pytest.raises(SimError):
        ev.fail(RuntimeError())


def test_event_fail_requires_exception():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(ValueError):
        ev.fail("not an exception")


def test_failed_event_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(waiter())

    def failer():
        yield sim.timeout(1.0)
        ev.fail(RuntimeError("boom"))

    sim.process(failer())
    sim.run()
    assert caught == ["boom"]


def test_run_all_respects_limit():
    sim = Simulator()
    seen = []

    def ticker():
        for _ in range(10):
            yield sim.timeout(1.0)
            seen.append(sim.now)

    sim.process(ticker())
    sim.run_all(limit=3.0)
    assert seen == [1.0, 2.0, 3.0]


def test_condition_rejects_mixed_simulators():
    import pytest
    from repro.sim import AllOf

    sim1, sim2 = Simulator(), Simulator()
    t1 = sim1.timeout(1.0)
    t2 = sim2.timeout(1.0)
    with pytest.raises(ValueError):
        AllOf(sim1, [t1, t2])


def test_any_of_propagates_failure():
    import pytest

    sim = Simulator()
    ev = sim.event()

    def proc():
        with pytest.raises(RuntimeError):
            yield sim.any_of([ev, sim.timeout(10.0)])
        return "handled"

    def failer():
        yield sim.timeout(1.0)
        ev.fail(RuntimeError("child failed"))

    sim.process(failer())
    assert sim.run(until=sim.process(proc())) == "handled"


def test_all_of_fails_fast_on_first_failure():
    import pytest

    sim = Simulator()
    ev = sim.event()
    slow = sim.timeout(100.0)

    def proc():
        with pytest.raises(ValueError):
            yield sim.all_of([ev, slow])
        return sim.now

    def failer():
        yield sim.timeout(2.0)
        ev.fail(ValueError("nope"))

    sim.process(failer())
    # Fails at 2.0, well before the 100 s timeout.
    assert sim.run(until=sim.process(proc())) == 2.0
