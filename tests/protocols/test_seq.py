"""Tests for modular sequence arithmetic, including wraparound."""

from hypothesis import given
from hypothesis import strategies as st

from repro.protocols.tcp.seq import (
    MOD,
    seq_add,
    seq_between,
    seq_diff,
    seq_ge,
    seq_gt,
    seq_le,
    seq_lt,
    seq_max,
    seq_min,
)

seqs = st.integers(min_value=0, max_value=MOD - 1)
small = st.integers(min_value=0, max_value=(1 << 30) - 1)


def test_basic_comparisons():
    assert seq_lt(1, 2)
    assert seq_gt(2, 1)
    assert seq_le(2, 2)
    assert seq_ge(2, 2)
    assert not seq_lt(2, 2)


def test_wraparound_comparisons():
    near_top = MOD - 10
    assert seq_lt(near_top, 5)  # 5 is "after" 0xFFFFFFF6.
    assert seq_gt(5, near_top)
    assert seq_diff(5, near_top) == 15


def test_seq_add_wraps():
    assert seq_add(MOD - 1, 1) == 0
    assert seq_add(MOD - 1, 2) == 1
    assert seq_add(0, -1) == MOD - 1


def test_seq_between():
    assert seq_between(10, 10, 20)
    assert seq_between(10, 19, 20)
    assert not seq_between(10, 20, 20)
    assert not seq_between(10, 9, 20)
    # Wrapping interval.
    assert seq_between(MOD - 5, MOD - 1, 5)
    assert seq_between(MOD - 5, 3, 5)
    assert not seq_between(MOD - 5, 6, 5)


def test_seq_max_min():
    assert seq_max(10, 20) == 20
    assert seq_min(10, 20) == 10
    assert seq_max(MOD - 5, 3) == 3  # 3 is later across the wrap.
    assert seq_min(MOD - 5, 3) == MOD - 5


@given(a=seqs, n=small)
def test_add_then_diff_roundtrips(a, n):
    assert seq_diff(seq_add(a, n), a) == n


@given(a=seqs, b=seqs)
def test_diff_antisymmetric(a, b):
    d = seq_diff(a, b)
    if d != -(1 << 31):  # The unique self-negation point.
        assert seq_diff(b, a) == -d


@given(a=seqs, b=seqs)
def test_lt_gt_consistent(a, b):
    if a != b:
        d = seq_diff(a, b)
        if d != -(1 << 31):
            assert seq_lt(a, b) != seq_lt(b, a)
    else:
        assert not seq_lt(a, b)
        assert seq_le(a, b)


@given(a=seqs, n=st.integers(min_value=1, max_value=(1 << 31) - 1))
def test_adding_less_than_half_moves_forward(a, n):
    assert seq_gt(seq_add(a, n), a)
