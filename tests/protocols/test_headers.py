"""Tests for wire-format headers: pack/unpack round trips and validation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.headers import (
    ARP_REPLY,
    ARP_REQUEST,
    An1Header,
    ArpPacket,
    BROADCAST_MAC,
    ETHERTYPE_ARP,
    ETHERTYPE_IP,
    EthernetHeader,
    HeaderError,
    IcmpHeader,
    Ipv4Header,
    PROTO_TCP,
    TcpHeader,
    TCP_ACK,
    TCP_SYN,
    UdpHeader,
    ip_to_str,
    mac_to_str,
    str_to_ip,
    str_to_mac,
)

MAC_A = str_to_mac("02:00:00:00:00:01")
MAC_B = str_to_mac("02:00:00:00:00:02")


# ----------------------------------------------------------------------
# Address helpers
# ----------------------------------------------------------------------


def test_mac_round_trip():
    assert str_to_mac(mac_to_str(MAC_A)) == MAC_A
    assert mac_to_str(BROADCAST_MAC) == "ff:ff:ff:ff:ff:ff"


def test_bad_mac_rejected():
    with pytest.raises(ValueError):
        str_to_mac("02:00:00")


def test_ip_round_trip():
    assert ip_to_str(str_to_ip("10.1.2.3")) == "10.1.2.3"
    assert str_to_ip("0.0.0.0") == 0
    assert str_to_ip("255.255.255.255") == 0xFFFFFFFF


@given(ip=st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_ip_round_trip_property(ip):
    assert str_to_ip(ip_to_str(ip)) == ip


def test_bad_ip_rejected():
    with pytest.raises(ValueError):
        str_to_ip("1.2.3")
    with pytest.raises(ValueError):
        str_to_ip("1.2.3.999")


# ----------------------------------------------------------------------
# Ethernet / AN1
# ----------------------------------------------------------------------


def test_ethernet_round_trip():
    header = EthernetHeader(MAC_A, MAC_B, ETHERTYPE_IP)
    data = header.pack()
    assert len(data) == EthernetHeader.LENGTH
    assert EthernetHeader.unpack(data) == header


def test_ethernet_short_data_rejected():
    with pytest.raises(HeaderError):
        EthernetHeader.unpack(b"\x00" * 10)


def test_ethernet_bad_mac_rejected():
    with pytest.raises(HeaderError):
        EthernetHeader(b"\x00" * 5, MAC_B, ETHERTYPE_IP)


def test_an1_round_trip_with_bqi():
    header = An1Header(dst=3, src=7, ethertype=ETHERTYPE_IP, bqi=42)
    data = header.pack()
    assert len(data) == An1Header.LENGTH
    parsed = An1Header.unpack(data)
    assert parsed == header
    assert parsed.bqi == 42


def test_an1_with_bqi_copies():
    header = An1Header(dst=3, src=7, ethertype=ETHERTYPE_IP)
    assert header.bqi == 0  # BQI zero is the protected-kernel default.
    rebadged = header.with_bqi(9)
    assert rebadged.bqi == 9
    assert rebadged.dst == header.dst


def test_an1_field_validation():
    with pytest.raises(HeaderError):
        An1Header(dst=0x10000, src=0, ethertype=0)


# ----------------------------------------------------------------------
# ARP
# ----------------------------------------------------------------------


def test_arp_round_trip():
    packet = ArpPacket(
        ARP_REQUEST, MAC_A, str_to_ip("10.0.0.1"), b"\x00" * 6, str_to_ip("10.0.0.2")
    )
    data = packet.pack()
    assert len(data) == ArpPacket.LENGTH
    assert ArpPacket.unpack(data) == packet


def test_arp_reply_round_trip():
    packet = ArpPacket(
        ARP_REPLY, MAC_B, str_to_ip("10.0.0.2"), MAC_A, str_to_ip("10.0.0.1")
    )
    assert ArpPacket.unpack(packet.pack()).oper == ARP_REPLY


def test_arp_bad_operation_rejected():
    with pytest.raises(HeaderError):
        ArpPacket(3, MAC_A, 0, MAC_B, 0)


# ----------------------------------------------------------------------
# IPv4
# ----------------------------------------------------------------------


def test_ipv4_round_trip_and_checksum():
    header = Ipv4Header(
        src=str_to_ip("10.0.0.1"),
        dst=str_to_ip("10.0.0.2"),
        protocol=PROTO_TCP,
        total_length=40,
        ident=99,
        ttl=32,
    )
    data = header.pack()
    assert len(data) == Ipv4Header.LENGTH
    parsed = Ipv4Header.unpack(data)
    assert parsed.src == header.src
    assert parsed.ident == 99
    assert parsed.ttl == 32


def test_ipv4_checksum_corruption_detected():
    header = Ipv4Header(
        src=str_to_ip("10.0.0.1"),
        dst=str_to_ip("10.0.0.2"),
        protocol=PROTO_TCP,
        total_length=40,
    )
    data = bytearray(header.pack())
    data[8] ^= 0xFF  # Corrupt the TTL.
    with pytest.raises(HeaderError):
        Ipv4Header.unpack(bytes(data))
    # Unverified parse still works (for diagnostics).
    parsed = Ipv4Header.unpack(bytes(data), verify=False)
    assert parsed.ttl != header.ttl


def test_ipv4_fragment_fields():
    header = Ipv4Header(
        src=1,
        dst=2,
        protocol=PROTO_TCP,
        total_length=100,
        flags=0x1,
        frag_offset=185,
    )
    parsed = Ipv4Header.unpack(header.pack())
    assert parsed.more_fragments
    assert not parsed.dont_fragment
    assert parsed.frag_offset == 185


def test_ipv4_rejects_non_v4():
    data = bytearray(
        Ipv4Header(src=1, dst=2, protocol=6, total_length=20).pack()
    )
    data[0] = (6 << 4) | 5  # Claim IPv6.
    with pytest.raises(HeaderError):
        Ipv4Header.unpack(bytes(data))


def test_ipv4_field_validation():
    with pytest.raises(HeaderError):
        Ipv4Header(src=1, dst=2, protocol=6, total_length=0x10000)
    with pytest.raises(HeaderError):
        Ipv4Header(src=1, dst=2, protocol=6, total_length=20, ttl=300)


# ----------------------------------------------------------------------
# UDP / TCP / ICMP
# ----------------------------------------------------------------------


def test_udp_round_trip():
    header = UdpHeader(sport=53, dport=1024, length=36, checksum=0xABCD)
    assert UdpHeader.unpack(header.pack()) == header


def test_udp_validation():
    with pytest.raises(HeaderError):
        UdpHeader(sport=70000, dport=1, length=8)
    with pytest.raises(HeaderError):
        UdpHeader(sport=1, dport=1, length=4)


def test_tcp_round_trip_no_options():
    header = TcpHeader(
        sport=1234,
        dport=80,
        seq=0xDEADBEEF,
        ack=0x12345678,
        flags=TCP_ACK,
        window=8192,
        checksum=0x55AA,
        urgent=0,
    )
    data = header.pack()
    assert len(data) == TcpHeader.LENGTH
    assert TcpHeader.unpack(data) == header


def test_tcp_round_trip_with_mss_option():
    header = TcpHeader(
        sport=1,
        dport=2,
        seq=100,
        ack=0,
        flags=TCP_SYN,
        window=4096,
        mss=1460,
    )
    data = header.pack()
    assert len(data) == TcpHeader.LENGTH + 4
    parsed = TcpHeader.unpack(data)
    assert parsed.mss == 1460
    assert parsed.syn


def test_tcp_flags_properties():
    header = TcpHeader(
        sport=1, dport=2, seq=0, ack=0, flags=TCP_SYN | TCP_ACK, window=0
    )
    assert header.syn and header.ack_flag
    assert not header.fin and not header.rst


def test_tcp_bad_offset_rejected():
    data = bytearray(
        TcpHeader(sport=1, dport=2, seq=0, ack=0, flags=0, window=0).pack()
    )
    data[12] = 0x30  # Offset 3 words < minimum 5.
    with pytest.raises(HeaderError):
        TcpHeader.unpack(bytes(data))


def test_tcp_truncated_option_rejected():
    base = TcpHeader(sport=1, dport=2, seq=0, ack=0, flags=0, window=0).pack()
    # A 6-word header whose option claims 5 bytes but only 4 exist.
    data = bytearray(base + b"\x03\x05\x01\x00")
    data[12] = 6 << 4
    with pytest.raises(HeaderError):
        TcpHeader.unpack(bytes(data))


def test_tcp_bad_mss_length_rejected():
    base = TcpHeader(sport=1, dport=2, seq=0, ack=0, flags=0, window=0).pack()
    # MSS option with a wrong length byte.
    data = bytearray(base + b"\x02\x03\x05\x00")
    data[12] = 6 << 4
    with pytest.raises(HeaderError):
        TcpHeader.unpack(bytes(data))


def test_tcp_nop_padding_parsed():
    base = bytearray(
        TcpHeader(sport=1, dport=2, seq=0, ack=0, flags=0, window=0).pack()
    )
    options = b"\x01\x01\x02\x04\x05\xb4\x00\x00"  # NOP NOP MSS(1460) END.
    data = bytearray(base + options)
    data[12] = (7 << 4)  # 28-byte header.
    parsed = TcpHeader.unpack(bytes(data))
    assert parsed.mss == 1460


def test_icmp_round_trip():
    header = IcmpHeader(icmp_type=8, code=0, ident=77, seq=3)
    parsed = IcmpHeader.unpack(header.pack())
    assert parsed.icmp_type == 8
    assert parsed.ident == 77
    assert parsed.seq == 3
