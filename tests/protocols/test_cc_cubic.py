"""Scripted ACK traces through CUBIC: the cubic growth curve, the
concave→convex crossover at t = K, fast convergence, and the
TCP-friendly floor."""

import math

from repro.protocols.tcp.cc import make_cc
from repro.protocols.tcp.cc.base import MAX_WINDOW

MSS = 1000


def cubic_after_loss(w_max_segments: int):
    """A Cubic instance that just took a loss at ``w_max_segments``
    and processed the first congestion-avoidance ACK at t=0."""
    cc = make_cc("cubic", mss=MSS)
    cc.cwnd = w_max_segments * MSS
    cc.on_duplicate_ack(w_max_segments * MSS)
    cc.on_duplicate_ack(w_max_segments * MSS)
    assert cc.on_duplicate_ack(w_max_segments * MSS) is True
    cc.on_new_ack(MSS, now=0.0)  # Exits recovery (cwnd = ssthresh).
    cc.on_new_ack(MSS, now=0.0)  # First CA ack: starts the epoch.
    return cc


def test_loss_records_plateau_and_cuts_beta():
    cc = make_cc("cubic", mss=MSS)
    cc.cwnd = 20 * MSS
    cc.on_duplicate_ack(20 * MSS)
    cc.on_duplicate_ack(20 * MSS)
    assert cc.on_duplicate_ack(20 * MSS) is True
    assert cc.w_max == 20.0  # Plateau in MSS units.
    assert cc.ssthresh == int(20 * MSS * 0.7)  # β = 0.7 cut.
    assert cc.cwnd == cc.ssthresh + 3 * MSS  # Inflated like Reno.
    cc.on_new_ack(MSS, now=0.0)
    assert cc.cwnd == cc.ssthresh  # Deflation on the recovery ACK.


def test_epoch_k_matches_rfc_formula():
    cc = cubic_after_loss(20)
    expected_k = (20 * (1 - 0.7) / 0.4) ** (1 / 3)
    assert math.isclose(cc.k, expected_k, rel_tol=1e-12)
    assert cc.epoch_start == 0.0


def test_concave_then_convex_crossover():
    """W(t) approaches w_max from below for t < K (concave), crosses it
    at t = K, and accelerates past it for t > K (convex)."""
    cc = cubic_after_loss(20)
    k = cc.k
    w_max_bytes = 20 * MSS
    # Concave region: below the plateau, growth decelerating.
    early = cc.w_cubic(0.25 * k)
    late = cc.w_cubic(0.75 * k)
    assert early < late < w_max_bytes
    assert (late - early) < (early - cc.w_cubic(-0.25 * k))
    # The curve regains exactly w_max at t = K.
    assert math.isclose(cc.w_cubic(k), w_max_bytes, rel_tol=1e-9)
    # Convex region: above the plateau, growth accelerating.
    beyond = cc.w_cubic(1.5 * k)
    far = cc.w_cubic(2.0 * k)
    assert w_max_bytes < beyond < far
    assert (far - beyond) > (beyond - cc.w_cubic(k))


def test_acked_window_tracks_curve_through_crossover():
    """Driving ACKs through the epoch, cwnd chases the curve: still
    below the old plateau before K, above it after K."""
    cc = cubic_after_loss(20)
    k = cc.k
    w_max_bytes = 20 * MSS
    for now in (0.2 * k, 0.4 * k, 0.6 * k, 0.8 * k):
        for _ in range(8):
            cc.on_new_ack(MSS, now=now)
    assert cc.cwnd < w_max_bytes  # Concave phase: under the plateau.
    for now in (1.2 * k, 1.5 * k, 2.0 * k):
        for _ in range(8):
            cc.on_new_ack(MSS, now=now)
    assert cc.cwnd > w_max_bytes  # Convex phase: probing beyond it.
    assert cc.cwnd <= MAX_WINDOW


def test_fast_convergence_deflates_shrinking_plateau():
    cc = cubic_after_loss(20)
    # Second loss below the last plateau: w_max is deflated so the
    # flow cedes its share faster.
    cc.cwnd = 16 * MSS
    cc.dupacks = 0
    cc.on_duplicate_ack(16 * MSS)
    cc.on_duplicate_ack(16 * MSS)
    assert cc.on_duplicate_ack(16 * MSS) is True
    assert math.isclose(cc.w_max, 16 * (1 + 0.7) / 2)  # < 16: deflated.
    assert cc.w_max < 16


def test_no_fast_convergence_keeps_plateau():
    cc = make_cc("cubic", mss=MSS)
    cc.fast_convergence = False
    cc.cwnd = 20 * MSS
    for _ in range(3):
        cc.on_duplicate_ack(20 * MSS)
    cc.w_max = 30.0  # Pretend an even larger prior plateau...
    cc.cwnd = 16 * MSS
    cc.dupacks = 0
    for _ in range(3):
        cc.on_duplicate_ack(16 * MSS)
    assert cc.w_max == 16.0  # ...still overwritten, not deflated.


def test_tcp_friendly_floor_at_small_windows():
    """At small windows the cubic term is minuscule; the Reno estimate
    w_est must carry growth instead of the curve's 1%-MSS creep."""
    cc = cubic_after_loss(4)
    start = cc.cwnd
    # Many ACKs at t ≈ 0: the cubic target barely moves, but w_est
    # grows like an AIMD flow (≈ 0.53 MSS per window of ACKs).
    for i in range(200):
        cc.on_new_ack(MSS, now=1e-6 * i)
    assert cc.cwnd >= int(cc.w_est)
    assert cc.cwnd > start + 10 * MSS  # Far beyond 1%-creep territory.


def test_exit_slow_start_without_loss_starts_convex():
    """Leaving slow start with no plateau above: K = 0, convex probing
    from the current window."""
    cc = make_cc("cubic", mss=MSS)
    cc.ssthresh = 4 * MSS
    cc.cwnd = 8 * MSS  # Above ssthresh, no loss ever happened.
    cc.on_new_ack(MSS, now=1.0)
    assert cc.epoch_start == 1.0
    assert cc.k == 0.0
    assert cc.w_max == 8.0  # The plateau is wherever we are now.


def test_timeout_collapses_and_starts_new_epoch():
    cc = cubic_after_loss(20)
    cc.on_timeout(10 * MSS, now=5.0)
    assert cc.cwnd == MSS
    assert cc.epoch_start is None  # Next CA ack restarts the epoch.
    assert cc.dupacks == 0
