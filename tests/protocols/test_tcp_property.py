"""Property-based tests: TCP delivers exactly the sent stream, in order,
under adversarial network conditions."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.protocols.tcp import State, TcpConfig

from .tcp_harness import TcpPair

#: Keep RTO small so lossy runs converge quickly in simulated time.
FAST = dict(msl=0.2, min_rto=0.3, initial_rto=0.5, mss=300)


def make_pair(drop_set_ab=(), drop_set_ba=(), dup_set=(), latencies=None):
    def drop(direction, index, segment):
        if direction == "a->b":
            return index in drop_set_ab
        return index in drop_set_ba

    def dup(direction, index, segment):
        return direction == "a->b" and index in dup_set

    latency_fn = None
    if latencies:
        def latency_fn(direction, index, segment):
            return 0.005 + latencies[index % len(latencies)]

    return TcpPair(
        config_a=TcpConfig(**FAST),
        config_b=TcpConfig(**FAST),
        drop=drop,
        dup=dup,
        latency_fn=latency_fn,
    )


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    payload=st.binary(min_size=1, max_size=5000),
    drops_ab=st.sets(st.integers(min_value=0, max_value=40), max_size=8),
    drops_ba=st.sets(st.integers(min_value=0, max_value=40), max_size=8),
)
def test_lossy_transfer_delivers_exact_stream(payload, drops_ab, drops_ba):
    pair = make_pair(drop_set_ab=drops_ab, drop_set_ba=drops_ba)
    pair.connect(run=False)
    pair.run(until=120.0)
    if not (pair.a.connected and pair.b.connected):
        # Handshake segments were among the dropped indices and the
        # retry budget ran out only if we stopped too early; run longer.
        pair.run(until=600.0)
    assert pair.a.connected and pair.b.connected
    pair.app_send("a", payload)
    pair.run(until=1200.0)
    assert bytes(pair.b.received) == payload


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    payload_a=st.binary(min_size=1, max_size=3000),
    payload_b=st.binary(min_size=1, max_size=3000),
    drops=st.sets(st.integers(min_value=0, max_value=30), max_size=6),
    dups=st.sets(st.integers(min_value=0, max_value=30), max_size=6),
)
def test_bidirectional_lossy_duplicated_transfer(payload_a, payload_b, drops, dups):
    pair = make_pair(drop_set_ab=drops, drop_set_ba=set(), dup_set=dups)
    pair.connect(run=False)
    pair.run(until=120.0)
    assert pair.a.connected and pair.b.connected
    pair.app_send("a", payload_a)
    pair.app_send("b", payload_b)
    pair.run(until=1200.0)
    assert bytes(pair.b.received) == payload_a
    assert bytes(pair.a.received) == payload_b


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    payload=st.binary(min_size=1, max_size=4000),
    latencies=st.lists(
        st.floats(min_value=0.0, max_value=0.05, allow_nan=False),
        min_size=1,
        max_size=16,
    ),
)
def test_reordering_never_corrupts_stream(payload, latencies):
    pair = make_pair(latencies=latencies)
    pair.connect(run=False)
    pair.run(until=120.0)
    pair.app_send("a", payload)
    pair.run(until=1200.0)
    assert bytes(pair.b.received) == payload


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    chunks=st.lists(st.binary(min_size=1, max_size=800), min_size=1, max_size=8),
    drops=st.sets(st.integers(min_value=0, max_value=30), max_size=5),
)
def test_chunked_writes_with_loss_then_clean_close(chunks, drops):
    pair = make_pair(drop_set_ab=drops)
    pair.connect(run=False)
    pair.run(until=120.0)
    for chunk in chunks:
        pair.app_send("a", chunk)
        pair.step_time(0.02)
    pair.app_close("a")
    pair.run(until=1200.0)
    pair.app_close("b")
    pair.run(until=pair.now + 600.0)
    assert bytes(pair.b.received) == b"".join(chunks)
    assert pair.b.got_fin
    assert pair.a.machine.state is State.CLOSED
    assert pair.b.machine.state is State.CLOSED


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    payload=st.binary(min_size=1, max_size=2000),
    rcv_buffer=st.integers(min_value=600, max_value=4000),
    read_chunk=st.integers(min_value=1, max_value=2000),
)
def test_flow_control_with_slow_reader(payload, rcv_buffer, read_chunk):
    """A reader that drains in arbitrary chunks never loses or reorders."""
    pair = TcpPair(
        config_a=TcpConfig(**FAST),
        config_b=TcpConfig(msl=0.2, min_rto=0.3, initial_rto=0.5, mss=300,
                           rcv_buffer=rcv_buffer),
    )
    pair.connect()
    pair.b.auto_read = False
    pair.app_send("a", payload)
    # Drain in fixed chunks with time passing between reads.
    for _ in range(200):
        pair.step_time(0.1)
        pending = pair.b.machine.tcb.rcv_user
        if pending:
            pair.app_read("b", min(read_chunk, pending))
        if len(pair.b.received) == len(payload) and pair.b.machine.tcb.rcv_user == 0:
            break
    pair.run(until=pair.now + 120.0)
    assert bytes(pair.b.received) == payload


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(iss_a=st.integers(min_value=0, max_value=(1 << 32) - 1),
       iss_b=st.integers(min_value=0, max_value=(1 << 32) - 1),
       payload=st.binary(min_size=1, max_size=3000))
def test_any_initial_sequence_numbers_work(iss_a, iss_b, payload):
    pair = TcpPair(
        config_a=TcpConfig(**FAST),
        config_b=TcpConfig(**FAST),
        iss_a=iss_a,
        iss_b=iss_b,
    )
    pair.connect()
    pair.app_send("a", payload)
    pair.run(until=600.0)
    assert bytes(pair.b.received) == payload
