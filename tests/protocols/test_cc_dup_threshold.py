"""The sabotage knob reaches every algorithm: ``dup_ack_threshold``
flows from TcpConfig through the registry into each implementation,
and a stack mis-tuned to threshold 1 is convicted by the campaign's
``retx-justified`` checker whichever algorithm is running."""

import pytest

from repro.check.campaign import CellSpec, run_cell
from repro.protocols.tcp import TcpConfig
from repro.protocols.tcp.cc import CC_ALGORITHMS, make_cc
from repro.protocols.tcp.tcb import Tcb

ALGOS = CC_ALGORITHMS + ("tahoe",)


@pytest.mark.parametrize("name", ALGOS)
def test_make_cc_threads_threshold(name):
    cc = make_cc(name, mss=1000, dup_threshold=1)
    assert cc.dup_threshold == 1
    # The very first duplicate ACK convicts — uniformly, even for the
    # rate-based model (which retransmits without cutting its window).
    assert cc.on_duplicate_ack(flight_size=8000) is True


@pytest.mark.parametrize("name", ALGOS)
def test_conformant_threshold_needs_three(name):
    cc = make_cc(name, mss=1000)
    assert cc.dup_threshold == 3
    assert cc.on_duplicate_ack(8000) is False
    assert cc.on_duplicate_ack(8000) is False
    assert cc.on_duplicate_ack(8000) is True


@pytest.mark.parametrize("name", ALGOS)
def test_tcb_threads_threshold_from_config(name):
    flavor = "tahoe" if name == "tahoe" else "reno"
    cc_name = "reno" if name == "tahoe" else name
    config = TcpConfig(cc=cc_name, flavor=flavor, dup_ack_threshold=2)
    tcb = Tcb(local_port=1, remote_port=2, config=config)
    assert tcb.cc.dup_threshold == 2
    if name == "tahoe":
        assert tcb.cc.flavor == "tahoe"


@pytest.mark.parametrize("cc", CC_ALGORITHMS)
def test_sabotaged_stack_convicted_per_algorithm(cc):
    """End-to-end: threshold 1 + duplicated ACKs on the wire means
    premature retransmissions, and the campaign convicts the run no
    matter which algorithm is driving the window."""
    spec = CellSpec(
        topology="loopback",
        organization="userlib",
        seed=1,
        drop_rate=0.05,
        duplicate_rate=0.2,
        transfers=2,
        payload_bytes=16_384,
        deadline=60.0,
        dup_ack_threshold=1,
        cc=cc,
    )
    result = run_cell(spec)
    assert not result.ok, f"{cc}: sabotaged stack escaped conviction"
    assert any(
        v.invariant == "retx-justified" for v in result.violations
    ), f"{cc}: wrong invariant convicted: {result.violations}"


@pytest.mark.parametrize("cc", CC_ALGORITHMS)
def test_conformant_stack_passes_same_cell(cc):
    """The same hostile cell with the conformant threshold is clean —
    the conviction above is the knob's doing, not the faults'."""
    spec = CellSpec(
        topology="loopback",
        organization="userlib",
        seed=1,
        drop_rate=0.05,
        duplicate_rate=0.2,
        transfers=2,
        payload_bytes=16_384,
        deadline=60.0,
        cc=cc,
    )
    result = run_cell(spec)
    assert result.ok, f"{cc}: {result.violations}"
