"""A deterministic mini event loop for testing the sans-io TCP machine.

Connects two :class:`TcpMachine` endpoints through an in-memory network
with injectable loss, duplication, reordering, and per-segment latency.
Independent of :mod:`repro.sim` on purpose: it demonstrates (and tests)
that the protocol core is genuinely sans-io.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Callable, Optional

from repro.protocols.tcp import (
    AppAbort,
    AppClose,
    AppRead,
    AppSend,
    CancelTimer,
    DeliverData,
    DeliverFin,
    EmitSegment,
    NotifyClosed,
    NotifyConnected,
    Segment,
    SegmentArrives,
    SendSpaceAvailable,
    SetTimer,
    TcpConfig,
    TcpMachine,
    TimerExpires,
)

#: Segment-indexed fault hook: (direction, index, segment) -> bool.
FaultFn = Callable[[str, int, Segment], bool]
#: Latency hook: (direction, index, segment) -> seconds.
LatencyFn = Callable[[str, int, Segment], float]


class Endpoint:
    """One machine plus its observed outputs."""

    def __init__(self, name: str, machine: TcpMachine) -> None:
        self.name = name
        self.machine = machine
        self.received = bytearray()
        self.got_fin = False
        self.connected = False
        self.closed_reason: Optional[str] = None
        self.emitted: list[Segment] = []
        #: name -> generation; a timer event is live only if generations match.
        self.timer_gen: dict[str, int] = {}
        self.auto_read = True  # Immediately consume delivered data.


class TcpPair:
    """Two endpoints, a faulty wire, and a clock."""

    def __init__(
        self,
        config_a: Optional[TcpConfig] = None,
        config_b: Optional[TcpConfig] = None,
        latency: float = 0.005,
        drop: Optional[FaultFn] = None,
        dup: Optional[FaultFn] = None,
        latency_fn: Optional[LatencyFn] = None,
        iss_a: int = 1000,
        iss_b: int = 9_000_000,
    ) -> None:
        config_a = config_a or TcpConfig(msl=0.5)
        config_b = config_b or TcpConfig(msl=0.5)
        self.a = Endpoint("a", TcpMachine(5000, 80, config=config_a, iss=iss_a))
        self.b = Endpoint("b", TcpMachine(80, 5000, config=config_b, iss=iss_b))
        self.latency = latency
        self.drop = drop or (lambda direction, index, seg: False)
        self.dup = dup or (lambda direction, index, seg: False)
        self.latency_fn = latency_fn
        self.now = 0.0
        self._queue: list[tuple[float, int, str, object, object]] = []
        self._counter = count()
        self._tx_index = {"a->b": 0, "b->a": 0}
        self.wire_log: list[tuple[float, str, Segment]] = []
        self.dropped: list[tuple[str, int, Segment]] = []

    # ------------------------------------------------------------------
    # Driving the pair
    # ------------------------------------------------------------------

    def connect(self, run: bool = True) -> None:
        """Passive open on b, active open on a; optionally run to quiet."""
        self._do(self.b, self.b.machine.open(self.now, active=False))
        self._do(self.a, self.a.machine.open(self.now, active=True))
        if run:
            self.run()
            assert self.a.connected and self.b.connected, "handshake failed"

    def app_send(self, who: str, data: bytes) -> None:
        endpoint = self._endpoint(who)
        self._do(endpoint, endpoint.machine.handle(AppSend(data), self.now))

    def app_close(self, who: str) -> None:
        endpoint = self._endpoint(who)
        self._do(endpoint, endpoint.machine.handle(AppClose(), self.now))

    def app_abort(self, who: str) -> None:
        endpoint = self._endpoint(who)
        self._do(endpoint, endpoint.machine.handle(AppAbort(), self.now))

    def app_read(self, who: str, nbytes: int) -> None:
        endpoint = self._endpoint(who)
        self._do(endpoint, endpoint.machine.handle(AppRead(nbytes), self.now))

    def inject(self, who: str, segment: Segment) -> None:
        """Deliver a hand-crafted segment to an endpoint immediately."""
        endpoint = self._endpoint(who)
        self._do(
            endpoint, endpoint.machine.handle(SegmentArrives(segment), self.now)
        )

    def run(self, until: Optional[float] = None, max_events: int = 100_000) -> None:
        """Process events until the queue empties (or ``until`` passes)."""
        events = 0
        while self._queue:
            time, _, kind, target, payload = self._queue[0]
            if kind == "timer":
                name, generation = payload
                if target.timer_gen.get(name) != generation:
                    # Stale (cancelled/superseded) timer: discard without
                    # advancing the clock.
                    heapq.heappop(self._queue)
                    continue
            if until is not None and time > until:
                break
            events += 1
            if events > max_events:
                raise RuntimeError("pair did not quiesce (livelock?)")
            heapq.heappop(self._queue)
            self.now = max(self.now, time)
            endpoint = target
            if kind == "deliver":
                self._do(
                    endpoint,
                    endpoint.machine.handle(SegmentArrives(payload), self.now),
                )
            elif kind == "timer":
                name, generation = payload
                endpoint.timer_gen[name] = generation + 1  # Consumed.
                self._do(
                    endpoint,
                    endpoint.machine.handle(TimerExpires(name), self.now),
                )
        if until is not None:
            self.now = max(self.now, until)

    def step_time(self, dt: float) -> None:
        """Run all events up to now+dt."""
        self.run(until=self.now + dt)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _endpoint(self, who: str) -> Endpoint:
        if who == "a":
            return self.a
        if who == "b":
            return self.b
        raise ValueError(f"unknown endpoint {who!r}")

    def _peer(self, endpoint: Endpoint) -> Endpoint:
        return self.b if endpoint is self.a else self.a

    def _do(self, endpoint: Endpoint, actions) -> None:
        for action in actions:
            if isinstance(action, EmitSegment):
                self._transmit(endpoint, action.segment)
            elif isinstance(action, SetTimer):
                generation = endpoint.timer_gen.get(action.name, 0) + 1
                endpoint.timer_gen[action.name] = generation
                heapq.heappush(
                    self._queue,
                    (
                        self.now + action.delay,
                        next(self._counter),
                        "timer",
                        endpoint,
                        (action.name, generation),
                    ),
                )
            elif isinstance(action, CancelTimer):
                endpoint.timer_gen[action.name] = (
                    endpoint.timer_gen.get(action.name, 0) + 1
                )
            elif isinstance(action, DeliverData):
                endpoint.received.extend(action.data)
                if endpoint.auto_read:
                    self._do(
                        endpoint,
                        endpoint.machine.handle(
                            AppRead(len(action.data)), self.now
                        ),
                    )
            elif isinstance(action, DeliverFin):
                endpoint.got_fin = True
            elif isinstance(action, NotifyConnected):
                endpoint.connected = True
            elif isinstance(action, NotifyClosed):
                endpoint.closed_reason = action.reason
            elif isinstance(action, SendSpaceAvailable):
                pass
            else:
                raise AssertionError(f"unhandled action {action!r}")

    def _transmit(self, endpoint: Endpoint, segment: Segment) -> None:
        endpoint.emitted.append(segment)
        direction = "a->b" if endpoint is self.a else "b->a"
        index = self._tx_index[direction]
        self._tx_index[direction] = index + 1
        self.wire_log.append((self.now, direction, segment))
        copies = 1
        if self.dup(direction, index, segment):
            copies = 2
        if self.drop(direction, index, segment):
            self.dropped.append((direction, index, segment))
            copies = 0
        delay = (
            self.latency_fn(direction, index, segment)
            if self.latency_fn
            else self.latency
        )
        peer = self._peer(endpoint)
        for _ in range(copies):
            heapq.heappush(
                self._queue,
                (self.now + delay, next(self._counter), "deliver", peer, segment),
            )
