"""Additional TCP machine edge cases beyond the core behaviour suite."""

import pytest

from repro.net.headers import TCP_ACK, TCP_RST
from repro.protocols.tcp import (
    AppSend,
    Segment,
    State,
    TcpConfig,
    TcpError,
)

from .tcp_harness import TcpPair


def test_half_close_peer_keeps_sending():
    """After our FIN, the peer may keep sending data (half-close)."""
    pair = TcpPair()
    pair.connect()
    pair.app_close("a")  # a: FIN -> FIN_WAIT_2; b: CLOSE_WAIT.
    pair.run(until=pair.now + 1.0)
    assert pair.b.machine.state is State.CLOSE_WAIT
    # b keeps sending; a must accept and ACK it.
    pair.app_send("b", b"late data after your FIN")
    pair.run(until=pair.now + 1.0)
    assert bytes(pair.a.received) == b"late data after your FIN"
    pair.app_close("b")
    pair.run(until=pair.now + 30.0)
    assert pair.a.machine.state is State.CLOSED
    assert pair.b.machine.state is State.CLOSED


def test_send_in_close_wait_allowed():
    pair = TcpPair()
    pair.connect()
    pair.app_close("a")
    pair.run(until=pair.now + 1.0)
    # b is in CLOSE_WAIT and may still send.
    assert pair.b.machine.state is State.CLOSE_WAIT
    pair.app_send("b", b"fine")
    pair.run(until=pair.now + 1.0)
    assert bytes(pair.a.received) == b"fine"


def test_persist_interval_backs_off():
    pair = TcpPair(
        config_a=TcpConfig(mss=500, msl=0.5),
        config_b=TcpConfig(mss=500, rcv_buffer=1000, msl=0.5),
    )
    pair.connect()
    pair.b.auto_read = False
    pair.app_send("a", b"p" * 4000)
    pair.run(until=pair.now + 60.0)
    # Probes fired, but sub-linearly (exponential backoff capped at 60s).
    probes = pair.a.machine.stats["probes_sent"]
    assert 1 <= probes <= 8


def test_receiver_trims_beyond_window():
    """Payload beyond the advertised window is trimmed, not stored."""
    pair = TcpPair(
        config_a=TcpConfig(mss=1460, msl=0.5),
        config_b=TcpConfig(mss=1460, rcv_buffer=1000, msl=0.5),
    )
    pair.connect()
    pair.b.auto_read = False
    tcb_b = pair.b.machine.tcb
    # Craft an oversized in-window segment by hand.
    seg = Segment(
        sport=5000, dport=80,
        seq=tcb_b.rcv_nxt, ack=tcb_b.snd_nxt,
        flags=TCP_ACK, window=1000,
        payload=b"z" * 2000,  # Twice the receiver's whole buffer.
    )
    pair.inject("b", seg)
    assert tcb_b.rcv_user <= 1000


def test_peer_mss_larger_than_ours_is_capped():
    pair = TcpPair(
        config_a=TcpConfig(mss=536, msl=0.5),
        config_b=TcpConfig(mss=1460, msl=0.5),
    )
    pair.connect()
    assert pair.a.machine.tcb.mss == 536
    assert pair.b.machine.tcb.mss == 536
    pair.app_send("b", b"q" * 5000)
    pair.run()
    data_segs = [
        seg for _, d, seg in pair.wire_log if d == "b->a" and seg.payload
    ]
    assert all(len(seg.payload) <= 536 for seg in data_segs)


def test_blind_rst_requires_in_window_sequence():
    """A RST with the exact next sequence kills the connection; one a
    window away does not (RFC 793's acceptability rule)."""
    pair = TcpPair()
    pair.connect()
    tcb = pair.a.machine.tcb
    outside = Segment(
        sport=80, dport=5000,
        seq=(tcb.rcv_nxt + tcb.rcv_wnd + 1000) % (1 << 32),
        ack=0, flags=TCP_RST, window=0,
    )
    pair.inject("a", outside)
    assert pair.a.machine.state is State.ESTABLISHED
    exact = Segment(
        sport=80, dport=5000, seq=tcb.rcv_nxt, ack=0, flags=TCP_RST, window=0,
    )
    pair.inject("a", exact)
    assert pair.a.machine.state is State.CLOSED


def test_listener_close_then_syn_gets_no_answer():
    pair = TcpPair()
    pair._do(pair.b, pair.b.machine.open(0.0, active=False))
    pair._do(pair.b, pair.b.machine.handle(
        __import__("repro.protocols.tcp", fromlist=["AppClose"]).AppClose(),
        0.0,
    ))
    assert pair.b.machine.state is State.CLOSED


def test_write_larger_than_buffer_is_chunked_by_runner_not_machine():
    """The machine rejects oversized writes; callers must respect
    send_buffer_space (the runner layer does the chunking)."""
    pair = TcpPair(config_a=TcpConfig(snd_buffer=2048, msl=0.5))
    pair.connect()
    with pytest.raises(TcpError):
        pair.a.machine.handle(AppSend(b"x" * 4096), pair.now)


def test_data_before_established_is_queued():
    """Data written during SYN_SENT is sent once the handshake ends."""
    pair = TcpPair()
    pair._do(pair.b, pair.b.machine.open(0.0, active=False))
    pair._do(pair.a, pair.a.machine.open(0.0, active=True))
    # Queue data immediately, before the SYN|ACK returns.
    pair._do(pair.a, pair.a.machine.handle(AppSend(b"early"), pair.now))
    pair.run()
    assert pair.a.connected
    assert bytes(pair.b.received) == b"early"


def test_duplicate_fin_handled_idempotently():
    pair = TcpPair()
    pair.connect()
    pair.app_close("b")
    pair.run(until=pair.now + 1.0)
    assert pair.a.machine.state is State.CLOSE_WAIT
    rcv_nxt_after_fin = pair.a.machine.tcb.rcv_nxt
    fin_seg = next(
        seg for _, d, seg in pair.wire_log if d == "b->a" and seg.fin
    )
    pair.inject("a", fin_seg)  # Retransmitted FIN.
    assert pair.a.machine.tcb.rcv_nxt == rcv_nxt_after_fin
    assert pair.a.machine.state is State.CLOSE_WAIT


def test_simultaneous_open():
    """Both ends active-open at once: SYN_SENT -> SYN_RCVD -> ESTABLISHED
    (RFC 793 figure 8), and the connection then carries data normally."""
    pair = TcpPair()
    pair._do(pair.a, pair.a.machine.open(pair.now, active=True))
    pair._do(pair.b, pair.b.machine.open(pair.now, active=True))
    pair.run(until=pair.now + 5.0)
    assert pair.a.machine.state is State.ESTABLISHED
    assert pair.b.machine.state is State.ESTABLISHED
    assert (State.SYN_SENT, State.SYN_RCVD) in pair.a.machine.transitions
    assert (State.SYN_SENT, State.SYN_RCVD) in pair.b.machine.transitions
    pair.app_send("a", b"hello from a")
    pair.run(until=pair.now + 1.0)
    assert bytes(pair.b.received) == b"hello from a"


def test_simultaneous_close():
    """FINs cross on the wire: FIN_WAIT_1 -> CLOSING -> TIME_WAIT on both
    sides, and both reach CLOSED after 2*MSL."""
    pair = TcpPair()
    pair.connect()
    pair.app_close("a")
    pair.app_close("b")  # Before a's FIN arrives.
    pair.run(until=pair.now + 5.0)
    assert (State.FIN_WAIT_1, State.CLOSING) in pair.a.machine.transitions
    assert (State.FIN_WAIT_1, State.CLOSING) in pair.b.machine.transitions
    assert pair.a.machine.state is State.CLOSED
    assert pair.b.machine.state is State.CLOSED
    assert pair.a.closed_reason == "done"
    assert pair.b.closed_reason == "done"


def test_half_close_data_delivered_with_fin():
    """Data queued right before close is delivered ahead of the FIN, and
    the half-closed side still receives the peer's response."""
    pair = TcpPair()
    pair.connect()
    pair.app_send("a", b"request")
    pair.app_close("a")
    pair.run(until=pair.now + 2.0)
    assert bytes(pair.b.received) == b"request"
    assert pair.b.got_fin
    assert pair.b.machine.state is State.CLOSE_WAIT
    # b answers from CLOSE_WAIT; a, already in FIN_WAIT_2, must accept it.
    pair.app_send("b", b"response")
    pair.run(until=pair.now + 2.0)
    assert bytes(pair.a.received) == b"response"
    assert pair.a.machine.state is State.FIN_WAIT_2
    pair.app_close("b")
    pair.run(until=pair.now + 30.0)
    assert pair.a.machine.state is State.CLOSED
    assert pair.b.machine.state is State.CLOSED
