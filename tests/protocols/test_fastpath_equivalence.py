"""Fast-path equivalence and cache-invalidation suite.

The hot-path optimisations claim to be *invisible* on the wire: header
prediction, the demux last-flow memo, the router next-hop cache, and
the coalesced timer wiring each bypass a general mechanism only when
the outcome is provably the same.  This suite holds them to it:

* fuzzed loss/corruption/duplication/delay runs are raced with the
  fast path on vs off and must produce identical wire digests and
  identical delivered byte streams;
* the same race covers the legacy engine-event timer wiring vs the
  coalesced wheels;
* the next-hop cache and the demux memo (including the miss memo) get
  unit coverage of their invalidation rules.
"""

import pytest

from repro.check import wire_digest
from repro.check.campaign import CellSpec, build_bed
from repro.check.evidence import collect_evidence
from repro.costs import DECSTATION_5000_200
from repro.net.fabric.routing import RouteTable
from repro.net.headers import (
    ETHERTYPE_IP,
    EthernetHeader,
    Ipv4Header,
    PROTO_TCP,
    TCP_ACK,
    str_to_ip,
    str_to_mac,
)
from repro.netio import FlowKey, FlowTable
from repro.org.runner import MachineRunner
from repro.protocols.tcp import Segment, encode_segment

COSTS = DECSTATION_5000_200
IP_A = str_to_ip("10.0.0.1")
IP_B = str_to_ip("10.0.0.2")
MAC_A = str_to_mac("02:00:00:00:00:01")
MAC_B = str_to_mac("02:00:00:00:00:02")


def tcp_frame(sport, dport, src_ip=IP_A, dst_ip=IP_B):
    seg = Segment(
        sport=sport, dport=dport, seq=1, ack=1, flags=TCP_ACK,
        window=64, payload=b"payload",
    )
    tcp = encode_segment(seg, src_ip, dst_ip)
    ip = Ipv4Header(
        src=src_ip, dst=dst_ip, protocol=PROTO_TCP,
        total_length=Ipv4Header.LENGTH + len(tcp),
    ).pack() + tcp
    return EthernetHeader(MAC_B, MAC_A, ETHERTYPE_IP).pack() + ip


def _run(spec: CellSpec):
    """One deterministic run: (wire digest, delivered byte streams)."""
    evidence = collect_evidence(
        build_bed(spec),
        transfers=spec.transfers,
        payload_bytes=spec.payload_bytes,
        chunk_size=spec.chunk_size,
        seed=spec.seed,
        deadline=spec.deadline,
    )
    streams = [(t.payload, bytes(t.received)) for t in evidence.transfers]
    assert all(t.complete for t in evidence.transfers)
    return wire_digest(evidence), streams


FUZZ_CELLS = [
    # (seed, drop, corrupt, duplicate, max_extra_delay, topology)
    (11, 0.0, 0.0, 0.0, 0.0, "loopback"),
    (12, 0.03, 0.0, 0.0, 0.0, "loopback"),
    (13, 0.0, 0.02, 0.02, 0.0, "loopback"),
    (14, 0.02, 0.01, 0.02, 0.002, "loopback"),
    (15, 0.02, 0.0, 0.02, 0.001, "dumbbell"),
]


@pytest.mark.parametrize(
    "seed,drop,corrupt,duplicate,delay,topology", FUZZ_CELLS
)
def test_fuzz_equivalence_fastpath_on_vs_off(
    seed, drop, corrupt, duplicate, delay, topology
):
    """Header prediction must not change one byte of wire behaviour.

    Identical CellSpecs differing only in ``header_prediction`` must
    yield the same segment-by-segment wire digest and the same bytes
    delivered to the receiving sockets, under every fault mix.
    """
    base = dict(
        topology=topology,
        seed=seed,
        drop_rate=drop,
        corrupt_rate=corrupt,
        duplicate_rate=duplicate,
        max_extra_delay=delay,
        transfers=1,
        payload_bytes=8192,
        deadline=30.0,
    )
    digest_on, streams_on = _run(CellSpec(header_prediction=True, **base))
    digest_off, streams_off = _run(CellSpec(header_prediction=False, **base))
    assert digest_on == digest_off
    assert streams_on == streams_off
    for payload, received in streams_on:
        assert received == payload


def test_fastpath_actually_engages_on_clean_run():
    """The equivalence above is vacuous if the fast path never fires:
    on a clean in-order run the predicted path must carry most
    segments on both endpoints combined."""
    spec = CellSpec(transfers=1, payload_bytes=16_384, seed=21)
    bed = build_bed(spec)
    evidence = collect_evidence(
        bed,
        transfers=1,
        payload_bytes=16_384,
        chunk_size=2048,
        seed=21,
        deadline=30.0,
    )
    hits = misses = 0
    for _name, machine in evidence.machines:
        hits += machine.stats["fastpath_ack_hits"]
        hits += machine.stats["fastpath_data_hits"]
        misses += machine.stats["fastpath_misses"]
    assert hits > 0
    assert hits / (hits + misses) >= 0.5


def test_timer_wiring_equivalence(monkeypatch):
    """Coalesced wheels vs one-engine-event-per-timer must be
    byte-identical: retransmit timing under loss is the sharpest
    observer of timer behaviour, so race a lossy cell both ways."""
    spec = CellSpec(
        seed=31,
        drop_rate=0.03,
        duplicate_rate=0.02,
        transfers=1,
        payload_bytes=8192,
        deadline=30.0,
    )
    assert MachineRunner.use_coalesced_timers  # wheels are the default
    digest_wheel, streams_wheel = _run(spec)
    monkeypatch.setattr(MachineRunner, "use_coalesced_timers", False)
    digest_legacy, streams_legacy = _run(spec)
    assert digest_wheel == digest_legacy
    assert streams_wheel == streams_legacy


# ----------------------------------------------------------------------
# Next-hop (destination) cache invalidation
# ----------------------------------------------------------------------


def test_route_cache_hit_and_miss_accounting():
    table = RouteTable()
    table.add(str_to_ip("10.1.0.0"), 24, None, interface="if0")
    dst = str_to_ip("10.1.0.5")
    first = table.lookup(dst)
    second = table.lookup(dst)
    assert first is second
    assert table.cache_misses == 1
    assert table.cache_hits == 1


def test_route_cache_invalidated_by_more_specific_route():
    table = RouteTable()
    table.add(str_to_ip("10.0.0.0"), 8, None, interface="coarse")
    dst = str_to_ip("10.2.3.4")
    assert table.lookup(dst).interface == "coarse"
    assert table.lookup(dst).interface == "coarse"  # cached
    # A narrower prefix shadows the cached answer; the cache must drop it.
    table.add(str_to_ip("10.2.3.0"), 24, None, interface="fine")
    assert table.cache_invalidations == 1
    assert table.lookup(dst).interface == "fine"


def test_route_cache_negative_entry_invalidated_by_new_route():
    table = RouteTable()
    dst = str_to_ip("192.168.7.9")
    assert table.lookup(dst) is None
    assert table.lookup(dst) is None  # cached negative
    assert table.cache_hits == 1
    table.add(str_to_ip("192.168.7.0"), 24, None, interface="late")
    assert table.lookup(dst).interface == "late"


# ----------------------------------------------------------------------
# Demux last-flow memo invalidation
# ----------------------------------------------------------------------


def test_demux_memo_hit_reproduces_classification():
    table = FlowTable("synthesized")
    chan = object()
    table.install(FlowKey(PROTO_TCP, IP_B, 80, IP_A, 5000), chan)
    frame = tcp_frame(5000, 80)
    first = table.classify(frame, COSTS)
    second = table.classify(frame, COSTS)
    assert first.channel is second.channel is chan
    assert first.tier == second.tier == "exact"
    assert first.cost == second.cost == COSTS.flow_lookup
    assert table.stats["memo_hits"] == 1
    assert table.stats["exact_hits"] == 2  # memo still counts the tier


def test_demux_memo_invalidated_on_remove():
    table = FlowTable("synthesized")
    chan = object()
    key = FlowKey(PROTO_TCP, IP_B, 80, IP_A, 5000)
    table.install(key, chan)
    frame = tcp_frame(5000, 80)
    assert table.classify(frame, COSTS).channel is chan
    assert table.classify(frame, COSTS).channel is chan  # memoized
    table.remove(key)
    decision = table.classify(frame, COSTS)
    assert decision.channel is None
    assert decision.tier == "miss"


def test_demux_memo_invalidated_on_install():
    """A fresh install may shadow the memoized answer (e.g. an exact
    flow arriving over a memoized wildcard hit): any install clears it."""
    table = FlowTable("synthesized")
    listener = object()
    table.install(FlowKey(PROTO_TCP, IP_B, 80), listener)
    frame = tcp_frame(5000, 80)
    assert table.classify(frame, COSTS).channel is listener
    assert table.classify(frame, COSTS).tier == "wildcard"  # memoized
    conn = object()
    table.install(FlowKey(PROTO_TCP, IP_B, 80, IP_A, 5000), conn)
    decision = table.classify(frame, COSTS)
    assert decision.channel is conn
    assert decision.tier == "exact"


def test_demux_miss_memo_counts_and_invalidates():
    """Routers classify every forwarded frame and never match a flow:
    the repeated miss is memoized too, and a later install must break
    the memo so the flow becomes reachable."""
    table = FlowTable("synthesized")
    frame = tcp_frame(5000, 80)
    assert table.classify(frame, COSTS).tier == "miss"
    second = table.classify(frame, COSTS)
    assert second.tier == "miss"
    assert table.stats["memo_hits"] == 1
    assert table.stats["misses"] == 2  # the memoized miss still counts
    chan = object()
    table.install(FlowKey(PROTO_TCP, IP_B, 80, IP_A, 5000), chan)
    assert table.classify(frame, COSTS).channel is chan


def test_demux_memo_not_used_with_scan_tier():
    """Legacy filters may match ahead of the indexed answer, so the
    memo must stay out of the way whenever the scan tier is non-empty."""
    from repro.netio.pktfilter import tcp_filter_program

    table = FlowTable("synthesized")
    chan = object()
    filt = tcp_filter_program(IP_B, 80, IP_A, 5000)
    table.install(FlowKey(PROTO_TCP, IP_B, 80, IP_A, 5000), chan, filter=filt)
    frame = tcp_frame(5000, 80)
    table.classify(frame, COSTS)
    table.classify(frame, COSTS)
    assert table.stats["memo_hits"] == 0
