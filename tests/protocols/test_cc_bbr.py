"""Scripted ACK traces through the BBR-style model: filter behaviour,
the startup → drain → probe_bw phase transitions, gain cycling, and
the no-decrease-on-loss contract."""

import math

from repro.protocols.tcp.cc import make_cc
from repro.protocols.tcp.cc.bbr import (
    DRAIN_GAIN,
    PROBE_GAINS,
    STARTUP_GAIN,
)

MSS = 1000
RTT = 0.01  # 10 ms path.


def feed(cc, bandwidth: float, start: float, rounds: int, rtt: float = RTT):
    """Deliver ``rounds`` RTTs of ACKs at ``bandwidth`` bytes/sec,
    one ACK per RTT (enough to emit one rate sample per round)."""
    now = start
    for _ in range(rounds):
        now += rtt
        cc.on_rtt_sample(rtt, now)
        cc.on_new_ack(int(bandwidth * rtt), now, flight_size=cc.cwnd)
    return now


def test_filters_track_max_bw_and_min_rtt():
    cc = make_cc("bbr", mss=MSS)
    now = feed(cc, 1e6, 0.0, 5)
    cc.on_rtt_sample(RTT * 3, now + RTT)  # Queueing-inflated sample.
    assert cc.min_rtt == RTT  # Min filter keeps the clean sample.
    assert cc.max_bw is not None
    assert math.isclose(cc.max_bw, 1e6, rel_tol=0.01)


def test_filter_window_expires_old_samples():
    cc = make_cc("bbr", mss=MSS)
    cc.on_rtt_sample(0.001, 0.0)
    cc.on_rtt_sample(0.005, 11.0)  # 11 s later: the 1 ms sample aged out.
    assert cc.min_rtt == 0.005


def test_startup_grows_exponentially_until_full_pipe():
    cc = make_cc("bbr", mss=MSS)
    assert cc.state == "startup"
    assert cc.cwnd == 4 * MSS  # BBR's 4-segment initial window.
    start_cwnd = cc.cwnd
    feed(cc, 1e6, 0.0, 2)
    assert cc.state == "startup"
    assert cc.pacing_gain == STARTUP_GAIN
    assert cc.cwnd > start_cwnd  # cwnd += acked while starting up.


def test_full_pipe_detection_enters_drain_then_probe():
    """Three consecutive non-growing bandwidth updates end startup;
    drain holds cwnd at the BDP cap until flight <= BDP."""
    cc = make_cc("bbr", mss=MSS)
    # The pipe is stuck at 1 MB/s: the first ACK arms the accumulator,
    # the first sample grows the filter, then three more fail to beat
    # it by 25% -> full pipe.
    now = feed(cc, 1e6, 0.0, 6)
    assert cc.state == "drain"
    assert cc.pacing_gain == DRAIN_GAIN
    bdp = cc.bdp
    assert bdp is not None
    # Flight above BDP: still draining, window pinned to the cap.
    cc.on_new_ack(MSS, now + RTT, flight_size=int(10 * bdp))
    assert cc.state == "drain"
    assert cc.cwnd == max(int(cc.cwnd_gain * cc.bdp), 4 * MSS)
    # Flight sinks to BDP: steady state begins.
    cc.on_new_ack(MSS, now + 2 * RTT, flight_size=int(bdp * 0.5))
    assert cc.state == "probe_bw"


def drained(bandwidth: float = 1e6):
    """A model pushed through startup and drain into probe_bw."""
    cc = make_cc("bbr", mss=MSS)
    now = feed(cc, bandwidth, 0.0, 6)
    assert cc.state == "drain"
    cc.on_new_ack(MSS, now + RTT, flight_size=0)
    assert cc.state == "probe_bw"
    return cc, now + RTT


def test_probe_bw_cycles_gains_per_interval():
    cc, now = drained()
    seen = [cc.pacing_gain]
    for i in range(len(PROBE_GAINS)):
        # Step past one min-RTT interval: the cycle advances by one.
        now += cc.min_rtt + 1e-6
        cc.on_rtt_sample(RTT, now)
        cc.on_new_ack(MSS, now, flight_size=cc.cwnd)
        seen.append(cc.pacing_gain)
    # One full rotation: every configured gain appears, in order.
    start = seen.index(PROBE_GAINS[0])
    rotation = seen[start:start + len(PROBE_GAINS)]
    assert rotation == list(PROBE_GAINS)
    assert seen[start + len(PROBE_GAINS)] == PROBE_GAINS[0]  # Wraps.


def test_probe_bw_caps_inflight_at_gain_scaled_bdp():
    cc, now = drained()
    now += cc.min_rtt + 1e-6
    cc.on_new_ack(MSS, now, flight_size=cc.cwnd)
    bdp = cc.bdp
    expected = max(
        int(cc.cwnd_gain * bdp * min(1.0, cc.pacing_gain)), 4 * MSS
    )
    assert cc.cwnd == expected
    # The yield gain (0.75) pulls the cap below cwnd_gain * BDP.
    while cc.pacing_gain != 0.75:
        now += cc.min_rtt + 1e-6
        cc.on_new_ack(MSS, now, flight_size=cc.cwnd)
    assert cc.cwnd <= int(cc.cwnd_gain * cc.bdp * 0.75) or cc.cwnd == 4 * MSS


def test_duplicate_acks_convict_without_window_cut():
    cc, _ = drained()
    cwnd_before = cc.cwnd
    assert cc.on_duplicate_ack(cc.cwnd) is False
    assert cc.on_duplicate_ack(cc.cwnd) is False
    assert cc.on_duplicate_ack(cc.cwnd) is True  # Retransmit the hole...
    assert cc.cwnd == cwnd_before  # ...but the model keeps its window.
    assert cc.ssthresh == cc.ssthresh  # Untouched (vestigial).


def test_timeout_collapses_but_filters_survive():
    cc, now = drained()
    bw = cc.max_bw
    cc.on_timeout(cc.cwnd, now)
    assert cc.cwnd == MSS
    assert cc.window == MSS
    assert cc.max_bw == bw  # The path model is not forgotten.
    # Recovery: the next ACKs re-derive the window from the filters.
    now += RTT
    cc.on_new_ack(MSS, now, flight_size=0)
    assert cc.cwnd >= 4 * MSS


def test_pacing_rate_follows_gain_and_bandwidth():
    cc = make_cc("bbr", mss=MSS)
    assert cc.pacing_rate() is None  # No bandwidth estimate yet.
    cc, _ = drained()
    assert math.isclose(
        cc.pacing_rate(), cc.pacing_gain * cc.max_bw, rel_tol=1e-9
    )


def test_set_mss_keeps_four_segment_floor():
    cc = make_cc("bbr", mss=1460)
    cc.set_mss(536)
    assert cc.cwnd == 4 * 536
    assert cc.window == 4 * 536
