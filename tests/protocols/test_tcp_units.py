"""Unit tests for TCP building blocks: RTO, congestion control,
reassembly, and the segment wire codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.headers import TCP_ACK, TCP_SYN
from repro.protocols.tcp import (
    ChecksumError,
    CongestionControl,
    ReassemblyQueue,
    RttEstimator,
    Segment,
    decode_segment,
    encode_segment,
)

# ----------------------------------------------------------------------
# RttEstimator
# ----------------------------------------------------------------------


def test_rto_initial_value():
    rtt = RttEstimator(initial_rto=3.0, min_rto=1.0)
    assert rtt.rto == 3.0


def test_first_sample_sets_srtt():
    rtt = RttEstimator(min_rto=0.1)
    rtt.start_timing(seq=100, now=10.0)
    rtt.on_ack(ack=100, now=10.5)
    assert rtt.srtt == pytest.approx(0.5)
    assert rtt.rttvar == pytest.approx(0.25)
    # RTO = srtt + 4*rttvar = 1.5.
    assert rtt.rto == pytest.approx(1.5)


def test_later_samples_smooth():
    rtt = RttEstimator(min_rto=0.01)
    rtt.start_timing(100, now=0.0)
    rtt.on_ack(100, now=1.0)  # srtt=1.0
    rtt.start_timing(200, now=2.0)
    rtt.on_ack(200, now=2.5)  # sample 0.5
    assert rtt.srtt == pytest.approx(1.0 + (0.5 - 1.0) / 8)


def test_one_sample_at_a_time():
    rtt = RttEstimator(min_rto=0.01)
    rtt.start_timing(100, now=0.0)
    rtt.start_timing(200, now=5.0)  # Ignored: already timing.
    rtt.on_ack(100, now=1.0)
    assert rtt.srtt == pytest.approx(1.0)
    assert not rtt.timing


def test_partial_ack_does_not_sample():
    rtt = RttEstimator(min_rto=0.01)
    rtt.start_timing(200, now=0.0)
    rtt.on_ack(150, now=1.0)  # Does not cover seq 200.
    assert rtt.srtt is None
    assert rtt.timing


def test_karn_rule_cancels_sample():
    rtt = RttEstimator()
    rtt.start_timing(100, now=0.0)
    rtt.on_retransmit()
    rtt.on_ack(100, now=50.0)  # Must not produce a 50 s sample.
    assert rtt.srtt is None


def test_backoff_doubles_rto_and_ack_resets():
    rtt = RttEstimator(initial_rto=2.0, min_rto=1.0, max_rto=64.0)
    assert rtt.rto == 2.0
    rtt.on_retransmit()
    assert rtt.rto == 4.0
    rtt.on_retransmit()
    assert rtt.rto == 8.0
    rtt.on_ack(1, now=0.0)
    assert rtt.rto == 2.0


def test_rto_clamped_to_max():
    rtt = RttEstimator(initial_rto=3.0, max_rto=10.0)
    for _ in range(10):
        rtt.on_retransmit()
    assert rtt.rto == 10.0


def test_rto_floor():
    rtt = RttEstimator(min_rto=1.0)
    rtt.start_timing(10, 0.0)
    rtt.on_ack(10, 0.001)  # 1 ms RTT.
    assert rtt.rto >= 1.0


# ----------------------------------------------------------------------
# CongestionControl
# ----------------------------------------------------------------------


def test_slow_start_doubles_per_rtt():
    cc = CongestionControl(mss=1000)
    assert cc.cwnd == 1000
    cc.on_new_ack(1000)
    assert cc.cwnd == 2000
    cc.on_new_ack(1000)
    cc.on_new_ack(1000)
    assert cc.cwnd == 4000


def test_congestion_avoidance_linear():
    cc = CongestionControl(mss=1000, ssthresh=2000)
    cc.cwnd = 2000
    cc.on_new_ack(1000)
    # Above ssthresh: additive increase of mss*mss/cwnd.
    assert cc.cwnd == 2000 + 1000 * 1000 // 2000


def test_timeout_collapses_window():
    cc = CongestionControl(mss=1000)
    cc.cwnd = 8000
    cc.on_timeout(flight_size=8000)
    assert cc.cwnd == 1000
    assert cc.ssthresh == 4000


def test_ssthresh_floor_two_mss():
    cc = CongestionControl(mss=1000)
    cc.on_timeout(flight_size=1000)
    assert cc.ssthresh == 2000


def test_fast_retransmit_on_third_dupack():
    cc = CongestionControl(mss=1000, flavor="reno")
    cc.cwnd = 10000
    assert not cc.on_duplicate_ack(10000)
    assert not cc.on_duplicate_ack(10000)
    assert cc.on_duplicate_ack(10000)  # Third triggers.
    assert cc.ssthresh == 5000
    assert cc.cwnd == 5000 + 3000  # Reno inflation.
    assert cc.in_recovery


def test_reno_recovery_deflates_on_new_ack():
    cc = CongestionControl(mss=1000, flavor="reno")
    cc.cwnd = 10000
    for _ in range(3):
        cc.on_duplicate_ack(10000)
    cc.on_duplicate_ack(10000)  # Extra dup inflates.
    assert cc.cwnd == 9000
    cc.on_new_ack(4000)
    assert cc.cwnd == cc.ssthresh == 5000
    assert not cc.in_recovery


def test_tahoe_collapses_on_fast_retransmit():
    cc = CongestionControl(mss=1000, flavor="tahoe")
    cc.cwnd = 10000
    for _ in range(3):
        cc.on_duplicate_ack(10000)
    assert cc.cwnd == 1000
    assert not cc.in_recovery


def test_unknown_flavor_rejected():
    with pytest.raises(ValueError):
        CongestionControl(mss=1000, flavor="vegas")


# ----------------------------------------------------------------------
# ReassemblyQueue
# ----------------------------------------------------------------------


def test_reassembly_in_order():
    q = ReassemblyQueue()
    q.insert(100, b"abc", rcv_nxt=100)
    assert q.extract(100) == b"abc"
    assert len(q) == 0


def test_reassembly_gap_blocks_extract():
    q = ReassemblyQueue()
    q.insert(110, b"later", rcv_nxt=100)
    assert q.extract(100) == b""
    assert q.next_gap(100) == 110
    q.insert(100, b"0123456789", rcv_nxt=100)
    assert q.extract(100) == b"0123456789later"


def test_reassembly_duplicate_discarded():
    q = ReassemblyQueue()
    q.insert(100, b"abcdef", rcv_nxt=100)
    q.insert(100, b"abcdef", rcv_nxt=100)
    assert q.extract(100) == b"abcdef"


def test_reassembly_overlap_trimmed():
    q = ReassemblyQueue()
    q.insert(100, b"abcd", rcv_nxt=100)
    q.insert(102, b"cdEF", rcv_nxt=100)
    assert q.extract(100) == b"abcdEF"


def test_reassembly_stale_data_below_rcv_nxt_dropped():
    q = ReassemblyQueue()
    q.insert(90, b"0123456789", rcv_nxt=95)  # First 5 bytes stale.
    assert q.extract(95) == b"56789"


def test_reassembly_entirely_stale_dropped():
    q = ReassemblyQueue()
    q.insert(80, b"old", rcv_nxt=100)
    assert len(q) == 0


def test_reassembly_buffered_bytes():
    q = ReassemblyQueue()
    q.insert(110, b"xx", rcv_nxt=100)
    q.insert(120, b"yyy", rcv_nxt=100)
    assert q.buffered_bytes == 5


@given(
    chunks=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=200),
            st.binary(min_size=1, max_size=20),
        ),
        max_size=20,
    )
)
def test_reassembly_never_corrupts_stream(chunks):
    """Inserting arbitrary (possibly overlapping) slices of one true
    stream and extracting must yield a prefix-consistent result."""
    stream = bytes(range(256)) * 2  # 512 distinct-ish bytes.
    q = ReassemblyQueue()
    base = 1000
    for offset, _ in chunks:
        data = stream[offset : offset + 20]
        if data:
            q.insert(base + offset, data, rcv_nxt=base)
    out = q.extract(base)
    assert out == stream[: len(out)]


# ----------------------------------------------------------------------
# Wire codec
# ----------------------------------------------------------------------

SRC_IP = 0x0A000001
DST_IP = 0x0A000002


def test_segment_encode_decode_round_trip():
    seg = Segment(
        sport=4000,
        dport=80,
        seq=1234,
        ack=5678,
        flags=TCP_ACK,
        window=8192,
        payload=b"hello wire",
    )
    data = encode_segment(seg, SRC_IP, DST_IP)
    parsed = decode_segment(data, SRC_IP, DST_IP)
    assert parsed == seg


def test_segment_with_mss_round_trip():
    seg = Segment(
        sport=1, dport=2, seq=0, ack=0, flags=TCP_SYN, window=100, mss=536
    )
    parsed = decode_segment(encode_segment(seg, SRC_IP, DST_IP), SRC_IP, DST_IP)
    assert parsed.mss == 536


def test_corrupted_segment_rejected():
    seg = Segment(
        sport=1, dport=2, seq=9, ack=0, flags=TCP_ACK, window=5, payload=b"data"
    )
    data = bytearray(encode_segment(seg, SRC_IP, DST_IP))
    data[-1] ^= 0x01
    with pytest.raises(ChecksumError):
        decode_segment(bytes(data), SRC_IP, DST_IP)


def test_wrong_pseudo_header_rejected():
    seg = Segment(sport=1, dport=2, seq=9, ack=0, flags=TCP_ACK, window=5)
    data = encode_segment(seg, SRC_IP, DST_IP)
    with pytest.raises(ChecksumError):
        decode_segment(data, SRC_IP, DST_IP + 1)  # Misdelivered.


def test_seg_len_counts_syn_fin():
    from repro.net.headers import TCP_FIN

    syn = Segment(sport=1, dport=2, seq=0, ack=0, flags=TCP_SYN, window=0)
    assert syn.seg_len == 1
    fin = Segment(
        sport=1, dport=2, seq=0, ack=0, flags=TCP_FIN, window=0, payload=b"xy"
    )
    assert fin.seg_len == 3


@given(
    payload=st.binary(max_size=100),
    seq=st.integers(min_value=0, max_value=0xFFFFFFFF),
)
def test_codec_round_trip_property(payload, seq):
    seg = Segment(
        sport=1234,
        dport=80,
        seq=seq,
        ack=0,
        flags=TCP_ACK,
        window=1024,
        payload=payload,
    )
    parsed = decode_segment(encode_segment(seg, SRC_IP, DST_IP), SRC_IP, DST_IP)
    assert parsed == seg
