"""Tests for the RFC 1071 Internet checksum."""

from hypothesis import given
from hypothesis import strategies as st

from repro.protocols.checksum import (
    internet_checksum,
    pseudo_header,
    verify_checksum,
)


def test_known_vector_rfc1071():
    # Example from RFC 1071 §3: 00 01 f2 03 f4 f5 f6 f7.
    data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
    # Sum = 0x2ddf0 -> fold: 0xddf2 -> complement: 0x220d.
    assert internet_checksum(data) == 0x220D


def test_empty_data():
    assert internet_checksum(b"") == 0xFFFF


def test_odd_length_padded():
    # Odd data is padded with a zero byte on the right.
    assert internet_checksum(b"\xab") == internet_checksum(b"\xab\x00")


def test_verify_accepts_correct_checksum():
    data = bytearray(b"\x45\x00\x00\x28" + bytes(16))
    checksum = internet_checksum(bytes(data))
    data[10:12] = checksum.to_bytes(2, "big")
    assert verify_checksum(bytes(data))


def test_verify_rejects_single_bit_flip():
    data = bytearray(b"hello world, checksum me")
    checksum = internet_checksum(bytes(data))
    packet = bytearray(bytes(data) + checksum.to_bytes(2, "big"))
    assert verify_checksum(bytes(packet))
    packet[3] ^= 0x10
    assert not verify_checksum(bytes(packet))


@given(data=st.binary(max_size=512))
def test_checksum_in_range(data):
    value = internet_checksum(data)
    assert 0 <= value <= 0xFFFF


even_binary = st.binary(min_size=2, max_size=256).map(
    lambda b: b if len(b) % 2 == 0 else b + b"\x00"
)


@given(data=even_binary)
def test_embedding_checksum_verifies(data):
    # Append the checksum (16-bit aligned); the whole must verify.
    checksum = internet_checksum(data)
    assert verify_checksum(data + checksum.to_bytes(2, "big"))


@given(
    data=even_binary,
    bit=st.integers(min_value=0, max_value=1023),
)
def test_single_bit_flips_detected(data, bit):
    checksum = internet_checksum(data)
    packet = bytearray(data + checksum.to_bytes(2, "big"))
    index = (bit // 8) % len(packet)
    packet[index] ^= 1 << (bit % 8)
    assert not verify_checksum(bytes(packet))


def test_pseudo_header_layout():
    ph = pseudo_header(0x0A000001, 0x0A000002, 6, 20)
    assert ph == bytes(
        [10, 0, 0, 1, 10, 0, 0, 2, 0, 6, 0, 20]
    )
    assert len(ph) == 12
