"""The byte-identical guarantee: ``cc="reno"`` produces exactly the
wire trace the pre-extraction monolithic CongestionControl produced.

``data/reno_wire_golden.json`` holds sha256 digests of the decoded
wire trace for every cell of the netcheck quick campaign, captured on
the commit *before* congestion control became pluggable.  Because the
simulator, fault injector, and payload generation are all seeded and
deterministic, any behavioural drift in the refactored Reno — one
segment sent earlier, one window advertised differently — changes a
digest and fails this test."""

import json
from pathlib import Path

import pytest

from repro.check.campaign import quick_specs
from repro.check.golden import digest_cell, golden_cell_key

GOLDEN_PATH = Path(__file__).parent / "data" / "reno_wire_golden.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())


def test_golden_file_covers_the_quick_campaign():
    specs = quick_specs(seed=GOLDEN["seed"])
    assert {golden_cell_key(s) for s in specs} == set(GOLDEN["cells"])


@pytest.mark.parametrize(
    "spec",
    quick_specs(seed=GOLDEN["seed"]),
    ids=lambda s: golden_cell_key(s).replace("/", "-"),
)
def test_reno_wire_trace_matches_pre_refactor_golden(spec):
    assert spec.cc == "reno"  # The campaign default is the reference.
    digest, segments = digest_cell(spec)
    recorded = GOLDEN["cells"][golden_cell_key(spec)]
    assert segments == recorded["segments"], (
        f"{golden_cell_key(spec)}: {segments} segments on the wire, "
        f"pre-refactor stack produced {recorded['segments']}"
    )
    assert digest == recorded["digest"], (
        f"{golden_cell_key(spec)}: wire trace diverged from the "
        "pre-extraction congestion control"
    )
