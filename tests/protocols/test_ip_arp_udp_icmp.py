"""Tests for the IP, ARP, UDP, and ICMP libraries."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.headers import (
    ARP_REPLY,
    ARP_REQUEST,
    ArpPacket,
    BROADCAST_MAC,
    PROTO_TCP,
    PROTO_UDP,
    str_to_ip,
    str_to_mac,
)
from repro.protocols import (
    ArpStack,
    IpError,
    IpStack,
    Resolved,
    SendArp,
    UdpError,
    UdpPortTable,
    decode_datagram,
    decode_echo,
    encode_datagram,
    encode_echo,
    make_reply,
)

IP_A = str_to_ip("10.0.0.1")
IP_B = str_to_ip("10.0.0.2")
MAC_A = str_to_mac("02:00:00:00:00:01")
MAC_B = str_to_mac("02:00:00:00:00:02")


# ----------------------------------------------------------------------
# IP
# ----------------------------------------------------------------------


def test_ip_small_payload_single_packet():
    ip = IpStack(IP_A)
    packets = ip.send(IP_B, PROTO_TCP, b"hello", mtu=1500)
    assert len(packets) == 1
    receiver = IpStack(IP_B)
    datagram = receiver.receive(packets[0])
    assert datagram is not None
    assert datagram.payload == b"hello"
    assert datagram.src == IP_A
    assert datagram.protocol == PROTO_TCP


def test_ip_fragmentation_and_reassembly():
    ip = IpStack(IP_A)
    payload = bytes(range(256)) * 20  # 5120 bytes.
    packets = ip.send(IP_B, PROTO_TCP, payload, mtu=1500)
    assert len(packets) == 4
    receiver = IpStack(IP_B)
    results = [receiver.receive(p) for p in packets]
    assert results[:-1] == [None, None, None]
    assert results[-1].payload == payload
    assert receiver.stats["reassembled"] == 1


def test_ip_fragments_reassemble_out_of_order():
    ip = IpStack(IP_A)
    payload = b"z" * 4000
    packets = ip.send(IP_B, PROTO_TCP, payload, mtu=1000)
    receiver = IpStack(IP_B)
    results = [receiver.receive(p) for p in reversed(packets)]
    final = [r for r in results if r is not None]
    assert len(final) == 1
    assert final[0].payload == payload


def test_ip_duplicate_fragment_harmless():
    ip = IpStack(IP_A)
    payload = b"d" * 3000
    packets = ip.send(IP_B, PROTO_TCP, payload, mtu=1500)
    receiver = IpStack(IP_B)
    receiver.receive(packets[0])
    receiver.receive(packets[0])  # Duplicate.
    results = [receiver.receive(p) for p in packets[1:]]
    final = [r for r in results if r is not None]
    assert len(final) == 1 and final[0].payload == payload


def test_ip_missing_fragment_blocks():
    ip = IpStack(IP_A)
    packets = ip.send(IP_B, PROTO_TCP, b"m" * 3000, mtu=1500)
    receiver = IpStack(IP_B)
    assert receiver.receive(packets[1]) is None
    assert receiver.pending_reassemblies == 1


def test_ip_reassembly_expiry():
    ip = IpStack(IP_A)
    packets = ip.send(IP_B, PROTO_TCP, b"m" * 3000, mtu=1500)
    receiver = IpStack(IP_B)
    receiver.receive(packets[0], now=0.0)
    assert receiver.expire(now=100.0) == 1
    assert receiver.pending_reassemblies == 0


def test_ip_df_prevents_fragmentation():
    ip = IpStack(IP_A)
    with pytest.raises(IpError):
        ip.send(IP_B, PROTO_TCP, b"x" * 3000, mtu=1500, dont_fragment=True)


def test_ip_wrong_destination_dropped():
    ip = IpStack(IP_A)
    packets = ip.send(IP_B, PROTO_TCP, b"hi")
    other = IpStack(str_to_ip("10.0.0.99"))
    assert other.receive(packets[0]) is None
    assert other.stats["not_ours"] == 1


def test_ip_corrupted_header_dropped():
    ip = IpStack(IP_A)
    packet = bytearray(ip.send(IP_B, PROTO_TCP, b"hi")[0])
    packet[12] ^= 0xFF  # Corrupt the source address.
    receiver = IpStack(IP_B)
    assert receiver.receive(bytes(packet)) is None
    assert receiver.stats["bad_checksum"] == 1


def test_ip_interleaved_reassemblies_by_ident():
    sender = IpStack(IP_A)
    p1 = sender.send(IP_B, PROTO_TCP, b"a" * 2000, mtu=1500)
    p2 = sender.send(IP_B, PROTO_TCP, b"b" * 2000, mtu=1500)
    assert len(p1) == len(p2) == 2
    receiver = IpStack(IP_B)
    assert receiver.receive(p1[0]) is None
    assert receiver.receive(p2[0]) is None
    r2 = receiver.receive(p2[1])
    r1 = receiver.receive(p1[1])
    assert r1.payload == b"a" * 2000
    assert r2.payload == b"b" * 2000


@given(payload=st.binary(min_size=1, max_size=8000),
       mtu=st.integers(min_value=68, max_value=1500))
def test_ip_fragmentation_round_trip_property(payload, mtu):
    sender = IpStack(IP_A)
    receiver = IpStack(IP_B)
    packets = sender.send(IP_B, PROTO_TCP, payload, mtu=mtu)
    assert all(len(p) <= mtu for p in packets)
    results = [receiver.receive(p) for p in packets]
    final = [r for r in results if r is not None]
    assert len(final) == 1
    assert final[0].payload == payload


# ----------------------------------------------------------------------
# ARP
# ----------------------------------------------------------------------


def test_arp_request_reply_cycle():
    a = ArpStack(IP_A, MAC_A)
    b = ArpStack(IP_B, MAC_B)
    actions = a.resolve(IP_B, payload="pkt1", now=0.0)
    assert len(actions) == 1
    assert isinstance(actions[0], SendArp)
    request = actions[0]
    assert request.dst_mac == BROADCAST_MAC
    # b answers and learns a's binding.
    replies = b.receive(request.packet, now=0.0)
    reply = next(x for x in replies if isinstance(x, SendArp))
    assert reply.packet.oper == ARP_REPLY
    assert reply.dst_mac == MAC_A
    # a processes the reply: queued payload released.
    released = a.receive(reply.packet, now=0.1)
    resolved = [x for x in released if isinstance(x, Resolved)]
    assert resolved == [Resolved(IP_B, MAC_B, "pkt1")]
    # Subsequent sends hit the cache.
    assert a.resolve(IP_B, "pkt2", now=0.2) == [Resolved(IP_B, MAC_B, "pkt2")]
    assert a.stats["cache_hits"] == 1


def test_arp_request_rate_limited():
    a = ArpStack(IP_A, MAC_A)
    first = a.resolve(IP_B, "p1", now=0.0)
    second = a.resolve(IP_B, "p2", now=0.1)  # Within retry interval.
    assert any(isinstance(x, SendArp) for x in first)
    assert not any(isinstance(x, SendArp) for x in second)
    third = a.resolve(IP_B, "p3", now=2.0)
    assert any(isinstance(x, SendArp) for x in third)


def test_arp_queue_released_in_order():
    a = ArpStack(IP_A, MAC_A)
    for i in range(3):
        a.resolve(IP_B, f"p{i}", now=0.0)
    actions = a.receive(
        ArpPacket(ARP_REPLY, MAC_B, IP_B, MAC_A, IP_A), now=0.1
    )
    released = [x.payload for x in actions if isinstance(x, Resolved)]
    assert released == ["p0", "p1", "p2"]


def test_arp_queue_limit_drops_oldest():
    a = ArpStack(IP_A, MAC_A)
    for i in range(ArpStack.QUEUE_LIMIT + 2):
        a.resolve(IP_B, f"p{i}", now=0.0)
    actions = a.receive(
        ArpPacket(ARP_REPLY, MAC_B, IP_B, MAC_A, IP_A), now=0.1
    )
    released = [x.payload for x in actions if isinstance(x, Resolved)]
    assert len(released) == ArpStack.QUEUE_LIMIT
    assert released[0] == "p2"  # p0 and p1 were dropped.
    assert a.stats["queue_drops"] == 2


def test_arp_cache_expiry():
    a = ArpStack(IP_A, MAC_A)
    a.receive(ArpPacket(ARP_REPLY, MAC_B, IP_B, MAC_A, IP_A), now=0.0)
    assert a.lookup(IP_B, now=100.0) == MAC_B
    assert a.lookup(IP_B, now=ArpStack.CACHE_TTL + 1) is None


def test_arp_learns_from_requests():
    b = ArpStack(IP_B, MAC_B)
    b.receive(
        ArpPacket(ARP_REQUEST, MAC_A, IP_A, b"\x00" * 6, IP_B), now=0.0
    )
    assert b.lookup(IP_A, now=1.0) == MAC_A


def test_arp_ignores_requests_for_others():
    b = ArpStack(IP_B, MAC_B)
    actions = b.receive(
        ArpPacket(
            ARP_REQUEST, MAC_A, IP_A, b"\x00" * 6, str_to_ip("10.0.0.77")
        ),
        now=0.0,
    )
    assert not any(isinstance(x, SendArp) for x in actions)


def test_arp_retry_rebroadcasts():
    a = ArpStack(IP_A, MAC_A)
    a.resolve(IP_B, "p", now=0.0)
    assert a.retry(now=0.5) == []  # Too soon.
    actions = a.retry(now=1.5)
    assert len(actions) == 1
    assert isinstance(actions[0], SendArp)


# ----------------------------------------------------------------------
# UDP
# ----------------------------------------------------------------------


def test_udp_round_trip():
    wire = encode_datagram(1000, 53, b"query", IP_A, IP_B)
    datagram = decode_datagram(wire, IP_A, IP_B)
    assert datagram.payload == b"query"
    assert datagram.src_port == 1000
    assert datagram.dst_port == 53


def test_udp_checksum_detects_corruption():
    from repro.net.headers import HeaderError

    wire = bytearray(encode_datagram(1, 2, b"data!!", IP_A, IP_B))
    wire[-1] ^= 0x40
    with pytest.raises(HeaderError):
        decode_datagram(bytes(wire), IP_A, IP_B)


def test_udp_port_table_dispatch():
    table = UdpPortTable()
    got = []
    port = table.bind(53, got.append)
    assert port == 53
    wire = encode_datagram(999, 53, b"ask", IP_A, IP_B)
    assert table.deliver(wire, IP_A, IP_B)
    assert got[0].payload == b"ask"


def test_udp_unbound_port_counted():
    table = UdpPortTable()
    wire = encode_datagram(999, 53, b"ask", IP_A, IP_B)
    assert not table.deliver(wire, IP_A, IP_B)
    assert table.stats["no_port"] == 1


def test_udp_double_bind_rejected():
    table = UdpPortTable()
    table.bind(53, lambda d: None)
    with pytest.raises(UdpError):
        table.bind(53, lambda d: None)


def test_udp_ephemeral_allocation():
    table = UdpPortTable()
    p1 = table.bind(0, lambda d: None)
    p2 = table.bind(0, lambda d: None)
    assert p1 != p2
    assert p1 >= UdpPortTable.EPHEMERAL_START


def test_udp_unbind_frees_port():
    table = UdpPortTable()
    table.bind(53, lambda d: None)
    table.unbind(53)
    table.bind(53, lambda d: None)  # No error.


@given(payload=st.binary(max_size=1000))
def test_udp_round_trip_property(payload):
    wire = encode_datagram(1, 2, payload, IP_A, IP_B)
    assert decode_datagram(wire, IP_A, IP_B).payload == payload


# ----------------------------------------------------------------------
# ICMP
# ----------------------------------------------------------------------


def test_icmp_echo_round_trip():
    wire = encode_echo(True, ident=7, seq=3, payload=b"ping!")
    message = decode_echo(wire)
    assert message is not None
    assert message.is_request
    assert message.ident == 7
    assert message.payload == b"ping!"


def test_icmp_reply_matches_request():
    request = decode_echo(encode_echo(True, 7, 3, b"abc"))
    reply_wire = make_reply(request)
    reply = decode_echo(reply_wire)
    assert not reply.is_request
    assert reply.ident == 7 and reply.seq == 3
    assert reply.payload == b"abc"


def test_icmp_corruption_rejected():
    wire = bytearray(encode_echo(True, 1, 1, b"data"))
    wire[-2] ^= 0x08
    assert decode_echo(bytes(wire)) is None


def test_icmp_cannot_reply_to_reply():
    reply = decode_echo(encode_echo(False, 1, 1))
    with pytest.raises(ValueError):
        make_reply(reply)
