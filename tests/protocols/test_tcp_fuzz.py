"""Fuzz/robustness properties for the TCP machine.

Wire input is attacker-controlled: whatever segments arrive — any
flags, any sequence numbers, any order, in any connection state — the
machine must never raise, and its invariants must hold afterwards.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net.headers import (
    TCP_ACK,
    TCP_FIN,
    TCP_PSH,
    TCP_RST,
    TCP_SYN,
)
from repro.protocols.tcp import (
    AppClose,
    AppSend,
    Segment,
    SegmentArrives,
    State,
    TcpConfig,
    TcpMachine,
    TimerExpires,
    TIMER_CONN,
    TIMER_DELACK,
    TIMER_KEEPALIVE,
    TIMER_PERSIST,
    TIMER_REXMT,
    TIMER_TIME_WAIT,
)
from repro.protocols.tcp.seq import seq_diff, seq_ge

SEQ32 = st.integers(min_value=0, max_value=(1 << 32) - 1)

segments = st.builds(
    Segment,
    sport=st.just(80),
    dport=st.just(5000),
    seq=SEQ32,
    ack=SEQ32,
    flags=st.integers(min_value=0, max_value=0x3F),
    window=st.integers(min_value=0, max_value=0xFFFF),
    payload=st.binary(max_size=64),
    mss=st.one_of(st.none(), st.integers(min_value=1, max_value=0xFFFF)),
)

ALL_TIMERS = (
    TIMER_REXMT,
    TIMER_PERSIST,
    TIMER_DELACK,
    TIMER_TIME_WAIT,
    TIMER_CONN,
    TIMER_KEEPALIVE,
)

app_events = st.one_of(
    st.builds(AppSend, data=st.binary(min_size=1, max_size=256)),
    st.just(AppClose()),
    st.sampled_from([TimerExpires(name) for name in ALL_TIMERS]),
)

wire_events = st.builds(SegmentArrives, segment=segments)

event_mixes = st.lists(
    st.one_of(wire_events, app_events), min_size=1, max_size=30
)


def check_invariants(machine: TcpMachine) -> None:
    tcb = machine.tcb
    # snd_una never passes snd_nxt; snd_nxt never passes snd_max.
    assert seq_ge(tcb.snd_nxt, tcb.snd_una)
    assert seq_ge(tcb.snd_max, tcb.snd_nxt)
    # The send buffer never exceeds its configured capacity.
    assert len(tcb.send_buffer) <= tcb.config.snd_buffer
    # Windows are sane.
    assert 0 <= tcb.rcv_wnd <= tcb.config.rcv_buffer
    assert tcb.cc.cwnd >= 0


def drive(machine: TcpMachine, events, start=0.0) -> None:
    now = start
    for event in events:
        now += 0.01
        if isinstance(event, AppSend):
            data = event.data[: machine.tcb.send_buffer_space]
            if not data:
                continue
            event = AppSend(data)
            if machine.tcb.fin_pending or machine.state in (
                State.CLOSED,
                State.LISTEN,
                State.FIN_WAIT_1,
                State.FIN_WAIT_2,
                State.CLOSING,
                State.LAST_ACK,
                State.TIME_WAIT,
            ):
                continue  # API misuse is allowed to raise; skip it.
        machine.handle(event, now)
        check_invariants(machine)


@settings(max_examples=200, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(events=event_mixes)
def test_listen_state_survives_arbitrary_input(events):
    machine = TcpMachine(5000, 0, config=TcpConfig(), iss=100)
    machine.open(0.0, active=False)
    drive(machine, events)


@settings(max_examples=200, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(events=event_mixes)
def test_syn_sent_state_survives_arbitrary_input(events):
    machine = TcpMachine(5000, 80, config=TcpConfig(), iss=100)
    machine.open(0.0, active=True)
    drive(machine, events)


@settings(max_examples=200, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(events=event_mixes, iss=SEQ32)
def test_established_state_survives_arbitrary_input(events, iss):
    machine = TcpMachine(5000, 80, config=TcpConfig(), iss=iss)
    machine.open(0.0, active=True)
    # Complete a legitimate handshake first.
    synack = Segment(
        sport=80, dport=5000, seq=999, ack=(iss + 1) % (1 << 32),
        flags=TCP_SYN | TCP_ACK, window=8192, mss=1460,
    )
    machine.handle(SegmentArrives(synack), 0.005)
    assert machine.state is State.ESTABLISHED
    drive(machine, events, start=0.01)


@settings(max_examples=100, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(events=event_mixes)
def test_closed_machine_survives_arbitrary_input(events):
    machine = TcpMachine(5000, 80, config=TcpConfig(), iss=1)
    # Never opened: every wire event must be handled gracefully.
    wire_only = [e for e in events if isinstance(e, SegmentArrives)]
    now = 0.0
    for event in wire_only:
        now += 0.01
        machine.handle(event, now)
        assert machine.state is State.CLOSED


@settings(max_examples=100, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    flags=st.integers(min_value=0, max_value=0x3F),
    seq_offset=st.integers(min_value=-(1 << 16), max_value=1 << 16),
    payload=st.binary(max_size=32),
)
def test_time_wait_never_resurrects(flags, seq_offset, payload):
    """No segment may pull a TIME-WAIT connection back to life except
    into CLOSED (2MSL expiry) — reopening needs a whole new machine."""
    machine = TcpMachine(5000, 80, config=TcpConfig(msl=1.0), iss=100)
    machine.open(0.0, active=True)
    machine.handle(
        SegmentArrives(Segment(
            sport=80, dport=5000, seq=500, ack=101,
            flags=TCP_SYN | TCP_ACK, window=8192,
        )),
        0.01,
    )
    machine.handle(AppClose(), 0.02)
    # Peer ACKs our FIN and sends its own.
    machine.handle(
        SegmentArrives(Segment(
            sport=80, dport=5000, seq=501, ack=102,
            flags=TCP_ACK | TCP_FIN, window=8192,
        )),
        0.03,
    )
    assert machine.state is State.TIME_WAIT
    probe = Segment(
        sport=80, dport=5000,
        seq=(502 + seq_offset) % (1 << 32),
        ack=102, flags=flags, window=1024, payload=payload,
    )
    machine.handle(SegmentArrives(probe), 0.04)
    assert machine.state in (State.TIME_WAIT, State.CLOSED)
