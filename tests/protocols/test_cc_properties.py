"""Property-based tests over the pluggable congestion-control API:
random interleavings of ACK / dup-ACK / RTT / timeout events must keep
every algorithm inside the shared invariants — window never below one
MSS, no NaN/infinity/overflow in any numeric state, multiplicative
floors respected — regardless of ordering or magnitudes."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.tcp.cc import CC_ALGORITHMS, make_cc
from repro.protocols.tcp.cc.base import MAX_WINDOW

MSS = 1000

#: One event: (kind, magnitude, dt).  Magnitude is acked bytes for
#: "ack", flight size for "dup"/"timeout", RTT seconds for "rtt".
EVENTS = st.lists(
    st.tuples(
        st.sampled_from(("ack", "dup", "timeout", "rtt")),
        st.integers(min_value=0, max_value=10 * MAX_WINDOW),
        st.floats(
            min_value=0.0, max_value=5.0,
            allow_nan=False, allow_infinity=False,
        ),
    ),
    min_size=1,
    max_size=120,
)


def drive(cc, events):
    """Apply one event sequence, with sim-time strictly accumulating."""
    now = 0.0
    for kind, magnitude, dt in events:
        now += dt
        if kind == "ack":
            cc.on_new_ack(magnitude, now, flight_size=magnitude)
        elif kind == "dup":
            cc.on_duplicate_ack(magnitude, now)
        elif kind == "timeout":
            cc.on_timeout(magnitude, now)
        else:
            cc.on_rtt_sample(max(1e-6, dt), now)
        check_shared_invariants(cc)


def check_shared_invariants(cc) -> None:
    # The effective window is always at least one segment and fits the
    # 16-bit header field.
    assert MSS <= cc.window <= MAX_WINDOW, (
        f"{cc.name}: window {cc.window} outside [{MSS}, {MAX_WINDOW}]"
    )
    # Every numeric knob stays a finite, non-NaN number.
    for attr in ("cwnd", "ssthresh", "dupacks"):
        value = getattr(cc, attr)
        assert isinstance(value, int), f"{cc.name}.{attr} drifted to {value!r}"
    rate = cc.pacing_rate()
    if rate is not None:
        assert math.isfinite(rate) and rate >= 0.0, (
            f"{cc.name}: pacing rate {rate!r}"
        )
    assert cc.dupacks >= 0


@settings(max_examples=60, deadline=None)
@given(events=EVENTS)
def test_reno_interleavings(events):
    drive(make_cc("reno", mss=MSS), events)


@settings(max_examples=60, deadline=None)
@given(events=EVENTS)
def test_tahoe_interleavings(events):
    drive(make_cc("tahoe", mss=MSS), events)


@settings(max_examples=60, deadline=None)
@given(events=EVENTS)
def test_cubic_interleavings(events):
    cc = make_cc("cubic", mss=MSS)
    drive(cc, events)
    # Cubic-specific: the curve state never goes non-finite.
    assert math.isfinite(cc.w_max) and math.isfinite(cc.k)
    assert math.isfinite(cc.w_est)


@settings(max_examples=60, deadline=None)
@given(events=EVENTS)
def test_bbr_interleavings(events):
    cc = make_cc("bbr", mss=MSS)
    drive(cc, events)
    # BBR-specific: filters only ever hold finite positive samples.
    if cc.max_bw is not None:
        assert math.isfinite(cc.max_bw) and cc.max_bw >= 0
    if cc.min_rtt is not None:
        assert math.isfinite(cc.min_rtt) and cc.min_rtt > 0


@settings(max_examples=30, deadline=None)
@given(events=EVENTS)
def test_loss_based_ssthresh_floor(events):
    """Once any loss event happened, loss-based algorithms keep
    ssthresh at or above the two-segment floor."""
    for name in ("reno", "tahoe", "cubic"):
        cc = make_cc(name, mss=MSS)
        saw_loss = False
        now = 0.0
        for kind, magnitude, dt in events:
            now += dt
            if kind == "ack":
                cc.on_new_ack(magnitude, now, flight_size=magnitude)
            elif kind == "dup":
                if cc.on_duplicate_ack(magnitude, now):
                    saw_loss = True
            elif kind == "timeout":
                cc.on_timeout(magnitude, now)
                saw_loss = True
            if saw_loss:
                assert cc.ssthresh >= 2 * MSS


def test_every_algorithm_registered():
    assert set(CC_ALGORITHMS) == {"reno", "cubic", "bbr"}
    for name in CC_ALGORITHMS:
        cc = make_cc(name, mss=MSS)
        assert cc.mss == MSS
        assert cc.window >= MSS
