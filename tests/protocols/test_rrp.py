"""Tests for the VMTP-flavoured request/response protocol (sans-io)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.rrp import (
    Complete,
    Failed,
    RrpClient,
    RrpError,
    RrpMessage,
    RrpServer,
    SendDatagram,
    SetRetry,
    TYPE_REQUEST,
    TYPE_RESPONSE,
)

CLIENT_ADDR = (0x0A000001, 4000)


def first(actions, kind):
    matches = [a for a in actions if isinstance(a, kind)]
    return matches[0] if matches else None


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------


def test_message_round_trip():
    message = RrpMessage(TYPE_REQUEST, 42, b"do the thing")
    assert RrpMessage.unpack(message.pack()) == message


def test_short_message_rejected():
    with pytest.raises(RrpError):
        RrpMessage.unpack(b"\x01\x00")


def test_unknown_type_rejected():
    data = RrpMessage(TYPE_REQUEST, 1, b"").pack()
    with pytest.raises(RrpError):
        RrpMessage.unpack(b"\x07" + data[1:])


@given(transaction=st.integers(min_value=0, max_value=0xFFFFFFFF),
       payload=st.binary(max_size=100))
def test_message_round_trip_property(transaction, payload):
    message = RrpMessage(TYPE_RESPONSE, transaction, payload)
    assert RrpMessage.unpack(message.pack()) == message


# ----------------------------------------------------------------------
# Happy-path transaction
# ----------------------------------------------------------------------


def test_call_and_response():
    client = RrpClient()
    server = RrpServer(lambda req: b"echo:" + req)

    tid, actions = client.call(*CLIENT_ADDR, b"hello")
    request = first(actions, SendDatagram)
    assert request is not None
    assert first(actions, SetRetry).transaction == tid

    replies = server.on_datagram(request.data, CLIENT_ADDR, now=0.0)
    response = first(replies, SendDatagram)
    assert response is not None

    done = client.on_datagram(response.data)
    assert done == [Complete(tid, b"echo:hello")]
    assert client.outstanding == 0


def test_transaction_ids_distinct():
    client = RrpClient()
    tid1, _ = client.call(*CLIENT_ADDR, b"a")
    tid2, _ = client.call(*CLIENT_ADDR, b"b")
    assert tid1 != tid2
    assert client.outstanding == 2


# ----------------------------------------------------------------------
# Retransmission and failure
# ----------------------------------------------------------------------


def test_retry_retransmits_same_request():
    client = RrpClient(retries=3)
    tid, actions = client.call(*CLIENT_ADDR, b"lost")
    original = first(actions, SendDatagram).data
    retry = client.on_retry(tid)
    assert first(retry, SendDatagram).data == original
    assert first(retry, SetRetry).transaction == tid
    assert client.stats["retransmits"] == 1


def test_exhausted_retries_fail():
    client = RrpClient(retries=2)
    tid, _ = client.call(*CLIENT_ADDR, b"void")
    outcomes = []
    for _ in range(5):
        outcomes.extend(client.on_retry(tid))
    failures = [a for a in outcomes if isinstance(a, Failed)]
    assert len(failures) == 1
    assert failures[0].transaction == tid
    assert client.outstanding == 0
    # Further timer fires are no-ops.
    assert client.on_retry(tid) == []


def test_retry_after_completion_is_noop():
    client = RrpClient()
    server = RrpServer(lambda req: req)
    tid, actions = client.call(*CLIENT_ADDR, b"quick")
    request = first(actions, SendDatagram)
    response = first(server.on_datagram(request.data, CLIENT_ADDR, 0.0), SendDatagram)
    client.on_datagram(response.data)
    assert client.on_retry(tid) == []


def test_duplicate_response_ignored():
    client = RrpClient()
    server = RrpServer(lambda req: req)
    tid, actions = client.call(*CLIENT_ADDR, b"once")
    request = first(actions, SendDatagram)
    response = first(server.on_datagram(request.data, CLIENT_ADDR, 0.0), SendDatagram)
    assert client.on_datagram(response.data) == [Complete(tid, b"once")]
    assert client.on_datagram(response.data) == []  # Duplicate.
    assert client.stats["duplicates"] == 1


# ----------------------------------------------------------------------
# At-most-once server semantics
# ----------------------------------------------------------------------


def test_server_executes_at_most_once():
    executions = []

    def handler(payload):
        executions.append(payload)
        return b"done"

    client = RrpClient()
    server = RrpServer(handler)
    tid, actions = client.call(*CLIENT_ADDR, b"important")
    request = first(actions, SendDatagram)
    # The request arrives three times (client retransmissions).
    r1 = server.on_datagram(request.data, CLIENT_ADDR, 0.0)
    r2 = server.on_datagram(request.data, CLIENT_ADDR, 0.1)
    r3 = server.on_datagram(request.data, CLIENT_ADDR, 0.2)
    assert executions == [b"important"]  # Exactly once.
    assert server.stats["executed"] == 1
    assert server.stats["replayed"] == 2
    # All three responses are byte-identical.
    datas = {first(r, SendDatagram).data for r in (r1, r2, r3)}
    assert len(datas) == 1


def test_server_cache_keyed_per_client():
    server = RrpServer(lambda req: req)
    other_client = (0x0A000002, 4000)
    request = RrpMessage(TYPE_REQUEST, 7, b"same tid").pack()
    server.on_datagram(request, CLIENT_ADDR, 0.0)
    server.on_datagram(request, other_client, 0.0)
    assert server.stats["executed"] == 2  # Different clients, both run.


def test_server_cache_expires():
    server = RrpServer(lambda req: req, cache_ttl=1.0)
    request = RrpMessage(TYPE_REQUEST, 9, b"ephemeral").pack()
    server.on_datagram(request, CLIENT_ADDR, now=0.0)
    assert server.cached == 1
    # Past the TTL the retransmission re-executes (the tradeoff of a
    # bounded cache).
    server.on_datagram(request, CLIENT_ADDR, now=5.0)
    assert server.stats["expired"] == 1
    assert server.stats["executed"] == 2


def test_server_ignores_garbage_and_responses():
    server = RrpServer(lambda req: req)
    assert server.on_datagram(b"junk", CLIENT_ADDR, 0.0) == []
    response = RrpMessage(TYPE_RESPONSE, 1, b"x").pack()
    assert server.on_datagram(response, CLIENT_ADDR, 0.0) == []


def test_client_ignores_garbage_and_requests():
    client = RrpClient()
    assert client.on_datagram(b"junk") == []
    request = RrpMessage(TYPE_REQUEST, 1, b"x").pack()
    assert client.on_datagram(request) == []


@settings(max_examples=60, deadline=None)
@given(
    drops=st.sets(st.integers(min_value=0, max_value=6), max_size=4),
    payload=st.binary(min_size=1, max_size=64),
)
def test_transaction_completes_under_request_loss(drops, payload):
    """Drive client+server by hand with scripted request loss: unless
    every attempt is dropped the transaction completes exactly once."""
    executions = []
    client = RrpClient(retries=6)
    server = RrpServer(lambda p: (executions.append(p) or b"ok:" + p))
    tid, actions = client.call(*CLIENT_ADDR, payload)
    completed = []
    attempt = 0
    now = 0.0
    while actions and not completed:
        request = first(actions, SendDatagram)
        if request is not None and attempt not in drops:
            replies = server.on_datagram(request.data, CLIENT_ADDR, now)
            response = first(replies, SendDatagram)
            completed.extend(
                a for a in client.on_datagram(response.data)
                if isinstance(a, Complete)
            )
            break
        attempt += 1
        now += client.timeout
        actions = client.on_retry(tid)
        if any(isinstance(a, Failed) for a in actions):
            break
    if len(drops) <= 6 and attempt <= 6 and completed:
        assert executions == [payload]
        assert completed[0].payload == b"ok:" + payload
