"""Tests for the BSD-style keepalive timer."""

from repro.protocols.tcp import State, TcpConfig

from .tcp_harness import TcpPair

KEEPALIVE = dict(
    msl=0.5,
    keepalive=True,
    keepalive_idle=5.0,
    keepalive_interval=1.0,
    keepalive_probes=3,
)


def connect_bounded(pair):
    """Handshake without run-to-quiescence (keepalive never quiesces)."""
    pair.connect(run=False)
    pair.run(until=pair.now + 2.0)
    assert pair.a.connected and pair.b.connected


def test_keepalive_probes_idle_connection_and_peer_answers():
    pair = TcpPair(config_a=TcpConfig(**KEEPALIVE))
    connect_bounded(pair)
    pair.app_send("a", b"warmup")
    pair.run(until=pair.now + 1.0)
    # Long idle period: probes flow, the live peer answers, the
    # connection survives.
    pair.run(until=pair.now + 30.0)
    assert pair.a.machine.state is State.ESTABLISHED
    assert pair.a.machine.stats["probes_sent"] >= 3
    # Probes carry seq = snd_una - 1 and no data.
    probes = [
        seg
        for _, d, seg in pair.wire_log
        if d == "a->b" and not seg.payload and not seg.syn
        and seg.seq == (pair.a.machine.tcb.snd_una - 1) % (1 << 32)
    ]
    assert probes


def test_keepalive_drops_connection_when_peer_vanishes():
    pair = TcpPair(
        config_a=TcpConfig(**KEEPALIVE),
        # Everything from b stops arriving after the handshake+data.
        drop=lambda d, i, s: d == "b->a" and i > 4,
    )
    connect_bounded(pair)
    pair.app_send("a", b"alive")
    pair.run(until=pair.now + 1.0)
    assert pair.a.machine.state is State.ESTABLISHED
    # Idle 5s + 3 probes at 1s intervals -> dead by ~10s.
    pair.run(until=pair.now + 30.0)
    assert pair.a.machine.state is State.CLOSED
    assert pair.a.closed_reason == "timeout"


def test_keepalive_activity_postpones_probes():
    pair = TcpPair(config_a=TcpConfig(**KEEPALIVE))
    connect_bounded(pair)
    # Keep trickling data more often than the idle threshold.
    for _ in range(8):
        pair.app_send("a", b"tick")
        pair.run(until=pair.now + 2.0)
    assert pair.a.machine.stats["probes_sent"] == 0
    assert pair.a.machine.state is State.ESTABLISHED


def test_keepalive_disabled_by_default():
    pair = TcpPair()
    pair.connect()
    pair.run(until=pair.now + 30.0)
    assert pair.a.machine.stats["probes_sent"] == 0
    assert pair.a.machine.state is State.ESTABLISHED


def test_keepalive_cancelled_after_close():
    pair = TcpPair(
        config_a=TcpConfig(**KEEPALIVE), config_b=TcpConfig(msl=0.2)
    )
    connect_bounded(pair)
    pair.app_close("a")
    pair.app_close("b")
    pair.run(until=pair.now + 40.0)
    assert pair.a.machine.state is State.CLOSED
    # No probes fired after the connection wound down.
    assert pair.a.machine.stats["probes_sent"] == 0
