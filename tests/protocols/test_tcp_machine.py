"""Behavioural tests for the TCP machine: handshake, transfer, loss
recovery, flow control, close sequences, and resets."""

import pytest

from repro.net.headers import TCP_ACK, TCP_RST, TCP_SYN
from repro.protocols.tcp import (
    AppSend,
    Segment,
    State,
    TcpConfig,
    TcpError,
    TcpMachine,
)

from .tcp_harness import TcpPair


# ----------------------------------------------------------------------
# Connection establishment
# ----------------------------------------------------------------------


def test_three_way_handshake():
    pair = TcpPair()
    pair.connect()
    assert pair.a.machine.state is State.ESTABLISHED
    assert pair.b.machine.state is State.ESTABLISHED
    # Exactly SYN, SYN|ACK, ACK on the wire.
    flags = [seg.flags & (TCP_SYN | TCP_ACK) for _, _, seg in pair.wire_log[:3]]
    assert flags == [TCP_SYN, TCP_SYN | TCP_ACK, TCP_ACK]


def test_mss_negotiated_to_minimum():
    pair = TcpPair(
        config_a=TcpConfig(mss=1460, msl=0.5),
        config_b=TcpConfig(mss=512, msl=0.5),
    )
    pair.connect()
    assert pair.a.machine.tcb.mss == 512
    assert pair.b.machine.tcb.mss == 512


def test_syn_retransmitted_on_loss():
    pair = TcpPair(drop=lambda d, i, s: d == "a->b" and i == 0)
    pair.connect()
    assert pair.a.connected
    assert pair.a.machine.stats["retransmits"] >= 1


def test_synack_retransmitted_on_loss():
    pair = TcpPair(drop=lambda d, i, s: d == "b->a" and i == 0)
    pair.connect()
    assert pair.a.connected and pair.b.connected


def test_connection_refused_by_rst():
    pair = TcpPair()
    # b is CLOSED (never opened); a's SYN gets a RST back.
    pair._do(pair.a, pair.a.machine.open(0.0, active=True))
    pair.run()
    assert pair.a.closed_reason == "refused"
    assert pair.a.machine.state is State.CLOSED


def test_connect_timeout_when_peer_silent():
    # Drop everything a sends; connection establishment must time out.
    pair = TcpPair(
        config_a=TcpConfig(conn_timeout=2.0, msl=0.5),
        drop=lambda d, i, s: d == "a->b",
    )
    pair._do(pair.a, pair.a.machine.open(0.0, active=True))
    pair.run(until=100.0)
    assert pair.a.closed_reason == "timeout"


def test_listen_ignores_stray_rst():
    pair = TcpPair()
    pair._do(pair.b, pair.b.machine.open(0.0, active=False))
    pair.inject(
        "b",
        Segment(sport=5000, dport=80, seq=1, ack=0, flags=TCP_RST, window=0),
    )
    assert pair.b.machine.state is State.LISTEN


def test_listen_rejects_stray_ack_with_rst():
    pair = TcpPair()
    pair._do(pair.b, pair.b.machine.open(0.0, active=False))
    pair.inject(
        "b",
        Segment(sport=5000, dport=80, seq=1, ack=77, flags=TCP_ACK, window=0),
    )
    assert pair.b.machine.state is State.LISTEN
    rst = pair.b.emitted[-1]
    assert rst.rst
    assert rst.seq == 77  # Mirrors the offending ACK.


def test_simultaneous_open():
    pair = TcpPair()
    # Both actively open toward each other.
    pair.a.machine.tcb.remote_port = 80
    pair.b.machine.tcb.remote_port = 5000
    pair._do(pair.a, pair.a.machine.open(0.0, active=True))
    pair._do(pair.b, pair.b.machine.open(0.0, active=True))
    pair.run(until=30.0)
    assert pair.a.machine.state is State.ESTABLISHED
    assert pair.b.machine.state is State.ESTABLISHED


# ----------------------------------------------------------------------
# Data transfer
# ----------------------------------------------------------------------


def test_simple_data_transfer():
    pair = TcpPair()
    pair.connect()
    pair.app_send("a", b"hello, world")
    pair.run()
    assert bytes(pair.b.received) == b"hello, world"


def test_bidirectional_transfer():
    pair = TcpPair()
    pair.connect()
    pair.app_send("a", b"ping")
    pair.app_send("b", b"pong")
    pair.run()
    assert bytes(pair.b.received) == b"ping"
    assert bytes(pair.a.received) == b"pong"


def test_large_transfer_segmented_by_mss():
    pair = TcpPair(
        config_a=TcpConfig(mss=500, snd_buffer=100_000, msl=0.5),
        config_b=TcpConfig(mss=500, rcv_buffer=8000, msl=0.5),
    )
    pair.connect()
    data = bytes(range(256)) * 40  # 10240 bytes.
    pair.app_send("a", data)
    pair.run()
    assert bytes(pair.b.received) == data
    data_segments = [
        seg for _, d, seg in pair.wire_log if d == "a->b" and seg.payload
    ]
    assert all(len(seg.payload) <= 500 for seg in data_segments)


def test_delivery_in_order_despite_reordering():
    # Swap the delivery order of the 3rd and 4th data segments.
    def latency_fn(direction, index, segment):
        if direction == "a->b" and segment.payload and index == 4:
            return 0.030
        return 0.005

    pair = TcpPair(
        config_a=TcpConfig(mss=100, msl=0.5), latency_fn=latency_fn
    )
    pair.connect()
    data = bytes(range(200)) * 3
    pair.app_send("a", data)
    pair.run()
    assert bytes(pair.b.received) == data


def test_retransmit_recovers_lost_data_segment():
    dropped = {3}  # Drop the 4th a->b transmission (a data segment).
    pair = TcpPair(drop=lambda d, i, s: d == "a->b" and i in dropped)
    pair.connect()
    data = b"x" * 5000
    pair.app_send("a", data)
    pair.run()
    assert bytes(pair.b.received) == data
    assert pair.a.machine.stats["retransmits"] >= 1


def test_fast_retransmit_triggers_on_dupacks():
    # Lose one mid-stream segment while many follow: receiver dup-acks.
    pair = TcpPair(
        config_a=TcpConfig(mss=200, msl=0.5, min_rto=10.0, initial_rto=10.0),
        drop=lambda d, i, s: d == "a->b" and i == 4,
    )
    pair.connect()
    # Prime cwnd so many segments are in flight at once.
    pair.a.machine.tcb.cc.cwnd = 20000
    data = bytes(range(250)) * 16  # 4000 bytes = 20 segments.
    pair.app_send("a", data)
    pair.run(until=9.0)  # Well below the inflated RTO.
    assert bytes(pair.b.received) == data
    assert pair.a.machine.stats["fast_retransmits"] >= 1


def test_ack_loss_is_harmless():
    pair = TcpPair(drop=lambda d, i, s: d == "b->a" and i == 2)
    pair.connect()
    pair.app_send("a", b"payload under lost ack")
    pair.run()
    assert bytes(pair.b.received) == b"payload under lost ack"


def test_duplicate_delivery_suppressed():
    pair = TcpPair(dup=lambda d, i, s: d == "a->b")
    pair.connect()
    data = b"exactly once" * 100
    pair.app_send("a", data)
    pair.run()
    assert bytes(pair.b.received) == data


def test_send_buffer_limit_enforced():
    pair = TcpPair(config_a=TcpConfig(snd_buffer=1000, msl=0.5))
    pair.connect()
    with pytest.raises(TcpError):
        pair.a.machine.handle(AppSend(b"y" * 2000), pair.now)


def test_send_on_unopened_connection_rejected():
    machine = TcpMachine(1, 2)
    with pytest.raises(TcpError):
        machine.handle(AppSend(b"x"), 0.0)


def test_delayed_ack_coalesces():
    pair = TcpPair(config_a=TcpConfig(mss=100, msl=0.5))
    pair.connect()
    pair.app_send("a", b"z" * 1000)  # 10 segments.
    pair.run()
    pure_acks = [
        seg
        for _, d, seg in pair.wire_log
        if d == "b->a" and not seg.payload and not seg.syn
    ]
    data_segs = [
        seg for _, d, seg in pair.wire_log if d == "a->b" and seg.payload
    ]
    # Roughly one ACK per two data segments, not one per segment.
    assert len(pure_acks) < len(data_segs)
    assert pair.b.machine.stats["acks_delayed"] >= 1


def test_nagle_coalesces_small_writes():
    pair = TcpPair(config_a=TcpConfig(nagle=True, msl=0.5))
    pair.connect()
    for _ in range(20):
        pair.app_send("a", b"t")  # Tiny writes, no run() between.
    pair.run()
    assert bytes(pair.b.received) == b"t" * 20
    data_segments = [
        seg for _, d, seg in pair.wire_log if d == "a->b" and seg.payload
    ]
    # Nagle: far fewer segments than writes.
    assert len(data_segments) < 10


def test_nagle_disabled_sends_eagerly():
    pair = TcpPair(config_a=TcpConfig(nagle=False, msl=0.5))
    pair.connect()
    for _ in range(5):
        pair.app_send("a", b"t")
    pair.run()
    data_segments = [
        seg for _, d, seg in pair.wire_log if d == "a->b" and seg.payload
    ]
    assert len(data_segments) == 5


# ----------------------------------------------------------------------
# Flow control
# ----------------------------------------------------------------------


def test_receiver_window_limits_sender():
    pair = TcpPair(
        config_a=TcpConfig(mss=500, snd_buffer=64000, msl=0.5),
        config_b=TcpConfig(mss=500, rcv_buffer=2000, msl=0.5),
    )
    pair.connect()
    pair.b.auto_read = False  # Application stops reading.
    data = b"w" * 10000
    pair.app_send("a", data)
    pair.run(until=pair.now + 5.0)
    # Receiver buffer is full; no overrun happened.
    assert len(pair.b.received) <= 2000
    # Sender is stalled on a zero window.
    assert pair.a.machine.tcb.snd_wnd == 0
    # Application drains; window reopens; transfer completes.
    pair.app_read("b", len(pair.b.received))
    pair.b.auto_read = True
    pair.run(until=pair.now + 120.0)
    assert bytes(pair.b.received) == data


def test_zero_window_probe_sent():
    pair = TcpPair(
        config_a=TcpConfig(mss=500, msl=0.5),
        config_b=TcpConfig(mss=500, rcv_buffer=1000, msl=0.5),
    )
    pair.connect()
    pair.b.auto_read = False
    pair.app_send("a", b"p" * 5000)
    pair.run(until=pair.now + 30.0)
    assert pair.a.machine.stats["probes_sent"] >= 1


def test_window_update_reopens_stalled_sender():
    pair = TcpPair(
        config_a=TcpConfig(mss=500, msl=0.5),
        config_b=TcpConfig(mss=500, rcv_buffer=1500, msl=0.5),
    )
    pair.connect()
    pair.b.auto_read = False
    data = b"q" * 4500
    pair.app_send("a", data)
    pair.run(until=pair.now + 2.0)
    stalled_at = len(pair.b.received)
    assert stalled_at < len(data)
    pair.app_read("b", stalled_at)
    pair.b.auto_read = True
    pair.run(until=pair.now + 120.0)
    assert bytes(pair.b.received) == data


# ----------------------------------------------------------------------
# Close sequences
# ----------------------------------------------------------------------


def test_active_close_full_sequence():
    pair = TcpPair()
    pair.connect()
    pair.app_send("a", b"goodbye")
    pair.app_close("a")
    pair.run(until=30.0)
    assert bytes(pair.b.received) == b"goodbye"
    assert pair.b.got_fin
    assert pair.b.machine.state is State.CLOSE_WAIT
    # Passive side closes too.
    pair.app_close("b")
    pair.run(until=pair.now + 30.0)
    # a passes through TIME_WAIT and reaches CLOSED after 2MSL.
    assert pair.a.machine.state is State.CLOSED
    assert pair.b.machine.state is State.CLOSED
    assert (State.FIN_WAIT_2, State.TIME_WAIT) in pair.a.machine.transitions


def test_passive_close_states():
    pair = TcpPair()
    pair.connect()
    pair.app_close("a")
    pair.run(until=pair.now + 1.0)
    assert pair.a.machine.state is State.FIN_WAIT_2
    assert pair.b.machine.state is State.CLOSE_WAIT
    pair.app_close("b")
    pair.run(until=pair.now + 0.5)
    assert pair.b.machine.state is State.CLOSED
    assert pair.a.machine.state is State.TIME_WAIT


def test_simultaneous_close():
    pair = TcpPair(latency=0.01)
    pair.connect()
    pair.app_close("a")
    pair.app_close("b")  # Before a's FIN arrives: both FIN_WAIT_1.
    pair.run(until=30.0)
    assert pair.a.machine.state is State.CLOSED
    assert pair.b.machine.state is State.CLOSED
    # At least one side went through CLOSING (simultaneous close path).
    transitions = pair.a.machine.transitions + pair.b.machine.transitions
    assert any(new is State.CLOSING for _, new in transitions)


def test_fin_retransmitted_on_loss():
    pair = TcpPair()
    pair.connect()
    sent_before = len(pair.wire_log)
    dropper = {"first_fin_dropped": False}

    # Drop the first FIN a sends.
    original = pair.drop

    def drop(direction, index, segment):
        if direction == "a->b" and segment.fin and not dropper["first_fin_dropped"]:
            dropper["first_fin_dropped"] = True
            return True
        return original(direction, index, segment)

    pair.drop = drop
    pair.app_close("a")
    pair.run(until=60.0)
    assert pair.b.got_fin
    assert dropper["first_fin_dropped"]


def test_fin_piggybacks_on_final_data():
    pair = TcpPair()
    pair.connect()
    pair.app_send("a", b"last words")
    pair.app_close("a")
    pair.run(until=30.0)
    fins = [seg for _, d, seg in pair.wire_log if d == "a->b" and seg.fin]
    assert len({seg.seq for seg in fins}) == 1
    assert bytes(pair.b.received) == b"last words"


def test_close_then_send_rejected():
    pair = TcpPair()
    pair.connect()
    pair.app_close("a")
    with pytest.raises(TcpError):
        pair.a.machine.handle(AppSend(b"too late"), pair.now)


def test_time_wait_expires_to_closed():
    pair = TcpPair(config_a=TcpConfig(msl=0.1))
    pair.connect()
    pair.app_close("a")
    pair.app_close("b")
    pair.run(until=pair.now + 10.0)
    assert pair.a.machine.state is State.CLOSED
    assert pair.a.closed_reason == "done"


def test_time_wait_acks_retransmitted_fin():
    pair = TcpPair(config_a=TcpConfig(msl=5.0))
    pair.connect()
    pair.app_close("a")
    pair.app_close("b")
    pair.run(until=pair.now + 2.0)
    assert pair.a.machine.state is State.TIME_WAIT
    # Peer's FIN arrives again (retransmission); must be ACKed.
    fin_seg = next(
        seg for _, d, seg in pair.wire_log if d == "b->a" and seg.fin
    )
    acks_before = len([s for s in pair.a.emitted if not s.payload])
    pair.inject("a", fin_seg)
    assert len([s for s in pair.a.emitted if not s.payload]) > acks_before
    assert pair.a.machine.state is State.TIME_WAIT


# ----------------------------------------------------------------------
# Reset handling
# ----------------------------------------------------------------------


def test_abort_sends_rst_and_peer_resets():
    pair = TcpPair()
    pair.connect()
    pair.app_send("a", b"data then abort")
    pair.run()
    pair.app_abort("a")
    pair.run()
    assert pair.a.machine.state is State.CLOSED
    assert pair.a.closed_reason == "aborted"
    assert pair.b.machine.state is State.CLOSED
    assert pair.b.closed_reason == "reset"


def test_blind_rst_outside_window_ignored():
    pair = TcpPair()
    pair.connect()
    bogus = Segment(
        sport=80,
        dport=5000,
        seq=0xDEAD0000,  # Far outside the window.
        ack=0,
        flags=TCP_RST,
        window=0,
    )
    pair.inject("a", bogus)
    assert pair.a.machine.state is State.ESTABLISHED


def test_in_window_syn_resets_connection():
    pair = TcpPair()
    pair.connect()
    tcb = pair.a.machine.tcb
    intruder = Segment(
        sport=80,
        dport=5000,
        seq=tcb.rcv_nxt,
        ack=0,
        flags=TCP_SYN,
        window=100,
    )
    pair.inject("a", intruder)
    assert pair.a.machine.state is State.CLOSED
    assert pair.a.closed_reason == "reset"


def test_segment_to_closed_machine_gets_rst():
    machine = TcpMachine(9, 10)
    actions = machine.handle(
        __import__(
            "repro.protocols.tcp.events", fromlist=["SegmentArrives"]
        ).SegmentArrives(
            Segment(sport=10, dport=9, seq=5, ack=0, flags=TCP_ACK, window=0)
        ),
        0.0,
    )
    emitted = [a for a in actions if hasattr(a, "segment")]
    assert len(emitted) == 1
    assert emitted[0].segment.rst


# ----------------------------------------------------------------------
# Sequence number wraparound
# ----------------------------------------------------------------------


def test_transfer_across_sequence_wraparound():
    pair = TcpPair(iss_a=(1 << 32) - 2000, iss_b=(1 << 32) - 300)
    pair.connect()
    data = bytes(range(256)) * 32  # 8192 bytes crosses both wraps.
    pair.app_send("a", data)
    pair.app_send("b", data[:1000])
    pair.run()
    assert bytes(pair.b.received) == data
    assert bytes(pair.a.received) == data[:1000]


def test_close_across_wraparound():
    pair = TcpPair(iss_a=(1 << 32) - 5)
    pair.connect()
    pair.app_send("a", b"wrap" * 10)
    pair.app_close("a")
    pair.app_close("b")
    pair.run(until=60.0)
    assert bytes(pair.b.received) == b"wrap" * 10
    assert pair.a.machine.state is State.CLOSED
    assert pair.b.machine.state is State.CLOSED
