"""Scripted ACK traces through Reno/Tahoe: exact cwnd/ssthresh
trajectories for every phase transition the algorithm has."""

import pytest

from repro.protocols.tcp.cc import make_cc
from repro.protocols.tcp.cc.base import MAX_WINDOW
from repro.protocols.tcp.cc.reno import Reno

MSS = 1000


def test_slow_start_doubles_per_round():
    cc = make_cc("reno", mss=MSS)
    assert cc.cwnd == MSS
    # One MSS per ACK: after acking a full window, cwnd has doubled.
    trajectory = []
    for _ in range(4):
        cc.on_new_ack(MSS)
        trajectory.append(cc.cwnd)
    assert trajectory == [2 * MSS, 3 * MSS, 4 * MSS, 5 * MSS]


def test_congestion_avoidance_linear_growth():
    cc = make_cc("reno", mss=MSS)
    cc.cwnd = 10 * MSS
    cc.ssthresh = 8 * MSS  # Above ssthresh: congestion avoidance.
    before = cc.cwnd
    cc.on_new_ack(MSS)
    assert cc.cwnd == before + MSS * MSS // before  # mss²/cwnd per ACK.
    # A full window of ACKs adds roughly one MSS per RTT.
    cc = make_cc("reno", mss=MSS)
    cc.cwnd = 10 * MSS
    cc.ssthresh = 8 * MSS
    for _ in range(10):
        cc.on_new_ack(MSS)
    # Slightly under one full MSS: each increment divides by the
    # already-grown window (the classic BSD approximation).
    assert 10 * MSS + 900 <= cc.cwnd <= 10 * MSS + MSS


def test_fast_retransmit_trajectory_reno():
    """The exact RFC 5681-shaped sequence: 3 dups → halve + inflate,
    further dups inflate, new ACK deflates to ssthresh."""
    cc = make_cc("reno", mss=MSS)
    cc.cwnd = 12 * MSS
    cc.ssthresh = 8 * MSS
    flight = 12 * MSS
    assert cc.on_duplicate_ack(flight) is False
    assert cc.on_duplicate_ack(flight) is False
    assert cc.cwnd == 12 * MSS  # Nothing moves below the threshold.
    assert cc.on_duplicate_ack(flight) is True  # Third dup convicts.
    assert cc.ssthresh == 6 * MSS  # flight/2.
    assert cc.cwnd == 6 * MSS + 3 * MSS  # ssthresh + 3 MSS inflation.
    assert cc.in_recovery
    cc.on_duplicate_ack(flight)  # Fourth dup: inflate one MSS.
    assert cc.cwnd == 10 * MSS
    cc.on_new_ack(MSS)  # Recovery ACK: deflate to ssthresh.
    assert cc.cwnd == 6 * MSS
    assert not cc.in_recovery
    assert cc.dupacks == 0


def test_fast_retransmit_trajectory_tahoe():
    cc = make_cc("tahoe", mss=MSS)
    assert cc.flavor == "tahoe"
    cc.cwnd = 12 * MSS
    flight = 12 * MSS
    cc.on_duplicate_ack(flight)
    cc.on_duplicate_ack(flight)
    assert cc.on_duplicate_ack(flight) is True
    assert cc.ssthresh == 6 * MSS
    assert cc.cwnd == MSS  # Tahoe restarts from one segment.
    assert not cc.in_recovery


def test_timeout_collapses_to_one_segment():
    cc = make_cc("reno", mss=MSS)
    cc.cwnd = 16 * MSS
    cc.dupacks = 2
    cc.on_timeout(16 * MSS)
    assert cc.cwnd == MSS
    assert cc.ssthresh == 8 * MSS
    assert cc.dupacks == 0
    assert not cc.in_recovery


def test_ssthresh_floor_is_two_segments():
    cc = make_cc("reno", mss=MSS)
    cc.on_timeout(flight_size=MSS)  # Tiny flight: floor applies.
    assert cc.ssthresh == 2 * MSS


def test_window_capped_at_max_window():
    cc = make_cc("reno", mss=MSS)
    cc.cwnd = MAX_WINDOW - 10
    cc.ssthresh = 1  # Force congestion avoidance.
    cc.on_new_ack(MSS)
    assert cc.cwnd == MAX_WINDOW
    assert cc.window == MAX_WINDOW


def test_unknown_flavor_rejected():
    with pytest.raises(ValueError):
        Reno(mss=MSS, flavor="vegas")


def test_set_mss_resets_initial_window():
    cc = make_cc("reno", mss=1460)
    cc.set_mss(536)
    assert cc.mss == 536
    assert cc.cwnd == 536
