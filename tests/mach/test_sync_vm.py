"""Tests for user-level synchronization and VM regions."""

import pytest

from repro.costs import DECSTATION_5000_200, FREE
from repro.mach import (
    Condition,
    Kernel,
    Mutex,
    PAGE_SIZE,
    Semaphore,
    SharedRegion,
    vm_allocate,
    vm_map,
    vm_unmap,
    vm_wire,
)
from repro.sim import Simulator


def make_kernel(costs=FREE):
    sim = Simulator()
    return sim, Kernel(sim, costs, name="h")


# ----------------------------------------------------------------------
# Semaphore
# ----------------------------------------------------------------------


def test_semaphore_banked_signal():
    sim, kernel = make_kernel()
    sem = Semaphore(kernel)
    sem.signal()
    assert sem.value == 1

    def waiter():
        yield from sem.wait()
        return sim.now

    assert sim.run(until=sim.process(waiter())) == 0.0
    assert sem.value == 0


def test_semaphore_blocks_until_signal():
    sim, kernel = make_kernel()
    sem = Semaphore(kernel)
    woke = []

    def waiter():
        yield from sem.wait()
        woke.append(sim.now)

    def signaler():
        yield sim.timeout(4.0)
        sem.signal()

    sim.process(waiter())
    sim.process(signaler())
    sim.run()
    assert woke == [4.0]


def test_semaphore_fifo_wakeup():
    sim, kernel = make_kernel()
    sem = Semaphore(kernel)
    order = []

    def waiter(tag):
        yield from sem.wait()
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.process(waiter(tag))

    def signaler():
        yield sim.timeout(1.0)
        sem.signal(3)

    sim.process(signaler())
    sim.run()
    assert order == ["a", "b", "c"]


def test_semaphore_try_wait():
    _, kernel = make_kernel()
    sem = Semaphore(kernel, value=1)
    assert sem.try_wait()
    assert not sem.try_wait()


def test_semaphore_initial_value_validation():
    _, kernel = make_kernel()
    with pytest.raises(ValueError):
        Semaphore(kernel, value=-1)


def test_semaphore_wait_charges_sync_cost():
    sim = Simulator()
    kernel = Kernel(sim, DECSTATION_5000_200)
    sem = Semaphore(kernel, value=1)

    def proc():
        yield from sem.wait()

    sim.run(until=sim.process(proc()))
    assert sim.now == pytest.approx(DECSTATION_5000_200.cthread_sync_op)


def test_semaphore_waiting_count():
    sim, kernel = make_kernel()
    sem = Semaphore(kernel)

    def waiter():
        yield from sem.wait()

    sim.process(waiter())
    sim.process(waiter())
    sim.run_all(limit=0.0)
    assert sem.waiting == 2
    sem.signal(2)
    sim.run()
    assert sem.waiting == 0


# ----------------------------------------------------------------------
# Mutex / Condition
# ----------------------------------------------------------------------


def test_mutex_mutual_exclusion():
    sim, kernel = make_kernel()
    mutex = Mutex(kernel)
    trace = []

    def critical(tag):
        yield from mutex.acquire()
        trace.append(("enter", tag, sim.now))
        yield sim.timeout(2.0)
        trace.append(("exit", tag, sim.now))
        mutex.release()

    sim.process(critical("a"))
    sim.process(critical("b"))
    sim.run()
    assert trace == [
        ("enter", "a", 0.0),
        ("exit", "a", 2.0),
        ("enter", "b", 2.0),
        ("exit", "b", 4.0),
    ]


def test_mutex_double_release_rejected():
    sim, kernel = make_kernel()
    mutex = Mutex(kernel)

    def proc():
        yield from mutex.acquire()
        mutex.release()
        with pytest.raises(RuntimeError):
            mutex.release()

    sim.run(until=sim.process(proc()))


def test_condition_wait_signal():
    sim, kernel = make_kernel()
    mutex = Mutex(kernel)
    cond = Condition(kernel, mutex)
    state = {"ready": False}
    woke = []

    def consumer():
        yield from mutex.acquire()
        while not state["ready"]:
            yield from cond.wait()
        woke.append(sim.now)
        mutex.release()

    def producer():
        yield sim.timeout(3.0)
        yield from mutex.acquire()
        state["ready"] = True
        cond.signal()
        mutex.release()

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert woke == [3.0]


def test_condition_wait_without_mutex_rejected():
    sim, kernel = make_kernel()
    mutex = Mutex(kernel)
    cond = Condition(kernel, mutex)

    def proc():
        with pytest.raises(RuntimeError):
            yield from cond.wait()

    sim.run(until=sim.process(proc()))


def test_condition_broadcast_wakes_all():
    sim, kernel = make_kernel()
    mutex = Mutex(kernel)
    cond = Condition(kernel, mutex)
    woke = []

    def consumer(tag):
        yield from mutex.acquire()
        yield from cond.wait()
        woke.append(tag)
        mutex.release()

    for tag in ("a", "b"):
        sim.process(consumer(tag))

    def producer():
        yield sim.timeout(1.0)
        yield from mutex.acquire()
        cond.broadcast()
        mutex.release()

    sim.process(producer())
    sim.run()
    assert sorted(woke) == ["a", "b"]


# ----------------------------------------------------------------------
# VM regions
# ----------------------------------------------------------------------


def test_vm_allocate_maps_into_task():
    sim, kernel = make_kernel()
    task = kernel.create_task("app")

    def proc():
        region = yield from vm_allocate(kernel, task, 8192, name="bufs")
        return region

    region = sim.run(until=sim.process(proc()))
    assert region.is_mapped(task)
    assert region.pages == 2


def test_vm_map_shares_region():
    sim, kernel = make_kernel()
    a = kernel.create_task("a")
    b = kernel.create_task("b")

    def proc():
        region = yield from vm_allocate(kernel, a, PAGE_SIZE)
        yield from vm_map(kernel, region, b)
        return region

    region = sim.run(until=sim.process(proc()))
    assert region.is_mapped(a) and region.is_mapped(b)
    vm_unmap(region, b)
    assert not region.is_mapped(b)


def test_vm_wire_pins_and_charges_per_page():
    sim = Simulator()
    kernel = Kernel(sim, DECSTATION_5000_200)
    task = kernel.create_task("app")

    def proc():
        region = yield from vm_allocate(kernel, task, 3 * PAGE_SIZE)
        before = sim.now
        yield from vm_wire(kernel, region)
        return region, sim.now - before

    region, wire_time = sim.run(until=sim.process(proc()))
    assert region.pinned
    assert wire_time == pytest.approx(3 * DECSTATION_5000_200.vm_wire_page)


def test_vm_wire_idempotent():
    sim, kernel = make_kernel()
    task = kernel.create_task("app")

    def proc():
        region = yield from vm_allocate(kernel, task, PAGE_SIZE)
        yield from vm_wire(kernel, region)
        yield from vm_wire(kernel, region)
        return region

    region = sim.run(until=sim.process(proc()))
    assert region.pinned


def test_region_size_validation():
    _, kernel = make_kernel()
    with pytest.raises(ValueError):
        SharedRegion(kernel, 0)
