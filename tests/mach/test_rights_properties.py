"""Property tests for capability (port-right) conservation.

The security argument rests on rights being unforgeable and moving —
never duplicating — between tasks.  After any sequence of sends with
moved rights, each right exists in exactly one task's capability space.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs import FREE
from repro.mach import Kernel, Message, receive, send
from repro.sim import Simulator


@settings(max_examples=60, deadline=None)
@given(
    moves=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),  # Sender task index.
            st.integers(min_value=0, max_value=2),  # Receiver task index.
        ),
        max_size=12,
    )
)
def test_moved_rights_live_in_exactly_one_task(moves):
    sim = Simulator()
    kernel = Kernel(sim, FREE)
    tasks = [kernel.create_task(f"t{i}") for i in range(3)]

    # Every task can message every other task.
    mailboxes = {}
    for receiver_task in tasks:
        rx = receiver_task.allocate_port()
        mailboxes[receiver_task.name] = rx
        for sender_task in tasks:
            if sender_task is receiver_task:
                continue
            tx = receiver_task.make_send_right(rx)
            receiver_task.remove_right(tx)
            sender_task.insert_right(tx)

    # The tracked capability starts in t0.
    secret_rx = tasks[0].allocate_port("secret")
    secret = tasks[0].make_send_right(secret_rx)

    def find_send_right(task):
        for right in task._rights:
            if right.port is secret_rx.port and right.is_send:
                return right
        return None

    def driver():
        for sender_index, receiver_index in moves:
            sender, receiver_task = tasks[sender_index], tasks[receiver_index]
            if sender is receiver_task:
                continue
            right = find_send_right(sender)
            if right is None:
                continue  # The sender doesn't hold it right now.
            dest = None
            for candidate in sender._rights:
                if (
                    candidate.is_send
                    and candidate.port is mailboxes[receiver_task.name].port
                ):
                    dest = candidate
                    break
            yield from send(
                sender, dest, Message("move", moved_rights=(right,))
            )
            message = yield from receive(
                receiver_task, mailboxes[receiver_task.name]
            )
            assert message.moved_rights == (right,)

    sim.run(until=sim.process(driver()))

    holders = [task for task in tasks if find_send_right(task) is not None]
    assert len(holders) == 1


def test_right_not_usable_after_move():
    sim = Simulator()
    kernel = Kernel(sim, FREE)
    a = kernel.create_task("a")
    b = kernel.create_task("b")
    b_rx = b.allocate_port()
    b_tx = b.make_send_right(b_rx)
    b.remove_right(b_tx)
    a.insert_right(b_tx)

    target_rx = a.allocate_port("target")
    target_tx = a.make_send_right(target_rx)

    def scenario():
        yield from send(a, b_tx, Message("give", moved_rights=(target_tx,)))
        yield from receive(b, b_rx)
        # a no longer holds the moved right.
        from repro.mach import CapabilityViolation
        import pytest

        with pytest.raises(CapabilityViolation):
            yield from send(a, target_tx, Message("use-after-move"))
        # b can use it.
        yield from send(b, target_tx, Message("legit"))
        message = yield from receive(a, target_rx)
        return message.op

    assert sim.run(until=sim.process(scenario())) == "legit"
