"""Tests for ports, capabilities, and costed IPC."""

import pytest

from repro.costs import DECSTATION_5000_200, FREE
from repro.mach import (
    CapabilityViolation,
    DeadPortError,
    Kernel,
    Message,
    receive,
    reply_to,
    rpc,
    send,
)
from repro.sim import Simulator


def make_kernel(costs=FREE):
    sim = Simulator()
    return sim, Kernel(sim, costs, name="h")


def test_allocate_port_grants_receive_right():
    _, kernel = make_kernel()
    task = kernel.create_task("app")
    right = task.allocate_port("p")
    assert right.is_receive
    assert task.holds(right)


def test_send_right_minted_from_receive_right():
    _, kernel = make_kernel()
    task = kernel.create_task("app")
    rx = task.allocate_port()
    tx = task.make_send_right(rx)
    assert tx.is_send
    assert tx.port is rx.port


def test_cannot_mint_send_from_send():
    _, kernel = make_kernel()
    task = kernel.create_task("app")
    rx = task.allocate_port()
    tx = task.make_send_right(rx)
    with pytest.raises(CapabilityViolation):
        task.make_send_right(tx)


def test_send_and_receive_message():
    sim, kernel = make_kernel()
    server = kernel.create_task("server")
    client = kernel.create_task("client")
    rx = server.allocate_port("svc")
    tx = server.make_send_right(rx)
    client.insert_right(tx)
    got = []

    def server_proc():
        msg = yield from receive(server, rx)
        got.append((msg.op, msg.body))

    def client_proc():
        yield from send(client, tx, Message("hello", body=42))

    sim.process(server_proc())
    sim.process(client_proc())
    sim.run()
    assert got == [("hello", 42)]


def test_send_without_right_is_violation():
    sim, kernel = make_kernel()
    server = kernel.create_task("server")
    intruder = kernel.create_task("intruder")
    rx = server.allocate_port()
    tx = server.make_send_right(rx)  # Never given to intruder.

    def attack():
        with pytest.raises(CapabilityViolation):
            yield from send(intruder, tx, Message("spoof"))

    sim.run(until=sim.process(attack()))


def test_receive_requires_receive_right():
    sim, kernel = make_kernel()
    server = kernel.create_task("server")
    other = kernel.create_task("other")
    rx = server.allocate_port()
    tx = server.make_send_right(rx)
    other.insert_right(tx)

    def attack():
        with pytest.raises(CapabilityViolation):
            yield from receive(other, tx)

    sim.run(until=sim.process(attack()))


def test_send_once_right_consumed():
    sim, kernel = make_kernel()
    server = kernel.create_task("server")
    client = kernel.create_task("client")
    rx = server.allocate_port()
    once = server.make_send_right(rx, once=True)
    client.insert_right(once)
    server.remove_right(once)

    def client_proc():
        yield from send(client, once, Message("first"))
        with pytest.raises(CapabilityViolation):
            yield from send(client, once, Message("second"))

    sim.run(until=sim.process(client_proc()))


def test_moved_rights_change_capability_space():
    sim, kernel = make_kernel()
    registry = kernel.create_task("registry", privileged=True)
    app = kernel.create_task("app")
    app_rx = app.allocate_port("app-box")
    app_tx = app.make_send_right(app_rx)
    registry.insert_right(app_tx)
    app.remove_right(app_tx)

    # Registry owns a device channel and hands the app a send right to it.
    dev_rx = registry.allocate_port("channel")
    dev_tx = registry.make_send_right(dev_rx)

    def registry_proc():
        yield from send(
            registry, app_tx, Message("channel", moved_rights=(dev_tx,))
        )

    def app_proc():
        msg = yield from receive(app, app_rx)
        (moved,) = msg.moved_rights
        assert app.holds(moved)
        assert not registry.holds(moved)
        # The app can now use the channel.
        yield from send(app, moved, Message("data"))
        return True

    sim.process(registry_proc())
    assert sim.run(until=sim.process(app_proc()))


def test_rpc_round_trip():
    sim, kernel = make_kernel()
    server = kernel.create_task("server")
    client = kernel.create_task("client")
    rx = server.allocate_port()
    tx = server.make_send_right(rx)
    client.insert_right(tx)

    def server_proc():
        request = yield from receive(server, rx)
        yield from reply_to(
            server, request, Message("reply", body=request.body * 2)
        )

    def client_proc():
        reply = yield from rpc(client, tx, Message("request", body=21))
        return reply.body

    sim.process(server_proc())
    assert sim.run(until=sim.process(client_proc())) == 42


def test_rpc_reply_without_reply_port_rejected():
    sim, kernel = make_kernel()
    server = kernel.create_task("server")

    def proc():
        with pytest.raises(ValueError):
            yield from reply_to(server, Message("no-reply"), Message("r"))

    sim.run(until=sim.process(proc()))


def test_send_to_dead_port_fails():
    sim, kernel = make_kernel()
    server = kernel.create_task("server")
    client = kernel.create_task("client")
    rx = server.allocate_port()
    tx = server.make_send_right(rx)
    client.insert_right(tx)
    server.destroy_port(rx)

    def proc():
        with pytest.raises(DeadPortError):
            yield from send(client, tx, Message("late"))

    sim.run(until=sim.process(proc()))


def test_ipc_charges_cost_model():
    sim = Simulator()
    kernel = Kernel(sim, DECSTATION_5000_200, name="h")
    a = kernel.create_task("a")
    b = kernel.create_task("b")
    rx = a.allocate_port()
    tx = a.make_send_right(rx)
    b.insert_right(tx)
    nbytes = 1024

    def sender():
        yield from send(b, tx, Message("data", inline_bytes=nbytes))

    def receiver():
        yield from receive(a, rx)

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    expected = DECSTATION_5000_200.ipc_cost(nbytes)
    assert sim.now == pytest.approx(expected)


def test_ipc_message_counter():
    sim, kernel = make_kernel()
    a = kernel.create_task("a")
    b = kernel.create_task("b")
    rx = a.allocate_port()
    tx = a.make_send_right(rx)
    b.insert_right(tx)

    def proc():
        yield from send(b, tx, Message("one"))
        yield from send(b, tx, Message("two"))

    sim.run(until=sim.process(proc()))
    assert kernel.counters["ipc_messages"] == 2


def test_task_terminate_destroys_ports_and_runs_hooks():
    sim, kernel = make_kernel()
    app = kernel.create_task("app")
    rx = app.allocate_port()
    hooked = []
    app.on_exit(lambda task: hooked.append(task.name))
    app.terminate()
    assert hooked == ["app"]
    assert rx.port.dead
    assert not app.alive
    # Idempotent.
    app.terminate()
    assert hooked == ["app"]


def test_task_terminate_interrupts_threads():
    sim, kernel = make_kernel()
    app = kernel.create_task("app")
    outcomes = []

    def worker():
        try:
            yield sim.timeout(1000.0)
            outcomes.append("finished")
        except BaseException as exc:  # Interrupt
            outcomes.append(type(exc).__name__)

    app.spawn(worker(), name="w")

    def killer():
        yield sim.timeout(1.0)
        app.terminate()

    sim.process(killer())
    sim.run()
    assert outcomes == ["Interrupt"]


def test_spawn_on_dead_task_rejected():
    sim, kernel = make_kernel()
    app = kernel.create_task("app")
    app.terminate()

    def worker():
        yield sim.timeout(0)

    with pytest.raises(RuntimeError):
        app.spawn(worker())
