"""Tests for packet filters (interpreted + synthesized) and templates."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.costs import DECSTATION_5000_200
from repro.net.headers import (
    ETHERTYPE_IP,
    EthernetHeader,
    Ipv4Header,
    PROTO_TCP,
    PROTO_UDP,
    str_to_ip,
    str_to_mac,
)
from repro.netio import (
    ByteConstraint,
    FilterError,
    FilterProgram,
    HeaderTemplate,
    Instruction,
    Op,
    TemplateViolation,
    compile_tcp_demux,
    tcp_filter_program,
    tcp_send_template,
    udp_send_template,
)
from repro.protocols.tcp import Segment, encode_segment
from repro.net.headers import TCP_ACK

IP_A = str_to_ip("10.0.0.1")
IP_B = str_to_ip("10.0.0.2")
IP_C = str_to_ip("10.0.0.3")
MAC_A = str_to_mac("02:00:00:00:00:01")
MAC_B = str_to_mac("02:00:00:00:00:02")


def tcp_frame(src_ip, dst_ip, sport, dport, payload=b""):
    """Build a full Ethernet frame carrying one TCP segment."""
    seg = Segment(
        sport=sport, dport=dport, seq=1, ack=1, flags=TCP_ACK,
        window=100, payload=payload,
    )
    tcp = encode_segment(seg, src_ip, dst_ip)
    ip = Ipv4Header(
        src=src_ip, dst=dst_ip, protocol=PROTO_TCP,
        total_length=Ipv4Header.LENGTH + len(tcp),
    ).pack() + tcp
    return EthernetHeader(MAC_B, MAC_A, ETHERTYPE_IP).pack() + ip


def ip_packet(src_ip, dst_ip, sport, dport):
    """Just the IP packet (for send-template checks)."""
    frame = tcp_frame(src_ip, dst_ip, sport, dport)
    return frame[EthernetHeader.LENGTH :]


# ----------------------------------------------------------------------
# Stack machine
# ----------------------------------------------------------------------


def test_stack_machine_basic_ops():
    program = FilterProgram(
        [
            Instruction(Op.PUSH_LIT, 5),
            Instruction(Op.PUSH_LIT, 5),
            Instruction(Op.EQ),
        ]
    )
    assert program.run(b"")
    assert program.executed == 3


def test_stack_machine_reads_packet_bytes():
    program = FilterProgram(
        [
            Instruction(Op.PUSH_SHORT, 2),
            Instruction(Op.PUSH_LIT, 0xBBCC),
            Instruction(Op.EQ),
        ]
    )
    assert program.run(bytes([0x00, 0x11, 0xBB, 0xCC]))
    assert not program.run(bytes([0x00, 0x11, 0xBB, 0xCD]))


def test_stack_machine_out_of_range_reads_zero():
    program = FilterProgram(
        [
            Instruction(Op.PUSH_SHORT, 100),
            Instruction(Op.PUSH_LIT, 0),
            Instruction(Op.EQ),
        ]
    )
    assert program.run(b"short")


def test_stack_machine_underflow_raises():
    program = FilterProgram([Instruction(Op.EQ)])
    with pytest.raises(FilterError):
        program.run(b"")


def test_empty_program_rejected():
    with pytest.raises(FilterError):
        FilterProgram([])


def test_and_or_semantics():
    program = FilterProgram(
        [
            Instruction(Op.PUSH_LIT, 1),
            Instruction(Op.PUSH_LIT, 0),
            Instruction(Op.OR),
            Instruction(Op.PUSH_LIT, 1),
            Instruction(Op.AND),
        ]
    )
    assert program.run(b"")


# ----------------------------------------------------------------------
# TCP connection filters (both styles must classify identically)
# ----------------------------------------------------------------------

FILTER_BUILDERS = [
    pytest.param(tcp_filter_program, id="cspf"),
    pytest.param(compile_tcp_demux, id="synthesized"),
]


@pytest.mark.parametrize("builder", FILTER_BUILDERS)
def test_filter_accepts_own_connection(builder):
    # Filter for B's side of an A->B connection: local=B:80, remote=A:5000.
    f = builder(IP_B, 80, IP_A, 5000)
    assert f.run(tcp_frame(IP_A, IP_B, 5000, 80))


@pytest.mark.parametrize("builder", FILTER_BUILDERS)
def test_filter_rejects_wrong_port(builder):
    f = builder(IP_B, 80, IP_A, 5000)
    assert not f.run(tcp_frame(IP_A, IP_B, 5001, 80))
    assert not f.run(tcp_frame(IP_A, IP_B, 5000, 81))


@pytest.mark.parametrize("builder", FILTER_BUILDERS)
def test_filter_rejects_wrong_host(builder):
    f = builder(IP_B, 80, IP_A, 5000)
    assert not f.run(tcp_frame(IP_C, IP_B, 5000, 80))


@pytest.mark.parametrize("builder", FILTER_BUILDERS)
def test_filter_rejects_non_tcp(builder):
    f = builder(IP_B, 80, IP_A, 5000)
    frame = bytearray(tcp_frame(IP_A, IP_B, 5000, 80))
    # Rewrite the protocol byte to UDP (checksum no longer matters to
    # the filter, which inspects raw fields).
    frame[14 + 9] = PROTO_UDP
    assert not f.run(bytes(frame))


@given(
    sport=st.integers(min_value=1, max_value=0xFFFF),
    dport=st.integers(min_value=1, max_value=0xFFFF),
)
def test_filter_styles_agree_property(sport, dport):
    interpreted = tcp_filter_program(IP_B, 80, IP_A, 5000)
    compiled = compile_tcp_demux(IP_B, 80, IP_A, 5000)
    frame = tcp_frame(IP_A, IP_B, sport, dport)
    assert interpreted.run(frame) == compiled.run(frame)


def test_interpretation_cost_scales_with_length():
    costs = DECSTATION_5000_200
    interpreted = tcp_filter_program(IP_B, 80, IP_A, 5000)
    compiled = compile_tcp_demux(IP_B, 80, IP_A, 5000)
    cspf_cost = interpreted.interpretation_cost(costs)
    bpf_cost = interpreted.interpretation_cost(costs, bpf_style=True)
    synth_cost = compiled.interpretation_cost(costs)
    # The paper's ordering: interpretation is the slow path.
    assert cspf_cost > bpf_cost > 0
    assert synth_cost == costs.sw_demux
    assert cspf_cost > synth_cost


# ----------------------------------------------------------------------
# Header templates
# ----------------------------------------------------------------------


def test_template_accepts_matching_packet():
    template = tcp_send_template(IP_A, 5000, IP_B, 80)
    template.verify(ip_packet(IP_A, IP_B, 5000, 80))
    assert template.checks == 1
    assert template.violations == 0


def test_template_rejects_spoofed_source_ip():
    template = tcp_send_template(IP_A, 5000, IP_B, 80)
    with pytest.raises(TemplateViolation):
        template.verify(ip_packet(IP_C, IP_B, 5000, 80))
    assert template.violations == 1


def test_template_rejects_hijacked_port():
    template = tcp_send_template(IP_A, 5000, IP_B, 80)
    with pytest.raises(TemplateViolation):
        template.verify(ip_packet(IP_A, IP_B, 4999, 80))
    with pytest.raises(TemplateViolation):
        template.verify(ip_packet(IP_A, IP_B, 5000, 8080))


def test_template_rejects_redirected_destination():
    template = tcp_send_template(IP_A, 5000, IP_B, 80)
    with pytest.raises(TemplateViolation):
        template.verify(ip_packet(IP_A, IP_C, 5000, 80))


def test_udp_template_allows_any_destination():
    template = udp_send_template(IP_A, 2000)
    from repro.protocols.udp import encode_datagram

    for dst in (IP_B, IP_C):
        udp = encode_datagram(2000, 53, b"q", IP_A, dst)
        packet = Ipv4Header(
            src=IP_A, dst=dst, protocol=PROTO_UDP,
            total_length=Ipv4Header.LENGTH + len(udp),
        ).pack() + udp
        template.verify(packet)


def test_udp_template_pins_source_port():
    template = udp_send_template(IP_A, 2000)
    from repro.protocols.udp import encode_datagram

    udp = encode_datagram(2001, 53, b"q", IP_A, IP_B)
    packet = Ipv4Header(
        src=IP_A, dst=IP_B, protocol=PROTO_UDP,
        total_length=Ipv4Header.LENGTH + len(udp),
    ).pack() + udp
    with pytest.raises(TemplateViolation):
        template.verify(packet)


def test_template_requires_constraints():
    with pytest.raises(ValueError):
        HeaderTemplate([])


def test_byte_constraint_check():
    constraint = ByteConstraint(2, b"\xab\xcd")
    assert constraint.check(b"\x00\x00\xab\xcd\x00")
    assert not constraint.check(b"\x00\x00\xab\xce\x00")
