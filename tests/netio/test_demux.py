"""Unit tests for the flow-table demux engine."""

import pytest

from repro.costs import DECSTATION_5000_200, FREE
from repro.net.headers import (
    ETHERTYPE_IP,
    EthernetHeader,
    Ipv4Header,
    PROTO_TCP,
    PROTO_UDP,
    TCP_ACK,
    str_to_ip,
    str_to_mac,
)
from repro.netio import KERNEL_FLOW, DemuxError, FlowKey, FlowTable
from repro.netio.pktfilter import tcp_filter_program, udp_filter_program
from repro.protocols.tcp import Segment, encode_segment

IP_A = str_to_ip("10.0.0.1")
IP_B = str_to_ip("10.0.0.2")
MAC_A = str_to_mac("02:00:00:00:00:01")
MAC_B = str_to_mac("02:00:00:00:00:02")

COSTS = DECSTATION_5000_200


def tcp_frame(sport, dport, src_ip=IP_A, dst_ip=IP_B):
    seg = Segment(
        sport=sport, dport=dport, seq=1, ack=1, flags=TCP_ACK,
        window=64, payload=b"payload",
    )
    tcp = encode_segment(seg, src_ip, dst_ip)
    ip = Ipv4Header(
        src=src_ip, dst=dst_ip, protocol=PROTO_TCP,
        total_length=Ipv4Header.LENGTH + len(tcp),
    ).pack() + tcp
    return EthernetHeader(MAC_B, MAC_A, ETHERTYPE_IP).pack() + ip


def test_flow_key_tiers():
    exact = FlowKey(PROTO_TCP, IP_B, 80, IP_A, 5000)
    listen = FlowKey(PROTO_TCP, IP_B, 80)
    assert exact.is_exact
    assert not listen.is_exact
    assert "tcp" in str(exact) and "*" in str(listen)


def test_exact_tier_hit():
    table = FlowTable("synthesized")
    chan = object()
    table.install(FlowKey(PROTO_TCP, IP_B, 80, IP_A, 5000), chan)
    decision = table.classify(tcp_frame(5000, 80), COSTS)
    assert decision.channel is chan
    assert decision.tier == "exact"
    assert decision.cost == COSTS.flow_lookup
    assert table.stats["exact_hits"] == 1


def test_exact_miss_goes_to_miss_with_fixed_cost():
    table = FlowTable("synthesized")
    table.install(FlowKey(PROTO_TCP, IP_B, 80, IP_A, 5000), object())
    decision = table.classify(tcp_frame(5000, 81), COSTS)
    assert decision.channel is None
    assert decision.tier == "miss"
    # The synthesized lookup costs the same on hit and miss.
    assert decision.cost == COSTS.flow_lookup
    assert table.stats["misses"] == 1


def test_wildcard_tier_and_kernel_flow():
    table = FlowTable("synthesized")
    table.install(FlowKey(PROTO_TCP, IP_B, 80), KERNEL_FLOW)
    decision = table.classify(tcp_frame(12345, 80), COSTS)
    # A listener flow is a wildcard *hit* that still has no channel.
    assert decision.tier == "wildcard"
    assert decision.channel is None
    assert table.stats["wildcard_hits"] == 1


def test_wildcard_checks_local_ip():
    table = FlowTable("synthesized")
    chan = object()
    table.install(FlowKey(PROTO_UDP, IP_B, 53), chan)
    other_ip_frame = tcp_frame(5000, 53, dst_ip=IP_A)
    assert table.classify(other_ip_frame, COSTS).channel is None
    # local_ip 0 in the entry means any destination address.
    table2 = FlowTable("synthesized")
    table2.install(FlowKey(PROTO_TCP, 0, 53), chan)
    assert table2.classify(tcp_frame(5000, 53), COSTS).channel is chan


def test_exact_beats_wildcard():
    table = FlowTable("synthesized")
    listener = object()
    conn = object()
    table.install(FlowKey(PROTO_TCP, IP_B, 80), listener)
    table.install(FlowKey(PROTO_TCP, IP_B, 80, IP_A, 5000), conn)
    assert table.classify(tcp_frame(5000, 80), COSTS).channel is conn
    assert table.classify(tcp_frame(5001, 80), COSTS).channel is listener


def test_duplicate_installs_refused():
    table = FlowTable("synthesized")
    key = FlowKey(PROTO_TCP, IP_B, 80, IP_A, 5000)
    table.install(key, object())
    with pytest.raises(DemuxError):
        table.install(key, object())
    wkey = FlowKey(PROTO_UDP, IP_B, 53)
    table.install(wkey, object())
    with pytest.raises(DemuxError):
        table.install(wkey, object())


def test_remove_is_idempotent():
    table = FlowTable("synthesized")
    chan = object()
    key = FlowKey(PROTO_TCP, IP_B, 80, IP_A, 5000)
    table.install(key, chan)
    table.remove(key, chan)
    table.remove(key, chan)  # Second teardown must not raise.
    assert table.classify(tcp_frame(5000, 80), COSTS).channel is None
    assert len(table) == 0


def test_scan_tier_charges_per_program_until_match():
    table = FlowTable("cspf")
    decoy = tcp_filter_program(IP_B, 9999, IP_A, 8888)
    target_filter = tcp_filter_program(IP_B, 80, IP_A, 5000)
    chan = object()
    table.install(
        FlowKey(PROTO_TCP, IP_B, 9999, IP_A, 8888), object(), filter=decoy
    )
    table.install(
        FlowKey(PROTO_TCP, IP_B, 80, IP_A, 5000), chan, filter=target_filter
    )
    decision = table.classify(tcp_frame(5000, 80), COSTS)
    assert decision.channel is chan
    assert decision.tier == "scan"
    assert decision.scanned == 2
    assert decision.cost == pytest.approx(
        decoy.interpretation_cost(COSTS)
        + target_filter.interpretation_cost(COSTS)
    )
    assert table.stats["scan_hits"] == 1
    assert table.stats["filters_scanned"] == 2
    assert table.stats["max_scan_len"] == 2


def test_interpreted_style_skips_indexed_tiers():
    """Historical kernels had no flow table: under cspf/bpf the indexed
    tiers are bypassed, so classification runs the filters even though
    an exact entry exists."""
    table = FlowTable("cspf")
    chan = object()
    filt = udp_filter_program(IP_B, 53)
    table.install(FlowKey(PROTO_UDP, IP_B, 53), chan, filter=filt)
    frame = tcp_frame(5000, 80)  # TCP: the UDP filter rejects it.
    decision = table.classify(frame, COSTS)
    assert decision.tier == "miss"
    assert decision.scanned == 1
    assert decision.cost == pytest.approx(filt.interpretation_cost(COSTS))


def test_kernel_side_wildcard_resolution():
    table = FlowTable("cspf")
    chan = object()
    filt = udp_filter_program(IP_B, 53)
    table.install(FlowKey(PROTO_UDP, IP_B, 53), chan, filter=filt)
    # The forwarder resolves the binding regardless of demux style.
    assert table.wildcard_target(PROTO_UDP, 53, IP_B) is chan
    assert table.wildcard_target(PROTO_UDP, 53) is chan
    assert table.wildcard_target(PROTO_UDP, 54, IP_B) is None
    assert table.wildcard_target(PROTO_UDP, 53, IP_A) is None


def test_extract_key_rejects_malformed():
    assert FlowTable.extract_key(b"") is None
    assert FlowTable.extract_key(b"\x00" * 37) is None  # Too short.
    arp = bytearray(tcp_frame(5000, 80))
    arp[12:14] = b"\x08\x06"  # Not IP.
    assert FlowTable.extract_key(bytes(arp)) is None
    key = FlowTable.extract_key(tcp_frame(5000, 80))
    assert key == FlowKey(PROTO_TCP, IP_B, 80, IP_A, 5000)


def test_lookup_cost_independent_of_flow_count():
    table = FlowTable("synthesized")
    chan = object()
    table.install(FlowKey(PROTO_TCP, IP_B, 80, IP_A, 5000), chan)
    cost_1 = table.classify(tcp_frame(5000, 80), COSTS).cost
    for i in range(255):
        table.install(
            FlowKey(PROTO_TCP, IP_B, 20000 + i, IP_A, 30000 + i), object()
        )
    cost_256 = table.classify(tcp_frame(5000, 80), COSTS).cost
    assert cost_1 == cost_256 == COSTS.flow_lookup


def test_free_cost_model_classifies_for_nothing():
    table = FlowTable("synthesized")
    table.install(FlowKey(PROTO_TCP, IP_B, 80, IP_A, 5000), object())
    assert table.classify(tcp_frame(5000, 80), FREE).cost == 0.0
