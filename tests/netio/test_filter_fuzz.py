"""Fuzz properties for packet filters and templates.

Demux code runs in the kernel on attacker-controlled bytes: it must
never raise, and the interpreted and synthesized forms must agree on
every input.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs import FREE
from repro.net.headers import PROTO_TCP, PROTO_UDP, str_to_ip
from repro.netio import (
    FlowKey,
    FlowTable,
    compile_tcp_demux,
    tcp_filter_program,
    tcp_send_template,
    udp_send_template,
)
from repro.netio.pktfilter import compile_udp_demux, udp_filter_program

IP_A = str_to_ip("10.0.0.1")
IP_B = str_to_ip("10.0.0.2")

random_bytes = st.binary(max_size=128)

# A well-formed Ethernet+IP+TCP frame for the (IP_A:5000 -> IP_B:80)
# flow; mutating single bytes of it explores the near-miss space that
# purely random bytes almost never reach.
_BASE_FRAME = bytes.fromhex(
    "020000000002" "020000000001" "0800"          # Ethernet
) + bytes([0x45, 0, 0, 40, 0, 0, 0, 0, 64, PROTO_TCP, 0, 0]) + (
    IP_A.to_bytes(4, "big") + IP_B.to_bytes(4, "big")
) + (5000).to_bytes(2, "big") + (80).to_bytes(2, "big") + bytes(16)


@st.composite
def _mutated_frames(draw):
    frame = bytearray(_BASE_FRAME)
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        frame[draw(st.integers(0, len(frame) - 1))] = draw(
            st.integers(0, 255)
        )
    cut = draw(st.integers(min_value=0, max_value=len(frame)))
    return bytes(frame[:cut])


# Random garbage plus near-valid mutants — including truncated frames.
fuzz_frames = st.one_of(random_bytes, _mutated_frames())


@settings(max_examples=300, deadline=None)
@given(data=random_bytes)
def test_tcp_filters_never_crash_and_agree(data):
    interpreted = tcp_filter_program(IP_B, 80, IP_A, 5000)
    compiled = compile_tcp_demux(IP_B, 80, IP_A, 5000)
    assert interpreted.run(data) == compiled.run(data)


@settings(max_examples=300, deadline=None)
@given(data=random_bytes)
def test_udp_filters_never_crash_and_agree(data):
    interpreted = udp_filter_program(IP_B, 53)
    compiled = compile_udp_demux(IP_B, 53)
    assert interpreted.run(data) == compiled.run(data)


@settings(max_examples=300, deadline=None)
@given(data=random_bytes)
def test_templates_never_crash(data):
    tcp_template = tcp_send_template(IP_A, 5000, IP_B, 80)
    udp_template = udp_send_template(IP_A, 5000)
    # Arbitrary bytes either match or don't; never raise.
    tcp_template.matches(data)
    udp_template.matches(data)


@settings(max_examples=300, deadline=None)
@given(data=fuzz_frames)
def test_tcp_classifiers_agree_three_ways(data):
    """FilterProgram, CompiledDemux and the FlowTable exact tier are
    three implementations of the same predicate; on every frame —
    valid, mutated, or truncated — they must classify identically."""
    interpreted = tcp_filter_program(IP_B, 80, IP_A, 5000)
    compiled = compile_tcp_demux(IP_B, 80, IP_A, 5000)
    table = FlowTable("synthesized")
    chan = object()
    table.install(FlowKey(PROTO_TCP, IP_B, 80, IP_A, 5000), chan)
    hit = table.classify(data, FREE).channel is chan
    assert interpreted.run(data) == compiled.run(data) == hit


@settings(max_examples=300, deadline=None)
@given(data=fuzz_frames)
def test_udp_classifiers_agree_three_ways(data):
    """Same three-way agreement for the UDP wildcard (listen) tier."""
    interpreted = udp_filter_program(IP_B, 53)
    compiled = compile_udp_demux(IP_B, 53)
    table = FlowTable("synthesized")
    chan = object()
    table.install(FlowKey(PROTO_UDP, IP_B, 53), chan)
    hit = table.classify(data, FREE).channel is chan
    assert interpreted.run(data) == compiled.run(data) == hit


@settings(max_examples=200, deadline=None)
@given(
    data=random_bytes,
    ports=st.tuples(
        st.integers(min_value=1, max_value=0xFFFF),
        st.integers(min_value=1, max_value=0xFFFF),
    ),
)
def test_filters_for_different_connections_are_disjoint(data, ports):
    """No input may match two different connections' filters — the
    security property demux correctness rests on."""
    p1, p2 = ports
    if p1 == p2:
        return
    f1 = compile_tcp_demux(IP_B, p1, IP_A, 5000)
    f2 = compile_tcp_demux(IP_B, p2, IP_A, 5000)
    assert not (f1.run(data) and f2.run(data))
