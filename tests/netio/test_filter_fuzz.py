"""Fuzz properties for packet filters and templates.

Demux code runs in the kernel on attacker-controlled bytes: it must
never raise, and the interpreted and synthesized forms must agree on
every input.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.headers import str_to_ip
from repro.netio import (
    compile_tcp_demux,
    tcp_filter_program,
    tcp_send_template,
    udp_send_template,
)
from repro.netio.pktfilter import compile_udp_demux, udp_filter_program

IP_A = str_to_ip("10.0.0.1")
IP_B = str_to_ip("10.0.0.2")

random_bytes = st.binary(max_size=128)


@settings(max_examples=300, deadline=None)
@given(data=random_bytes)
def test_tcp_filters_never_crash_and_agree(data):
    interpreted = tcp_filter_program(IP_B, 80, IP_A, 5000)
    compiled = compile_tcp_demux(IP_B, 80, IP_A, 5000)
    assert interpreted.run(data) == compiled.run(data)


@settings(max_examples=300, deadline=None)
@given(data=random_bytes)
def test_udp_filters_never_crash_and_agree(data):
    interpreted = udp_filter_program(IP_B, 53)
    compiled = compile_udp_demux(IP_B, 53)
    assert interpreted.run(data) == compiled.run(data)


@settings(max_examples=300, deadline=None)
@given(data=random_bytes)
def test_templates_never_crash(data):
    tcp_template = tcp_send_template(IP_A, 5000, IP_B, 80)
    udp_template = udp_send_template(IP_A, 5000)
    # Arbitrary bytes either match or don't; never raise.
    tcp_template.matches(data)
    udp_template.matches(data)


@settings(max_examples=200, deadline=None)
@given(
    data=random_bytes,
    ports=st.tuples(
        st.integers(min_value=1, max_value=0xFFFF),
        st.integers(min_value=1, max_value=0xFFFF),
    ),
)
def test_filters_for_different_connections_are_disjoint(data, ports):
    """No input may match two different connections' filters — the
    security property demux correctness rests on."""
    p1, p2 = ports
    if p1 == p2:
        return
    f1 = compile_tcp_demux(IP_B, p1, IP_A, 5000)
    f2 = compile_tcp_demux(IP_B, p2, IP_A, 5000)
    assert not (f1.run(data) and f2.run(data))
