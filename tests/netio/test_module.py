"""Tests for the network I/O module: channel setup, protected send,
software/hardware demux, notification batching, and security."""

import pytest

from repro.costs import DECSTATION_5000_200, FREE
from repro.mach import Kernel
from repro.net import An1Link, An1Nic, EthernetLink, PmaddNic, str_to_ip, str_to_mac
from repro.net.headers import ETHERTYPE_IP, Ipv4Header, PROTO_TCP, TCP_ACK
from repro.netio import (
    Channel,
    ChannelClosed,
    NetworkIoModule,
    SecurityViolation,
    TemplateViolation,
    tcp_send_template,
)
from repro.protocols.tcp import Segment, encode_segment
from repro.sim import Simulator

IP_A = str_to_ip("10.0.0.1")
IP_B = str_to_ip("10.0.0.2")
MAC_A = str_to_mac("02:00:00:00:00:01")
MAC_B = str_to_mac("02:00:00:00:00:02")


def ip_packet(src_ip, dst_ip, sport, dport, payload=b"hi"):
    seg = Segment(
        sport=sport, dport=dport, seq=1, ack=1, flags=TCP_ACK,
        window=100, payload=payload,
    )
    tcp = encode_segment(seg, src_ip, dst_ip)
    return (
        Ipv4Header(
            src=src_ip, dst=dst_ip, protocol=PROTO_TCP,
            total_length=Ipv4Header.LENGTH + len(tcp),
        ).pack()
        + tcp
    )


class EthWorld:
    """Two hosts on Ethernet with netio modules."""

    def __init__(self, costs=FREE, demux_style="synthesized"):
        self.sim = Simulator()
        self.link = EthernetLink(self.sim)
        self.k_a = Kernel(self.sim, costs, name="A")
        self.k_b = Kernel(self.sim, costs, name="B")
        self.nic_a = PmaddNic(self.k_a, self.link, MAC_A, name="ethA")
        self.nic_b = PmaddNic(self.k_b, self.link, MAC_B, name="ethB")
        self.io_a = NetworkIoModule(self.k_a, self.nic_a, demux_style)
        self.io_b = NetworkIoModule(self.k_b, self.nic_b, demux_style)
        self.registry_a = self.k_a.create_task("registryA", privileged=True)
        self.registry_b = self.k_b.create_task("registryB", privileged=True)
        self.app_a = self.k_a.create_task("appA")
        self.app_b = self.k_b.create_task("appB")

    def channel_pair(self):
        """Channels for an A:5000 <-> B:80 connection."""
        chan_a = self.run(
            self.io_a.create_channel(
                self.registry_a,
                self.app_a,
                tcp_send_template(IP_A, 5000, IP_B, 80),
                local_ip=IP_A, local_port=5000,
                remote_ip=IP_B, remote_port=80,
                link_dst=MAC_B,
            )
        )
        chan_b = self.run(
            self.io_b.create_channel(
                self.registry_b,
                self.app_b,
                tcp_send_template(IP_B, 80, IP_A, 5000),
                local_ip=IP_B, local_port=80,
                remote_ip=IP_A, remote_port=5000,
                link_dst=MAC_A,
            )
        )
        return chan_a, chan_b

    def run(self, generator):
        return self.sim.run(until=self.sim.process(generator))


def test_create_channel_requires_privilege():
    world = EthWorld()
    with pytest.raises(SecurityViolation):
        world.run(
            world.io_a.create_channel(
                world.app_a,  # Not privileged.
                world.app_a,
                tcp_send_template(IP_A, 5000, IP_B, 80),
            )
        )


def test_channel_region_is_mapped_and_pinned():
    world = EthWorld()
    chan_a, _ = world.channel_pair()
    assert chan_a.region.pinned
    assert chan_a.region.is_mapped(world.app_a)


def test_send_and_demux_to_peer_channel():
    world = EthWorld()
    chan_a, chan_b = world.channel_pair()
    packet = ip_packet(IP_A, IP_B, 5000, 80)

    def scenario():
        yield from world.io_a.send(world.app_a, chan_a, packet)
        batch = yield from chan_b.receive_batch()
        return batch

    batch = world.run(scenario())
    assert batch == [packet]
    assert world.io_b.stats["rx_demuxed"] == 1
    assert world.io_b.stats["rx_to_kernel"] == 0


def test_send_by_non_owner_refused():
    world = EthWorld()
    chan_a, _ = world.channel_pair()
    intruder = world.k_a.create_task("intruder")
    packet = ip_packet(IP_A, IP_B, 5000, 80)

    def attack():
        with pytest.raises(SecurityViolation):
            yield from world.io_a.send(intruder, chan_a, packet)

    world.run(attack())
    assert world.io_a.stats["tx_refused"] == 1


def test_impersonation_blocked_by_template():
    world = EthWorld()
    chan_a, _ = world.channel_pair()
    # appA tries to send with a spoofed source port through its channel.
    spoofed = ip_packet(IP_A, IP_B, 6000, 80)

    def attack():
        with pytest.raises(TemplateViolation):
            yield from world.io_a.send(world.app_a, chan_a, spoofed)

    world.run(attack())
    assert world.io_a.stats["tx_refused"] == 1
    assert world.io_a.stats["tx"] == 0


def test_unauthorized_traffic_goes_to_kernel_not_channel():
    """Traffic for a connection no channel owns lands in the kernel
    consumer — an application can never read another's packets."""
    world = EthWorld()
    chan_a, chan_b = world.channel_pair()
    kernel_got = []

    def kernel_rx(ethertype, payload, link_src):
        kernel_got.append(payload)
        yield from ()

    world.io_b.kernel_rx = kernel_rx
    # A different connection's packet (port 9999, no channel).
    stray = ip_packet(IP_A, IP_B, 5000, 9999)

    def scenario():
        yield from world.io_a.kernel_send(stray, MAC_B)

    world.run(scenario())
    world.sim.run()
    assert kernel_got == [stray]
    assert len(chan_b.rx_queue) == 0


def test_notification_batching_amortizes_signals():
    world = EthWorld()
    chan_a, chan_b = world.channel_pair()
    packet = ip_packet(IP_A, IP_B, 5000, 80)

    def sender():
        for _ in range(8):
            yield from world.io_a.send(world.app_a, chan_a, packet)

    world.run(sender())
    world.sim.run()  # Let deliveries finish; nobody drains yet.
    assert chan_b.stats["delivered"] == 8
    assert chan_b.stats["signals"] == 1  # One signal covered all 8.

    def reader():
        batch = yield from chan_b.receive_batch()
        return batch

    batch = world.run(reader())
    assert len(batch) == 8
    assert chan_b.mean_batch_size == 8.0


def test_signal_charged_only_on_first_packet_of_batch():
    world = EthWorld(costs=DECSTATION_5000_200)
    chan_a, chan_b = world.channel_pair()
    packet = ip_packet(IP_A, IP_B, 5000, 80)

    def sender():
        for _ in range(5):
            yield from world.io_a.send(world.app_a, chan_a, packet)

    world.run(sender())
    world.sim.run()
    assert world.io_b.stats["signals_charged"] == 1


def test_channel_destroy_and_reuse_refused():
    world = EthWorld()
    chan_a, chan_b = world.channel_pair()
    world.io_a.destroy_channel(world.registry_a, chan_a)
    packet = ip_packet(IP_A, IP_B, 5000, 80)

    def attempt():
        with pytest.raises(SecurityViolation):
            yield from world.io_a.send(world.app_a, chan_a, packet)

    world.run(attempt())


def test_destroy_channel_permission():
    world = EthWorld()
    chan_a, _ = world.channel_pair()
    other = world.k_a.create_task("other")
    with pytest.raises(SecurityViolation):
        world.io_a.destroy_channel(other, chan_a)
    # The owner itself may destroy.
    world.io_a.destroy_channel(world.app_a, chan_a)
    assert chan_a.closed


def test_receive_on_closed_channel_raises():
    world = EthWorld()
    chan_a, chan_b = world.channel_pair()

    def reader():
        with pytest.raises(ChannelClosed):
            yield from chan_b.receive_batch()
        return True

    reader_proc = world.sim.process(reader())
    world.sim.run_all(limit=0.0)
    world.io_b.destroy_channel(world.registry_b, chan_b)
    assert world.sim.run(until=reader_proc)


def test_interpreted_demux_charges_per_program():
    world = EthWorld(costs=DECSTATION_5000_200, demux_style="cspf")
    chan_a, chan_b = world.channel_pair()
    packet = ip_packet(IP_A, IP_B, 5000, 80)
    before = world.k_b.cpu.busy_time

    def scenario():
        yield from world.io_a.send(world.app_a, chan_a, packet)
        yield from chan_b.receive_batch()

    world.run(scenario())
    costs = DECSTATION_5000_200
    spent = world.k_b.cpu.busy_time - before
    program_cost = chan_b.demux_filter.interpretation_cost(costs)
    # The interpreted program cost appears in B's receive path.
    assert spent >= program_cost
    assert program_cost > costs.sw_demux


# ----------------------------------------------------------------------
# AN1 hardware demux path
# ----------------------------------------------------------------------


class An1World:
    def __init__(self, costs=FREE):
        self.sim = Simulator()
        self.link = An1Link(self.sim)
        self.k_a = Kernel(self.sim, costs, name="A")
        self.k_b = Kernel(self.sim, costs, name="B")
        self.nic_a = An1Nic(self.k_a, self.link, station=1, name="an1A")
        self.nic_b = An1Nic(self.k_b, self.link, station=2, name="an1B")
        self.io_a = NetworkIoModule(self.k_a, self.nic_a)
        self.io_b = NetworkIoModule(self.k_b, self.nic_b)
        self.registry_a = self.k_a.create_task("registryA", privileged=True)
        self.registry_b = self.k_b.create_task("registryB", privileged=True)
        self.app_a = self.k_a.create_task("appA")
        self.app_b = self.k_b.create_task("appB")

    def run(self, generator):
        return self.sim.run(until=self.sim.process(generator))


def test_an1_channel_uses_hardware_ring():
    world = An1World()
    chan_b = world.run(
        world.io_b.create_channel(
            world.registry_b,
            world.app_b,
            tcp_send_template(IP_B, 80, IP_A, 5000),
            local_ip=IP_B, local_port=80,
            remote_ip=IP_A, remote_port=5000,
            link_dst=1,
        )
    )
    assert chan_b.ring is not None
    assert chan_b.ring.bqi > 0
    # Create the sender channel stamped with b's BQI.
    chan_a = world.run(
        world.io_a.create_channel(
            world.registry_a,
            world.app_a,
            tcp_send_template(IP_A, 5000, IP_B, 80),
            local_ip=IP_A, local_port=5000,
            remote_ip=IP_B, remote_port=80,
            link_dst=2,
            peer_bqi=chan_b.ring.bqi,
        )
    )
    packet = ip_packet(IP_A, IP_B, 5000, 80)

    def scenario():
        yield from world.io_a.send(world.app_a, chan_a, packet)
        batch = yield from chan_b.receive_batch()
        return batch

    batch = world.run(scenario())
    assert batch == [packet]
    assert chan_b.ring.stats["delivered"] == 1
    # Hardware demux: the software-filter path never ran.
    assert chan_b.demux_filter is None


def test_an1_ring_replenished_by_receive_batch():
    world = An1World()
    chan_b = world.run(
        world.io_b.create_channel(
            world.registry_b, world.app_b,
            tcp_send_template(IP_B, 80, IP_A, 5000),
            local_ip=IP_B, local_port=80,
            remote_ip=IP_A, remote_port=5000, link_dst=1,
        )
    )
    chan_a = world.run(
        world.io_a.create_channel(
            world.registry_a, world.app_a,
            tcp_send_template(IP_A, 5000, IP_B, 80),
            local_ip=IP_A, local_port=5000,
            remote_ip=IP_B, remote_port=80, link_dst=2,
            peer_bqi=chan_b.ring.bqi,
        )
    )
    capacity = chan_b.ring.capacity
    packet = ip_packet(IP_A, IP_B, 5000, 80)

    def scenario():
        for _ in range(3):
            yield from world.io_a.send(world.app_a, chan_a, packet)
        batch = yield from chan_b.receive_batch()
        return batch

    batch = world.run(scenario())
    world.sim.run()
    assert len(batch) >= 1
    # All buffers the batch consumed were handed back.
    assert chan_b.ring.available == capacity - (3 - len(batch))


def test_an1_bqi_zero_goes_to_kernel():
    world = An1World()
    kernel_got = []

    def kernel_rx(ethertype, payload, link_src):
        kernel_got.append((ethertype, payload))
        yield from ()

    world.io_b.kernel_rx = kernel_rx
    packet = ip_packet(IP_A, IP_B, 5000, 80)

    def scenario():
        yield from world.io_a.kernel_send(packet, 2, bqi=0)

    world.run(scenario())
    world.sim.run()
    assert kernel_got == [(ETHERTYPE_IP, packet)]


def test_an1_channel_teardown_releases_bqi():
    world = An1World()
    chan_b = world.run(
        world.io_b.create_channel(
            world.registry_b, world.app_b,
            tcp_send_template(IP_B, 80, IP_A, 5000),
            local_ip=IP_B, local_port=80,
            remote_ip=IP_A, remote_port=5000, link_dst=1,
        )
    )
    bqi = chan_b.ring.bqi
    assert bqi in world.nic_b.bqi_table
    world.io_b.destroy_channel(world.registry_b, chan_b)
    assert bqi not in world.nic_b.bqi_table
