"""Adversarial-tenant tests: each abuse vector is contained by the
trusted layers when enforcement is on, and leaves evidence the
isolation invariants convict on when it is off."""

import pytest

from repro.costs import FREE
from repro.mach import Kernel
from repro.net import An1Link, An1Nic, EthernetLink, PmaddNic, str_to_mac
from repro.net.headers import Ipv4Header, PROTO_TCP, TCP_ACK
from repro.netio import NetworkIoModule, tcp_send_template
from repro.netio.template import ByteConstraint, HeaderTemplate
from repro.org.udplib import LibraryUdpService
from repro.protocols.tcp import Segment, encode_segment
from repro.sim import Simulator
from repro.tenancy import (
    GrantViolation,
    QuotaExceeded,
    PortGrant,
    RateLimited,
    TenantBudget,
    TenantManager,
    attach_tenancy,
)
from repro.tenancy.campaign import IsolationSpec, run_cell
from repro.testbed import Testbed

IP_1 = 0x0A000001
IP_2 = 0x0A000002
MAC_A = str_to_mac("02:00:00:00:00:01")
MAC_B = str_to_mac("02:00:00:00:00:02")


class TwoTenantWorld:
    """One shared host, a victim tenant and an adversary tenant."""

    def __init__(self, an1: bool = False, enforcing: bool = True):
        self.sim = Simulator()
        self.kernel = Kernel(self.sim, FREE, name="A")
        if an1:
            self.link = An1Link(self.sim)
            self.nic = An1Nic(self.kernel, self.link, station=1, name="an1A")
        else:
            self.link = EthernetLink(self.sim)
            self.nic = PmaddNic(self.kernel, self.link, MAC_A, name="ethA")
        self.io = NetworkIoModule(self.kernel, self.nic)
        self.registry = self.kernel.create_task("registry", privileged=True)
        self.victim_app = self.kernel.create_task("victim-app")
        self.mallory_app = self.kernel.create_task("mallory-app")
        self.manager = TenantManager(enforcing=enforcing)
        self.io.tenants = self.manager
        self.victim = self.manager.create_tenant(
            "victim", TenantBudget(ports=PortGrant.of((4000, 4999)))
        )
        self.mallory = self.manager.create_tenant(
            "mallory",
            TenantBudget(
                bqi_buffers=64,
                tx_rate=1000.0,
                tx_burst=2000,
                ports=PortGrant.of((7000, 7999)),
            ),
        )
        self.manager.bind_task(self.victim_app, self.victim)
        self.manager.bind_task(self.mallory_app, self.mallory)

    def run(self, generator):
        return self.sim.run(until=self.sim.process(generator))


def ip_packet(src_ip, dst_ip, sport, dport, payload=b"x" * 40):
    seg = Segment(
        sport=sport, dport=dport, seq=1, ack=1, flags=TCP_ACK,
        window=100, payload=payload,
    )
    tcp = encode_segment(seg, src_ip, dst_ip)
    return (
        Ipv4Header(
            src=src_ip, dst=dst_ip, protocol=PROTO_TCP,
            total_length=Ipv4Header.LENGTH + len(tcp),
        ).pack()
        + tcp
    )


# ----------------------------------------------------------------------
# Forged template images
# ----------------------------------------------------------------------


def test_forged_template_into_victim_grant_refused():
    world = TwoTenantWorld()
    forged = tcp_send_template(IP_1, 4000, IP_2, 80)  # Victim's range.
    with pytest.raises(GrantViolation):
        world.run(
            world.io.create_channel(
                world.registry, world.mallory_app, forged,
                local_ip=IP_1, local_port=4000,
                remote_ip=IP_2, remote_port=80, link_dst=MAC_B,
            )
        )
    assert world.mallory.counters["forged_templates"] == 1
    assert len(world.io.channels) == 0


def test_template_not_pinning_source_refused():
    # A hand-built template image that omits the source-address pin
    # would let its holder spoof arbitrary senders.
    world = TwoTenantWorld()
    forged = HeaderTemplate(
        [ByteConstraint(Ipv4Header.LENGTH, (7000).to_bytes(2, "big"))],
        name="no-src-pin",
    )
    with pytest.raises(GrantViolation):
        world.run(
            world.io.create_channel(
                world.registry, world.mallory_app, forged,
                local_ip=IP_1, local_port=7000,
                remote_ip=IP_2, remote_port=80, link_dst=MAC_B,
            )
        )


def test_sabotaged_registration_still_audited():
    world = TwoTenantWorld(enforcing=False)
    forged = tcp_send_template(IP_1, 4000, IP_2, 80)
    channel = world.run(
        world.io.create_channel(
            world.registry, world.mallory_app, forged,
            local_ip=IP_1, local_port=4000,
            remote_ip=IP_2, remote_port=80, link_dst=MAC_B,
        )
    )
    assert channel is not None  # The sabotaged stack let it through...
    assert world.manager.audit["admission_refused"] == 1  # ...on record.


# ----------------------------------------------------------------------
# Flooding past the token bucket
# ----------------------------------------------------------------------


def test_flood_past_bucket_refused_not_queued():
    world = TwoTenantWorld()
    channel = world.run(
        world.io.create_channel(
            world.registry, world.mallory_app,
            tcp_send_template(IP_1, 7000, IP_2, 80),
            local_ip=IP_1, local_port=7000,
            remote_ip=IP_2, remote_port=80, link_dst=MAC_B,
        )
    )
    packet = ip_packet(IP_1, IP_2, 7000, 80)

    def flood():
        sent = refused = 0
        for _ in range(100):
            try:
                yield from world.io.send(world.mallory_app, channel, packet)
                sent += 1
            except RateLimited as exc:
                assert exc.retry_after > 0
                refused += 1
        return sent, refused

    sent, refused = world.run(flood())
    # The burst admits a handful; everything else is refused with a
    # retry hint, never queued.
    assert sent == world.mallory.counters["tx_packets"]
    assert 0 < sent < 100
    assert refused == 100 - sent
    assert world.mallory.counters["throttle_events"] == refused
    assert world.io.stats["tx_throttled"] == refused
    # Admitted bytes conform to the bucket (burst + deficit slack).
    assert world.mallory.counters["tx_bytes"] <= 2000 + len(packet)
    # The victim's budget is untouched throughout.
    assert world.victim.counters["throttle_events"] == 0


def test_sabotaged_flood_transmits_but_ledger_records_it():
    world = TwoTenantWorld(enforcing=False)
    channel = world.run(
        world.io.create_channel(
            world.registry, world.mallory_app,
            tcp_send_template(IP_1, 7000, IP_2, 80),
            local_ip=IP_1, local_port=7000,
            remote_ip=IP_2, remote_port=80, link_dst=MAC_B,
        )
    )
    packet = ip_packet(IP_1, IP_2, 7000, 80)

    def flood():
        for _ in range(100):
            yield from world.io.send(world.mallory_app, channel, packet)

    world.run(flood())
    # Every frame hit the wire, and the tx ledger says so — this is
    # what the rate-conformance invariant convicts on.
    assert world.mallory.counters["tx_packets"] == 100
    assert world.mallory.counters["tx_bytes"] == 100 * len(packet)


# ----------------------------------------------------------------------
# Binding into another tenant's grant (registry-level)
# ----------------------------------------------------------------------


def test_bind_into_other_tenants_grant_refused():
    bed = Testbed(network="ethernet", organization="userlib")
    manager = attach_tenancy(bed)
    alpha = manager.create_tenant(
        "alpha", TenantBudget(ports=PortGrant.of((4000, 4999)))
    )
    beta = manager.create_tenant(
        "beta", TenantBudget(ports=PortGrant.of((7000, 7999)))
    )
    manager.bind_task(bed.app_a, alpha)
    mallory_task = bed.host_a.create_task("mallory")
    manager.bind_task(mallory_task, beta)
    service = LibraryUdpService(bed.host_a, mallory_task, bed.registry_a)
    outcome = {}

    def scenario():
        try:
            yield from service.bind(4500)  # Alpha's range.
            outcome["bound"] = True
        except OSError:
            outcome["bound"] = False
        ep = yield from service.bind(7500)  # Beta's own range: fine.
        outcome["own"] = ep is not None

    bed.spawn(scenario())
    bed.run(until=1.0)
    assert outcome == {"bound": False, "own": True}
    assert beta.counters["out_of_grant_binds"] == 1
    assert beta.bound_ports == [7500]
    assert manager.audit["bind_refused"] == 1


# ----------------------------------------------------------------------
# BQI exhaustion under concurrent allocators
# ----------------------------------------------------------------------


def test_bqi_exhaustion_contained_by_quota():
    world = TwoTenantWorld(an1=True)
    results = {"mallory": [], "victim": []}

    def hoard():
        # Mallory's 64-buffer quota admits exactly two 32-buffer rings;
        # attempts three..six must be refused however fast they arrive.
        for _ in range(6):
            try:
                ring = world.io.allocate_ring(
                    world.registry, owner=world.mallory_app
                )
                results["mallory"].append(ring)
            except QuotaExceeded:
                results["mallory"].append(None)
            yield world.sim.timeout(0.001)

    def victim_allocates():
        # Interleaved with the hoard: the victim's own quota, not the
        # hoarder's appetite, decides whether this succeeds.
        yield world.sim.timeout(0.0015)
        ring = world.io.allocate_ring(world.registry, owner=world.victim_app)
        results["victim"].append(ring)

    world.sim.process(hoard())
    world.sim.process(victim_allocates())
    world.sim.run(until=1.0)

    mallory_rings = [r for r in results["mallory"] if r is not None]
    assert len(mallory_rings) == 2
    assert results["mallory"].count(None) == 4
    assert world.mallory.bqi_buffers_used == 64
    assert world.mallory.counters["rejections"] == 4
    assert len(results["victim"]) == 1 and results["victim"][0] is not None
    # Release restores capacity for the refused tenant.
    world.io.release_ring(world.registry, mallory_rings[0])
    assert world.mallory.bqi_buffers_used == 32
    ring = world.io.allocate_ring(world.registry, owner=world.mallory_app)
    assert ring is not None


# ----------------------------------------------------------------------
# Campaign cells (end-to-end containment and conviction)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("adversary", ["flooder", "leaker"])
def test_enforced_adversary_is_contained(adversary):
    solo = run_cell(IsolationSpec(adversary="none", deadline=2.0))
    cell = run_cell(
        IsolationSpec(adversary=adversary, deadline=2.0),
        solo_goodput=solo.evidence.victim_goodput,
    )
    assert cell.ok, [str(v) for r in cell.results for v in r.violations]


@pytest.mark.parametrize("adversary", ["flooder", "leaker"])
def test_sabotaged_adversary_is_caught(adversary):
    solo = run_cell(IsolationSpec(adversary="none", deadline=2.0))
    cell = run_cell(
        IsolationSpec(adversary=adversary, enforcing=False, deadline=2.0),
        solo_goodput=solo.evidence.victim_goodput,
    )
    assert cell.caught
