"""Integration tests: the trusted layers (network I/O module, flow
table, registry) enforce tenant budgets, refuse rather than queue, and
release everything through one path."""

import pytest

from repro.costs import FREE
from repro.mach import Kernel
from repro.net import An1Link, An1Nic, EthernetLink, PmaddNic, str_to_mac
from repro.netio import NetworkIoModule, tcp_send_template
from repro.netio.demux import DemuxError, FlowKey, FlowTable
from repro.net.headers import PROTO_TCP, PROTO_UDP
from repro.org.udplib import LibraryUdpService
from repro.sim import Simulator
from repro.tenancy import (
    PortGrant,
    QuotaExceeded,
    TenantBudget,
    TenantManager,
    attach_tenancy,
)
from repro.testbed import IP_B, Testbed

IP_1 = 0x0A000001
IP_2 = 0x0A000002
MAC_A = str_to_mac("02:00:00:00:00:01")
MAC_B = str_to_mac("02:00:00:00:00:02")

GRANT = PortGrant.of((4000, 4999))


class World:
    """One host with a netio module and a tenant directory."""

    def __init__(self, an1: bool = False):
        self.sim = Simulator()
        self.kernel = Kernel(self.sim, FREE, name="A")
        if an1:
            self.link = An1Link(self.sim)
            self.nic = An1Nic(self.kernel, self.link, station=1, name="an1A")
        else:
            self.link = EthernetLink(self.sim)
            self.nic = PmaddNic(self.kernel, self.link, MAC_A, name="ethA")
        self.io = NetworkIoModule(self.kernel, self.nic)
        self.registry = self.kernel.create_task("registry", privileged=True)
        self.app = self.kernel.create_task("app")
        self.manager = TenantManager()
        self.io.tenants = self.manager
        self.tenant = self.manager.create_tenant(
            "t", TenantBudget(region_bytes=128 * 1024, ports=GRANT)
        )
        self.manager.bind_task(self.app, self.tenant)

    def run(self, generator):
        return self.sim.run(until=self.sim.process(generator))

    def create_channel(self, port=4000, **kwargs):
        return self.run(
            self.io.create_channel(
                self.registry,
                self.app,
                tcp_send_template(IP_1, port, IP_2, 80),
                local_ip=IP_1,
                local_port=port,
                remote_ip=IP_2,
                remote_port=80,
                link_dst=MAC_B,
                **kwargs,
            )
        )


# ----------------------------------------------------------------------
# Refusals allocate nothing
# ----------------------------------------------------------------------


def test_quota_refusal_allocates_nothing():
    world = World()
    with pytest.raises(QuotaExceeded):
        world.create_channel(region_size=256 * 1024)
    assert len(world.io.channels) == 0
    assert world.io.region_pool_used == 0
    assert world.tenant.region_bytes_used == 0
    assert world.tenant.counters["rejections"] == 1
    assert world.manager.audit["admission_refused"] == 1


def test_pool_exhaustion_refuses_even_unenforced():
    # The buffer pool is physical scarcity, not policy: it refuses with
    # tenancy enforcement off too.
    world = World()
    world.manager.enforcing = False
    world.io.region_pool_bytes = 64 * 1024
    world.create_channel(port=4000)
    with pytest.raises(QuotaExceeded):
        world.create_channel(port=4001)
    assert world.io.stats["region_pool_refused"] == 1


def test_destroy_channel_releases_everything():
    world = World()
    world.io.region_pool_bytes = 128 * 1024
    channel = world.create_channel()
    assert world.tenant.region_bytes_used > 0
    assert world.io.region_pool_used > 0
    world.io.destroy_channel(world.app, channel)
    world.io.destroy_channel(world.app, channel)  # Idempotent.
    assert world.tenant.region_bytes_used == 0
    assert world.io.region_pool_used == 0
    assert world.tenant.leaks() == {}


def test_an1_channel_charges_and_releases_bqi():
    world = World(an1=True)
    channel = world.create_channel()
    assert channel.ring is not None
    assert world.tenant.bqi_buffers_used == channel.ring.capacity
    world.io.destroy_channel(world.app, channel)
    assert world.tenant.bqi_buffers_used == 0
    assert channel.ring.bqi not in world.nic.bqi_table
    assert world.tenant.leaks() == {}


def test_teardown_sweeps_channels_through_module():
    world = World()
    world.create_channel(port=4000)
    world.create_channel(port=4001)
    assert world.tenant.channel_count == 2
    assert world.tenant.teardown() == {}
    assert len(world.io.channels) == 0
    assert world.io.region_pool_used == 0


# ----------------------------------------------------------------------
# Wildcard ownership (satellite: no cross-tenant shadowing)
# ----------------------------------------------------------------------


def test_wildcard_install_rejected_when_shadowing_other_tenant():
    table = FlowTable()
    exact = FlowKey(PROTO_TCP, IP_1, 4000, IP_2, 80)
    table.install(exact, "chanA", owner="alpha")
    wild = FlowKey(PROTO_TCP, IP_1, 4000)
    with pytest.raises(DemuxError):
        table.install(wild, "chanB", owner="beta")
    assert table.stats["wildcard_rejected"] == 1
    # The same tenant (or an unowned kernel entry) may still install.
    table.install(wild, "chanA2", owner="alpha")
    assert table.wildcard_owner(PROTO_TCP, 4000) == "alpha"


def test_wildcard_allowed_after_exact_flows_removed():
    table = FlowTable()
    exact = FlowKey(PROTO_UDP, IP_1, 4000, IP_2, 80)
    table.install(exact, "chanA", owner="alpha")
    table.remove(exact)
    table.install(FlowKey(PROTO_UDP, IP_1, 4000), "chanB", owner="beta")
    assert table.wildcard_owner(PROTO_UDP, 4000) == "beta"


# ----------------------------------------------------------------------
# Registry paths (testbed level)
# ----------------------------------------------------------------------


def tenanted_bed(enforcing=True):
    bed = Testbed(network="ethernet", organization="userlib")
    manager = attach_tenancy(bed, enforcing=enforcing)
    alpha = manager.create_tenant(
        "alpha", TenantBudget(ports=PortGrant.of((4000, 4999)))
    )
    manager.bind_task(bed.app_a, alpha)
    manager.bind_task(bed.app_b, alpha)
    return bed, manager, alpha


def test_listener_cleanup_on_task_exit():
    bed, manager, alpha = tenanted_bed()

    def scenario():
        yield from bed.service_b.listen(4000)

    bed.spawn(scenario())
    bed.run(until=0.5)
    registry = bed.registry_b
    assert 4000 in registry._listeners
    bed.app_b.terminate()
    bed.run(until=1.0)
    assert 4000 not in registry._listeners
    assert registry.stats["inherited"] >= 1
    # The port is reusable afterwards (released, not lingering).
    assert not registry.ports.is_bound(4000, bed.sim.now)


def test_failed_connect_releases_port_and_leaves_no_leaks():
    bed, manager, alpha = tenanted_bed()

    def scenario():
        try:
            yield from bed.service_a.connect(IP_B, 4321)  # Nobody listens.
        except ConnectionError:
            pass

    bed.spawn(scenario())
    bed.run(until=30.0)  # Past SYN retry exhaustion.
    assert alpha.teardown() == {}
    assert bed.host_a.netio.region_pool_used == 0


def test_udp_bind_respects_grant_and_teardown_is_clean():
    bed, manager, alpha = tenanted_bed()
    service = LibraryUdpService(bed.host_a, bed.app_a, bed.registry_a)
    state = {}

    def scenario():
        state["ep"] = yield from service.bind(4500)
        with pytest.raises(OSError):
            yield from service.bind(80)  # Out of grant.

    bed.spawn(scenario())
    bed.run(until=1.0)
    assert state["ep"].channel in bed.host_a.netio.channels
    assert alpha.bound_ports == [4500]
    assert alpha.teardown() == {}
    assert bed.host_a.netio.region_pool_used == 0
