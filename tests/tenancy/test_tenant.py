"""Unit tests for the tenancy primitives: token bucket, port grants,
budgets, and the teardown/leak sweep."""

import pytest

from repro.tenancy import (
    GrantViolation,
    PortGrant,
    QuotaExceeded,
    Tenant,
    TenantBudget,
    TokenBucket,
)
from repro.netio.template import udp_send_template, tcp_send_template

IP = 0x0A000001


# ----------------------------------------------------------------------
# TokenBucket
# ----------------------------------------------------------------------


def test_bucket_admits_within_burst():
    bucket = TokenBucket(rate=1000.0, burst=4000)
    assert bucket.try_consume(4000, now=0.0) == 0.0


def test_bucket_refuses_when_drained_and_hints_retry():
    bucket = TokenBucket(rate=1000.0, burst=4000)
    assert bucket.try_consume(4000, now=0.0) == 0.0
    wait = bucket.try_consume(1000, now=0.0)
    assert wait == pytest.approx(1.0)  # 1000 tokens at 1000/s.
    # After waiting the hinted time the send is admitted.
    assert bucket.try_consume(1000, now=wait) == 0.0


def test_bucket_refills_capped_at_burst():
    bucket = TokenBucket(rate=1000.0, burst=2000)
    assert bucket.try_consume(2000, now=0.0) == 0.0
    # A long idle period refills to the burst cap, no further.
    assert bucket.try_consume(2000, now=100.0) == 0.0
    assert bucket.try_consume(1, now=100.0) > 0.0


def test_bucket_allows_oversize_packet_via_deficit():
    # A single packet larger than the burst must still be sendable
    # (otherwise the tenant could never transmit it at any rate): it is
    # admitted when the bucket is full and drives the balance negative.
    bucket = TokenBucket(rate=100.0, burst=1000)
    assert bucket.try_consume(1500, now=0.0) == 0.0
    # The deficit must be paid down before the next admission.
    wait = bucket.try_consume(100, now=0.0)
    assert wait > 5.0  # 500 deficit + 100 needed at 100/s.


def test_bucket_unlimited_when_rate_nonpositive():
    bucket = TokenBucket(rate=0.0, burst=0)
    for _ in range(10):
        assert bucket.try_consume(1 << 20, now=0.0) == 0.0


# ----------------------------------------------------------------------
# PortGrant
# ----------------------------------------------------------------------


def test_port_grant_of_ports_and_ranges():
    grant = PortGrant.of(80, (5000, 5999))
    assert grant.allows(80)
    assert grant.allows(5000) and grant.allows(5999)
    assert not grant.allows(81)
    assert not grant.allows(6000)


def test_port_grant_any_allows_everything():
    assert PortGrant.any().allows(1)
    assert PortGrant.any().allows(65535)


# ----------------------------------------------------------------------
# Budgets and attribution
# ----------------------------------------------------------------------


def make_tenant(**kwargs):
    defaults = dict(
        region_bytes=128 * 1024,
        bqi_buffers=64,
        max_channels=2,
        max_templates=2,
        ports=PortGrant.of((4000, 4999)),
    )
    defaults.update(kwargs)
    return Tenant("t", TenantBudget(**defaults))


def test_precheck_channel_enforces_caps():
    tenant = make_tenant()
    tenant.precheck_channel(64 * 1024)
    with pytest.raises(QuotaExceeded):
        tenant.precheck_channel(256 * 1024)  # Region quota.
    with pytest.raises(QuotaExceeded):
        tenant.precheck_channel(1024, ring_buffers=128)  # BQI quota.


def test_channel_cap_counts_live_channels():
    tenant = make_tenant(max_channels=1)

    class FakeChannel:
        pass

    first = FakeChannel()
    tenant.precheck_channel(1024)
    tenant.attach_channel(first, 1024)
    with pytest.raises(QuotaExceeded):
        tenant.precheck_channel(1024)
    tenant.release_channel(first)
    tenant.precheck_channel(1024)  # Freed capacity is reusable.


def test_region_attribution_and_peaks():
    tenant = make_tenant()

    class FakeChannel:
        pass

    a, b = FakeChannel(), FakeChannel()
    tenant.attach_channel(a, 64 * 1024)
    tenant.attach_channel(b, 32 * 1024)
    assert tenant.region_bytes_used == 96 * 1024
    tenant.release_channel(a)
    tenant.release_channel(a)  # Idempotent.
    assert tenant.region_bytes_used == 32 * 1024
    assert tenant.counters["peak_region_bytes"] == 96 * 1024


def test_check_port_and_ephemeral_grant():
    tenant = make_tenant()
    tenant.check_port(4000)
    with pytest.raises(GrantViolation):
        tenant.check_port(80)
    assert tenant.counters["rejections"] == 1
    # The registry's ephemeral allocator mints ports into the grant.
    tenant.grant_ephemeral(33000)
    tenant.check_port(33000)


def test_check_template_accepts_conforming_udp_and_tcp():
    tenant = make_tenant()
    tenant.check_template(udp_send_template(IP, 4500))
    tenant.check_template(tcp_send_template(IP, 4000, IP + 1, 80))


def test_check_template_rejects_out_of_grant_port():
    tenant = make_tenant()
    with pytest.raises(GrantViolation):
        tenant.check_template(udp_send_template(IP, 80))
    assert tenant.counters["forged_templates"] == 1


def test_check_template_rejects_unpinned_source():
    # A template with no source-address constraint is a spoofing
    # capability regardless of what port it names.
    from repro.netio.template import ByteConstraint, HeaderTemplate

    loose = HeaderTemplate([ByteConstraint(0, b"\x45")], name="loose")
    tenant = make_tenant()
    with pytest.raises(GrantViolation):
        tenant.check_template(loose)


# ----------------------------------------------------------------------
# Teardown / leaks
# ----------------------------------------------------------------------


def test_leaks_reports_outstanding_attribution():
    tenant = make_tenant()

    class FakeChannel:
        closed = True  # Not registered with any module: swept locally.
        module = None

    tenant.attach_channel(FakeChannel(), 1024)
    leaks = tenant.leaks()
    assert leaks["channels"] == 1
    assert leaks["region_bytes"] == 1024


def test_clean_tenant_has_no_leaks():
    tenant = make_tenant()

    class FakeChannel:
        pass

    chan = FakeChannel()
    tenant.attach_channel(chan, 1024)
    tenant.release_channel(chan)
    assert tenant.leaks() == {}
