"""Wire-trace digests: byte-identical regression evidence.

A run's wire behaviour is reduced to a sha256 over every captured
segment's addressing, sequence numbers, flags, window, and length, in
time order.  Because the simulator and fault injector are fully
deterministic, the digest of a :class:`~repro.check.campaign.CellSpec`
is a function of the code alone — any change to segmentation, timing,
or congestion control moves it.  ``tests/protocols/data/
reno_wire_golden.json`` pins the digests captured *before* the
congestion-control extraction; the regression test holds ``cc="reno"``
to them, proving the pluggable stack is byte-identical on the wire.
"""

from __future__ import annotations

import hashlib


def wire_digest(evidence) -> str:
    """sha256 over the decoded wire trace of one run's evidence."""
    h = hashlib.sha256()
    for s in evidence.segments:
        h.update(
            f"{s.time!r}|{s.src_ip}|{s.dst_ip}|{s.sport}|{s.dport}|"
            f"{s.seq}|{s.ack}|{s.flags}|{s.window}|{s.data_len}\n".encode()
        )
    return h.hexdigest()


def golden_cell_key(spec) -> str:
    """The stable key one spec gets in a golden-digest file."""
    return (
        f"{spec.topology}/{spec.organization}/seed{spec.seed}"
        f"/drop{spec.drop_rate}/corrupt{spec.corrupt_rate}"
    )


def digest_cell(spec) -> tuple[str, int]:
    """Run ``spec`` deterministically; return (digest, segment count)."""
    from .campaign import build_bed
    from .evidence import collect_evidence

    evidence = collect_evidence(
        build_bed(spec),
        transfers=spec.transfers,
        payload_bytes=spec.payload_bytes,
        chunk_size=spec.chunk_size,
        seed=spec.seed,
        deadline=spec.deadline,
    )
    return wire_digest(evidence), len(evidence.segments)
