"""Protocol-conformance checking: trace-driven invariants plus the
seeded chaos campaign that sweeps them over fault grids.

The paper's correctness claim — a user-level TCP that behaves like the
kernel's under loss, corruption, duplication, and reordering — is only
as good as what is *checked*.  This package closes the loop: a run's
wire trace, fault log, and socket transcripts become
:class:`~repro.check.evidence.RunEvidence`, the invariant checkers in
:mod:`~repro.check.invariants` judge it, and
:mod:`~repro.check.campaign` sweeps seeded fault grids over both
protocol organizations, with deterministic replay and shrinking of any
failure.

Quick start::

    PYTHONPATH=src python -m repro.check run --quick
"""

from .evidence import FaultEvent, RunEvidence, WireSegment, collect_evidence
from .golden import digest_cell, golden_cell_key, wire_digest
from .invariants import (
    CheckResult,
    INVARIANTS,
    Violation,
    check_all,
)
from .campaign import (
    CampaignReport,
    CellResult,
    CellSpec,
    replay_cell,
    run_campaign,
    run_cell,
    shrink_cell,
)

__all__ = [
    "CampaignReport",
    "CellResult",
    "CellSpec",
    "CheckResult",
    "FaultEvent",
    "INVARIANTS",
    "RunEvidence",
    "Violation",
    "WireSegment",
    "check_all",
    "collect_evidence",
    "digest_cell",
    "golden_cell_key",
    "replay_cell",
    "wire_digest",
    "run_campaign",
    "run_cell",
    "shrink_cell",
]
