"""CLI for the conformance campaign::

    python -m repro.check run [--quick] [--out report.json]
    python -m repro.check replay report.json --cell 3
    python -m repro.check shrink report.json --cell 3

``run`` sweeps the fault grid (the full ≥3×3 grid by default, the CI
smoke grid with ``--quick``) and exits non-zero on any violation.
``replay`` re-runs one cell of a saved report deterministically;
``shrink`` minimizes a failing cell and prints the wire trace around
the violation.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..netstat import render_invariants
from ..protocols.tcp.cc import CC_ALGORITHMS
from .campaign import (
    CellSpec,
    grid_specs,
    quick_specs,
    replay_cell,
    run_campaign,
    shrink_cell,
)


def _parse_ccs(value: str) -> tuple:
    """``--cc`` value: an algorithm name, a comma list, or ``all``."""
    if value == "all":
        return tuple(CC_ALGORITHMS)
    return tuple(name.strip() for name in value.split(",") if name.strip())


def _cmd_run(args) -> int:
    ccs = _parse_ccs(args.cc)
    if args.quick:
        specs = quick_specs(seed=args.seed, ccs=ccs)
    else:
        specs = grid_specs(seed=args.seed, ccs=ccs)
    report = run_campaign(specs, progress=print)
    print()
    print(report.summary())
    if report.cells:
        print()
        print(render_invariants(report.cells[-1].results))
    if args.out:
        report.save(args.out)
        print(f"report written to {args.out}")
    return 0 if report.ok else 1


def _load_report(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def _cmd_replay(args) -> int:
    report = _load_report(args.report)
    result = replay_cell(report, args.cell)
    recorded = report["cells"][args.cell]
    print(f"replaying cell {args.cell}: {result.spec}")
    print(render_invariants(result.results))
    recorded_violations = recorded.get("violations", [])
    print(
        f"recorded {len(recorded_violations)} violation(s), "
        f"replay produced {len(result.violations)}"
    )
    for v in result.violations:
        print(f"  {v}")
    matches = len(result.violations) == len(recorded_violations)
    if not matches:
        print("REPLAY MISMATCH: run is not deterministic", file=sys.stderr)
        return 2
    return 0 if result.ok else 1


def _cmd_shrink(args) -> int:
    report = _load_report(args.report)
    spec = CellSpec.from_dict(report["cells"][args.cell]["spec"])
    shrunk = shrink_cell(spec)
    print(f"original: {shrunk.original}")
    print(f"minimal:  {shrunk.minimal}")
    for description, still_failing in shrunk.steps:
        print(f"  try {description}: {'still fails' if still_failing else 'passes'}")
    print(f"{len(shrunk.violations)} violation(s) at the minimal spec:")
    for v in shrunk.violations:
        print(f"  {v}")
    if shrunk.trace_excerpt:
        print("wire trace around the violation:")
        for line in shrunk.trace_excerpt:
            print(f"  {line}")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(shrunk.as_dict(), fh, indent=2)
        print(f"shrink result written to {args.out}")
    return 1 if shrunk.violations else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="TCP conformance invariants + chaos campaign",
    )
    sub = parser.add_subparsers(dest="command")

    run_p = sub.add_parser("run", help="sweep the fault grid")
    run_p.add_argument(
        "--quick", action="store_true", help="small CI smoke grid"
    )
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument(
        "--cc",
        default="reno",
        help='congestion control: an algorithm name, a comma list, or "all"',
    )
    run_p.add_argument("--out", help="write the JSON report here")

    replay_p = sub.add_parser("replay", help="re-run one cell of a report")
    replay_p.add_argument("report")
    replay_p.add_argument("--cell", type=int, required=True)

    shrink_p = sub.add_parser("shrink", help="minimize a failing cell")
    shrink_p.add_argument("report")
    shrink_p.add_argument("--cell", type=int, required=True)
    shrink_p.add_argument("--out", help="write the shrink result here")

    args = parser.parse_args(argv)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "shrink":
        return _cmd_shrink(args)
    if args.command is None:
        args.quick = True
        args.seed = 1
        args.out = None
        args.cc = "reno"
    return _cmd_run(args)


if __name__ == "__main__":
    raise SystemExit(main())
