"""The chaos campaign: seeded fault grids swept over topologies and
protocol organizations, every cell judged by every invariant.

A **cell** is one fully specified run — topology, organization, fault
rates, seed, workload — captured in a frozen :class:`CellSpec`, which
is also the replay token: because every source of randomness (fault
injector, payloads) is seeded from the spec and the simulator is
deterministic, re-running a spec reproduces the run bit-for-bit.  A
campaign's JSON report therefore records, for each violation, exactly
the tuple needed to bring the failure back to life
(:func:`replay_cell`), and :func:`shrink_cell` bisects a failing spec
down to the smallest payload and lowest fault rates that still fail,
dumping the decoded wire trace around the violation.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Optional

from ..net.faults import FaultInjector
from ..protocols.tcp import TcpConfig
from ..testbed import FabricTestbed, Testbed
from .evidence import collect_evidence
from .invariants import check_all

#: Topologies the campaign understands.  "loopback" is the paper's
#: two-host private Ethernet segment; "dumbbell" routes every flow
#: through a switched bottleneck trunk (which is where the faults go).
TOPOLOGIES = ("loopback", "dumbbell")

#: Organization aliases: the paper's comparison is user-level library
#: vs. in-kernel monolithic; "monolithic" maps to the Ultrix profile.
ORGANIZATION_ALIASES = {"monolithic": "ultrix"}


@dataclass(frozen=True)
class CellSpec:
    """One deterministic chaos run: the replay token."""

    topology: str = "loopback"
    organization: str = "userlib"
    seed: int = 0
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    duplicate_rate: float = 0.0
    max_extra_delay: float = 0.0
    transfers: int = 2
    payload_bytes: int = 16_384
    chunk_size: int = 2048
    deadline: float = 60.0
    pairs: int = 2  # Dumbbell client/server pairs.
    red: bool = False  # RED (vs tail-drop) bottleneck queue.
    #: Conformant stacks use 3; the campaign's sabotage knob for proving
    #: the checkers catch a deliberately broken stack end-to-end.
    dup_ack_threshold: int = 3
    #: Congestion-control algorithm under test ("reno", "cubic", "bbr").
    cc: str = "reno"
    #: Receive-side header prediction (the TCP fast path).  On by
    #: default; campaigns race fast-path-on against fast-path-off cells
    #: to prove the optimization never changes wire behaviour.
    header_prediction: bool = True

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CellSpec":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class CellResult:
    """One cell's verdict."""

    spec: CellSpec
    results: list  # CheckResult per invariant.
    completed_transfers: int = 0
    total_transfers: int = 0
    evidence: Optional[object] = None  # RunEvidence when kept.

    @property
    def violations(self) -> list:
        return [v for r in self.results for v in r.violations]

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        return {
            "spec": self.spec.as_dict(),
            "ok": self.ok,
            "completed_transfers": self.completed_transfers,
            "total_transfers": self.total_transfers,
            "checked": {r.invariant: r.checked for r in self.results},
            "violations": [v.as_dict() for v in self.violations],
        }


@dataclass
class CampaignReport:
    """Every cell of one campaign, JSON-serializable for replay."""

    cells: list = field(default_factory=list)  # CellResult

    @property
    def violations(self) -> list:
        return [v for cell in self.cells for v in cell.violations]

    @property
    def failing_cells(self) -> list:
        return [cell for cell in self.cells if not cell.ok]

    @property
    def ok(self) -> bool:
        return not self.failing_cells

    def as_dict(self) -> dict:
        return {
            "cells": [cell.as_dict() for cell in self.cells],
            "total_cells": len(self.cells),
            "failing_cells": len(self.failing_cells),
            "total_violations": len(self.violations),
        }

    def save(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh, indent=2)

    def summary(self) -> str:
        lines = [
            f"campaign: {len(self.cells)} cells, "
            f"{len(self.failing_cells)} failing, "
            f"{len(self.violations)} violation(s)"
        ]
        for index, cell in enumerate(self.cells):
            if cell.ok:
                continue
            spec = cell.spec
            lines.append(
                f"  cell {index}: {spec.topology}/{spec.organization} "
                f"cc={spec.cc} seed={spec.seed} drop={spec.drop_rate} "
                f"corrupt={spec.corrupt_rate} dup={spec.duplicate_rate} "
                f"delay={spec.max_extra_delay}"
            )
            for v in cell.violations:
                lines.append(f"    {v}")
        return "\n".join(lines)


def build_bed(spec: CellSpec):
    """Construct the testbed a spec describes (fresh simulator each time)."""
    organization = ORGANIZATION_ALIASES.get(
        spec.organization, spec.organization
    )
    faults = FaultInjector(
        drop_rate=spec.drop_rate,
        corrupt_rate=spec.corrupt_rate,
        duplicate_rate=spec.duplicate_rate,
        max_extra_delay=spec.max_extra_delay,
        seed=spec.seed,
    )
    config = TcpConfig(
        dup_ack_threshold=spec.dup_ack_threshold,
        cc=spec.cc,
        header_prediction=spec.header_prediction,
    )
    if spec.topology == "loopback":
        return Testbed(
            network="ethernet",
            organization=organization,
            config=config,
            faults=faults,
        )
    if spec.topology == "dumbbell":
        return FabricTestbed(
            kind="dumbbell",
            organization=organization,
            config=config,
            faults=faults,
            pairs=spec.pairs,
            red=spec.red,
            red_seed=spec.seed,
        )
    raise ValueError(f"unknown topology {spec.topology!r}")


def run_cell(spec: CellSpec, keep_evidence: bool = False) -> CellResult:
    """Run one cell and judge it with every invariant."""
    bed = build_bed(spec)
    evidence = collect_evidence(
        bed,
        transfers=spec.transfers,
        payload_bytes=spec.payload_bytes,
        chunk_size=spec.chunk_size,
        seed=spec.seed,
        deadline=spec.deadline,
    )
    results = check_all(evidence)
    return CellResult(
        spec=spec,
        results=results,
        completed_transfers=sum(
            1 for t in evidence.transfers if t.complete
        ),
        total_transfers=len(evidence.transfers),
        evidence=evidence if keep_evidence else None,
    )


def grid_specs(
    topologies=TOPOLOGIES,
    organizations=("userlib", "ultrix"),
    drop_rates=(0.0, 0.01, 0.03),
    corrupt_rates=(0.0, 0.01, 0.03),
    duplicate_rates=(0.0, 0.02),
    delays=(0.0, 0.002),
    seed: int = 1,
    ccs=("reno",),
    **spec_overrides,
) -> list[CellSpec]:
    """The sweep: cc × topology × org × drop × corrupt × (duplicate, delay).

    Duplicate and delay rates zip with the (drop, corrupt) grid rather
    than multiplying it — each (drop, corrupt) cell alternates which
    duplicate/delay setting it gets, keeping the campaign a ≥3×3 grid
    per topology/org while still exercising all four fault axes.  Every
    spec gets a distinct deterministic seed derived from its position;
    the congestion-control axis multiplies the whole grid, and with the
    default single-algorithm tuple the seed sequence is identical to the
    pre-``ccs`` campaign (replay tokens stay valid).
    """
    specs = []
    for cc in ccs:
        for topology in topologies:
            for organization in organizations:
                index = 0
                for drop in drop_rates:
                    for corrupt in corrupt_rates:
                        duplicate = duplicate_rates[index % len(duplicate_rates)]
                        delay = delays[(index // len(duplicate_rates)) % len(delays)]
                        specs.append(
                            CellSpec(
                                topology=topology,
                                organization=organization,
                                seed=seed + 97 * len(specs),
                                drop_rate=drop,
                                corrupt_rate=corrupt,
                                duplicate_rate=duplicate,
                                max_extra_delay=delay,
                                cc=cc,
                                **spec_overrides,
                            )
                        )
                        index += 1
    return specs


def quick_specs(seed: int = 1, ccs=("reno",)) -> list[CellSpec]:
    """The CI smoke grid: both topologies and organizations, one benign
    and one adversarial cell each — seconds, not minutes."""
    return grid_specs(
        drop_rates=(0.0, 0.02),
        corrupt_rates=(0.01,),
        duplicate_rates=(0.02,),
        delays=(0.001,),
        seed=seed,
        ccs=ccs,
        transfers=1,
        payload_bytes=8192,
        deadline=30.0,
    )


def run_campaign(
    specs: list[CellSpec], progress=None, keep_evidence: bool = False
) -> CampaignReport:
    report = CampaignReport()
    for index, spec in enumerate(specs):
        result = run_cell(spec, keep_evidence=keep_evidence)
        report.cells.append(result)
        if progress is not None:
            status = "ok" if result.ok else (
                f"{len(result.violations)} VIOLATION(S)"
            )
            progress(
                f"[{index + 1}/{len(specs)}] {spec.topology}/"
                f"{spec.organization} cc={spec.cc} drop={spec.drop_rate} "
                f"corrupt={spec.corrupt_rate} dup={spec.duplicate_rate} "
                f"delay={spec.max_extra_delay} seed={spec.seed}: {status}"
            )
    return report


# ----------------------------------------------------------------------
# Replay & shrink
# ----------------------------------------------------------------------


def replay_cell(report: dict, cell_index: int, keep_evidence: bool = False):
    """Re-run one cell of a saved report, deterministically.

    ``report`` is the parsed JSON (``json.load``); the cell's spec dict
    is the replay tuple.  Returns the fresh :class:`CellResult` — for a
    genuine failure the same violations come back, every time.
    """
    spec = CellSpec.from_dict(report["cells"][cell_index]["spec"])
    return run_cell(spec, keep_evidence=keep_evidence)


@dataclass
class ShrinkResult:
    """Outcome of minimizing a failing spec."""

    original: CellSpec
    minimal: CellSpec
    steps: list = field(default_factory=list)  # (description, still_failing)
    trace_excerpt: list = field(default_factory=list)  # str lines
    violations: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "original": self.original.as_dict(),
            "minimal": self.minimal.as_dict(),
            "steps": list(self.steps),
            "violations": [v.as_dict() for v in self.violations],
            "trace_excerpt": list(self.trace_excerpt),
        }


def shrink_cell(
    spec: CellSpec,
    min_payload: int = 1024,
    min_rate: float = 0.005,
    context_records: int = 12,
) -> ShrinkResult:
    """Bisect a failing spec to the smallest configuration that still
    fails, then dump the decoded wire trace around the violation.

    Payload size is halved while the failure persists, then each
    non-zero fault rate is first zeroed (is it necessary at all?) and
    otherwise halved down to ``min_rate``.  Every candidate is a full
    deterministic re-run, so the result is exact, not probabilistic.
    """
    result = ShrinkResult(original=spec, minimal=spec)

    def fails(candidate: CellSpec):
        return run_cell(candidate)

    current = spec
    # 1. Shrink the payload.
    while current.payload_bytes // 2 >= min_payload:
        candidate = replace(
            current, payload_bytes=current.payload_bytes // 2
        )
        outcome = fails(candidate)
        result.steps.append(
            (f"payload {candidate.payload_bytes}", not outcome.ok)
        )
        if outcome.ok:
            break
        current = candidate
    # 2. Shrink each fault rate: drop it entirely if possible, else halve.
    for rate_field in (
        "drop_rate", "corrupt_rate", "duplicate_rate", "max_extra_delay"
    ):
        value = getattr(current, rate_field)
        if not value:
            continue
        candidate = replace(current, **{rate_field: 0.0})
        outcome = fails(candidate)
        result.steps.append((f"{rate_field}=0", not outcome.ok))
        if not outcome.ok:
            current = candidate
            continue
        while value / 2 >= min_rate:
            candidate = replace(current, **{rate_field: value / 2})
            outcome = fails(candidate)
            result.steps.append(
                (f"{rate_field}={value / 2:g}", not outcome.ok)
            )
            if outcome.ok:
                break
            value = value / 2
            current = candidate
    # 3. Final deterministic run of the minimal spec, with the trace.
    final = run_cell(current, keep_evidence=True)
    result.minimal = current
    result.violations = final.violations
    if final.violations and final.evidence is not None:
        records = final.evidence.trace_records
        timed = [v.time for v in final.violations if v.time > 0]
        first = min(timed) if timed else 0.0
        anchor = next(
            (i for i, r in enumerate(records) if r.time >= first),
            len(records) - 1,
        )
        lo = max(0, anchor - context_records)
        hi = min(len(records), anchor + context_records + 1)
        result.trace_excerpt = [str(r) for r in records[lo:hi]]
    return result
