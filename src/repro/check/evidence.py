"""Evidence collection: everything the invariant checkers judge.

A conformance run produces four bodies of evidence:

* the **wire trace** — every frame offered to the faulted link, decoded
  into :class:`WireSegment` records (captured *before* fault injection,
  so it shows what each sender actually did);
* the **fault log** — one :class:`FaultEvent` per frame, recording the
  injector's decision (drop/corrupt/duplicate/delay) and the exact
  post-fault bytes, via the link's ``fault_observers`` hook;
* the **socket transcripts** — the
  :class:`~repro.metrics.CheckedTransfer` records: payload offered,
  bytes the receiving socket saw, endpoint machines, close reasons;
* the **counters** — fault-injector and link statistics plus switch
  queue drops, for the conservation invariant.

Checkers consume a :class:`RunEvidence`; tests build one synthetically
(hand-written :class:`WireSegment` lists, stub machines) to prove each
checker fires, and :func:`collect_evidence` builds the real thing from
a live testbed.
"""

from __future__ import annotations

from ..counters import Counters

from dataclasses import dataclass, field
from typing import Optional

from ..metrics import run_checked_transfers
from ..net.faults import FaultPlan
from ..net.headers import (
    ETHERTYPE_IP,
    PROTO_TCP,
    An1Header,
    EthernetHeader,
    Ipv4Header,
    TCP_ACK,
    TCP_FIN,
    TCP_RST,
    TCP_SYN,
    ip_to_str,
)
from ..net.link import An1Link
from ..trace import WireTrace


@dataclass(frozen=True)
class WireSegment:
    """One TCP segment as captured on the faulted link (pre-fault)."""

    time: float
    src_ip: int
    dst_ip: int
    sport: int
    dport: int
    seq: int
    ack: int
    flags: int
    window: int
    data_len: int

    @property
    def syn(self) -> bool:
        return bool(self.flags & TCP_SYN)

    @property
    def fin(self) -> bool:
        return bool(self.flags & TCP_FIN)

    @property
    def rst(self) -> bool:
        return bool(self.flags & TCP_RST)

    @property
    def has_ack(self) -> bool:
        return bool(self.flags & TCP_ACK)

    @property
    def pure_ack(self) -> bool:
        """An ACK carrying nothing else — the dup-ack candidate shape."""
        return (
            self.has_ack
            and self.data_len == 0
            and not (self.flags & (TCP_SYN | TCP_FIN | TCP_RST))
        )

    @property
    def endpoint(self) -> tuple:
        return (self.src_ip, self.sport)

    @property
    def peer(self) -> tuple:
        return (self.dst_ip, self.dport)

    @property
    def conn_key(self) -> tuple:
        """Direction-independent connection identity."""
        a, b = self.endpoint, self.peer
        return (a, b) if a <= b else (b, a)

    def describe(self) -> str:
        return (
            f"{ip_to_str(self.src_ip)}:{self.sport} > "
            f"{ip_to_str(self.dst_ip)}:{self.dport} seq={self.seq} "
            f"ack={self.ack} len={self.data_len} flags={self.flags:#04x}"
        )


@dataclass
class FaultEvent:
    """The injector's decision for one frame on the faulted link."""

    time: float
    frame: bytes  # Pre-fault bytes, exactly as offered to the wire.
    plan: FaultPlan

    @property
    def duplicated(self) -> bool:
        return len(self.plan.deliveries) > 1


@dataclass
class RunEvidence:
    """Everything one conformance run produced, ready for judgement.

    Every field has a default so tests can construct partial evidence —
    a synthetic :class:`WireSegment` list is enough to exercise the
    trace-driven checkers, a stub machine with a ``transitions`` list is
    enough for the state checker.
    """

    segments: list = field(default_factory=list)  # WireSegment, time order
    transfers: list = field(default_factory=list)  # CheckedTransfer
    machines: list = field(default_factory=list)  # (name, TcpMachine)
    fault_events: list = field(default_factory=list)  # FaultEvent
    injector_stats: dict = field(
        default_factory=lambda: {
            "dropped": 0, "corrupted": 0, "duplicated": 0, "delayed": 0,
        }
    )
    link_stats: dict = field(default_factory=dict)
    queue_drops: int = 0
    min_rto: float = 0.5
    an1: bool = False
    #: Raw trace records (kept for failure dumps; not used by checkers).
    trace_records: list = field(default_factory=list)


def segments_from_trace(records, an1: bool = False) -> list[WireSegment]:
    """Extract :class:`WireSegment` evidence from decoded trace records.

    Only well-formed TCP records qualify; ``malformed`` and non-TCP
    records carry no sequence-space evidence.
    """
    segments = []
    for record in records:
        if record.protocol != "tcp" or len(record.layers) < 3:
            continue
        ip = record.layers[1]
        tcp = record.layers[2]
        if not isinstance(ip, Ipv4Header):
            continue
        data_len = ip.total_length - Ipv4Header.LENGTH - tcp.header_length
        segments.append(
            WireSegment(
                time=record.time,
                src_ip=ip.src,
                dst_ip=ip.dst,
                sport=tcp.sport,
                dport=tcp.dport,
                seq=tcp.seq,
                ack=tcp.ack,
                flags=tcp.flags,
                window=tcp.window,
                data_len=max(0, data_len),
            )
        )
    return segments


def machines_from_transfers(transfers) -> list:
    """Name every endpoint machine the transfers touched."""
    machines = []
    for t in transfers:
        if t.client_machine is not None:
            machines.append((f"client-{t.index}", t.client_machine))
        if t.server_machine is not None:
            machines.append((f"server-{t.index}", t.server_machine))
    return machines


def collect_evidence(bed, **transfer_kwargs) -> RunEvidence:
    """Instrument ``bed``'s faulted link, run the checked-transfer
    workload, and assemble the full :class:`RunEvidence`."""
    link = bed.faulted_link
    trace = WireTrace(link, capture=True)
    fault_events: list[FaultEvent] = []

    def observer(obs_link, frame: bytes, plan: FaultPlan) -> None:
        fault_events.append(FaultEvent(obs_link.sim.now, frame, plan))

    link.fault_observers.append(observer)
    try:
        transfers = run_checked_transfers(bed, **transfer_kwargs)
    finally:
        link.fault_observers.remove(observer)
        trace.detach()

    an1 = isinstance(link, An1Link)
    queue_drops = sum(
        port.drops for switch in bed.switches for port in switch.ports
    )
    return RunEvidence(
        segments=segments_from_trace(trace.records, an1=an1),
        transfers=transfers,
        machines=machines_from_transfers(transfers),
        fault_events=fault_events,
        injector_stats=link.faults.snapshot(),
        link_stats=Counters(link.stats),
        queue_drops=queue_drops,
        min_rto=bed.config.min_rto,
        an1=an1,
        trace_records=list(trace.records),
    )


def duplicated_ack_segments(fault_events, an1: bool = False) -> list[WireSegment]:
    """Pure-ACK copies the injector *added* to the wire.

    The trace captures each frame once, pre-fault; a duplicated ACK is
    delivered twice, so the sender may conformantly fast-retransmit
    after seeing fewer distinct ACK captures than the threshold.  The
    retransmission checker folds these extra copies back in.  Corrupted
    duplicates are skipped — the receiver rejects both copies.
    """
    extras = []
    for event in fault_events:
        if len(event.plan.deliveries) <= 1 or event.plan.corrupted:
            continue
        try:
            decoded = strict_decode(event.frame, an1=an1)
        except (ValueError, IndexError):
            continue
        if decoded is None:
            continue
        segment = decoded["segment"]
        if segment.payload or not segment.has_ack or segment.syn \
                or segment.fin or segment.rst:
            continue
        extras.append(
            WireSegment(
                time=event.time,
                src_ip=decoded["src_ip"],
                dst_ip=decoded["dst_ip"],
                sport=segment.sport,
                dport=segment.dport,
                seq=segment.seq,
                ack=segment.ack,
                flags=segment.flags,
                window=segment.window,
                data_len=0,
            )
        )
    return extras


def strict_decode(frame: bytes, an1: bool = False) -> Optional[dict]:
    """Decode a frame exactly as a receiving host would: link header,
    then IP with header-checksum verification, then TCP with
    pseudo-header checksum verification.

    Returns ``None`` for non-TCP traffic (no TCP conformance claim to
    make), a dict of addressing + the decoded
    :class:`~repro.protocols.tcp.wire.Segment` on success, and *raises*
    (``HeaderError`` / ``ChecksumError``) when any layer rejects the
    frame — which is the outcome the checksum invariant demands for
    corrupted frames.
    """
    from ..net.buf import as_wire_bytes
    from ..protocols.tcp.wire import decode_segment

    frame = as_wire_bytes(frame)
    if an1:
        link_header = An1Header.unpack(frame)
        link_dst = link_header.dst
        payload = frame[An1Header.LENGTH:]
    else:
        link_header = EthernetHeader.unpack(frame)
        link_dst = link_header.dst
        payload = frame[EthernetHeader.LENGTH:]
    if link_header.ethertype != ETHERTYPE_IP:
        return None
    ip = Ipv4Header.unpack(payload, verify=True)
    if ip.protocol != PROTO_TCP:
        return None
    body = payload[Ipv4Header.LENGTH:ip.total_length]
    segment = decode_segment(body, ip.src, ip.dst, verify=True)
    return {
        "link_dst": link_dst,
        "src_ip": ip.src,
        "dst_ip": ip.dst,
        "sport": segment.sport,
        "dport": segment.dport,
        "segment": segment,
    }
