"""The conformance invariants: machine-checkable properties every run
must satisfy, however hostile the network.

Each checker consumes :class:`~repro.check.evidence.RunEvidence` and
returns a :class:`CheckResult` — how much evidence it examined and the
violations it found.  The checkers only *read*; they never drive the
simulation, so a synthetic hand-written trace exercises them exactly
like a live one (which is how ``tests/check/test_invariants.py`` proves
each one actually fires).

The seven invariants:

``state-transitions``
    Every machine state change is an RFC-793-legal edge (including the
    simultaneous-open SYN-SENT→SYN-RECEIVED and simultaneous-close
    FIN-WAIT-1→CLOSING/TIME-WAIT edges; any state may fall to CLOSED on
    reset/abort/timeout).
``seq-ack-monotonic``
    Per direction, cumulative ACKs never move backwards, and no data
    segment overruns the peer's acknowledged point by more than the
    maximum window (plus one for the FIN).
``socket-integrity``
    Bytes a receiving socket delivers are always a prefix of what the
    sender's application wrote — no corruption, reordering, or
    duplication ever reaches the application — and a cleanly closed
    transfer delivered *everything*.
``retx-justified``
    A wire-level retransmission (a data segment whose range was already
    transmitted in full) happens only after a retransmission timeout
    (≥ the configured RTO floor) or after ≥ 3 duplicate ACKs — the
    conformant fast-retransmit threshold, judged regardless of how the
    stack under test was tuned.
``checksum-rejection``
    Every frame the injector corrupted is rejected by the receive path
    (link/IP/TCP header validation or checksum); a corrupted frame that
    re-decodes cleanly to the same connection is a checksum escape.
``fault-conservation``
    The injector's counters, the link's counters, and the observed
    fault log all agree; a fault-free, drop-free run retransmits
    nothing; and the wire never shows more retransmissions than the
    machines account for.
``cc-sanity``
    Congestion control stays sane whatever the algorithm: no data
    segment overruns the largest window edge (ack + window) the peer
    ever advertised, beyond one MSS of in-flight slack; every
    retransmission timeout collapses the congestion window to one
    segment; and for loss-based algorithms every convicted loss
    multiplicatively shrinks ``ssthresh`` (to at most ``MD_FACTOR`` of
    the pre-loss window, above the standard two-segment floor).
    Rate-based models (BBR) are exempt from the multiplicative-decrease
    clause but not the others.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..net.headers import HeaderError
from ..protocols.tcp.seq import seq_diff
from ..protocols.tcp.tcb import State
from ..protocols.tcp.wire import ChecksumError
from .evidence import (
    RunEvidence,
    duplicated_ack_segments,
    strict_decode,
)

#: Maximum receive window a segment can be sent against (16-bit field).
MAX_WINDOW = 65535

#: The conformant duplicate-ACK threshold for fast retransmit.  The
#: checker judges against this constant even when the stack under test
#: was deliberately mis-tuned through ``TcpConfig.dup_ack_threshold``.
DUP_ACK_THRESHOLD = 3

#: Slack on the RTO-floor test: scheduling jitter between the timer
#: firing and the retransmission reaching the wire must not produce
#: false violations, while a premature fast retransmit (an RTT or two,
#: milliseconds in these testbeds) stays clearly below the floor.
RTO_TOLERANCE = 0.9


@dataclass(frozen=True)
class Violation:
    """One invariant breach, with enough context to find it in a trace."""

    invariant: str
    subject: str  # Connection / transfer / machine the breach is on.
    time: float  # Sim time of the offending evidence (0 if run-level).
    detail: str

    def __str__(self) -> str:
        return (
            f"[{self.invariant}] t={self.time * 1e3:.3f}ms "
            f"{self.subject}: {self.detail}"
        )

    def as_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "subject": self.subject,
            "time": self.time,
            "detail": self.detail,
        }


@dataclass
class CheckResult:
    """One checker's verdict over a run."""

    invariant: str
    checked: int
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


# ----------------------------------------------------------------------
# 1. RFC 793 state-transition legality
# ----------------------------------------------------------------------

#: Legal RFC 793 edges (figure 6 plus the standard BSD additions).
LEGAL_TRANSITIONS = frozenset(
    {
        (State.CLOSED, State.LISTEN),
        (State.CLOSED, State.SYN_SENT),
        (State.LISTEN, State.SYN_RCVD),
        (State.LISTEN, State.SYN_SENT),
        (State.SYN_SENT, State.SYN_RCVD),  # Simultaneous open.
        (State.SYN_SENT, State.ESTABLISHED),
        (State.SYN_RCVD, State.ESTABLISHED),
        (State.SYN_RCVD, State.FIN_WAIT_1),
        (State.SYN_RCVD, State.LISTEN),
        (State.ESTABLISHED, State.FIN_WAIT_1),
        (State.ESTABLISHED, State.CLOSE_WAIT),
        (State.FIN_WAIT_1, State.FIN_WAIT_2),
        (State.FIN_WAIT_1, State.CLOSING),  # Simultaneous close.
        (State.FIN_WAIT_1, State.TIME_WAIT),  # FIN+ACK arrived together.
        (State.FIN_WAIT_2, State.TIME_WAIT),
        (State.CLOSE_WAIT, State.LAST_ACK),
        (State.CLOSING, State.TIME_WAIT),
    }
)


def check_state_transitions(evidence: RunEvidence) -> CheckResult:
    result = CheckResult("state-transitions", 0)
    for name, machine in evidence.machines:
        transitions = getattr(machine, "transitions", None) or []
        for old, new in transitions:
            result.checked += 1
            if new is State.CLOSED:
                continue  # Any state may fall to CLOSED (reset/abort).
            if (old, new) not in LEGAL_TRANSITIONS:
                result.violations.append(
                    Violation(
                        result.invariant,
                        name,
                        0.0,
                        f"illegal transition {old.value} -> {new.value}",
                    )
                )
    return result


# ----------------------------------------------------------------------
# Shared per-connection wire bookkeeping
# ----------------------------------------------------------------------


def _connections(segments: list) -> dict:
    """Group time-ordered segments by connection key."""
    conns: dict[tuple, list] = {}
    for seg in segments:
        conns.setdefault(seg.conn_key, []).append(seg)
    return conns


class _DirectionState:
    """Sequence-space bookkeeping for one direction of one connection."""

    def __init__(self) -> None:
        self.base: int | None = None  # ISN: first seq seen this way.
        self.max_ack: int | None = None  # Highest cumulative ACK sent.
        #: Data transmissions: (time, rel_start, rel_end).
        self.tx_log: list[tuple[float, int, int]] = []
        #: Merged transmitted intervals in relative sequence space.
        self.covered: list[list[int]] = []
        #: Pure ACKs sent this way: (time, absolute ack value).
        self.acks: list[tuple[float, int]] = []

    def rel(self, seq: int) -> int:
        if self.base is None:
            self.base = seq
        return seq_diff(seq, self.base)

    def is_covered(self, start: int, end: int) -> bool:
        return any(s <= start and end <= e for s, e in self.covered)

    def cover(self, start: int, end: int) -> None:
        merged = [[start, end]]
        for s, e in self.covered:
            if e < start or s > end:
                merged.append([s, e])
            else:
                merged[0][0] = min(merged[0][0], s)
                merged[0][1] = max(merged[0][1], e)
        merged.sort()
        self.covered = merged

    def last_covering_tx(self, start: int, end: int) -> float:
        times = [t for t, s, e in self.tx_log if s <= start and end <= e]
        return max(times) if times else float("-inf")


def _describe_conn(key: tuple) -> str:
    from ..net.headers import ip_to_str

    (ip_a, port_a), (ip_b, port_b) = key
    return f"{ip_to_str(ip_a)}:{port_a}<->{ip_to_str(ip_b)}:{port_b}"


# ----------------------------------------------------------------------
# 2. Sequence/ACK monotonicity and window discipline
# ----------------------------------------------------------------------


def check_seq_ack(evidence: RunEvidence) -> CheckResult:
    result = CheckResult("seq-ack-monotonic", 0)
    for key, segs in _connections(evidence.segments).items():
        conn = _describe_conn(key)
        dirs: dict[tuple, _DirectionState] = {}
        for seg in segs:
            result.checked += 1
            d = dirs.setdefault(seg.endpoint, _DirectionState())
            rel_seq = d.rel(seg.seq)
            if seg.has_ack and not seg.rst:
                if d.max_ack is not None and seq_diff(seg.ack, d.max_ack) < 0:
                    result.violations.append(
                        Violation(
                            result.invariant,
                            conn,
                            seg.time,
                            f"ACK moved backwards: {seg.ack} after "
                            f"{d.max_ack} ({seg.describe()})",
                        )
                    )
                if d.max_ack is None or seq_diff(seg.ack, d.max_ack) > 0:
                    d.max_ack = seg.ack
            if seg.data_len > 0 and not seg.rst:
                peer = dirs.get(seg.peer)
                if peer is not None and peer.max_ack is not None:
                    # All ACKs the peer ever put on the wire were
                    # captured before delivery, so the wire-side maximum
                    # is an upper bound on the sender's snd_una: the
                    # sender may not run more than one maximum window
                    # (plus the FIN's slot) beyond it.
                    rel_end = rel_seq + seg.data_len
                    limit = (
                        d.rel(peer.max_ack) + MAX_WINDOW + 1
                    )
                    if rel_end > limit:
                        result.violations.append(
                            Violation(
                                result.invariant,
                                conn,
                                seg.time,
                                f"data beyond the offered window: seq end "
                                f"{rel_end} > acked+{MAX_WINDOW + 1} "
                                f"({seg.describe()})",
                            )
                        )
    return result


# ----------------------------------------------------------------------
# 3. Socket-visible data integrity
# ----------------------------------------------------------------------


def check_socket_integrity(evidence: RunEvidence) -> CheckResult:
    result = CheckResult("socket-integrity", 0)
    for t in evidence.transfers:
        result.checked += 1
        subject = f"transfer-{t.index}"
        if not t.payload.startswith(t.received):
            limit = min(len(t.payload), len(t.received))
            diverge = next(
                (
                    i
                    for i in range(limit)
                    if t.payload[i] != t.received[i]
                ),
                limit,
            )
            kind = (
                "duplicated/extra data"
                if len(t.received) > len(t.payload)
                else "corrupted or reordered data"
            )
            result.violations.append(
                Violation(
                    result.invariant,
                    subject,
                    0.0,
                    f"{kind} reached the socket at offset {diverge} "
                    f"(sent {len(t.payload)} bytes, got {len(t.received)})",
                )
            )
            continue
        cleanly_closed = (
            t.client_done
            and t.server_done
            and not t.errors
            and t.client_close_reason == "done"
            and t.server_close_reason == "done"
        )
        if cleanly_closed and len(t.received) != len(t.payload):
            result.violations.append(
                Violation(
                    result.invariant,
                    subject,
                    0.0,
                    f"clean close but only {len(t.received)} of "
                    f"{len(t.payload)} bytes delivered",
                )
            )
    return result


# ----------------------------------------------------------------------
# 4. Retransmissions only when justified
# ----------------------------------------------------------------------


def classify_retransmissions(segments: list) -> list[dict]:
    """Find wire-level retransmissions and judge each one.

    A data segment is a retransmission only when its *entire* byte range
    was previously offered to this link — a segment whose original was
    dropped upstream (a switch queue before the traced trunk) never
    appeared here and is deliberately not classified, and a
    retransmission that coalesces new bytes advances past prior coverage
    and is likewise skipped.  Each retransmission is justified by either
    elapsed time ≥ the RTO floor or ≥ 3 duplicate ACKs from the peer
    since the last covering transmission.
    """
    found = []
    for key, segs in _connections(segments).items():
        dirs: dict[tuple, _DirectionState] = {}
        for seg in segs:
            d = dirs.setdefault(seg.endpoint, _DirectionState())
            if seg.pure_ack:
                d.rel(seg.seq)
                d.acks.append((seg.time, seg.ack))
                continue
            if seg.data_len <= 0 or seg.rst:
                d.rel(seg.seq)
                continue
            start = d.rel(seg.seq)
            end = start + seg.data_len
            if d.is_covered(start, end):
                last_tx = d.last_covering_tx(start, end)
                peer = dirs.get(seg.peer)
                dup_acks = 0
                if peer is not None:
                    dup_acks = sum(
                        1
                        for ack_time, ack in peer.acks
                        if ack == seg.seq and ack_time > last_tx
                    )
                found.append(
                    {
                        "segment": seg,
                        "conn": key,
                        "elapsed": seg.time - last_tx,
                        "dup_acks": dup_acks,
                    }
                )
            d.tx_log.append((seg.time, start, end))
            d.cover(start, end)
    return found


def check_retransmissions(evidence: RunEvidence) -> CheckResult:
    result = CheckResult("retx-justified", 0)
    segments = evidence.segments
    extras = duplicated_ack_segments(evidence.fault_events, an1=evidence.an1)
    if extras:
        segments = sorted(segments + extras, key=lambda s: s.time)
    retx = classify_retransmissions(segments)
    result.checked = len(retx)
    floor = RTO_TOLERANCE * evidence.min_rto
    for r in retx:
        seg = r["segment"]
        if r["dup_acks"] >= DUP_ACK_THRESHOLD:
            continue
        if r["elapsed"] >= floor:
            continue
        result.violations.append(
            Violation(
                result.invariant,
                _describe_conn(r["conn"]),
                seg.time,
                f"unjustified retransmission after {r['elapsed'] * 1e3:.3f}ms "
                f"with only {r['dup_acks']} duplicate ACK(s) "
                f"({seg.describe()})",
            )
        )
    return result


# ----------------------------------------------------------------------
# 5. Checksum rejection of corrupted frames
# ----------------------------------------------------------------------


def check_checksums(evidence: RunEvidence) -> CheckResult:
    result = CheckResult("checksum-rejection", 0)
    for event in evidence.fault_events:
        if not event.plan.corrupted or not event.plan.deliveries:
            continue
        mutated = event.plan.deliveries[0][1]
        result.checked += 1
        try:
            decoded = strict_decode(mutated, an1=evidence.an1)
        except (HeaderError, ChecksumError, ValueError, IndexError):
            continue  # Rejected, as required.
        if decoded is None:
            continue  # Corruption turned it into non-TCP traffic.
        try:
            original = strict_decode(event.frame, an1=evidence.an1)
        except (HeaderError, ChecksumError, ValueError, IndexError):
            original = None
        if original is None:
            continue  # Not a TCP frame to begin with.
        same_path = all(
            decoded[k] == original[k]
            for k in ("link_dst", "src_ip", "dst_ip", "sport", "dport")
        )
        if same_path and decoded["segment"] != original["segment"]:
            result.violations.append(
                Violation(
                    result.invariant,
                    f"{decoded['src_ip']}:{decoded['sport']}->"
                    f"{decoded['dst_ip']}:{decoded['dport']}",
                    event.time,
                    "corrupted frame passed every checksum and decoded "
                    f"to a different segment: {decoded['segment']!r}",
                )
            )
    return result


# ----------------------------------------------------------------------
# 6. Fault conservation
# ----------------------------------------------------------------------


def check_conservation(evidence: RunEvidence) -> CheckResult:
    result = CheckResult("fault-conservation", 1)
    inj = evidence.injector_stats
    # (a) The observed fault log and the injector's counters agree.
    if evidence.fault_events:
        observed = {
            "dropped": sum(1 for e in evidence.fault_events if e.plan.dropped),
            "corrupted": sum(
                1 for e in evidence.fault_events if e.plan.corrupted
            ),
            "duplicated": sum(
                1 for e in evidence.fault_events if e.duplicated
            ),
        }
        for kind, count in observed.items():
            if count != inj.get(kind, 0):
                result.violations.append(
                    Violation(
                        result.invariant,
                        "fault-log",
                        0.0,
                        f"observed {count} {kind} frames but the injector "
                        f"counted {inj.get(kind, 0)}",
                    )
                )
    # (b) Link counters are the injector's counters (one source of truth).
    for kind in ("dropped", "corrupted", "duplicated"):
        if kind in evidence.link_stats and evidence.link_stats[kind] != inj.get(
            kind, 0
        ):
            result.violations.append(
                Violation(
                    result.invariant,
                    "link-stats",
                    0.0,
                    f"link reports {evidence.link_stats[kind]} {kind} but "
                    f"the injector counted {inj.get(kind, 0)}",
                )
            )
    # (c) Retransmissions need a cause: on a fault-free, drop-free run
    # nothing may be retransmitted (the RTO floor exceeds the delayed-ACK
    # interval, so there is no benign timeout to excuse it).
    total_faults = sum(
        inj.get(k, 0) for k in ("dropped", "corrupted", "duplicated", "delayed")
    )
    machine_retx = sum(
        getattr(m, "stats", {}).get("retransmits", 0)
        for _, m in evidence.machines
    )
    wire_retx = len(classify_retransmissions(evidence.segments))
    if total_faults == 0 and evidence.queue_drops == 0 and machine_retx > 0:
        result.violations.append(
            Violation(
                result.invariant,
                "run",
                0.0,
                f"{machine_retx} retransmission(s) on a fault-free, "
                "drop-free network",
            )
        )
    # (d) The wire cannot show more retransmissions than the machines
    # performed (only meaningful when every endpoint was captured).
    all_machines_known = evidence.transfers and all(
        t.client_machine is not None and t.server_machine is not None
        for t in evidence.transfers
    )
    if all_machines_known and wire_retx > machine_retx:
        result.violations.append(
            Violation(
                result.invariant,
                "run",
                0.0,
                f"{wire_retx} retransmissions on the wire but the machines "
                f"only account for {machine_retx}",
            )
        )
    return result


# ----------------------------------------------------------------------
# 7. Congestion-control sanity
# ----------------------------------------------------------------------

#: Loss-based algorithms must cut ssthresh to at most this fraction of
#: the pre-loss window.  Reno halves (0.5) and CUBIC uses β=0.7; 0.8
#: convicts anything that fails to shrink multiplicatively while
#: leaving both conformant responses clear headroom.
MD_FACTOR = 0.8


def check_cc_sanity(evidence: RunEvidence) -> CheckResult:
    result = CheckResult("cc-sanity", 0)

    # (a) Wire discipline: a sender never puts data beyond the largest
    # window edge (ack + window) its peer ever advertised, plus one
    # estimated MSS of slack for the segment racing the window update.
    # The trace captures every ACK pre-fault, so the running maximum is
    # an upper bound on any edge the sender could have believed.
    for key, segs in _connections(evidence.segments).items():
        conn = _describe_conn(key)
        dirs: dict[tuple, _DirectionState] = {}
        edges: dict[tuple, int] = {}  # endpoint -> max granted rel edge
        mss_est: dict[tuple, int] = {}  # endpoint -> largest data seg
        for seg in segs:
            d = dirs.setdefault(seg.endpoint, _DirectionState())
            rel_seq = d.rel(seg.seq)
            if seg.has_ack and not seg.rst:
                # This ACK grants the *peer* room, measured in the
                # peer's relative sequence space.
                peer = dirs.get(seg.peer)
                if peer is not None and peer.base is not None:
                    edge = peer.rel(seg.ack) + seg.window
                    if edge > edges.get(seg.peer, -1):
                        edges[seg.peer] = edge
            if seg.data_len > 0 and not seg.rst:
                result.checked += 1
                est = max(mss_est.get(seg.endpoint, 0), seg.data_len)
                mss_est[seg.endpoint] = est
                edge = edges.get(seg.endpoint)
                rel_end = rel_seq + seg.data_len
                if edge is not None and rel_end > edge + est + 1:
                    result.violations.append(
                        Violation(
                            result.invariant,
                            conn,
                            seg.time,
                            f"data burst beyond the advertised window: "
                            f"seq end {rel_end} > edge {edge} + mss "
                            f"{est} slack ({seg.describe()})",
                        )
                    )

    # (b) Machine-side window response: every convicted loss in the
    # machines' cc_events log must show the required reaction.
    for name, machine in evidence.machines:
        for ev in getattr(machine, "cc_events", None) or []:
            result.checked += 1
            mss = ev.get("mss", 0) or 0
            kind = ev.get("kind")
            if kind == "timeout":
                # Every algorithm collapses to one segment on RTO.
                if ev.get("cwnd_after", 0) > mss:
                    result.violations.append(
                        Violation(
                            result.invariant,
                            name,
                            ev.get("time", 0.0),
                            f"RTO did not collapse cwnd to one segment: "
                            f"cwnd {ev.get('cwnd_after')} > mss {mss}",
                        )
                    )
                continue
            if kind == "fast_retransmit" and ev.get("loss_based", True):
                window = max(ev.get("cwnd_before", 0), ev.get("flight", 0))
                limit = max(int(MD_FACTOR * window), 2 * mss)
                if ev.get("ssthresh_after", 0) > limit:
                    result.violations.append(
                        Violation(
                            result.invariant,
                            name,
                            ev.get("time", 0.0),
                            f"no multiplicative decrease on convicted "
                            f"loss: ssthresh {ev.get('ssthresh_after')} > "
                            f"{limit} (window was {window})",
                        )
                    )
    return result


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

INVARIANTS = (
    ("state-transitions", check_state_transitions),
    ("seq-ack-monotonic", check_seq_ack),
    ("socket-integrity", check_socket_integrity),
    ("retx-justified", check_retransmissions),
    ("checksum-rejection", check_checksums),
    ("fault-conservation", check_conservation),
    ("cc-sanity", check_cc_sanity),
)


def check_all(evidence: RunEvidence) -> list[CheckResult]:
    """Run every invariant checker over one run's evidence."""
    return [checker(evidence) for _, checker in INVARIANTS]
