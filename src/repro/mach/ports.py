"""Mach-style ports and port rights.

A *port* is a kernel-protected message queue with exactly one receive
right.  A *port right* is an unforgeable capability naming a port; the
paper relies on Mach ports as "the basis for secure and trusted
communication channels between the library, the server, and the network
I/O module".

Unforgeability is modelled faithfully: rights are objects handed out only
by the kernel (at allocation) or moved in messages; a task can only use
rights present in its capability space, which :mod:`repro.mach.ipc`
enforces on every operation.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from ..sim import Store

if TYPE_CHECKING:
    from .task import Task


class RightType(enum.Enum):
    """The kinds of port rights Mach defines that we need."""

    SEND = "send"
    RECEIVE = "receive"
    SEND_ONCE = "send-once"


class Port:
    """A kernel message queue with a single receive right."""

    _counter = 0

    def __init__(self, kernel, name: str = "") -> None:
        Port._counter += 1
        self.kernel = kernel
        self.name = name or f"port-{Port._counter}"
        self.queue: Store = Store(kernel.sim)
        #: The task currently holding the receive right (None once dead).
        self.receiver: Optional["Task"] = None
        self.dead = False

    def __repr__(self) -> str:
        state = "dead" if self.dead else f"rx={self.receiver.name if self.receiver else None}"
        return f"<Port {self.name} {state}>"

    def destroy(self) -> None:
        """Turn this into a dead port; pending and future sends fail."""
        self.dead = True
        self.receiver = None


class PortRight:
    """An unforgeable capability to a port.

    ``consumed`` marks a used send-once right.  Equality is identity:
    two rights to the same port are distinct capabilities.
    """

    def __init__(self, port: Port, right: RightType) -> None:
        self.port = port
        self.right = right
        self.consumed = False

    def __repr__(self) -> str:
        return f"<{self.right.value} right to {self.port.name}>"

    @property
    def is_send(self) -> bool:
        return self.right in (RightType.SEND, RightType.SEND_ONCE)

    @property
    def is_receive(self) -> bool:
        return self.right is RightType.RECEIVE


class CapabilityViolation(Exception):
    """A task attempted an operation it holds no right for."""


class DeadPortError(Exception):
    """A message was sent to (or received on) a destroyed port."""
