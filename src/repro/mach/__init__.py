"""A Mach-3.0-like microkernel substrate over the simulation engine.

Provides exactly the facilities the paper says user-level protocols need
from a contemporary OS: tasks, unforgeable port capabilities, costed IPC,
user-level threads and synchronization, and shared/pinned VM regions.
"""

from .ipc import Message, receive, reply_to, rpc, send
from .kernel import Kernel
from .ports import (
    CapabilityViolation,
    DeadPortError,
    Port,
    PortRight,
    RightType,
)
from .sync import Condition, Mutex, Semaphore
from .task import Task
from .vm import (
    PAGE_SIZE,
    SharedRegion,
    vm_allocate,
    vm_map,
    vm_unmap,
    vm_wire,
)

__all__ = [
    "Kernel",
    "Task",
    "Port",
    "PortRight",
    "RightType",
    "CapabilityViolation",
    "DeadPortError",
    "Message",
    "send",
    "receive",
    "rpc",
    "reply_to",
    "Semaphore",
    "Mutex",
    "Condition",
    "SharedRegion",
    "PAGE_SIZE",
    "vm_allocate",
    "vm_map",
    "vm_unmap",
    "vm_wire",
]
