"""The per-host microkernel.

One :class:`Kernel` exists per simulated host.  It owns the host CPU (all
costed work funnels through it, so concurrent activity serializes as on
the paper's uniprocessor DECstations), the task list, and the device
registry that network I/O modules attach to.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from ..costs import CostModel, interned_costs
from ..sim import CPU, Simulator
from ..timers import CoalescedTimers, HierarchicalWheel

if TYPE_CHECKING:
    from .task import Task


class Kernel:
    """Microkernel instance for one host."""

    def __init__(self, sim: Simulator, costs: CostModel, name: str = "host") -> None:
        self.sim = sim
        self.costs = costs
        #: Interned slotted mirror of ``costs`` — hot paths bind this once
        #: instead of walking kernel→costs→field per packet.
        self.cost_table = interned_costs(costs)
        self.name = name
        self.cpu = CPU(sim, name=f"{name}.cpu")
        self.tasks: list["Task"] = []
        #: Named kernel-resident services (device drivers, network I/O
        #: modules) reachable via traps.
        self.devices: dict[str, Any] = {}
        #: Counters for structural assertions in tests and benches
        #: (e.g. Figure 2's "registry bypassed on the data path").
        self.counters: dict[str, int] = {}
        self._timer_service: Optional[CoalescedTimers] = None

    @property
    def timer_service(self) -> CoalescedTimers:
        """This host's coalesced timer wheels, created on first use.

        All of a host's TCP retransmit/delayed-ACK/keepalive timers
        share one :class:`HierarchicalWheel` behind one engine wakeup
        per earliest deadline, instead of one engine event per timer
        (the paper's §2.1 point that every message involves timer
        operations).  The default wheel horizon (~1.9 days) covers
        every TcpConfig interval incl. keepalive_idle; longer deadlines
        fall back to the caller's legacy path.
        """
        service = self._timer_service
        if service is None:
            service = self._timer_service = CoalescedTimers(
                self.sim, HierarchicalWheel()
            )
        return service

    def __repr__(self) -> str:
        return f"<Kernel {self.name}>"

    def count(self, key: str, n: int = 1) -> None:
        """Bump a structural counter."""
        self.counters[key] = self.counters.get(key, 0) + n

    def create_task(self, name: str, privileged: bool = False) -> "Task":
        """Create a new task (address space + capability namespace)."""
        from .task import Task

        task = Task(self, name, privileged=privileged)
        self.tasks.append(task)
        return task

    def register_device(self, name: str, device: Any) -> None:
        """Attach a kernel-resident device service under ``name``."""
        if name in self.devices:
            raise ValueError(f"device {name!r} already registered")
        self.devices[name] = device

    # ------------------------------------------------------------------
    # Costed kernel crossings
    # ------------------------------------------------------------------

    def trap(self) -> Generator:
        """Standard system-call entry+exit cost."""
        self.count("traps")
        yield from self.cpu.consume(self.cost_table.syscall_trap)

    def fast_trap(self) -> Generator:
        """Specialized entry point used by the library→device path."""
        self.count("fast_traps")
        yield from self.cpu.consume(self.cost_table.fast_trap)

    def work(self, cost: float) -> Generator:
        """Charge arbitrary CPU time on this host."""
        yield from self.cpu.consume(cost)

    def context_switch(self) -> Generator:
        """Charge one kernel process context switch."""
        self.count("context_switches")
        yield from self.cpu.consume(self.cost_table.context_switch)
