"""Costed Mach IPC: message send/receive/RPC between tasks.

Every send charges the one-way IPC cost (plus per-byte copy for in-line
data) to the host CPU; the single-server and dedicated-server
organizations' performance deficit comes precisely from these charges
appearing on their data paths.

Rights enforcement is real: a send requires a held send right; a receive
requires the receive right; rights named in ``moved_rights`` leave the
sender's capability space and enter the receiver's — this is how the
registry server hands the library its network-channel capabilities.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .ports import CapabilityViolation, DeadPortError, PortRight, RightType
from .task import Task


class Message:
    """One Mach message.

    ``body`` is the semantic payload (any Python object); ``inline_bytes``
    is the modelled size of in-line data for cost purposes (header and
    small control payloads are treated as part of the base IPC cost).
    ``moved_rights`` are capabilities transferred to the receiver.
    """

    def __init__(
        self,
        op: str,
        body: Any = None,
        inline_bytes: int = 0,
        reply_to: Optional[PortRight] = None,
        moved_rights: tuple[PortRight, ...] = (),
    ) -> None:
        if inline_bytes < 0:
            raise ValueError("inline_bytes must be non-negative")
        self.op = op
        self.body = body
        self.inline_bytes = inline_bytes
        self.reply_to = reply_to
        self.moved_rights = tuple(moved_rights)
        self.sender: Optional[Task] = None

    def __repr__(self) -> str:
        return f"<Message {self.op!r} {self.inline_bytes}B>"


def send(task: Task, dest: PortRight, message: Message) -> Generator:
    """Send ``message`` to the port named by ``dest``.

    Charges trap + one-way IPC + in-line copy cost, validates the
    capability, consumes send-once rights, and moves carried rights.
    """
    kernel = task.kernel
    task.check_right(dest)
    if not dest.is_send:
        raise CapabilityViolation(f"{dest!r} is not a send right")
    if dest.right is RightType.SEND_ONCE and dest.consumed:
        raise CapabilityViolation("send-once right already used")
    if dest.port.dead:
        raise DeadPortError(f"send to dead port {dest.port.name}")

    for right in message.moved_rights:
        task.check_right(right)
    if message.reply_to is not None:
        task.check_right(message.reply_to)

    yield from kernel.cpu.consume(kernel.costs.ipc_cost(message.inline_bytes))
    kernel.count("ipc_messages")

    if dest.port.dead:
        # The receiver died while the message was being copied.
        raise DeadPortError(f"port {dest.port.name} died during send")

    if dest.right is RightType.SEND_ONCE:
        dest.consumed = True
        task.remove_right(dest)

    receiver = dest.port.receiver
    for right in message.moved_rights:
        task.remove_right(right)
        if receiver is not None:
            receiver.insert_right(right)
    if message.reply_to is not None and receiver is not None:
        task.remove_right(message.reply_to)
        receiver.insert_right(message.reply_to)

    message.sender = task
    yield dest.port.queue.put(message)


def receive(task: Task, receive_right: PortRight) -> Generator:
    """Receive the next message from a port this task owns.

    Blocks until a message arrives.  Returns the :class:`Message`.
    """
    task.check_right(receive_right)
    if not receive_right.is_receive:
        raise CapabilityViolation(f"{receive_right!r} is not a receive right")
    if receive_right.port.dead:
        raise DeadPortError(f"receive on dead port {receive_right.port.name}")
    message = yield receive_right.port.queue.get()
    return message


def rpc(task: Task, dest: PortRight, message: Message) -> Generator:
    """Send ``message`` and wait for the reply on a one-shot reply port.

    Returns the reply :class:`Message`.  This is the app↔registry and
    (in the single-server organization) app↔UX-server interaction shape.
    """
    reply_receive = task.allocate_port(name=f"{task.name}-reply")
    reply_send = task.make_send_right(reply_receive, once=True)
    message.reply_to = reply_send
    yield from send(task, dest, message)
    reply = yield from receive(task, reply_receive)
    task.destroy_port(reply_receive)
    return reply


def reply_to(task: Task, request: Message, message: Message) -> Generator:
    """Answer an RPC ``request`` using its reply right."""
    if request.reply_to is None:
        raise ValueError("request carried no reply port")
    yield from send(task, request.reply_to, message)
