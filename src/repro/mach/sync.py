"""User-level synchronization: C-Threads-style semaphores and mutexes.

The paper's library is multithreaded with user-level primitives ("multiple
threads of control and synchronization are provided by user-level C Thread
primitives rather than kernel primitives"), and packet arrival is signalled
to the library through a lightweight semaphore.  These primitives charge
the (small) user-level sync cost; the kernel-to-user *notification*
semaphore cost is charged by the network I/O module at signal time.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, Optional

from ..sim import Event, Simulator
from .kernel import Kernel


class Semaphore:
    """Counting semaphore with FIFO wakeup order."""

    def __init__(self, kernel: Kernel, value: int = 0, name: str = "sem") -> None:
        if value < 0:
            raise ValueError("initial value must be non-negative")
        self.kernel = kernel
        self.sim: Simulator = kernel.sim
        self.name = name
        self._count = value
        self._waiters: Deque[Event] = deque()

    @property
    def value(self) -> int:
        """Current count (negative is never exposed; waiters queue)."""
        return self._count

    @property
    def waiting(self) -> int:
        """Number of threads blocked in :meth:`wait`."""
        return len(self._waiters)

    def wait(self) -> Generator:
        """P operation: decrement, blocking while the count is zero."""
        yield from self.kernel.cpu.consume(self.kernel.cost_table.cthread_sync_op)
        if self._count > 0:
            self._count -= 1
            return
        event = self.sim.event()
        self._waiters.append(event)
        try:
            yield event
        except BaseException:
            # Interrupted while blocked: withdraw from the wait queue so
            # a later signal isn't swallowed by our dead event.  If the
            # signal already picked us, pass it on to the next waiter.
            try:
                self._waiters.remove(event)
            except ValueError:
                if event.triggered:
                    self.signal()
            raise

    def try_wait(self) -> bool:
        """Non-blocking P: returns False instead of blocking."""
        if self._count > 0:
            self._count -= 1
            return True
        return False

    def signal(self, n: int = 1) -> None:
        """V operation: wake ``n`` waiters (or bank the count).

        Signalling is non-blocking and free at user level; costed
        kernel-to-user signals are charged by the caller.
        """
        for _ in range(n):
            if self._waiters:
                self._waiters.popleft().succeed()
            else:
                self._count += 1


class Mutex:
    """A binary lock built on :class:`Semaphore`."""

    def __init__(self, kernel: Kernel, name: str = "mutex") -> None:
        self._sem = Semaphore(kernel, value=1, name=name)
        self._holder: Optional[object] = None

    @property
    def locked(self) -> bool:
        return self._sem.value == 0

    def acquire(self) -> Generator:
        yield from self._sem.wait()

    def release(self) -> None:
        if self._sem.value != 0:
            raise RuntimeError("releasing an unlocked mutex")
        self._sem.signal()


class Condition:
    """Condition variable used with a :class:`Mutex`."""

    def __init__(self, kernel: Kernel, mutex: Mutex, name: str = "cond") -> None:
        self.kernel = kernel
        self.sim = kernel.sim
        self.mutex = mutex
        self.name = name
        self._waiters: Deque[Event] = deque()

    def wait(self) -> Generator:
        """Atomically release the mutex and block until signalled."""
        if not self.mutex.locked:
            raise RuntimeError("condition wait without holding the mutex")
        event = self.sim.event()
        self._waiters.append(event)
        self.mutex.release()
        yield event
        yield from self.mutex.acquire()

    def signal(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed()

    def broadcast(self) -> None:
        while self._waiters:
            self._waiters.popleft().succeed()
