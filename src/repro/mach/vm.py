"""Virtual-memory operations for shared packet-buffer regions.

The network I/O module and the protocol library share a pinned region
that packets move through without copies — the paper's central buffering
mechanism.  We model a region's identity, size, pinning, and the tasks it
is mapped into; mapping and wiring charge their (setup-time-only) costs.
"""

from __future__ import annotations

from typing import Generator, Set

from .kernel import Kernel
from .task import Task

PAGE_SIZE = 4096


class SharedRegion:
    """A pinned, shareable buffer region.

    The actual packet bytes travel in frame objects through the ring
    structures (see :mod:`repro.netio.channels`); the region tracks the
    memory-management state (size, wiring, mappings) and is the unit the
    registry server sets up at connection-establishment time.
    """

    _counter = 0

    def __init__(self, kernel: Kernel, size: int, name: str = "") -> None:
        if size <= 0:
            raise ValueError("region size must be positive")
        SharedRegion._counter += 1
        self.kernel = kernel
        self.size = size
        self.name = name or f"region-{SharedRegion._counter}"
        self.pinned = False
        self.mapped: Set[Task] = set()

    def __repr__(self) -> str:
        wired = " pinned" if self.pinned else ""
        return f"<SharedRegion {self.name} {self.size}B{wired} maps={len(self.mapped)}>"

    @property
    def pages(self) -> int:
        """Number of pages the region spans."""
        return (self.size + PAGE_SIZE - 1) // PAGE_SIZE

    def is_mapped(self, task: Task) -> bool:
        return task in self.mapped


def vm_allocate(kernel: Kernel, task: Task, size: int, name: str = "") -> Generator:
    """Allocate a region mapped into ``task``.  Returns the region."""
    region = SharedRegion(kernel, size, name=name)
    yield from kernel.cpu.consume(kernel.costs.vm_map_region)
    region.mapped.add(task)
    return region


def vm_map(kernel: Kernel, region: SharedRegion, task: Task) -> Generator:
    """Map an existing region into another task (shared mapping)."""
    if task in region.mapped:
        return region
    yield from kernel.cpu.consume(kernel.costs.vm_map_region)
    region.mapped.add(task)
    return region


def vm_wire(kernel: Kernel, region: SharedRegion) -> Generator:
    """Pin the region's pages so DMA/interrupt paths can use them."""
    if region.pinned:
        return region
    yield from kernel.cpu.consume(kernel.costs.vm_wire_page * region.pages)
    region.pinned = True
    return region


def vm_unmap(region: SharedRegion, task: Task) -> None:
    """Remove ``task``'s mapping (free; teardown is not on a hot path)."""
    region.mapped.discard(task)
