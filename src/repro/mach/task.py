"""Tasks: address spaces with capability namespaces and threads."""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..sim import Process
from .kernel import Kernel
from .ports import CapabilityViolation, Port, PortRight, RightType


class Task:
    """An address space, its port rights, and its threads.

    Tasks are created through :meth:`Kernel.create_task`.  ``privileged``
    marks trusted system tasks (the registry server); the network I/O
    module refuses certain control operations from unprivileged tasks.
    """

    def __init__(self, kernel: Kernel, name: str, privileged: bool = False) -> None:
        self.kernel = kernel
        self.sim = kernel.sim
        self.name = name
        self.privileged = privileged
        #: Capability space: the set of rights this task may exercise.
        self._rights: set[PortRight] = set()
        self.threads: list[Process] = []
        self.alive = True
        #: Callbacks run when the task terminates (the registry uses this
        #: to inherit connections of exiting applications).
        self._exit_hooks: list[Callable[["Task"], None]] = []

    def __repr__(self) -> str:
        flag = " privileged" if self.privileged else ""
        return f"<Task {self.name}{flag}>"

    # ------------------------------------------------------------------
    # Capability management
    # ------------------------------------------------------------------

    def allocate_port(self, name: str = "") -> PortRight:
        """Create a port; this task gets the receive right.

        Returns the receive right.  Send rights are minted with
        :meth:`make_send_right`.
        """
        port = Port(self.kernel, name=name)
        port.receiver = self
        right = PortRight(port, RightType.RECEIVE)
        self._rights.add(right)
        return right

    def make_send_right(self, receive_right: PortRight, once: bool = False) -> PortRight:
        """Mint a send (or send-once) right from a held receive right."""
        self.check_right(receive_right)
        if not receive_right.is_receive:
            raise CapabilityViolation(
                f"{self.name} cannot mint send rights from {receive_right!r}"
            )
        kind = RightType.SEND_ONCE if once else RightType.SEND
        right = PortRight(receive_right.port, kind)
        self._rights.add(right)
        return right

    def holds(self, right: PortRight) -> bool:
        """True if ``right`` is in this task's capability space."""
        return right in self._rights

    def check_right(self, right: PortRight) -> None:
        """Raise :class:`CapabilityViolation` unless ``right`` is held."""
        if right not in self._rights:
            raise CapabilityViolation(
                f"task {self.name!r} does not hold {right!r}"
            )

    def insert_right(self, right: PortRight) -> None:
        """Add a right to this task's capability space (kernel move)."""
        self._rights.add(right)

    def remove_right(self, right: PortRight) -> None:
        """Drop a right from this task's capability space."""
        self._rights.discard(right)

    def destroy_port(self, receive_right: PortRight) -> None:
        """Destroy a port this task receives on."""
        self.check_right(receive_right)
        if not receive_right.is_receive:
            raise CapabilityViolation("only the receive right can destroy a port")
        receive_right.port.destroy()
        self._rights.discard(receive_right)

    # ------------------------------------------------------------------
    # Threads and lifetime
    # ------------------------------------------------------------------

    def spawn(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a thread (sim process) belonging to this task."""
        if not self.alive:
            raise RuntimeError(f"task {self.name} has terminated")
        label = f"{self.name}/{name or 'thread'}"
        process = self.sim.process(generator, name=label)
        self.threads.append(process)
        return process

    def on_exit(self, hook: Callable[["Task"], None]) -> None:
        """Register a callback to run when the task terminates."""
        self._exit_hooks.append(hook)

    def terminate(self) -> None:
        """Kill the task: interrupt threads, drop rights, run exit hooks.

        Models abnormal application termination; the registry server's
        exit hook then resets the application's connections.
        """
        if not self.alive:
            return
        self.alive = False
        for thread in self.threads:
            if thread.is_alive:
                thread.interrupt("task-terminated")
        for right in list(self._rights):
            if right.is_receive:
                right.port.destroy()
        self._rights.clear()
        for hook in self._exit_hooks:
            hook(self)
