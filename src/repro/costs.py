"""The CPU cost model.

Every performance result in the paper is a consequence of *which
operations appear on the send/receive path* of each protocol organization
and what each costs on a DECstation 5000/200 (25 MHz MIPS R3000) running
Ultrix 4.2A or Mach 3.0 (MK74) + UX (UX36).  We reproduce that by charging
simulated CPU time for each primitive operation.

All costs are in **seconds** of simulated CPU time.  The default instance,
:data:`DECSTATION_5000_200`, is calibrated so the benchmark harness lands
near the paper's published tables; each constant's comment ties it to the
measurement that pins it down.  Benches and organizations must never
hard-code durations — they read them from the host's ``CostModel``.

Costs are data, not code: experiments that ablate a mechanism (e.g. run
our library organization *without* notification batching) do so by
replacing one field via :meth:`CostModel.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any


@dataclass(frozen=True)
class CostModel:
    """Per-operation CPU costs for one host class.  Immutable."""

    # ------------------------------------------------------------------
    # Kernel entry / scheduling primitives
    # ------------------------------------------------------------------

    #: Full UNIX-style system call trap (entry + sanity checks + exit).
    #: Ultrix-era R3000 syscall overhead.
    syscall_trap: float = 40e-6

    #: Specialized kernel entry used by our library→network-module path.
    #: The paper: "crossing ... can be made cheaper, because the sanity
    #: checks involved in a trap can be simplified ... a specialized
    #: entry point".
    fast_trap: float = 18e-6

    #: Taking a device interrupt and dispatching to the driver.
    interrupt: float = 55e-6

    #: Kernel process context switch, including scheduler work.  Sets the
    #: cost of waking a blocked UNIX process (Ultrix recv path) and of
    #: kernel-level switches in the Mach/UX path.
    context_switch: float = 250e-6

    #: One-way Mach IPC for a small (register-sized) message between
    #: tasks, including the implied context switch to the receiver.
    #: Mach 3.0 on a 25 MHz R3000 measured in the several-hundred-µs
    #: range for cross-task RPC; one-way ≈ half.
    mach_ipc: float = 600e-6

    #: Per-byte cost of copying in-line Mach message data (same memory
    #: system as :attr:`copy_per_byte`).
    mach_ipc_per_byte: float = 150e-9

    #: Kernel semaphore signal delivered to a user-level thread waiting
    #: in another address space (our library-notification mechanism).
    #: Charged once per notification; batching amortizes it.
    semaphore_signal: float = 150e-6

    #: Kernel→user dispatch of the library thread blocked on the
    #: notification semaphore: scheduling + resuming the user thread.
    #: Charged once per notification batch.  This (with the signal and
    #: the thread dispatch below) is the paper's "time to deliver
    #: packets to our user-level protocol code is about 0.8 ms greater
    #: than in Ultrix" on Ethernet, where frames trickle in at wire
    #: speed and batches stay near one packet; on AN1 the faster wire
    #: delivers bursts, batching is "very effective", and the same cost
    #: nearly vanishes per packet.
    user_wakeup: float = 350e-6

    #: User-level C-Threads switch (library's per-connection upcall
    #: threads).  Two are paid per notification batch (into the upcall
    #: thread and back to the channel waiter); the era's C-Threads
    #: implementation was not cheap, which the paper acknowledges
    #: ("some of this performance can be won back by a better
    #: implementation of synchronization primitives [and] user level
    #: threads").
    cthread_switch: float = 70e-6

    #: Semaphore P/V fast path within one address space (no kernel).
    cthread_sync_op: float = 8e-6

    # ------------------------------------------------------------------
    # Memory system
    # ------------------------------------------------------------------

    #: Per-byte memory-to-memory copy (bcopy).  ~6-7 MB/s effective on
    #: this machine once cache misses are accounted for; this is what
    #: the sub-1024-byte Ultrix copy path pays and our shared-region
    #: organization avoids (the paper's 512-byte AN1 crossover).
    copy_per_byte: float = 150e-9

    #: Per-byte Internet checksum (not integrated with the copy; the
    #: paper notes none of the compared systems integrate them).
    checksum_per_byte: float = 55e-9

    #: Mapping a shared VM region between two tasks (used at channel
    #: setup, never on the data path).
    vm_map_region: float = 900e-6

    #: Wiring (pinning) one page of a shared buffer region.
    vm_wire_page: float = 60e-6

    # ------------------------------------------------------------------
    # Protocol processing (per packet, excluding checksum and copies)
    # ------------------------------------------------------------------

    #: TCP output path: segmentation decisions, header build, PCB work,
    #: timer arming.  4.3BSD-derived code on a 25 MHz R3000.
    tcp_output: float = 220e-6

    #: TCP input path: header validation, PCB lookup (or upcalled
    #: per-connection thread in our library), window processing, ACK
    #: generation decisions.
    tcp_input: float = 220e-6

    #: TCP input fast path for pure ACKs (header prediction): no data
    #: to queue, no reassembly, no ACK generation.
    tcp_input_ack: float = 110e-6

    #: PCB lookup on input.  Our library eliminates it ("protocol control
    #: block lookups are eliminated by having separate threads per
    #: connection that are upcalled"), so only the monolithic
    #: organizations pay it.
    tcp_pcb_lookup: float = 30e-6

    #: IP output / input processing per packet.
    ip_output: float = 45e-6
    ip_input: float = 50e-6

    #: Per-packet cost of gateway forwarding on a router (route lookup,
    #: TTL decrement, checksum update, egress enqueue).  Roughly
    #: ip_input + ip_output plus table work — the era's software
    #: routers forwarded a packet in the small-hundreds of µs.
    ip_forward: float = 160e-6

    #: UDP per-packet processing (for the UDP library and examples).
    udp_packet: float = 60e-6

    #: Socket-layer bookkeeping per user call (sosend/soreceive style).
    socket_op: float = 60e-6

    #: BSD mbuf-chain handling for small (sub-cluster) socket data:
    #: allocating/walking small mbufs instead of a single cluster.
    mbuf_small: float = 100e-6

    #: One timer set/cancel on the hashed timing wheel.
    timer_op: float = 6e-6

    # ------------------------------------------------------------------
    # Devices
    # ------------------------------------------------------------------

    #: PMADD-AA (LANCE) Ethernet: per-byte programmed-I/O transfer
    #: between host memory and the on-board staging buffers.  Dominates
    #: the large-packet path on Ethernet.
    pmadd_pio_per_byte: float = 240e-9

    #: PMADD-AA fixed per-packet device handling (descriptor, CSR pokes).
    pmadd_per_packet: float = 35e-6

    #: AN1 controller: building/writing one DMA descriptor.
    an1_dma_setup: float = 30e-6

    #: AN1 hardware-BQI receive bookkeeping per packet (ring replenish,
    #: descriptor handling).  Table 5: 50 µs.
    an1_bqi_bookkeeping: float = 50e-6

    #: Software demultiplexing of one incoming packet via synthesized
    #: (compiled) demux code in the kernel, including the device
    #: management work inherent to demux.  Table 5 (Lance): 52 µs.
    sw_demux: float = 52e-6

    #: One indexed flow-table lookup on the receive path (exact or
    #: wildcard tier).  This is the synthesized style's fixed per-packet
    #: demux charge, now backed by a real O(1) hash lookup in
    #: :mod:`repro.netio.demux` — the cost is the same whether 1 or 256
    #: flows are installed, which is what lets Table 5 quote a single
    #: 52 µs number independent of connection count.
    flow_lookup: float = 52e-6

    #: One interpreted instruction of the stack-machine (CSPF-style)
    #: packet filter — the slow, flexible alternative the paper argues
    #: "is not likely to scale with CPU speeds".
    pktfilter_interp_instr: float = 4.5e-6

    #: Per-filter overhead of invoking the BPF-style interpreter.
    pktfilter_dispatch: float = 12e-6

    #: Per-packet premium of delivering an Ethernet (PMADD) packet into
    #: a user-level channel, beyond the demux and signalling costs that
    #: are itemized separately: staging-buffer management, the guarded
    #: placement into the pinned shared region, and the wakeup-queueing
    #: the in-kernel path avoids.  This is a calibrated aggregate pinned
    #: by the paper's own measurement ("the time to deliver
    #: maximum-sized Ethernet packets to our user-level protocol code is
    #: about 0.8 ms greater than in Ultrix"), most of which is not
    #: decomposed further in the paper.  The AN1 path pays nothing here:
    #: hardware BQI demux DMAs straight into the ring ("the times to
    #: deliver AN1 packets ... are comparable").
    eth_user_delivery: float = 550e-6

    #: Send-side header template match in the network I/O module.  The
    #: paper: "The checks required for header matching on outgoing
    #: packets are similar to those needed for address demultiplexing".
    template_check: float = 45e-6

    # ------------------------------------------------------------------
    # Registry server (connection setup path only)
    # ------------------------------------------------------------------

    #: Registry-side work to allocate connection identifiers and start
    #: the connection setup phase that cannot overlap transmission.
    #: Paper breakdown item 2: ≈1.5 ms.
    registry_alloc: float = 1.2e-3

    #: Setting up the user channels to the network device (shared-memory
    #: creation + wiring + demux filter + send template installation).
    #: Paper breakdown item 3: ≈3.4 ms.  Composed of vm_map_region +
    #: wiring + installs; this constant is the non-VM remainder.
    registry_channel_misc: float = 1.0e-3

    #: Transferring established-connection TCP state from the registry
    #: server into the user library.  Paper breakdown item 5: ≈1.4 ms.
    registry_state_transfer: float = 1.2e-3

    #: The registry server reaches the network through standard Mach
    #: IPC rather than shared memory (paper breakdown item 1: the 4.6 ms
    #: "to get to the remote peer and back" is mostly the server's local
    #: cost of accessing the device).  Per handshake segment sent or
    #: received by the registry.
    registry_device_access: float = 0.8e-3

    #: Extra machinery on AN1 to allocate and exchange a BQI during
    #: setup ("the machinery involved to setup the BQI has to be
    #: exercised"): Table 4 shows +0.4 ms vs Ethernet.
    bqi_setup: float = 300e-6

    def replace(self, **changes: Any) -> "CostModel":
        """Return a copy with the given fields replaced (for ablations)."""
        return replace(self, **changes)

    def copy_cost(self, nbytes: int) -> float:
        """CPU time to copy ``nbytes`` memory-to-memory."""
        return self.copy_per_byte * nbytes

    def checksum_cost(self, nbytes: int) -> float:
        """CPU time to Internet-checksum ``nbytes``."""
        return self.checksum_per_byte * nbytes

    def pio_cost(self, nbytes: int) -> float:
        """CPU time for programmed I/O of ``nbytes`` to/from the PMADD."""
        return self.pmadd_pio_per_byte * nbytes

    def ipc_cost(self, nbytes: int) -> float:
        """CPU time for a one-way Mach IPC carrying ``nbytes`` in-line."""
        return self.mach_ipc + self.mach_ipc_per_byte * nbytes


_COST_FIELDS = tuple(CostModel.__dataclass_fields__)


class CostTable:
    """Interned, slotted mirror of a :class:`CostModel` for hot paths.

    The per-packet code paths read several cost fields per packet via an
    attribute walk (``self.kernel.costs.<field>``); at thousands of hosts
    that walk is measurable.  A ``CostTable`` is a plain slotted object —
    one slot per cost field, values precomputed — shared by every kernel
    built from the same (frozen, hashable) model, so hot paths bind it
    once and read slots.  Obtain one via :func:`interned_costs`; never
    mutate it.
    """

    __slots__ = _COST_FIELDS + ("model",)

    def __init__(self, model: CostModel) -> None:
        for name in _COST_FIELDS:
            setattr(self, name, getattr(model, name))
        self.model = model

    def __repr__(self) -> str:
        return f"<CostTable for {self.model!r}>"

    def copy_cost(self, nbytes: int) -> float:
        """CPU time to copy ``nbytes`` memory-to-memory."""
        return self.copy_per_byte * nbytes

    def checksum_cost(self, nbytes: int) -> float:
        """CPU time to Internet-checksum ``nbytes``."""
        return self.checksum_per_byte * nbytes

    def pio_cost(self, nbytes: int) -> float:
        """CPU time for programmed I/O of ``nbytes`` to/from the PMADD."""
        return self.pmadd_pio_per_byte * nbytes

    def ipc_cost(self, nbytes: int) -> float:
        """CPU time for a one-way Mach IPC carrying ``nbytes`` in-line."""
        return self.mach_ipc + self.mach_ipc_per_byte * nbytes


_INTERNED: dict[CostModel, CostTable] = {}


def interned_costs(model: CostModel) -> CostTable:
    """The shared :class:`CostTable` for ``model`` (one per distinct model)."""
    table = _INTERNED.get(model)
    if table is None:
        table = _INTERNED[model] = CostTable(model)
    return table


#: The paper's host: DECstation 5000/200, 25 MHz R3000.
DECSTATION_5000_200 = CostModel()

#: A free cost model — protocol logic with all performance modelling
#: switched off.  Used by correctness tests that only care about
#: behaviour, and handy for debugging.
FREE = CostModel(
    **{field: 0.0 for field in CostModel.__dataclass_fields__}
)
