"""A simulated workstation: kernel + NIC + network I/O module + the
kernel-resident network plumbing every organization shares (ARP, IP
dispatch, ICMP echo, UDP port table).

The TCP organization (in-kernel, single-server, dedicated-server, or
user-level library) is attached on top by :mod:`repro.org` /
:mod:`repro.testbed`.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional, Union

from .costs import CostModel, DECSTATION_5000_200
from .mach import Kernel, Task
from .net.headers import (
    ARP_REPLY,
    ETHERTYPE_ARP,
    ETHERTYPE_IP,
    ArpPacket,
    HeaderError,
    Ipv4Header,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    ip_to_str,
)
from .net.buf import prepend
from .net.link import An1Link, EthernetLink, Link
from .net.nic.an1ctrl import An1Nic
from .net.nic.pmadd import PmaddNic
from .netio.module import LinkInfo, NetworkIoModule
from .obs import profile as _profile
from .protocols.arp import ArpStack, Resolved, SendArp
from .protocols.icmp import (
    UNREACH_PORT,
    decode_echo,
    encode_unreachable,
    make_reply,
)
from .protocols.ip import IpStack
from .protocols.udp import UdpPortTable
from .sim import Simulator, Timeout

#: Kernel-side TCP consumer installed by the organization:
#: ``handler(tcp_payload, src_ip, link_info)`` as a generator.
TcpKernelHandler = Callable[[bytes, int, LinkInfo], Generator]


class Host:
    """One workstation on one network."""

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        name: str,
        ip: int,
        link_addr: Union[bytes, int],
        costs: CostModel = DECSTATION_5000_200,
        demux_style: str = "synthesized",
        an1_driver_mtu: int = 1500,
        batching: bool = True,
    ) -> None:
        self.sim = sim
        self.name = name
        self.ip = ip
        self.link_addr = link_addr
        self.kernel = Kernel(sim, costs, name=name)
        if isinstance(link, An1Link):
            self.nic = An1Nic(
                self.kernel,
                link,
                station=link_addr,
                name=f"{name}-an1",
                driver_mtu_data=an1_driver_mtu,
            )
        elif isinstance(link, EthernetLink):
            self.nic = PmaddNic(self.kernel, link, link_addr, name=f"{name}-eth")
        else:
            raise TypeError(f"unsupported link {link!r}")
        self.netio = NetworkIoModule(
            self.kernel, self.nic, demux_style, batching=batching
        )
        self.netio.kernel_rx = self._kernel_rx

        # Kernel-resident network layers shared by all organizations.
        self.ip_stack = IpStack(ip)
        self.udp_ports = UdpPortTable()
        if self.is_an1:
            self.arp: Optional[ArpStack] = None
            #: AN1 has no broadcast ARP here; the testbed installs a
            #: static IP→station table (Autonet address resolution).
            self.an1_neighbors: dict[int, int] = {}
        else:
            self.arp = ArpStack(ip, link_addr)
        self.tcp_kernel_handler: Optional[TcpKernelHandler] = None
        #: Optional :class:`~repro.net.fabric.routing.RouteTable`.  When
        #: set (fabric topologies), ``resolve_link`` ARPs the route's
        #: next hop — a gateway for off-subnet destinations — instead of
        #: the destination itself.  None preserves the paper's original
        #: single-segment behaviour.
        self.routes = None
        #: Slow-timer housekeeping (IP reassembly expiry) is armed lazily
        #: on the first fragment: an idle host costs the engine nothing,
        #: and a quiet 1k-host world doesn't tick 1k perpetual timers.
        self._slow_timer_armed = False
        self.icmp_echo_enabled = True

    def __repr__(self) -> str:
        return f"<Host {self.name} {ip_to_str(self.ip)}>"

    @property
    def is_an1(self) -> bool:
        return isinstance(self.nic, An1Nic)

    @property
    def mtu(self) -> int:
        return self.nic.mtu_data

    def create_task(self, name: str, privileged: bool = False) -> Task:
        return self.kernel.create_task(name, privileged=privileged)

    # ------------------------------------------------------------------
    # Link address resolution
    # ------------------------------------------------------------------

    def resolve_link(self, dst_ip: int) -> Generator:
        """Resolve ``dst_ip`` to a link address (blocking, real ARP on
        Ethernet; static table on AN1)."""
        if self.is_an1:
            try:
                return self.an1_neighbors[dst_ip]
            except KeyError:
                raise LookupError(
                    f"{self.name}: no AN1 station for {ip_to_str(dst_ip)}"
                ) from None
        # Off-subnet destinations resolve their gateway's address: the
        # frame goes to the router, the IP header stays end-to-end.
        hop_ip = self.routes.next_hop(dst_ip) if self.routes is not None else dst_ip
        for attempt in range(4000):
            mac = self.arp.lookup(hop_ip, self.sim.now)
            if mac is not None:
                return mac
            actions = self.arp.resolve(hop_ip, None, self.sim.now)
            for action in actions:
                if isinstance(action, SendArp):
                    yield from self.netio.kernel_send(
                        action.packet.pack(), action.dst_mac, ETHERTYPE_ARP
                    )
            # Poll at sub-millisecond granularity; replies land within a
            # couple of wire times on an idle segment.
            yield self.sim.timeout(0.5e-3)
        raise LookupError(f"{self.name}: ARP failed for {ip_to_str(dst_ip)}")

    # ------------------------------------------------------------------
    # Kernel receive dispatch
    # ------------------------------------------------------------------

    def _kernel_rx(self, ethertype: int, payload: bytes, link_info: LinkInfo) -> Generator:
        if ethertype == ETHERTYPE_ARP and self.arp is not None:
            yield from self._arp_rx(payload)
            return
        if ethertype != ETHERTYPE_IP:
            return
        datagram = self.ip_stack.receive(payload, now=self.sim.now)
        if datagram is None:
            if self.ip_stack.pending_reassemblies:
                self._arm_slow_timer()
            return
        costs = self.kernel.cost_table
        prof = _profile.PROFILER
        if prof is not None:
            prof.charge("ip.input", costs.ip_input)
        # Open-coded cpu.consume (here and for the UDP charge below):
        # identical event sequence, one less generator frame per
        # delivered datagram (see CPU.claim).
        cpu = self.kernel.cpu
        cost = costs.ip_input
        if cost:
            request = cpu.claim()
            try:
                yield request
            except BaseException:
                cpu.abandon(request)
                raise
            try:
                yield Timeout(self.sim, cost)
                cpu.busy_time += cost
            finally:
                cpu.unclaim(request)
        if datagram.protocol == PROTO_TCP:
            if self.tcp_kernel_handler is not None:
                yield from self.tcp_kernel_handler(
                    datagram.payload, datagram.src, link_info
                )
        elif datagram.protocol == PROTO_UDP:
            cost = costs.udp_packet
            if cost:
                request = cpu.claim()
                try:
                    yield request
                except BaseException:
                    cpu.abandon(request)
                    raise
                try:
                    yield Timeout(self.sim, cost)
                    cpu.busy_time += cost
                finally:
                    cpu.unclaim(request)
            forwarded = yield from self._forward_udp(datagram, link_info)
            if not forwarded:
                delivered = self.udp_ports.deliver(
                    datagram.payload, datagram.src, self.ip
                )
                if not delivered and self.icmp_echo_enabled:
                    # RFC 1122: a datagram to a closed port draws an
                    # ICMP port-unreachable quoting the offender.
                    original = payload[: Ipv4Header.LENGTH + 8]
                    yield from self.ip_send(
                        datagram.src,
                        PROTO_ICMP,
                        encode_unreachable(UNREACH_PORT, original),
                        link_info.src,
                    )
        elif datagram.protocol == PROTO_ICMP and self.icmp_echo_enabled:
            yield from self._icmp_rx(datagram.payload, datagram.src, link_info)

    def _arm_slow_timer(self) -> None:
        if not self._slow_timer_armed:
            self._slow_timer_armed = True
            self.sim.process(self._slow_timer(), name=f"{self.name}-slowtimer")

    def _slow_timer(self) -> Generator:
        """Periodic housekeeping, like BSD's 500 ms slow timeout.

        Runs only while reassembly state exists; it disarms itself when
        the last partial datagram completes or expires and is re-armed by
        the next lone fragment."""
        while self.ip_stack.pending_reassemblies:
            yield self.sim.timeout(0.5)
            expired = self.ip_stack.expire(self.sim.now)
            if expired:
                yield from self.kernel.cpu.consume(
                    self.kernel.cost_table.timer_op * expired
                )
        self._slow_timer_armed = False

    def _forward_udp(self, datagram, link_info: LinkInfo) -> Generator:
        """Relay a kernel-path datagram into a user-level UDP channel.

        This is the software demux fallback the paper's §5 anticipates
        for connectionless protocols before BQI discovery completes.
        The bound channel is resolved through the flow table's wildcard
        tier — the same entry the Ethernet receive path demuxes on.
        """
        from .net.headers import UdpHeader
        from .netio.channels import Channel

        try:
            header = UdpHeader.unpack(datagram.payload)
        except HeaderError:
            return False
        channel = self.netio.flow_table.wildcard_target(
            PROTO_UDP, header.dport, local_ip=self.ip
        )
        if not isinstance(channel, Channel):
            return False
        yield from self.kernel.cpu.consume(self.kernel.cost_table.sw_demux)
        packet = prepend(
            Ipv4Header(
                src=datagram.src,
                dst=self.ip,
                protocol=PROTO_UDP,
                total_length=Ipv4Header.LENGTH + len(datagram.payload),
            ).pack(),
            datagram.payload,
        )
        yield from self.netio._deliver(channel, packet, link_info)
        return True

    def _arp_rx(self, payload: bytes) -> Generator:
        try:
            packet = ArpPacket.unpack(payload)
        except HeaderError:
            return
        for action in self.arp.receive(packet, self.sim.now):
            if isinstance(action, SendArp):
                yield from self.netio.kernel_send(
                    action.packet.pack(), action.dst_mac, ETHERTYPE_ARP
                )

    def _icmp_rx(self, payload: bytes, src_ip: int, link_info: LinkInfo) -> Generator:
        echo = decode_echo(payload)
        if echo is None or not echo.is_request:
            return
        reply = make_reply(echo)
        yield from self.ip_send(src_ip, PROTO_ICMP, reply, link_info.src)

    # ------------------------------------------------------------------
    # Kernel IP transmission (used by organizations and the registry)
    # ------------------------------------------------------------------

    def ip_send(
        self,
        dst_ip: int,
        protocol: int,
        payload: bytes,
        link_dst: object = None,
        bqi: int = 0,
        adv_bqi: int = 0,
        ttl: int = 64,
    ) -> Generator:
        """Encapsulate and transmit one transport payload from kernel
        context, fragmenting to the device MTU if needed."""
        costs = self.kernel.cost_table
        if link_dst is None:
            link_dst = yield from self.resolve_link(dst_ip)
        yield from self.kernel.cpu.consume(costs.ip_output)
        packets = self.ip_stack.send(dst_ip, protocol, payload, mtu=self.mtu, ttl=ttl)
        for packet in packets:
            yield from self.netio.kernel_send(
                packet, link_dst, bqi=bqi, adv_bqi=adv_bqi
            )
