"""CLI for the tenancy isolation campaign.

Mirrors ``python -m repro.check``::

    python -m repro.tenancy run [--quick] [--bytes N] [--out report.json]

Exit status 0 iff every enforced cell passes all four isolation
invariants AND every sabotaged cell (enforcement disabled) is caught by
at least one of them.
"""

from __future__ import annotations

import argparse
import sys

from .campaign import run_campaign


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tenancy",
        description="Run the multi-tenant isolation campaign.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    run = sub.add_parser("run", help="run the adversary × enforcement grid")
    run.add_argument(
        "--quick",
        action="store_true",
        help="smaller transfers and a reduced sabotage arm (CI)",
    )
    run.add_argument(
        "--bytes",
        type=int,
        default=10_000_000,
        help="victim transfer size per cell (default saturates the window)",
    )
    run.add_argument("--out", help="write the JSON report here")
    args = parser.parse_args(argv)

    report = run_campaign(quick=args.quick, total_bytes=args.bytes)
    if args.out:
        report.save(args.out)
        print(f"[tenancy] report written to {args.out}")
    if not report.enforced_ok:
        print("[tenancy] FAIL: isolation violated under enforcement")
    if not report.sabotage_caught:
        print("[tenancy] FAIL: sabotaged stack slipped past the checkers")
    if report.ok:
        print("[tenancy] OK: all adversaries contained, sabotage caught")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
