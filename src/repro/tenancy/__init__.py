"""Multi-tenant sharing of one user-level protocol stack.

See :mod:`repro.tenancy.tenant` for the enforcement model,
:mod:`repro.tenancy.invariants` for the isolation checkers, and
:mod:`repro.tenancy.campaign` for the adversarial-tenant campaign.
"""

from .tenant import (  # noqa: F401
    GrantViolation,
    PortGrant,
    QuotaExceeded,
    RateLimited,
    Tenant,
    TenantBudget,
    TenantManager,
    TenantViolation,
    TokenBucket,
    attach_tenancy,
)
