"""Tenants: principals sharing one stack under enforced budgets.

The paper's design already has a capability boundary: every channel,
template, filter, and BQI ring is set up by trusted code (the registry
server and the network I/O module) on behalf of untrusted libraries.
This module turns that boundary into real multi-tenancy: a
:class:`Tenant` is a principal owning tasks; a :class:`TenantBudget`
caps what the trusted layers will allocate or transmit on its behalf —
shared-region bytes, BQI ring buffers, channel and template counts, a
token-bucket transmit rate, and a port grant set.

Enforcement lives in the trusted layers, never in library code:

* the network I/O module debits budgets at channel creation, verifies
  templates and flow keys against the grant set at registration time,
  rate-limits ``send`` (refusing — not queueing — over-budget packets),
  and refuses delivery into a channel whose owning task no longer
  belongs to the tenant the flow was installed for;
* the registry server refuses ``listen``/``bind``/``connect`` on ports
  outside the caller's grant;
* the flow table's wildcard tier records an owner so an out-of-grant
  wildcard listen is rejected instead of shadowing another tenant's
  exact-match flows.

Every refusal increments an audit counter (per-tenant and on the
:class:`TenantManager`), which is what the isolation invariants and
``netstat``'s tenant table read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..counters import Counters
from ..net.headers import Ipv4Header


class TenantViolation(OSError):
    """A tenant-boundary operation was refused (base class)."""


class QuotaExceeded(TenantViolation):
    """An allocation would exceed the tenant's budget."""


class GrantViolation(TenantViolation):
    """A port, template, or flow key outside the tenant's grant set."""


class RateLimited(TenantViolation):
    """A transmission was refused by the tenant's token bucket.

    The module refuses rather than queues; ``retry_after`` tells the
    *library* (the tenant's own code) how long until the bucket can
    admit the packet, should it choose to retry.
    """

    def __init__(self, retry_after: float, detail: str = "") -> None:
        super().__init__(detail or f"rate limited; retry in {retry_after:.6f}s")
        self.retry_after = retry_after


class TokenBucket:
    """A classic token bucket over simulated time.

    ``rate`` is in bytes/second, ``burst`` in bytes.  A non-positive
    rate means unlimited.  Packets larger than the burst are admitted
    against a full bucket (the balance may go negative) so a large
    segment can never livelock behind its own size.
    """

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = float(rate or 0.0)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = 0.0

    def try_consume(self, nbytes: int, now: float) -> float:
        """Admit ``nbytes`` at time ``now``.

        Returns 0.0 when admitted (tokens debited), else the seconds
        until the bucket could admit the packet.
        """
        if self.rate <= 0:
            return 0.0
        if now > self.stamp:
            self.tokens = min(
                self.burst, self.tokens + (now - self.stamp) * self.rate
            )
            self.stamp = now
        needed = min(float(nbytes), self.burst)
        if self.tokens >= needed:
            self.tokens -= float(nbytes)
            return 0.0
        return (needed - self.tokens) / self.rate


@dataclass(frozen=True)
class PortGrant:
    """The set of ports a tenant may explicitly bind or listen on.

    A tuple of inclusive ``(lo, hi)`` ranges; the empty tuple grants
    nothing.  Ephemeral ports handed out by the registry's own
    allocator are always permitted — the trusted allocator mints them,
    so no forgery is possible.
    """

    ranges: tuple = ()

    @classmethod
    def of(cls, *items) -> "PortGrant":
        """Build from ports and ``(lo, hi)`` ranges: ``of(80, (5000, 5999))``."""
        ranges = []
        for item in items:
            if isinstance(item, tuple):
                lo, hi = item
            else:
                lo = hi = int(item)
            ranges.append((int(lo), int(hi)))
        return cls(tuple(sorted(ranges)))

    @classmethod
    def any(cls) -> "PortGrant":
        return cls(((1, 0xFFFF),))

    def allows(self, port: int) -> bool:
        return any(lo <= port <= hi for lo, hi in self.ranges)

    def __str__(self) -> str:
        if self.ranges == ((1, 0xFFFF),):
            return "*"
        return ",".join(
            str(lo) if lo == hi else f"{lo}-{hi}" for lo, hi in self.ranges
        )


@dataclass(frozen=True)
class TenantBudget:
    """Everything the trusted layers will spend for one tenant."""

    #: Shared packet-buffer region quota (bytes of wired memory).
    region_bytes: int = 1 << 20
    #: AN1 BQI ring buffer quota (buffers across all rings).
    bqi_buffers: int = 256
    max_channels: int = 32
    max_templates: int = 32
    #: Token-bucket transmit limiter; rate in bytes/second (<= 0 means
    #: unlimited), burst in bytes.
    tx_rate: float = 0.0
    tx_burst: int = 64 * 1024
    ports: PortGrant = field(default_factory=PortGrant.any)


class Tenant:
    """One principal and its live resource attribution."""

    def __init__(self, tenant_id: str, budget: Optional[TenantBudget] = None) -> None:
        self.tenant_id = tenant_id
        self.budget = budget or TenantBudget()
        self.bucket = TokenBucket(self.budget.tx_rate, self.budget.tx_burst)
        self.counters = Counters()
        #: Live channels attributed to this tenant, with their charges.
        self._channel_charges: dict = {}  # Channel -> (region_bytes, templates)
        #: Live BQI rings attributed to this tenant.
        self._rings: dict = {}  # BufferRing -> buffers charged
        self.region_bytes_used = 0
        self.bqi_buffers_used = 0
        self.templates_used = 0
        #: Ports this tenant successfully bound/listened (evidence for
        #: the grant-respected invariant; recorded even when enforcement
        #: is off so a sabotaged stack leaves a judgeable trail).
        self.bound_ports: list = []
        self.tasks: list = []

    def __repr__(self) -> str:
        return (
            f"<Tenant {self.tenant_id} channels={self.channel_count}"
            f" region={self.region_bytes_used}/{self.budget.region_bytes}>"
        )

    @property
    def channel_count(self) -> int:
        return len(self._channel_charges)

    # ------------------------------------------------------------------
    # Admission (called by the trusted layers; raise to refuse)
    # ------------------------------------------------------------------

    def _refuse(self, exc_type, counter: str, detail: str):
        self.counters[counter] += 1
        self.counters["rejections"] += 1
        raise exc_type(f"tenant {self.tenant_id}: {detail}")

    def check_port(self, port: int) -> None:
        """An explicit bind/listen/reserve must be inside the grant (or
        a port the registry's trusted allocator already minted)."""
        if port in self._ephemeral_ports:
            return
        if not self.budget.ports.allows(port):
            self._refuse(
                GrantViolation,
                "out_of_grant_binds",
                f"port {port} outside grant {self.budget.ports}",
            )

    def check_template(self, template) -> None:
        """Registration-time template vetting.

        A send template must pin the IP source address (offset 12) and
        the transport source port (first two bytes at the IP payload),
        and the pinned port must be inside the grant — otherwise the
        capability would let the holder impersonate out-of-grant
        endpoints.
        """
        pins_src = False
        local_port = None
        for constraint in template.constraints:
            if constraint.offset == 12 and len(constraint.value) >= 4:
                pins_src = True
            if constraint.offset == Ipv4Header.LENGTH and len(constraint.value) >= 2:
                local_port = int.from_bytes(constraint.value[:2], "big")
        if not pins_src or local_port is None:
            self._refuse(
                GrantViolation,
                "forged_templates",
                f"template {template.name!r} does not pin source "
                "address and port",
            )
        if not self.budget.ports.allows(local_port) and not self._ephemeral(
            local_port
        ):
            self._refuse(
                GrantViolation,
                "forged_templates",
                f"template {template.name!r} pins out-of-grant port "
                f"{local_port}",
            )

    def check_flow_key(self, flow_key) -> None:
        if not self.budget.ports.allows(flow_key.local_port) and not (
            self._ephemeral(flow_key.local_port)
        ):
            self._refuse(
                GrantViolation,
                "out_of_grant_flows",
                f"flow {flow_key} outside grant {self.budget.ports}",
            )

    def _ephemeral(self, port: int) -> bool:
        """Registry-minted ephemeral ports are implicitly granted."""
        return port in self._ephemeral_ports

    #: Ephemeral ports the trusted registry allocated for this tenant.
    @property
    def _ephemeral_ports(self) -> set:
        ports = self.__dict__.get("_ephemeral_port_set")
        if ports is None:
            ports = self.__dict__["_ephemeral_port_set"] = set()
        return ports

    def grant_ephemeral(self, port: int) -> None:
        self._ephemeral_ports.add(port)

    def precheck_channel(self, region_bytes: int, ring_buffers: int = 0) -> None:
        """Non-debiting admission check (before an expensive handshake)."""
        if self.channel_count + 1 > self.budget.max_channels:
            self._refuse(
                QuotaExceeded,
                "quota_channels",
                f"channel cap {self.budget.max_channels} reached",
            )
        if self.templates_used + 1 > self.budget.max_templates:
            self._refuse(
                QuotaExceeded,
                "quota_templates",
                f"template cap {self.budget.max_templates} reached",
            )
        if self.region_bytes_used + region_bytes > self.budget.region_bytes:
            self._refuse(
                QuotaExceeded,
                "quota_region",
                f"region quota {self.budget.region_bytes}B exhausted "
                f"({self.region_bytes_used}B used, {region_bytes}B asked)",
            )
        if ring_buffers and (
            self.bqi_buffers_used + ring_buffers > self.budget.bqi_buffers
        ):
            self._refuse(
                QuotaExceeded,
                "quota_bqi",
                f"BQI buffer quota {self.budget.bqi_buffers} exhausted",
            )

    def attach_channel(self, channel, region_bytes: int) -> None:
        """Debit and record one created channel (+ its template)."""
        self.region_bytes_used += region_bytes
        self.templates_used += 1
        self._channel_charges[channel] = region_bytes
        self._note_peaks()

    def release_channel(self, channel) -> None:
        """Credit everything a channel held (idempotent)."""
        region_bytes = self._channel_charges.pop(channel, None)
        if region_bytes is None:
            return
        self.region_bytes_used -= region_bytes
        self.templates_used -= 1

    def admit_ring(self, buffers: int) -> None:
        if self.bqi_buffers_used + buffers > self.budget.bqi_buffers:
            self._refuse(
                QuotaExceeded,
                "quota_bqi",
                f"BQI buffer quota {self.budget.bqi_buffers} exhausted",
            )

    def attach_ring(self, ring) -> None:
        if ring in self._rings:  # pre-allocated, then bound to a channel
            return
        self.bqi_buffers_used += ring.capacity
        self._rings[ring] = ring.capacity
        self._note_peaks()

    def release_ring(self, ring) -> None:
        buffers = self._rings.pop(ring, None)
        if buffers is None:
            return
        self.bqi_buffers_used -= buffers

    def admit_tx(self, nbytes: int, now: float) -> float:
        """Rate-limiter gate: 0.0 admits; positive is the retry hint."""
        retry_after = self.bucket.try_consume(nbytes, now)
        if retry_after > 0:
            self.counters["throttle_events"] += 1
            return retry_after
        self.counters["tx_bytes"] += nbytes
        self.counters["tx_packets"] += 1
        return 0.0

    def note_rx(self, nbytes: int) -> None:
        self.counters["rx_bytes"] += nbytes
        self.counters["rx_frames"] += 1

    def note_bound(self, port: int) -> None:
        self.bound_ports.append(port)

    def _note_peaks(self) -> None:
        if self.region_bytes_used > self.counters["peak_region_bytes"]:
            self.counters["peak_region_bytes"] = self.region_bytes_used
        if self.bqi_buffers_used > self.counters["peak_bqi_buffers"]:
            self.counters["peak_bqi_buffers"] = self.bqi_buffers_used
        if self.channel_count > self.counters["peak_channels"]:
            self.counters["peak_channels"] = self.channel_count

    # ------------------------------------------------------------------
    # Teardown: one sweep releases everything a crashed tenant held
    # ------------------------------------------------------------------

    def teardown(self) -> dict:
        """Terminate the tenant's tasks and sweep every attributed
        resource through the single release path
        (:meth:`NetworkIoModule.destroy_channel`), then report leaks.

        Task termination fires the registry's inheritance hooks (which
        destroy channels and release ports); anything still attributed
        afterwards is destroyed directly.  Returns :meth:`leaks` — an
        empty dict is the clean bill of health tests assert on.
        """
        for task in list(self.tasks):
            if task.alive:
                task.terminate()
        for channel in list(self._channel_charges):
            module = getattr(channel, "module", None)
            if module is not None and not channel.closed:
                module.destroy_channel(channel.owner, channel)
            else:
                self.release_channel(channel)
        for ring in list(self._rings):
            owner = getattr(ring, "owner", None)
            module = getattr(owner, "module", None) if owner is not None else None
            if module is not None:
                module.destroy_channel(owner.owner, owner)
            else:
                self.release_ring(ring)
        return self.leaks()

    def leaks(self) -> dict:
        """Outstanding attribution after teardown; empty means clean."""
        leaks = {}
        if self.region_bytes_used:
            leaks["region_bytes"] = self.region_bytes_used
        if self.bqi_buffers_used:
            leaks["bqi_buffers"] = self.bqi_buffers_used
        if self.templates_used:
            leaks["templates"] = self.templates_used
        if self._channel_charges:
            leaks["channels"] = len(self._channel_charges)
        if self._rings:
            leaks["rings"] = len(self._rings)
        return leaks


class TenantManager:
    """The per-testbed tenant directory the trusted layers consult.

    ``enforcing`` is the campaign's sabotage knob: when False every
    admission check silently passes (attribution and audit evidence are
    still recorded), modelling a stack whose enforcement was compiled
    out — the isolation invariants must catch the consequences.
    """

    def __init__(self, enforcing: bool = True) -> None:
        self.enforcing = enforcing
        self.tenants: dict[str, Tenant] = {}
        self._task_tenant: dict = {}  # Task -> Tenant
        self.audit = Counters()
        #: Delivery evidence: one ``(time, flow_tenant, owner_tenant,
        #: nbytes, delivered)`` record per frame the module classified
        #: to a tenanted channel.  The isolation invariants judge
        #: cross-tenant delivery from this log, the way the netcheck
        #: invariants judge from the wire trace.
        self.delivery_log: list = []
        #: Audited refusals and suspicious facts: ``(time, kind,
        #: tenant_id, detail)`` — recorded whether or not enforcement
        #: acted on them, so a sabotaged stack still leaves evidence.
        self.fact_log: list = []

    def create_tenant(
        self, tenant_id: str, budget: Optional[TenantBudget] = None
    ) -> Tenant:
        if tenant_id in self.tenants:
            raise ValueError(f"tenant {tenant_id!r} already exists")
        tenant = Tenant(tenant_id, budget)
        self.tenants[tenant_id] = tenant
        return tenant

    def bind_task(self, task, tenant: Tenant) -> None:
        """Attribute ``task`` (and everything it creates) to ``tenant``."""
        self._task_tenant[task] = tenant
        tenant.tasks.append(task)

    def tenant_of(self, task) -> Optional[Tenant]:
        return self._task_tenant.get(task)

    def get(self, tenant_id) -> Optional[Tenant]:
        return self.tenants.get(tenant_id)

    def __iter__(self):
        return iter(self.tenants.values())

    # ------------------------------------------------------------------
    # Enforcement wrappers (no-ops when not enforcing, but audited)
    # ------------------------------------------------------------------

    def refused(self, counter: str) -> None:
        """Record one audited refusal."""
        self.audit[counter] += 1

    def note(self, time: float, kind: str, tenant_id, detail: str = "") -> None:
        """Record one audited fact for the invariant checkers."""
        self.audit[kind] += 1
        self.fact_log.append((time, kind, tenant_id, detail))


def attach_tenancy(bed, enforcing: bool = True) -> TenantManager:
    """Wire a :class:`TenantManager` into every trusted layer of a
    testbed (both :class:`~repro.testbed.Testbed` and
    :class:`~repro.testbed.FabricTestbed` shapes)."""
    manager = TenantManager(enforcing=enforcing)
    for host in bed.hosts:
        host.netio.tenants = manager
    for registry in getattr(bed, "registries", []):
        registry.tenants = manager
    bed.tenants = manager
    return manager
