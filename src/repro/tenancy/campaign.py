"""The adversarial-tenant campaign: prove isolation, then prove the
proof bites.

Each cell runs one victim tenant's workload — a bulk TCP transfer
alice→bob plus a UDP telemetry flow bob→alice — while one adversarial
tenant on the *same host* (sharing the NIC, the wired-buffer pool, and
the registry) misbehaves:

``forger``
    Binds into the victim's port grant and connects from an
    out-of-grant source port — forged endpoint capabilities.
``flooder``
    Offers several times the shared link's capacity in UDP datagrams,
    far past its token-bucket budget.
``leaker``
    Steals a victim channel capability (the modeled ``hand_off`` leak:
    the channel's owner task is rebound to the adversary) and tries to
    receive the victim's flow and transmit under its template.
``hoarder``
    Allocates channels until refused, trying to exhaust the host's
    finite wired packet-buffer pool before the victim arrives.

Every cell's evidence is judged by the four isolation invariants
(:mod:`repro.tenancy.invariants`).  With enforcement on, all checks
must pass and the victim's goodput stays within ε of its solo
baseline.  The same cells re-run with ``enforcing=False`` (the
sabotage arm) must each be *caught* — at least one invariant fires —
or the invariants themselves are vacuous.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Generator, Optional

from ..net.headers import Ipv4Header, PROTO_UDP
from ..net.buf import prepend
from ..org.udplib import LibraryUdpService
from ..protocols.udp import encode_datagram
from ..testbed import IP_A, IP_B, Testbed
from .invariants import (
    IsolationEvidence,
    TenantSnapshot,
    run_checks,
)
from .tenant import PortGrant, TenantBudget, attach_tenancy

#: Victim workload addressing.
VICTIM_PORT = 4000
TELEMETRY_PORT = 4500

ADVERSARIES = ("none", "forger", "flooder", "leaker", "hoarder")

#: The victim may use ports 4000-5999; the adversary 7000-7999.
VICTIM_BUDGET = TenantBudget(
    region_bytes=1 << 20,
    bqi_buffers=256,
    max_channels=16,
    tx_rate=0.0,
    ports=PortGrant.of((4000, 5999)),
)
ADVERSARY_BUDGET = TenantBudget(
    region_bytes=64 * 1024,  # exactly one channel's region
    bqi_buffers=64,
    max_channels=4,
    tx_rate=30_000.0,  # ~2.4% of the 10 Mb/s shared link
    tx_burst=8 * 1024,
    ports=PortGrant.of((7000, 7999)),
)

#: Finite wired-memory pool on the shared host: enough for the victim's
#: two channels plus the adversary's quota, nothing more — the scarcity
#: quotas arbitrate.
HOST_POOL_BYTES = 4 * 64 * 1024


@dataclass(frozen=True)
class IsolationSpec:
    """One campaign cell."""

    adversary: str = "none"
    enforcing: bool = True
    #: Large enough that the victim transfer saturates the whole cell:
    #: goodput is the *sustained* rate over the deadline window, so a
    #: discrete TCP loss event amortizes identically in the solo and
    #: adversary cells instead of dominating a short completion time.
    total_bytes: int = 10_000_000
    deadline: float = 5.0  # Sim-seconds per cell.

    @property
    def label(self) -> str:
        mode = "enforced" if self.enforcing else "sabotaged"
        return f"{self.adversary}/{mode}"


@dataclass
class CellReport:
    """One cell's evidence and verdicts."""

    spec: IsolationSpec
    evidence: IsolationEvidence
    results: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def caught(self) -> bool:
        """At least one invariant fired (the sabotage arm's pass bar)."""
        return not self.ok

    def as_dict(self) -> dict:
        return {
            "adversary": self.spec.adversary,
            "enforcing": self.spec.enforcing,
            "victim_goodput": self.evidence.victim_goodput,
            "solo_goodput": self.evidence.solo_goodput,
            "checks": {
                result.invariant: [str(v) for v in result.violations]
                for result in self.results
            },
            "ok": self.ok,
        }


def run_cell(
    spec: IsolationSpec, solo_goodput: Optional[float] = None
) -> CellReport:
    """Run one cell and judge it.

    ``solo_goodput`` is the victim's baseline from a clean cell; pass
    None to have this cell measure itself (used for the baseline run).
    """
    bed = Testbed(network="ethernet", organization="userlib")
    manager = attach_tenancy(bed, enforcing=spec.enforcing)
    victim = manager.create_tenant("victim", VICTIM_BUDGET)
    manager.bind_task(bed.app_a, victim)
    manager.bind_task(bed.app_b, victim)
    mallory_task = bed.host_a.create_task("mallory")
    mallory = manager.create_tenant("mallory", ADVERSARY_BUDGET)
    manager.bind_task(mallory_task, mallory)
    bed.host_a.netio.region_pool_bytes = HOST_POOL_BYTES

    victim_udp_a = LibraryUdpService(bed.host_a, bed.app_a, bed.registry_a)
    victim_udp_b = LibraryUdpService(bed.host_b, bed.app_b, bed.registry_b)
    mallory_udp = LibraryUdpService(bed.host_a, mallory_task, bed.registry_a)

    state: dict = {"received": 0, "t0": None, "t1": None}
    payload = (bytes(range(256)) * 17)[:4096]

    # ------------------------------------------------------------------
    # Victim workload
    # ------------------------------------------------------------------

    def receiver() -> Generator:
        try:
            listener = yield from bed.service_b.listen(VICTIM_PORT)
            conn = yield from listener.accept()
            while True:
                data = yield from conn.recv(4096)
                if not data:
                    break
                if state["t0"] is None:
                    state["t0"] = bed.sim.now
                state["received"] += len(data)
                state["t1"] = bed.sim.now
            yield from conn.close()
        except Exception:
            pass  # A starved victim is evidence, not a harness crash.

    def sender() -> Generator:
        # The adversary gets a head start: isolation must hold even
        # when the victim arrives at an already-abused stack.
        yield bed.sim.timeout(0.05)
        try:
            conn = yield from bed.service_a.connect(IP_B, VICTIM_PORT)
            sent = 0
            while sent < spec.total_bytes:
                chunk = payload[: min(4096, spec.total_bytes - sent)]
                yield from conn.send(chunk)
                sent += len(chunk)
            yield from conn.close()
        except Exception:
            pass

    def telemetry_rx() -> Generator:
        try:
            endpoint = yield from victim_udp_a.bind(TELEMETRY_PORT)
            state["victim_ep"] = endpoint
            while True:
                yield from endpoint.recvfrom()
        except Exception:
            pass

    def telemetry_tx() -> Generator:
        yield bed.sim.timeout(0.02)
        try:
            endpoint = yield from victim_udp_b.bind(0)
            while bed.sim.now < spec.deadline:
                yield from endpoint.sendto(IP_A, TELEMETRY_PORT, b"t" * 256)
                yield bed.sim.timeout(0.005)
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Adversary actors (all run as tenant "mallory" on alice)
    # ------------------------------------------------------------------

    def forger() -> Generator:
        yield bed.sim.timeout(0.01)
        # Out-of-grant UDP binds straight into the victim's range.
        for port in (4400, 4600):
            try:
                yield from mallory_udp.bind(port)
            except OSError:
                pass
            yield bed.sim.timeout(0.002)
        # An out-of-grant *source* port on an active open.
        try:
            mallory_tcp = bed.library_service("alice", "mallory-tcp")
            manager.bind_task(mallory_tcp.app, mallory)
            yield from mallory_tcp.connect(
                IP_B, VICTIM_PORT, local_port=4700
            )
        except Exception:
            pass

    def flooder() -> Generator:
        try:
            endpoint = yield from mallory_udp.bind(7100)
        except OSError:
            return
        blast = b"f" * 1400
        while bed.sim.now < spec.deadline:
            # ~470 KB/s offered — fifteen times the 30 KB/s bucket.  The
            # attempt *rate* stays modest on purpose: each refused trap
            # still burns the adversary's own library-side CPU (the sim
            # charges it to the shared host CPU), and CPU scheduling is
            # the kernel scheduler's problem, not the stack's.  What the
            # stack must stop is the *bytes* reaching the shared link.
            yield from endpoint.sendto(IP_B, 9, blast)
            yield bed.sim.timeout(0.003)

    def leaker() -> Generator:
        yield bed.sim.timeout(0.1)
        endpoint = state.get("victim_ep")
        if endpoint is None:
            return
        channel = endpoint.channel
        # The modeled capability theft: the victim's channel is rebound
        # to the adversary's task (a leaked hand_off).  From here on,
        # only kernel-side enforcement separates mallory from the flow.
        channel.owner = mallory_task
        # Try to transmit under the victim's template too.
        datagram = encode_datagram(
            TELEMETRY_PORT, 9, b"spoof", bed.host_a.ip, IP_B
        )
        packet = prepend(
            Ipv4Header(
                src=bed.host_a.ip,
                dst=IP_B,
                protocol=PROTO_UDP,
                total_length=Ipv4Header.LENGTH + len(datagram),
            ).pack(),
            datagram,
        )
        link_dst = yield from bed.host_a.resolve_link(IP_B)
        for _ in range(5):
            try:
                yield from bed.host_a.netio.send(
                    mallory_task, channel, packet, link_dst=link_dst
                )
            except Exception:
                pass
            yield bed.sim.timeout(0.01)

    def hoarder() -> Generator:
        for _ in range(6):
            try:
                yield from mallory_udp.bind(0)
            except OSError:
                pass  # Keep trying: quota refusals must not stick.
            yield bed.sim.timeout(0.002)

    actors = {
        "none": None,
        "forger": forger,
        "flooder": flooder,
        "leaker": leaker,
        "hoarder": hoarder,
    }
    if spec.adversary not in actors:
        raise ValueError(f"unknown adversary {spec.adversary!r}")

    bed.spawn(receiver(), name="victim-rx")
    bed.spawn(sender(), name="victim-tx")
    bed.spawn(telemetry_rx(), name="telemetry-rx")
    bed.spawn(telemetry_tx(), name="telemetry-tx")
    actor = actors[spec.adversary]
    if actor is not None:
        bed.spawn(actor(), name=spec.adversary)
    bed.run(until=spec.deadline)
    duration = bed.sim.now

    if state["t0"] is not None and state["t1"] is not None and (
        state["t1"] > state["t0"]
    ):
        goodput = state["received"] / (state["t1"] - state["t0"])
    else:
        goodput = 0.0

    # ------------------------------------------------------------------
    # Teardown sweep + evidence assembly
    # ------------------------------------------------------------------

    snapshots = []
    for tenant in sorted(manager, key=lambda t: t.tenant_id):
        leaks = tenant.teardown()
        snapshots.append(
            TenantSnapshot(
                tenant_id=tenant.tenant_id,
                grant_ranges=tenant.budget.ports.ranges,
                ephemeral_ports=frozenset(tenant._ephemeral_ports),
                bound_ports=tuple(tenant.bound_ports),
                region_quota=tenant.budget.region_bytes,
                bqi_quota=tenant.budget.bqi_buffers,
                tx_rate=tenant.budget.tx_rate,
                tx_burst=tenant.budget.tx_burst,
                counters=dict(tenant.counters),
                leaks=leaks,
            )
        )

    evidence = IsolationEvidence(
        adversary=spec.adversary,
        enforcing=spec.enforcing,
        victim="victim",
        duration=duration,
        victim_goodput=goodput,
        solo_goodput=solo_goodput if solo_goodput is not None else goodput,
        delivery_log=list(manager.delivery_log),
        fact_log=list(manager.fact_log),
        audit=dict(manager.audit),
        tenants=snapshots,
    )
    return CellReport(spec=spec, evidence=evidence, results=run_checks(evidence))


@dataclass
class CampaignReport:
    """The full grid's outcome."""

    cells: list = field(default_factory=list)

    @property
    def enforced_ok(self) -> bool:
        return all(c.ok for c in self.cells if c.spec.enforcing)

    @property
    def sabotage_caught(self) -> bool:
        sabotaged = [c for c in self.cells if not c.spec.enforcing]
        return bool(sabotaged) and all(c.caught for c in sabotaged)

    @property
    def ok(self) -> bool:
        return self.enforced_ok and self.sabotage_caught

    def as_dict(self) -> dict:
        return {
            "cells": [c.as_dict() for c in self.cells],
            "enforced_ok": self.enforced_ok,
            "sabotage_caught": self.sabotage_caught,
            "ok": self.ok,
        }

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh, indent=2)


def run_campaign(
    quick: bool = False,
    total_bytes: int = 10_000_000,
    log=print,
) -> CampaignReport:
    """The full grid: every adversary enforced, every adversary
    sabotaged.  ``quick`` shrinks the cell window and the sabotage arm
    to the two highest-signal adversaries for CI."""
    enforced = ADVERSARIES
    if quick:
        deadline = 3.0
        sabotaged = ("flooder", "leaker")
    else:
        deadline = 5.0
        sabotaged = tuple(a for a in ADVERSARIES if a != "none")

    report = CampaignReport()
    baseline = run_cell(
        IsolationSpec(
            adversary="none", total_bytes=total_bytes, deadline=deadline
        )
    )
    solo = baseline.evidence.victim_goodput
    log(
        f"[tenancy] solo baseline: {solo:.0f} B/s"
        f" ({baseline.evidence.duration:.2f}s sim)"
    )
    report.cells.append(baseline)

    for adversary in enforced:
        if adversary == "none":
            continue
        cell = run_cell(
            IsolationSpec(
                adversary=adversary,
                total_bytes=total_bytes,
                deadline=deadline,
            ),
            solo_goodput=solo,
        )
        verdict = "ok" if cell.ok else "VIOLATED"
        log(
            f"[tenancy] {cell.spec.label:20s}"
            f" goodput={cell.evidence.victim_goodput:8.0f} B/s  {verdict}"
        )
        report.cells.append(cell)

    for adversary in sabotaged:
        cell = run_cell(
            IsolationSpec(
                adversary=adversary,
                enforcing=False,
                total_bytes=total_bytes,
                deadline=deadline,
            ),
            solo_goodput=solo,
        )
        fired = sorted(
            {
                result.invariant
                for result in cell.results
                if result.violations
            }
        )
        verdict = f"caught by {', '.join(fired)}" if fired else "MISSED"
        log(f"[tenancy] {cell.spec.label:20s} {verdict}")
        report.cells.append(cell)

    return report
