"""Isolation invariants: machine-checkable tenancy properties.

Like the six conformance checkers in :mod:`repro.check.invariants`,
these consume *evidence* — the tenant manager's delivery log and audit
facts, per-tenant counters, and the measured victim goodput — and
return :class:`~repro.check.invariants.CheckResult` rows.  They only
read; the adversarial campaign in :mod:`repro.tenancy.campaign` drives
the simulation and hands them the bundle, and a sabotaged stack (the
same adversaries with ``TenantManager.enforcing = False``) must make at
least one of them fire.

The four invariants:

``tenant-isolation``
    Tenant A's bytes never reach tenant B's channels: every frame the
    module delivered went to a channel whose *current* owner belongs to
    the tenant the flow was installed for.  Blocked cross-tenant
    deliveries are evidence of enforcement working, not violations.
``tenant-goodput``
    Tenant A misbehaving (or merely being throttled) never costs tenant
    B its service: the victim's measured goodput stays within ε of its
    solo baseline on the identical testbed.
``tenant-grants``
    Every port a tenant actually bound, listened on, or connected from
    lies inside its grant set or was minted by the registry's ephemeral
    allocator — a successful out-of-grant bind is a forged capability.
``tenant-conservation``
    Budgets mean what they say: peak region/BQI attribution never
    exceeded quota, transmitted bytes conform to the token bucket
    (rate × duration + burst, with one frame of slack), and after
    teardown no tenant-attributed resource is still held (the
    leak-check sweep).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..check.invariants import CheckResult, Violation

#: Victim goodput must stay within this fraction of its solo baseline.
GOODPUT_EPSILON = 0.10

#: Token-bucket conformance slack: one maximum-size frame may straddle
#: the measurement edge.
RATE_SLACK_BYTES = 1600


@dataclass(frozen=True)
class TenantSnapshot:
    """One tenant's end-of-run facts, detached from live objects."""

    tenant_id: str
    grant_ranges: tuple  # ((lo, hi), ...) inclusive port ranges.
    ephemeral_ports: frozenset  # Registry-minted ports (always legal).
    bound_ports: tuple  # Ports actually bound/listened/connected.
    region_quota: int
    bqi_quota: int
    tx_rate: float  # bytes/sec; <= 0 means unlimited.
    tx_burst: int
    counters: dict  # Tenant counter snapshot (peaks, tx/rx, audits).
    leaks: dict  # Outstanding attribution after teardown; {} = clean.

    def port_granted(self, port: int) -> bool:
        return (
            any(lo <= port <= hi for lo, hi in self.grant_ranges)
            or port in self.ephemeral_ports
        )


@dataclass
class IsolationEvidence:
    """Everything the isolation checkers judge one campaign cell from."""

    adversary: str  # "none" | "forger" | "flooder" | "leaker" | "hoarder"
    enforcing: bool
    victim: str  # The victim tenant id.
    duration: float  # Sim seconds the cell ran.
    victim_goodput: float  # bytes/sec achieved by the victim transfer.
    solo_goodput: float  # Same transfer with no adversary present.
    #: (time, flow_tenant, owner_tenant, nbytes, delivered) per frame
    #: the module classified to a tenanted channel.
    delivery_log: list = field(default_factory=list)
    #: (time, kind, tenant_id, detail) audited facts.
    fact_log: list = field(default_factory=list)
    audit: dict = field(default_factory=dict)
    tenants: list = field(default_factory=list)  # TenantSnapshot rows.

    def tenant(self, tenant_id: str):
        for snapshot in self.tenants:
            if snapshot.tenant_id == tenant_id:
                return snapshot
        return None


# ----------------------------------------------------------------------
# 1. No cross-tenant delivery
# ----------------------------------------------------------------------


def check_isolation(evidence: IsolationEvidence) -> CheckResult:
    """Tenant A's bytes never *reach* tenant B's channels."""
    result = CheckResult("tenant-isolation", checked=len(evidence.delivery_log))
    for time, flow_tenant, owner_tenant, nbytes, delivered in (
        evidence.delivery_log
    ):
        if delivered and owner_tenant != flow_tenant:
            result.violations.append(
                Violation(
                    "tenant-isolation",
                    f"flow={flow_tenant}",
                    time,
                    f"{nbytes}B of tenant {flow_tenant}'s flow delivered"
                    f" to a channel owned by tenant {owner_tenant}",
                )
            )
    return result


# ----------------------------------------------------------------------
# 2. Victim goodput within ε of its solo baseline
# ----------------------------------------------------------------------


def check_goodput(
    evidence: IsolationEvidence, epsilon: float = GOODPUT_EPSILON
) -> CheckResult:
    """An adversary (or a throttled neighbour) cannot degrade the
    victim beyond measurement noise."""
    result = CheckResult("tenant-goodput", checked=0)
    if evidence.solo_goodput <= 0:
        return result  # No baseline: nothing to judge against.
    result.checked = 1
    floor = (1.0 - epsilon) * evidence.solo_goodput
    if evidence.victim_goodput < floor:
        result.violations.append(
            Violation(
                "tenant-goodput",
                f"victim={evidence.victim} adversary={evidence.adversary}",
                evidence.duration,
                f"goodput {evidence.victim_goodput:.0f} B/s below"
                f" {floor:.0f} B/s ({(1 - epsilon):.0%} of solo baseline"
                f" {evidence.solo_goodput:.0f} B/s)",
            )
        )
    return result


# ----------------------------------------------------------------------
# 3. Grants respected
# ----------------------------------------------------------------------


def check_grants(evidence: IsolationEvidence) -> CheckResult:
    """Every successfully bound port was inside the binder's grant."""
    result = CheckResult("tenant-grants", checked=0)
    for snapshot in evidence.tenants:
        for port in snapshot.bound_ports:
            result.checked += 1
            if not snapshot.port_granted(port):
                result.violations.append(
                    Violation(
                        "tenant-grants",
                        f"tenant={snapshot.tenant_id}",
                        0.0,
                        f"bound port {port} outside grant"
                        f" {snapshot.grant_ranges} (and not ephemeral)",
                    )
                )
    return result


# ----------------------------------------------------------------------
# 4. Quota / rate / leak conservation
# ----------------------------------------------------------------------


def check_conservation(evidence: IsolationEvidence) -> CheckResult:
    """Peaks never exceeded quota, tx conformed to the token bucket,
    and teardown left nothing attributed."""
    result = CheckResult("tenant-conservation", checked=0)

    def violate(snapshot, detail):
        result.violations.append(
            Violation(
                "tenant-conservation",
                f"tenant={snapshot.tenant_id}",
                evidence.duration,
                detail,
            )
        )

    for snapshot in evidence.tenants:
        counters = snapshot.counters
        result.checked += 3
        peak_region = counters.get("peak_region_bytes", 0)
        if peak_region > snapshot.region_quota:
            violate(
                snapshot,
                f"peak region attribution {peak_region}B exceeds quota"
                f" {snapshot.region_quota}B",
            )
        peak_bqi = counters.get("peak_bqi_buffers", 0)
        if peak_bqi > snapshot.bqi_quota:
            violate(
                snapshot,
                f"peak BQI attribution {peak_bqi} buffers exceeds quota"
                f" {snapshot.bqi_quota}",
            )
        if snapshot.tx_rate > 0:
            result.checked += 1
            allowed = (
                snapshot.tx_rate * evidence.duration
                + snapshot.tx_burst
                + RATE_SLACK_BYTES
            )
            tx = counters.get("tx_bytes", 0)
            if tx > allowed:
                violate(
                    snapshot,
                    f"transmitted {tx}B in {evidence.duration:.3f}s, over"
                    f" the token bucket's {allowed:.0f}B"
                    f" ({snapshot.tx_rate:.0f} B/s + {snapshot.tx_burst}B"
                    " burst)",
                )
        if snapshot.leaks:
            violate(
                snapshot,
                f"teardown left attributed resources: {snapshot.leaks}",
            )
    return result


#: The checkers in reporting order.
ALL_CHECKS = (
    check_isolation,
    check_goodput,
    check_grants,
    check_conservation,
)


def run_checks(evidence: IsolationEvidence) -> list:
    """All four verdicts for one cell."""
    return [check(evidence) for check in ALL_CHECKS]
