"""Application-driven protocol specialization (paper §5, future work).

"Another area that we have not explored is the manner and extent to
which application-level knowledge can be exploited by the library.
Simple approaches include providing a set of canned options that
determine certain characteristics of a protocol.  A more ambitious
approach would be for an external agent like a stub compiler to examine
the application code and a generic protocol library and to generate a
protocol variant suitable for that particular application."

This module implements the *simple approach*: an application declares
its traffic profile (:class:`AppProfile`) and :func:`specialize`
derives the TCP variant — the declarative front half of the "protocol
compiler" the paper imagines (Morpheus [1], Felten's protocol
compilers [9]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .protocols.tcp import TcpConfig


@dataclass(frozen=True)
class AppProfile:
    """What the application knows about its own communication."""

    #: Typical message size in bytes (a keystroke is 1; a page is 4096).
    message_size: int = 4096
    #: True when per-message latency matters more than throughput
    #: (request/response, interactive terminals).
    latency_sensitive: bool = False
    #: True when sustained throughput matters (file transfer, paging).
    bulk: bool = False
    #: Expected path loss rate, if the application knows it (e.g. a
    #: wireless or congested route); None means "assume clean LAN".
    expected_loss: Optional[float] = None
    #: True for long-lived, mostly-idle connections that must detect
    #: dead peers (login sessions, mounts).
    long_lived_idle: bool = False
    #: Peak outstanding data the app will ever have in flight, if known.
    max_outstanding: Optional[int] = None


class ProfileError(ValueError):
    """An inconsistent application profile."""


def specialize(profile: AppProfile, base: Optional[TcpConfig] = None) -> TcpConfig:
    """Derive a TCP variant from an application's declared profile.

    Returns a new :class:`TcpConfig`; the rules are deliberately simple
    and auditable (each is commented with its rationale) — this is the
    paper's "canned options" tier, not a code generator.
    """
    if profile.latency_sensitive and profile.bulk:
        raise ProfileError(
            "a connection cannot be specialized for latency and bulk at "
            "once; open two connections with two variants instead"
        )
    if profile.message_size <= 0:
        raise ProfileError("message_size must be positive")
    if profile.expected_loss is not None and not 0 <= profile.expected_loss < 1:
        raise ProfileError("expected_loss must be in [0, 1)")

    base = base or TcpConfig()
    changes: dict = {}

    if profile.latency_sensitive:
        # Small messages must leave immediately: no coalescing, and a
        # short delayed-ACK clock so the reverse path answers quickly.
        changes["nagle"] = False
        changes["delack_time"] = min(base.delack_time, 0.05)

    if profile.bulk:
        # Big windows keep the pipe full; Reno recovers from isolated
        # losses without collapsing the window.
        changes["snd_buffer"] = max(base.snd_buffer, 32768)
        changes["rcv_buffer"] = max(base.rcv_buffer, 32768)
        changes["flavor"] = "reno"

    if profile.expected_loss is not None and profile.expected_loss > 0.001:
        # Lossy path: fast recovery plus a snappier retransmission
        # floor so stalls stay short.
        changes["flavor"] = "reno"
        changes["min_rto"] = min(base.min_rto, 0.3)
        changes["initial_rto"] = min(base.initial_rto, 0.6)

    if profile.long_lived_idle:
        changes["keepalive"] = True

    if profile.max_outstanding is not None:
        # No point buffering more than the app will ever have in flight
        # (plus slack for coalescing); pre-window-scaling cap applies.
        bound = min(max(profile.max_outstanding * 2, 4096), 61440)
        changes["snd_buffer"] = min(changes.get("snd_buffer", base.snd_buffer), bound)
        changes["rcv_buffer"] = min(changes.get("rcv_buffer", base.rcv_buffer), bound)

    if profile.message_size < 512 and not profile.latency_sensitive:
        # Many small messages with no latency constraint: let Nagle
        # coalesce aggressively (it is on by default; keep it).
        changes.setdefault("nagle", True)

    from dataclasses import replace

    return replace(base, **changes)


#: Ready-made profiles for the classic application classes the paper's
#: introduction names.
INTERACTIVE = AppProfile(message_size=1, latency_sensitive=True)
FILE_TRANSFER = AppProfile(message_size=8192, bulk=True)
RPC = AppProfile(message_size=256, latency_sensitive=True)
REMOTE_LOGIN = AppProfile(
    message_size=1, latency_sensitive=True, long_lived_idle=True
)
WAN_BULK = AppProfile(message_size=8192, bulk=True, expected_loss=0.02)
