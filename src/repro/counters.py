"""Lazy stat counters for per-host bookkeeping.

Every host carries a dozen stats dicts (NIC, link, IP, ARP, demux,
channels, ...).  Eagerly materializing every key costs a 1k-host world
tens of thousands of dict entries before a single packet moves — and the
entries are almost all zero.  :class:`Counters` is a dict that *reads*
missing keys as 0 without storing them, so a counter is allocated only
on its first increment and snapshots stay cheap.  ``stats["x"] += 1``
and ``stats["x"]`` work exactly as with the old eager dicts; iteration
yields only the keys actually touched.
"""

from __future__ import annotations


class Counters(dict):
    """A dict of counters where untouched keys read as 0."""

    __slots__ = ()

    def __missing__(self, key):
        # Read-only default: do NOT store, so pure reads never allocate.
        return 0

    def snapshot(self) -> dict:
        """A plain-dict copy of the touched counters."""
        return dict(self)
