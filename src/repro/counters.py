"""Lazy stat counters for per-host bookkeeping.

Every host carries a dozen stats dicts (NIC, link, IP, ARP, demux,
channels, ...).  Eagerly materializing every key costs a 1k-host world
tens of thousands of dict entries before a single packet moves — and the
entries are almost all zero.  :class:`Counters` is a dict that *reads*
missing keys as 0 without storing them, so a counter is allocated only
on its first increment and snapshots stay cheap.  ``stats["x"] += 1``
and ``stats["x"]`` work exactly as with the old eager dicts; iteration
yields only the keys actually touched.
"""

from __future__ import annotations


class Counters(dict):
    """A dict of counters where untouched keys read as 0."""

    __slots__ = ()

    def __missing__(self, key):
        # Read-only default: do NOT store, so pure reads never allocate.
        return 0

    def __setitem__(self, key, value):
        # Never materialize a zero: ``stats["x"] += 0``, merge loops that
        # copy untouched fields, and flight-recorder sampling all round-
        # trip through assignment, and storing the zeros they produce is
        # exactly the memory creep the lazy read avoids.  Assigning zero
        # over a live counter deletes it (reads still return 0).
        if value:
            dict.__setitem__(self, key, value)
        elif dict.__contains__(self, key):
            dict.__delitem__(self, key)

    def update(self, *args, **kwargs):
        # Route dict.update through __setitem__ so bulk merges obey the
        # same no-zero-store rule as single assignments.
        if args:
            (other,) = args
            items = other.items() if hasattr(other, "items") else other
            for key, value in items:
                self[key] = value
        for key, value in kwargs.items():
            self[key] = value

    def snapshot(self) -> dict:
        """A plain-dict copy of the touched (non-zero) counters."""
        return {key: value for key, value in self.items() if value}
