"""repro: a user-level network protocol implementation.

A from-scratch reproduction of Thekkath, Nguyen, Moy & Lazowska,
"Implementing Network Protocols at User Level" (SIGCOMM 1993): a real
sans-io TCP/IP/ARP/UDP stack running as user-level libraries over a
Mach-like microkernel substrate, with a registry server for trusted
connection establishment and a network I/O module for protected packet
delivery — all on a calibrated discrete-event simulation of the paper's
DECstation/Ethernet/AN1 testbed.

Quick start::

    from repro.testbed import IP_B, Testbed

    testbed = Testbed(network="ethernet", organization="userlib")

    def server():
        listener = yield from testbed.service_b.listen(7)
        conn = yield from listener.accept()
        data = yield from conn.recv(1024)
        yield from conn.send(data)

    def client():
        conn = yield from testbed.service_a.connect(IP_B, 7)
        yield from conn.send(b"hello")
        print((yield from conn.recv_exactly(5)))

    testbed.spawn(server())
    done = testbed.spawn(client())
    testbed.run(until=done)
"""

from .costs import CostModel, DECSTATION_5000_200, FREE
from .host import Host
from .metrics import (
    LatencyResult,
    SetupResult,
    TransferResult,
    measure_latency,
    measure_setup,
    measure_throughput,
)
from .netstat import channel_table, connection_table, render as netstat_render
from .specialize import AppProfile, specialize
from .testbed import NETWORKS, ORGANIZATIONS, Testbed
from .trace import WireTrace

__version__ = "1.0.0"

__all__ = [
    "Testbed",
    "Host",
    "ORGANIZATIONS",
    "NETWORKS",
    "CostModel",
    "DECSTATION_5000_200",
    "FREE",
    "measure_throughput",
    "measure_latency",
    "measure_setup",
    "TransferResult",
    "LatencyResult",
    "SetupResult",
    "WireTrace",
    "AppProfile",
    "specialize",
    "connection_table",
    "channel_table",
    "netstat_render",
    "__version__",
]
