"""Two-host testbeds: the paper's experimental setup in one call.

"Our hardware environment consists of two DECstation 5000/200
workstations connected to a 10 Mb/s Ethernet, as well as to a
switchless, private segment of a 100 Mb/s AN1 network."

:class:`Testbed` assembles the simulator, link, two hosts, and the
chosen protocol organization on each, and exposes the app-facing
services plus measurement helpers.
"""

from __future__ import annotations

from typing import Generator, Optional

from .costs import CostModel, DECSTATION_5000_200
from .host import Host
from .net.faults import FaultInjector
from .net.headers import str_to_ip, str_to_mac
from .net.link import An1Link, EthernetLink
from .org.base import TcpService
from .org.monolithic import (
    DEDICATED_SERVERS,
    MACH_UX_MAPPED,
    MACH_UX_UNMAPPED,
    MonolithicTcpStack,
    ULTRIX,
)
from .org.userlib import LibraryTcpService
from .protocols.tcp import TcpConfig
from .registry.server import RegistryServer
from .sim import Simulator

IP_A = str_to_ip("10.0.0.1")
IP_B = str_to_ip("10.0.0.2")
MAC_A = str_to_mac("02:00:00:00:00:01")
MAC_B = str_to_mac("02:00:00:00:00:02")
STATION_A = 1
STATION_B = 2

MONOLITHIC_PROFILES = {
    "ultrix": ULTRIX,
    "mach-ux": MACH_UX_MAPPED,
    "mach-ux-unmapped": MACH_UX_UNMAPPED,
    "dedicated": DEDICATED_SERVERS,
}

ORGANIZATIONS = tuple(MONOLITHIC_PROFILES) + ("userlib",)
NETWORKS = ("ethernet", "an1")


class Testbed:
    """Two hosts, one network, one protocol organization."""

    __test__ = False  # Not a pytest test class despite the name.

    def __init__(
        self,
        network: str = "ethernet",
        organization: str = "userlib",
        costs: CostModel = DECSTATION_5000_200,
        config: Optional[TcpConfig] = None,
        faults: Optional[FaultInjector] = None,
        demux_style: str = "synthesized",
        an1_driver_mtu: int = 1500,
        batching: bool = True,
        zero_copy: bool = True,
    ) -> None:
        self.batching = batching
        self.zero_copy = zero_copy
        if network not in NETWORKS:
            raise ValueError(f"unknown network {network!r}")
        if organization not in ORGANIZATIONS:
            raise ValueError(f"unknown organization {organization!r}")
        self.network = network
        self.organization = organization
        self.config = config or TcpConfig()
        self.sim = Simulator()
        if network == "an1":
            self.link = An1Link(self.sim, faults=faults)
            addr_a, addr_b = STATION_A, STATION_B
        else:
            self.link = EthernetLink(self.sim, faults=faults)
            addr_a, addr_b = MAC_A, MAC_B
        self.host_a = Host(
            self.sim, self.link, "alice", IP_A, addr_a,
            costs=costs, demux_style=demux_style,
            an1_driver_mtu=an1_driver_mtu, batching=batching,
        )
        self.host_b = Host(
            self.sim, self.link, "bob", IP_B, addr_b,
            costs=costs, demux_style=demux_style,
            an1_driver_mtu=an1_driver_mtu, batching=batching,
        )
        if network == "an1":
            self.host_a.an1_neighbors[IP_B] = STATION_B
            self.host_b.an1_neighbors[IP_A] = STATION_A

        self.registry_a = self.registry_b = None
        if organization == "userlib":
            self.registry_a = RegistryServer(self.host_a, config=self.config)
            self.registry_b = RegistryServer(self.host_b, config=self.config)
            self.app_a = self.host_a.create_task("app-a")
            self.app_b = self.host_b.create_task("app-b")
            self.service_a: TcpService = LibraryTcpService(
                self.host_a, self.app_a, self.registry_a, zero_copy=zero_copy
            )
            self.service_b: TcpService = LibraryTcpService(
                self.host_b, self.app_b, self.registry_b, zero_copy=zero_copy
            )
        else:
            profile = MONOLITHIC_PROFILES[organization]
            self.service_a = MonolithicTcpStack(
                self.host_a, profile, config=self.config
            )
            self.service_b = MonolithicTcpStack(
                self.host_b, profile, config=self.config
            )

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------

    @property
    def hosts(self) -> list[Host]:
        """All hosts, for tools (netstat) that walk any testbed shape."""
        return [self.host_a, self.host_b]

    @property
    def faulted_link(self):
        """The link whose fault injector the chaos campaign drives."""
        return self.link

    @property
    def registries(self) -> list:
        return [r for r in (self.registry_a, self.registry_b) if r is not None]

    @property
    def services(self) -> list:
        """Both TCP services, for tools (netstat) walking any testbed."""
        return [self.service_a, self.service_b]

    @property
    def links(self) -> list:
        return [self.link]

    @property
    def switches(self) -> list:
        return []

    def spawn(self, generator: Generator, name: str = "proc"):
        return self.sim.process(generator, name=name)

    def run(self, until=None):
        return self.sim.run(until=until)

    def library_service(self, host_name: str, app_name: str) -> LibraryTcpService:
        """Create another application + library on a host (userlib only)."""
        if self.organization != "userlib":
            raise ValueError("additional apps need the userlib organization")
        if host_name == "alice":
            host, registry = self.host_a, self.registry_a
        elif host_name == "bob":
            host, registry = self.host_b, self.registry_b
        else:
            raise ValueError(f"unknown host {host_name!r}")
        app = host.create_task(app_name)
        return LibraryTcpService(host, app, registry)


class FabricTestbed:
    """Many hosts on a switched fabric, one protocol organization.

    Builds a :mod:`~repro.net.fabric` topology (``star``, ``chain``, or
    ``dumbbell``) and attaches the chosen TCP organization to every
    host.  Exposes the same duck-typed surface :mod:`~repro.netstat`
    walks on :class:`Testbed` (``hosts`` / ``registries`` / ``links`` /
    ``switches``), plus per-host service lookup and — on dumbbells —
    index-paired ``client_services`` / ``server_services``.
    """

    __test__ = False  # Not a pytest test class despite the name.

    def __init__(
        self,
        kind: str = "dumbbell",
        organization: str = "userlib",
        costs: CostModel = DECSTATION_5000_200,
        config: Optional[TcpConfig] = None,
        faults: Optional[FaultInjector] = None,
        demux_style: str = "synthesized",
        zero_copy: bool = True,
        config_for=None,
        **builder_kwargs,
    ) -> None:
        from .net.fabric import chain, dumbbell, star

        builders = {"star": star, "chain": chain, "dumbbell": dumbbell}
        if kind not in builders:
            raise ValueError(f"unknown fabric kind {kind!r}")
        if organization not in ORGANIZATIONS:
            raise ValueError(f"unknown organization {organization!r}")
        self.kind = kind
        self.organization = organization
        self.network = "fabric"
        self.config = config or TcpConfig()
        #: Optional per-host override: ``config_for(host_name)`` returns
        #: the :class:`TcpConfig` for that host (None falls back to the
        #: shared config) — how mixed congestion-control fleets share one
        #: bottleneck in the inter-algorithm fairness benchmarks.
        self.config_for = config_for
        self.sim = Simulator()
        self.topology = builders[kind](
            self.sim, costs=costs, demux_style=demux_style, **builder_kwargs
        )
        # Chaos faults go on the trunk (dumbbell) or the first link, so
        # every flow crosses the faulted segment.
        self._faulted_link = self.topology.meta.get("trunk")
        if self._faulted_link is None:
            self._faulted_link = self.topology.links[0]
        if faults is not None:
            self._faulted_link.faults = faults
        self._registry_by_host: dict[str, RegistryServer] = {}
        self._service_by_host: dict[str, TcpService] = {}
        for host in self.topology.hosts:
            host_config = self.config
            if config_for is not None:
                host_config = config_for(host.name) or self.config
            if organization == "userlib":
                registry = RegistryServer(host, config=host_config)
                self._registry_by_host[host.name] = registry
                app = host.create_task(f"app-{host.name}")
                self._service_by_host[host.name] = LibraryTcpService(
                    host, app, registry, zero_copy=zero_copy
                )
            else:
                profile = MONOLITHIC_PROFILES[organization]
                self._service_by_host[host.name] = MonolithicTcpStack(
                    host, profile, config=host_config
                )

    # Duck-typed surface shared with Testbed ---------------------------

    @property
    def hosts(self) -> list[Host]:
        return list(self.topology.hosts)

    @property
    def registries(self) -> list:
        return list(self._registry_by_host.values())

    @property
    def services(self) -> list:
        return list(self._service_by_host.values())

    @property
    def links(self) -> list:
        return list(self.topology.links)

    @property
    def switches(self) -> list:
        return list(self.topology.switches)

    @property
    def routers(self) -> list:
        return list(self.topology.routers)

    @property
    def bottleneck(self):
        return self.topology.bottleneck

    @property
    def faulted_link(self):
        """The link whose fault injector the chaos campaign drives."""
        return self._faulted_link

    def service(self, host: Host) -> TcpService:
        """The TCP service attached to ``host``."""
        return self._service_by_host[host.name]

    @property
    def client_services(self) -> list[TcpService]:
        return [self.service(h) for h in self.topology.clients]

    @property
    def server_services(self) -> list[TcpService]:
        return [self.service(h) for h in self.topology.servers]

    def spawn(self, generator: Generator, name: str = "proc"):
        return self.sim.process(generator, name=name)

    def run(self, until=None):
        return self.sim.run(until=until)
