"""Time-series flight recorder.

Samples any :class:`~repro.counters.Counters` object (or any zero-arg
callable returning a dict) on a sim-timer into fixed-size ring series.
Benchmarks and the netstat CLI can then plot *trajectories* — queue
depth over time, retransmits per interval, engine batch sizes — instead
of a single end-of-run scalar.

Each watch keeps at most ``depth`` samples in a ring, so recording a
week of simulated time costs the same memory as recording a second.
Export is JSON (one object per watch with parallel ``times``/``series``
arrays) or CSV (one wide table, union of keys as columns).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Callable


class _Watch:
    __slots__ = ("name", "source", "samples")

    def __init__(self, name: str, source: Callable[[], dict], depth: int) -> None:
        self.name = name
        self.source = source
        self.samples: deque[tuple[float, dict]] = deque(maxlen=depth)


class FlightRecorder:
    """Periodic sampler of counter sets into bounded ring series."""

    def __init__(self, sim, interval: float = 0.01, depth: int = 512) -> None:
        self.sim = sim
        self.interval = interval
        self.depth = depth
        self._watches: dict[str, _Watch] = {}
        self._running = False
        self._process = None
        self.samples_taken = 0

    def watch(self, name: str, source) -> None:
        """Register a sample source under ``name``.

        ``source`` may be a ``Counters``/dict (snapshotted each tick) or
        a zero-arg callable returning a dict (called each tick — use
        this for live computations like ``sim.engine_stats``).
        """
        if callable(source):
            fn = source
        elif hasattr(source, "snapshot"):
            fn = source.snapshot
        else:
            fn = lambda src=source: dict(src)
        self._watches[name] = _Watch(name, fn, self.depth)

    def unwatch(self, name: str) -> None:
        self._watches.pop(name, None)

    # -- sampling -----------------------------------------------------

    def sample_now(self) -> None:
        """Take one sample of every watch at the current sim time."""
        now = self.sim.now
        self.samples_taken += 1
        for watch in self._watches.values():
            watch.samples.append((now, dict(watch.source())))

    def start(self) -> None:
        """Start the periodic sampling process (idempotent)."""
        if self._running:
            return
        self._running = True
        self._process = self.sim.process(self._run(), name="flight-recorder")

    def stop(self) -> None:
        """Stop sampling after the current interval elapses."""
        self._running = False

    def _run(self):
        while self._running:
            self.sample_now()
            yield self.sim.timeout(self.interval)

    # -- export -------------------------------------------------------

    def series(self, name: str) -> list[tuple[float, dict]]:
        watch = self._watches.get(name)
        return list(watch.samples) if watch is not None else []

    def to_dict(self) -> dict:
        """All series as parallel times/series arrays, JSON-friendly."""
        out: dict[str, dict] = {}
        for name, watch in sorted(self._watches.items()):
            times = [t for t, _ in watch.samples]
            keys: dict[str, None] = {}
            for _, snap in watch.samples:
                for key in snap:
                    keys.setdefault(key, None)
            out[name] = {
                "times": times,
                "series": {
                    key: [snap.get(key, 0) for _, snap in watch.samples]
                    for key in keys
                },
            }
        return out

    def export_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)

    def export_csv(self, path: str) -> None:
        """One wide CSV: time, then ``watch.key`` columns (union of keys)."""
        columns: list[tuple[str, str]] = []
        for name, watch in sorted(self._watches.items()):
            keys: dict[str, None] = {}
            for _, snap in watch.samples:
                for key in snap:
                    keys.setdefault(key, None)
            columns.extend((name, key) for key in keys)
        # Merge sample timelines: all watches tick together, so use the
        # first watch's times as the spine and index the rest by tick.
        rows: dict[float, dict[tuple[str, str], object]] = {}
        for name, watch in self._watches.items():
            for t, snap in watch.samples:
                row = rows.setdefault(t, {})
                for key, value in snap.items():
                    row[(name, key)] = value
        with open(path, "w", encoding="utf-8") as fh:
            header = ["time"] + [f"{name}.{key}" for name, key in columns]
            fh.write(",".join(header) + "\n")
            for t in sorted(rows):
                row = rows[t]
                cells = [repr(t)] + [str(row.get(col, "")) for col in columns]
                fh.write(",".join(cells) + "\n")
