"""Unified observability plane.

Four coordinated pieces, all off by default:

* :mod:`repro.obs.spans` — packet-lifecycle tracing: a trace id minted
  at encode rides the packet through every hop (netio send, NIC ring,
  link, switch queue, demux, delivery) into a bounded event ring.
* :mod:`repro.obs.profile` — sim-time profiler attributing simulated
  microseconds (and wall time for synchronous callbacks) to call sites.
* :mod:`repro.obs.hist` — HDR-style log-bucketed histograms (fixed
  memory, mergeable) for RTT, queue occupancy, flow completion, and
  per-tenant delivery latency.
* :mod:`repro.obs.recorder` — flight recorder sampling counter sets on
  a sim-timer into bounded time series with JSON/CSV export.

Instrumented call sites throughout the stack guard on the module
globals (``spans.RECORDER`` / ``profile.PROFILER`` / ``hist.REGISTRY``
being ``None``), so the disabled cost is one attribute load and one
identity test per site — measured by ``benchmarks/bench_obs.py``.

Typical use::

    from repro import obs
    session = obs.enable()          # spans + profiler + histograms
    ... run workload ...
    print(session.profiler.render())
    print(session.spans.render_timeline(tid))
    obs.disable()
"""

from __future__ import annotations

from dataclasses import dataclass

from . import hist, profile, spans
from .hist import HistogramRegistry, LogHistogram
from .profile import SimProfiler
from .recorder import FlightRecorder
from .spans import SpanEvent, SpanRecorder

__all__ = [
    "LogHistogram",
    "HistogramRegistry",
    "SimProfiler",
    "SpanRecorder",
    "SpanEvent",
    "FlightRecorder",
    "ObservabilitySession",
    "enable",
    "disable",
    "enabled",
]


@dataclass
class ObservabilitySession:
    """Handles to whatever parts of the plane are currently enabled."""

    spans: SpanRecorder | None
    profiler: SimProfiler | None
    histograms: HistogramRegistry | None


def enable(
    *,
    spans_on: bool = True,
    profile_on: bool = True,
    hist_on: bool = True,
    span_capacity: int = 8192,
) -> ObservabilitySession:
    """Turn on the selected pieces of the plane and return their handles."""
    recorder = spans.enable(capacity=span_capacity) if spans_on else spans.RECORDER
    profiler = profile.enable() if profile_on else profile.PROFILER
    registry = hist.enable() if hist_on else hist.REGISTRY
    return ObservabilitySession(spans=recorder, profiler=profiler, histograms=registry)


def disable() -> None:
    """Turn off every piece of the plane."""
    spans.disable()
    profile.disable()
    hist.disable()


def enabled() -> bool:
    return (
        spans.RECORDER is not None
        or profile.PROFILER is not None
        or hist.REGISTRY is not None
    )
