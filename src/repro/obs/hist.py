"""HDR-style log-bucketed histograms with fixed memory.

A :class:`LogHistogram` places each sample into a geometrically spaced
bucket: ``bucket = floor(log(value / min_value) / log(growth))`` where
``growth = 10 ** (1 / buckets_per_decade)``.  With the default 20 buckets
per decade the relative error of any reported quantile is bounded by the
bucket width (about 12%), while memory stays fixed no matter how many
samples are recorded — the property HdrHistogram popularised and the
reason ad-hoc latency lists do not survive 10k-host sweeps.

Histograms with identical configuration merge by adding bucket counts,
so per-host or per-worker histograms can be combined into a fleet-wide
view without keeping raw samples.

The module-level :data:`REGISTRY` is the observability plane's shared
named-histogram registry.  It is ``None`` when histograms are disabled;
instrumented call sites guard on that, which keeps the disabled cost to
one attribute load and one ``is None`` test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class LogHistogram:
    """Fixed-memory log-bucketed histogram.

    ``min_value`` is the smallest distinguishable sample; anything in
    ``(0, min_value)`` lands in the underflow bucket and zeros (and
    negatives) are counted separately.  ``max_value`` bounds the bucketed
    range; larger samples land in the overflow bucket but still update
    ``max``/``sum`` exactly, so means stay correct even when the range is
    mis-sized.
    """

    min_value: float = 1e-9
    max_value: float = 1e3
    buckets_per_decade: int = 20
    counts: list[int] = field(default_factory=list)
    underflow: int = 0
    overflow: int = 0
    zeros: int = 0
    count: int = 0
    sum: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def __post_init__(self) -> None:
        decades = math.log10(self.max_value / self.min_value)
        self._bucket_count = max(1, math.ceil(decades * self.buckets_per_decade))
        self._log_min = math.log(self.min_value)
        self._inv_log_growth = self.buckets_per_decade / math.log(10.0)
        if not self.counts:
            self.counts = [0] * self._bucket_count
        elif len(self.counts) != self._bucket_count:
            raise ValueError("counts length does not match configuration")

    # -- recording ----------------------------------------------------

    def record(self, value: float, count: int = 1) -> None:
        self.count += count
        self.sum += value * count
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self.zeros += count
            return
        idx = int((math.log(value) - self._log_min) * self._inv_log_growth)
        if idx < 0:
            self.underflow += count
        elif idx >= self._bucket_count:
            self.overflow += count
        else:
            self.counts[idx] += count

    # -- reading ------------------------------------------------------

    def _bucket_bounds(self, idx: int) -> tuple[float, float]:
        lo = self.min_value * 10 ** (idx / self.buckets_per_decade)
        hi = self.min_value * 10 ** ((idx + 1) / self.buckets_per_decade)
        return lo, hi

    def percentile(self, p: float) -> float:
        """Return the p-th percentile (p in [0, 100]); 0.0 when empty.

        Walks buckets in value order (zeros, underflow, the log range,
        overflow) and reports the geometric midpoint of the bucket the
        rank falls in, clamped to the observed min/max so single-sample
        and extreme cases stay exact.
        """
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(self.count * p / 100.0))
        seen = self.zeros
        if rank <= seen:
            return max(0.0, self.min if self.min != math.inf else 0.0)
        seen += self.underflow
        if rank <= seen:
            return self._clamp(self.min_value / 2.0)
        for idx, n in enumerate(self.counts):
            if not n:
                continue
            seen += n
            if rank <= seen:
                lo, hi = self._bucket_bounds(idx)
                return self._clamp(math.sqrt(lo * hi))
        return self.max

    def _clamp(self, value: float) -> float:
        if self.min != math.inf and value < self.min:
            return self.min
        if self.max != -math.inf and value > self.max:
            return self.max
        return value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def summary(self) -> dict:
        """Counts plus the standard quantile set, JSON-friendly."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
        }

    # -- merging / serialisation --------------------------------------

    def _same_config(self, other: "LogHistogram") -> bool:
        return (
            self.min_value == other.min_value
            and self.max_value == other.max_value
            and self.buckets_per_decade == other.buckets_per_decade
        )

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other`` into this histogram (configs must match)."""
        if not self._same_config(other):
            raise ValueError("cannot merge histograms with different configurations")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.underflow += other.underflow
        self.overflow += other.overflow
        self.zeros += other.zeros
        self.count += other.count
        self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def to_dict(self) -> dict:
        return {
            "min_value": self.min_value,
            "max_value": self.max_value,
            "buckets_per_decade": self.buckets_per_decade,
            # Sparse encoding: only non-zero buckets.
            "buckets": {str(i): n for i, n in enumerate(self.counts) if n},
            "underflow": self.underflow,
            "overflow": self.overflow,
            "zeros": self.zeros,
            "count": self.count,
            "sum": self.sum,
            "min": None if self.min == math.inf else self.min,
            "max": None if self.max == -math.inf else self.max,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LogHistogram":
        hist = cls(
            min_value=data["min_value"],
            max_value=data["max_value"],
            buckets_per_decade=data["buckets_per_decade"],
        )
        for key, n in data.get("buckets", {}).items():
            hist.counts[int(key)] = n
        hist.underflow = data.get("underflow", 0)
        hist.overflow = data.get("overflow", 0)
        hist.zeros = data.get("zeros", 0)
        hist.count = data.get("count", 0)
        hist.sum = data.get("sum", 0.0)
        hist.min = math.inf if data.get("min") is None else data["min"]
        hist.max = -math.inf if data.get("max") is None else data["max"]
        return hist


class HistogramRegistry:
    """Named histograms created on first record.

    Per-name configuration defaults may be registered up front with
    :meth:`configure`; unknown names fall back to a range suitable for
    simulated seconds (1 ns .. 1000 s).
    """

    def __init__(self) -> None:
        self._hists: dict[str, LogHistogram] = {}
        self._configs: dict[str, dict] = {}

    def configure(self, name: str, **kwargs) -> None:
        self._configs[name] = kwargs

    def record(self, name: str, value: float, count: int = 1) -> None:
        hist = self._hists.get(name)
        if hist is None:
            hist = LogHistogram(**self._configs.get(name, {}))
            self._hists[name] = hist
        hist.record(value, count)

    def get(self, name: str) -> LogHistogram | None:
        return self._hists.get(name)

    def names(self) -> list[str]:
        return sorted(self._hists)

    def items(self) -> list[tuple[str, LogHistogram]]:
        return sorted(self._hists.items())

    def summaries(self) -> dict[str, dict]:
        return {name: hist.summary() for name, hist in self.items()}

    def to_dict(self) -> dict[str, dict]:
        return {name: hist.to_dict() for name, hist in self.items()}


#: Global registry consulted by instrumented call sites; ``None`` when
#: histograms are disabled (the default).
REGISTRY: HistogramRegistry | None = None


def enable(registry: HistogramRegistry | None = None) -> HistogramRegistry:
    """Install (or replace) the global histogram registry."""
    global REGISTRY
    REGISTRY = registry if registry is not None else _default_registry()
    return REGISTRY


def disable() -> None:
    global REGISTRY
    REGISTRY = None


def _default_registry() -> HistogramRegistry:
    reg = HistogramRegistry()
    # Latencies in simulated seconds: 100 ns .. 100 s.
    for name in ("tcp.rtt", "flow.completion", "delivery.latency"):
        reg.configure(name, min_value=1e-7, max_value=1e2)
    # Queue occupancy is a 0..1 fraction of capacity.
    reg.configure("queue.occupancy", min_value=1e-4, max_value=2.0, buckets_per_decade=30)
    return reg
