"""Sim-time profiler.

Attribution of *simulated* microseconds to call sites.  The cost model
already prices every kernel operation (``kernel.cpu.consume`` charges
from ``kernel.cost_table``); the profiler rides next to those charges so
each one is tagged with a hierarchical dotted site name — ``tcp.input``,
``demux.classify``, ``router.forward`` — instead of vanishing into a
single busy-time scalar.  Sites that wrap a synchronous protocol
callback (the TCP state machine, the flow-table classifier) also record
*wall* time, so "where does the simulation spend real CPU" and "where
does the simulated machine spend cycles" come out of the same report.

Self time is what a site charged directly; cumulative time aggregates
by dotted prefix (``tcp`` = ``tcp.input`` + ``tcp.output`` + …), which
sidesteps maintaining a call stack across interleaved simulation
generators — there is no meaningful stack when a hundred coroutines
take turns.

Disabled cost is one attribute load and an ``is None`` test per site.
"""

from __future__ import annotations

from dataclasses import dataclass


class _Site:
    __slots__ = ("calls", "sim_self", "wall_self")

    def __init__(self) -> None:
        self.calls = 0
        self.sim_self = 0.0
        self.wall_self = 0.0


@dataclass(frozen=True)
class SiteReport:
    site: str
    calls: int
    sim_seconds: float
    sim_share: float
    cumulative_seconds: float
    wall_seconds: float

    def as_dict(self) -> dict:
        return {
            "site": self.site,
            "calls": self.calls,
            "sim_us": self.sim_seconds * 1e6,
            "sim_share": self.sim_share,
            "cumulative_us": self.cumulative_seconds * 1e6,
            "wall_ms": self.wall_seconds * 1e3,
        }


class SimProfiler:
    """Accumulates per-site simulated and wall time."""

    def __init__(self) -> None:
        self._sites: dict[str, _Site] = {}

    def charge(self, site: str, sim_seconds: float, wall_seconds: float = 0.0) -> None:
        entry = self._sites.get(site)
        if entry is None:
            entry = _Site()
            self._sites[site] = entry
        entry.calls += 1
        entry.sim_self += sim_seconds
        entry.wall_self += wall_seconds

    def total_sim_seconds(self) -> float:
        return sum(site.sim_self for site in self._sites.values())

    def report(self, top: int | None = None) -> list[SiteReport]:
        """Per-site rows sorted by self sim-time, descending.

        ``cumulative_seconds`` for a site is the sum over every site
        sharing its first dotted component (``tcp.input`` reports the
        ``tcp.*`` total), so related callbacks roll up without a stack.
        """
        total = self.total_sim_seconds()
        groups: dict[str, float] = {}
        for name, site in self._sites.items():
            prefix = name.split(".", 1)[0]
            groups[prefix] = groups.get(prefix, 0.0) + site.sim_self
        rows = [
            SiteReport(
                site=name,
                calls=site.calls,
                sim_seconds=site.sim_self,
                sim_share=(site.sim_self / total) if total else 0.0,
                cumulative_seconds=groups[name.split(".", 1)[0]],
                wall_seconds=site.wall_self,
            )
            for name, site in self._sites.items()
        ]
        rows.sort(key=lambda row: (-row.sim_seconds, row.site))
        return rows[:top] if top is not None else rows

    def render(self, top: int | None = None) -> str:
        rows = self.report(top)
        if not rows:
            return "profiler: no charges recorded"
        lines = [
            f"{'site':<22} {'calls':>8} {'self(ms)':>10} {'share':>7} "
            f"{'cum(ms)':>10} {'wall(ms)':>9}"
        ]
        for row in rows:
            lines.append(
                f"{row.site:<22} {row.calls:>8} {row.sim_seconds * 1e3:>10.3f} "
                f"{row.sim_share * 100:>6.1f}% {row.cumulative_seconds * 1e3:>10.3f} "
                f"{row.wall_seconds * 1e3:>9.2f}"
            )
        return "\n".join(lines)


#: Global profiler consulted by instrumented call sites; ``None`` when
#: profiling is disabled (the default).
PROFILER: SimProfiler | None = None


def enable() -> SimProfiler:
    global PROFILER
    PROFILER = SimProfiler()
    return PROFILER


def disable() -> None:
    global PROFILER
    PROFILER = None
