"""Packet-lifecycle spans.

A *trace id* is minted when a packet is encoded (or first enters the
netio layer) and travels with it across every hop: it rides on the
:class:`~repro.net.buf.PacketBuffer` ``trace_id`` slot while the packet
is a fragment chain, and on an identity map keyed by ``id(frame)`` once
the chain is fused into flat wire ``bytes``.  ``prepend()`` at the IP
and link layers builds new chains *around* the old one, and
``PacketBuffer`` inherits the trace id of its first traced constituent,
so the id survives encapsulation without any per-layer plumbing.

Each instrumented stage appends a :class:`SpanEvent` ``(trace_id, stage,
sim_time, node, detail, cost)`` into one bounded ring shared by all
hosts.  Reconstructing a packet's end-to-end timeline — including queue
wait, fault drops, duplications, and which transmissions were
retransmits — is then a filter over the ring.

Everything is off unless :func:`enable` has installed the module-global
:data:`RECORDER`; instrumented sites pay one attribute load and an
``is None`` test when tracing is disabled.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SpanEvent:
    trace_id: int
    stage: str
    time: float
    node: str
    detail: str = ""
    cost: float = 0.0

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "stage": self.stage,
            "time": self.time,
            "node": self.node,
            "detail": self.detail,
            "cost": self.cost,
        }


class SpanRecorder:
    """Bounded ring of span events plus the wire-bytes identity map.

    ``capacity`` bounds the event ring; the identity map and birth-time
    table are bounded separately (FIFO eviction) so a long run cannot
    grow memory no matter how many packets it traces.
    """

    def __init__(self, capacity: int = 8192, wire_capacity: int | None = None) -> None:
        self.capacity = capacity
        self.events: deque[SpanEvent] = deque(maxlen=capacity)
        self._next_id = 1
        # id(bytes) -> trace_id for fused wire frames.  Entries are
        # evicted FIFO; a stale entry whose bytes object was garbage
        # collected and its id reused would mis-attribute a hop, so the
        # map is kept small and re-bound on every fusion.
        self._wire_cap = wire_capacity if wire_capacity is not None else max(1024, capacity // 4)
        self._wire: dict[int, int] = {}
        self._wire_order: deque[int] = deque()
        # trace_id -> (birth sim_time, birth detail) for latency math
        # and seq lookup; same FIFO bound as the wire map.
        self._births: dict[int, tuple[float, str]] = {}
        self._birth_order: deque[int] = deque()
        self.minted = 0
        self.recorded = 0

    # -- minting and binding ------------------------------------------

    def mint(self, time: float, detail: str = "") -> int:
        tid = self._next_id
        self._next_id += 1
        self.minted += 1
        self._births[tid] = (time, detail)
        self._birth_order.append(tid)
        if len(self._birth_order) > self._wire_cap:
            old = self._birth_order.popleft()
            self._births.pop(old, None)
        return tid

    def bind_wire(self, data, tid: int) -> None:
        """Associate fused wire bytes with a trace id by identity."""
        key = id(data)
        if key not in self._wire:
            self._wire_order.append(key)
            if len(self._wire_order) > self._wire_cap:
                old = self._wire_order.popleft()
                self._wire.pop(old, None)
        self._wire[key] = tid

    def trace_of(self, obj) -> int | None:
        """Recover the trace id carried by a packet at any layer.

        Accepts a ``PacketBuffer`` (reads the ``trace_id`` slot), a
        ``memoryview`` (looks up its exporting base object — the fused
        frame — in the identity map), or flat ``bytes``.
        """
        tid = getattr(obj, "trace_id", None)
        if tid is not None:
            return tid
        base = getattr(obj, "obj", None)  # memoryview -> exporter
        if base is not None:
            obj = base
        return self._wire.get(id(obj))

    def birth(self, tid: int) -> float | None:
        entry = self._births.get(tid)
        return entry[0] if entry is not None else None

    # -- recording ----------------------------------------------------

    def record(
        self,
        tid: int,
        stage: str,
        time: float,
        node: str,
        detail: str = "",
        cost: float = 0.0,
    ) -> None:
        self.recorded += 1
        self.events.append(SpanEvent(tid, stage, time, node, detail, cost))

    def touch(
        self,
        obj,
        stage: str,
        time: float,
        node: str,
        detail: str = "",
        cost: float = 0.0,
    ) -> int | None:
        """Record a stage for a packet if (and only if) it carries a trace."""
        tid = self.trace_of(obj)
        if tid is not None:
            self.record(tid, stage, time, node, detail, cost)
        return tid

    # -- reconstruction -----------------------------------------------

    def timeline(self, tid: int) -> list[SpanEvent]:
        """All events for one trace, in recorded (time) order."""
        return [ev for ev in self.events if ev.trace_id == tid]

    def traces(self) -> list[int]:
        """Distinct trace ids present in the ring, in first-seen order."""
        seen: dict[int, None] = {}
        for ev in self.events:
            seen.setdefault(ev.trace_id, None)
        return list(seen)

    def traces_matching(self, substring: str) -> list[int]:
        """Trace ids whose events' detail contains ``substring``."""
        seen: dict[int, None] = {}
        for ev in self.events:
            if substring in ev.detail:
                seen.setdefault(ev.trace_id, None)
        return list(seen)

    def render_timeline(self, tid: int) -> str:
        """Human-readable per-hop timeline for one trace."""
        events = self.timeline(tid)
        if not events:
            return f"trace {tid}: no events (evicted or unknown)"
        t0 = events[0].time
        lines = [f"trace {tid} (t0={t0 * 1e3:.3f} ms)"]
        for ev in events:
            dt = (ev.time - t0) * 1e6
            cost = f"  cost={ev.cost * 1e6:.1f}us" if ev.cost else ""
            detail = f"  {ev.detail}" if ev.detail else ""
            lines.append(f"  +{dt:10.1f}us  {ev.stage:<14} @{ev.node}{cost}{detail}")
        return "\n".join(lines)

    def stats(self) -> dict:
        return {
            "minted": self.minted,
            "recorded": self.recorded,
            "retained": len(self.events),
            "capacity": self.capacity,
            "wire_bindings": len(self._wire),
        }


#: Global recorder consulted by instrumented call sites; ``None`` when
#: span tracing is disabled (the default).
RECORDER: SpanRecorder | None = None


def enable(capacity: int = 8192) -> SpanRecorder:
    """Install the global span recorder and hook wire-bytes fusion."""
    global RECORDER
    RECORDER = SpanRecorder(capacity=capacity)
    from ..net import buf

    buf.SPAN_BINDER = RECORDER.bind_wire
    return RECORDER


def disable() -> None:
    global RECORDER
    RECORDER = None
    from ..net import buf

    buf.SPAN_BINDER = None
