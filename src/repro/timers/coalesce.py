"""Engine-coalesced timer service: many timers, one engine event.

The paper (§2.1) observes that practically every message involves timer
operations; a naive port schedules one engine event per timer, so a
host with hundreds of live retransmit/delayed-ack timers pollutes the
global schedule with hundreds of heap entries — most of which are
cancelled before firing.  :class:`CoalescedTimers` keeps the timers in
one of the O(1) wheel facilities and arms exactly **one** engine wakeup
for the earliest pending deadline.  When the wakeup fires, a single
``advance_to(now)`` call fires *every* due timer in that one engine
event.  Re-arming at an earlier deadline lazily cancels the stale wakeup
(``Event.cancel`` leaves a tombstone the engine skips), so wakeup churn
never costs a heap deletion.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..sim import Simulator, Timeout
from .base import TimerFacility, TimerHandle


class CoalescedTimers:
    """Drive a :class:`TimerFacility` from the engine, batching wakeups."""

    def __init__(self, sim: Simulator, facility: TimerFacility) -> None:
        self.sim = sim
        self.facility = facility
        self._wakeup: Optional[Timeout] = None
        self._wakeup_deadline = float("inf")
        self._advancing = False
        #: Engine wakeup events actually scheduled.
        self.wakeups = 0
        #: Stale wakeups retired via lazy cancellation.
        self.wakeups_cancelled = 0
        #: Timers fired (across all wakeups).
        self.fired = 0

    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Armed timers in the underlying facility."""
        return self.facility.pending

    def schedule(self, delay: float, callback: Callable[[], None], payload: Any = None) -> TimerHandle:
        """Arm a timer ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule_at(self.sim.now + delay, callback, payload)

    def schedule_at(self, deadline: float, callback: Callable[[], None], payload: Any = None) -> TimerHandle:
        """Arm a timer for an absolute deadline (>= sim.now)."""
        facility = self.facility
        if facility.now < self.sim.now and not self._advancing:
            # Keep the facility clock in lockstep; no timer can be due
            # here or the wakeup for it would already have fired.  Not
            # re-entered while a wakeup is mid-advance: timers armed by
            # firing callbacks just join the facility, and the running
            # advance_to / the re-arm below pick them up.
            self.fired += facility.advance_to(self.sim.now)
        handle = facility.schedule_at(deadline, callback, payload)
        # Compare against the armed wakeup directly instead of asking the
        # facility for next_deadline(): the wheels answer that in O(n).
        if deadline < self._wakeup_deadline:
            self._arm(deadline)
        return handle

    # ------------------------------------------------------------------

    def _arm(self, deadline: float) -> None:
        if self._wakeup is not None:
            if self._wakeup.cancel():
                self.wakeups_cancelled += 1
        wakeup = Timeout(self.sim, max(0.0, deadline - self.sim.now))
        wakeup.callbacks.append(self._fire)
        self._wakeup = wakeup
        self._wakeup_deadline = deadline
        self.wakeups += 1

    def _fire(self, _event) -> None:
        self._wakeup = None
        self._wakeup_deadline = float("inf")
        # One engine event fires every timer due at (or before) now.
        self._advancing = True
        try:
            self.fired += self.facility.advance_to(self.sim.now)
        finally:
            self._advancing = False
        nxt = self.facility.next_deadline()
        if nxt is not None:
            self._arm(nxt)
