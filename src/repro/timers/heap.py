"""Binary-heap timer facility — the O(log n) baseline."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from .base import TimerFacility, TimerHandle


class HeapTimers(TimerFacility):
    """Classic priority-queue timers.

    Cancellation is lazy: cancelled entries stay in the heap until their
    deadline passes, as in most real heap-based timer implementations.
    """

    def __init__(self) -> None:
        super().__init__()
        self._heap: list[tuple[float, int, TimerHandle]] = []
        self._armed = 0

    def schedule_at(self, deadline: float, callback: Callable[[], None], payload: Any = None) -> TimerHandle:
        self._check_deadline(deadline)
        handle = TimerHandle(deadline, callback, payload)
        heapq.heappush(self._heap, (deadline, handle.seq, handle))
        self.ops += len(self._heap).bit_length()  # ~log2 sift cost
        self._armed += 1
        return handle

    def advance_to(self, time: float) -> int:
        self._check_advance(time)
        fired = 0
        while self._heap and self._heap[0][0] <= time:
            deadline, _, handle = heapq.heappop(self._heap)
            self.ops += max(1, len(self._heap).bit_length())
            self._armed -= 1
            if handle.cancelled:
                continue
            self.now = deadline
            handle.fired = True
            fired += 1
            handle.callback()
        self.now = time
        return fired

    @property
    def pending(self) -> int:
        # Exclude lazily-cancelled entries.
        return sum(1 for _, _, h in self._heap if h.active)

    def next_deadline(self) -> Optional[float]:
        for deadline, _, handle in sorted(self._heap):
            if handle.active:
                return deadline
        return None
