"""Timer facilities: heap baseline, hashed wheel, hierarchical wheels."""

from .base import TimerFacility, TimerHandle
from .coalesce import CoalescedTimers
from .heap import HeapTimers
from .hierarchical import HierarchicalWheel
from .wheel import HashedWheel

__all__ = [
    "TimerFacility",
    "TimerHandle",
    "CoalescedTimers",
    "HeapTimers",
    "HashedWheel",
    "HierarchicalWheel",
]
