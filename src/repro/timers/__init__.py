"""Timer facilities: heap baseline, hashed wheel, hierarchical wheels."""

from .base import TimerFacility, TimerHandle
from .heap import HeapTimers
from .hierarchical import HierarchicalWheel
from .wheel import HashedWheel

__all__ = [
    "TimerFacility",
    "TimerHandle",
    "HeapTimers",
    "HashedWheel",
    "HierarchicalWheel",
]
