"""Common interface for timer facilities.

The paper (§2.1) notes that "practically every message arrival and
departure involves timer operations" and points at hashed and
hierarchical timing wheels [Varghese & Lauck] for fast implementations.
We provide three interchangeable facilities — a binary-heap baseline, a
hashed wheel, and hierarchical wheels — behind one interface, so the
protocol plumbing can use any of them and the ablation bench can compare
them.

Time is float seconds.  A facility is driven by calling
:meth:`TimerFacility.advance_to` with monotonically non-decreasing times;
due timers fire (their callbacks run) in deadline order within the
facility's guarantees.
"""

from __future__ import annotations

import abc
import itertools
from typing import Any, Callable, Optional


class TimerHandle:
    """A scheduled timer; cancellable until it fires."""

    __slots__ = ("deadline", "callback", "cancelled", "fired", "seq", "payload")

    _seq = itertools.count()

    def __init__(self, deadline: float, callback: Callable[[], None], payload: Any = None) -> None:
        self.deadline = deadline
        self.callback = callback
        self.payload = payload
        self.cancelled = False
        self.fired = False
        self.seq = next(TimerHandle._seq)

    def cancel(self) -> None:
        """Cancel the timer; a no-op if it already fired."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        return not (self.cancelled or self.fired)

    def __repr__(self) -> str:
        state = "fired" if self.fired else "cancelled" if self.cancelled else "armed"
        return f"<Timer @{self.deadline:.6f} {state}>"


class TimerFacility(abc.ABC):
    """Deadline-ordered callback scheduling."""

    def __init__(self) -> None:
        self.now = 0.0
        #: Basic-operation counter (slot visits + comparisons + moves),
        #: used by the ablation bench to compare algorithmic work.
        self.ops = 0

    @abc.abstractmethod
    def schedule_at(self, deadline: float, callback: Callable[[], None], payload: Any = None) -> TimerHandle:
        """Arm a timer to fire at ``deadline`` (>= now)."""

    def schedule(self, delay: float, callback: Callable[[], None], payload: Any = None) -> TimerHandle:
        """Arm a timer ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule_at(self.now + delay, callback, payload)

    @abc.abstractmethod
    def advance_to(self, time: float) -> int:
        """Move the clock to ``time``, firing due timers.  Returns count fired."""

    @property
    @abc.abstractmethod
    def pending(self) -> int:
        """Number of armed (not fired, not cancelled) timers."""

    @abc.abstractmethod
    def next_deadline(self) -> Optional[float]:
        """Earliest armed deadline, or None if none are armed."""

    def _check_advance(self, time: float) -> None:
        if time < self.now:
            raise ValueError(f"cannot advance backwards: {time} < {self.now}")

    def _check_deadline(self, deadline: float) -> None:
        if deadline < self.now:
            raise ValueError(f"deadline {deadline} is in the past (now={self.now})")
