"""Hierarchical timing wheels (Varghese & Lauck, scheme 7).

Several wheels of increasing granularity: a timer far in the future lives
in a coarse wheel and *cascades* down into finer wheels as its deadline
approaches.  Start/stop stay O(1); per-tick work is bounded by the
entries cascading or firing now, which keeps slot scans short even with
deadlines spread over a huge range — the case a single hashed wheel
handles poorly.

Slot arithmetic is integer-tick-based with an epsilon guard, matching
:mod:`repro.timers.wheel`.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional

from .base import TimerFacility, TimerHandle

_EPS = 1e-7


class HierarchicalWheel(TimerFacility):
    """A hierarchy of wheels, each ``slots`` times coarser than the last.

    ``tick`` is the finest granularity; ``levels`` wheels of ``slots``
    slots cover a horizon of ``tick * slots**levels`` seconds.
    """

    def __init__(self, tick: float = 0.01, slots: int = 64, levels: int = 4) -> None:
        if tick <= 0:
            raise ValueError("tick must be positive")
        if slots < 2:
            raise ValueError("need at least 2 slots")
        if levels < 1:
            raise ValueError("need at least 1 level")
        super().__init__()
        self.tick = tick
        self.slots = slots
        self.levels = levels
        self._wheels: list[list[list[TimerHandle]]] = [
            [[] for _ in range(slots)] for _ in range(levels)
        ]
        self._tick_count = 0  # Finest-granularity tick being scanned.
        self._armed = 0

    @property
    def horizon(self) -> float:
        """Longest schedulable delay."""
        return self.tick * (self.slots ** self.levels)

    def _ticks(self, time: float) -> int:
        return int(math.floor(time / self.tick + _EPS))

    def _place(self, handle: TimerHandle) -> None:
        """File ``handle`` into the correct wheel for its remaining time."""
        deadline_ticks = self._ticks(handle.deadline)
        remaining = max(0, deadline_ticks - self._tick_count)
        span = 1
        for level in range(self.levels):
            span *= self.slots
            if remaining < span or level == self.levels - 1:
                # Slot index within this level's wheel.
                level_ticks = deadline_ticks // (span // self.slots)
                self._wheels[level][level_ticks % self.slots].append(handle)
                self.ops += 1  # O(1) filing.
                return

    def schedule_at(self, deadline: float, callback: Callable[[], None], payload: Any = None) -> TimerHandle:
        self._check_deadline(deadline)
        if deadline - self.now > self.horizon:
            raise ValueError(
                f"deadline beyond wheel horizon ({self.horizon:.3f}s)"
            )
        handle = TimerHandle(deadline, callback, payload)
        self._place(handle)
        self._armed += 1
        return handle

    def _scan_finest(self, time: float) -> int:
        cursor = self._tick_count % self.slots
        slot = self._wheels[0][cursor]
        self.ops += 1  # Slot visit.
        if not slot:
            return 0
        # Detach before firing: callback re-arms into this slot must
        # survive the scan (see HashedWheel._scan_slot).
        self._wheels[0][cursor] = []
        fired = 0
        keep: list[TimerHandle] = []
        for handle in sorted(slot, key=lambda h: (h.deadline, h.seq)):
            self.ops += 1
            if handle.cancelled:
                self._armed -= 1
                continue
            if self._ticks(handle.deadline) <= self._tick_count and handle.deadline <= time:
                self.now = max(self.now, handle.deadline)
                handle.fired = True
                self._armed -= 1
                fired += 1
                handle.callback()
            else:
                keep.append(handle)
        self._wheels[0][cursor] = keep + self._wheels[0][cursor]
        return fired

    def _cascade(self) -> None:
        """On coarse-tick boundaries, re-file entries downward."""
        ticks = self._tick_count
        span = 1
        for level in range(1, self.levels):
            span *= self.slots
            if ticks % span:
                break
            cursor = (ticks // span) % self.slots
            entries = self._wheels[level][cursor]
            if not entries:
                self.ops += 1
                continue
            self._wheels[level][cursor] = []
            self.ops += 1  # Slot visit.
            for handle in entries:
                if handle.cancelled:
                    self._armed -= 1
                    continue
                self._place(handle)

    def advance_to(self, time: float) -> int:
        self._check_advance(time)
        fired = 0
        target_tick = self._ticks(time)
        while True:
            fired += self._scan_finest(time)
            if self._tick_count < target_tick:
                self._tick_count += 1
                self._cascade()
            else:
                break
        self.now = time
        return fired

    @property
    def pending(self) -> int:
        return sum(
            1
            for wheel in self._wheels
            for slot in wheel
            for handle in slot
            if handle.active
        )

    def next_deadline(self) -> Optional[float]:
        deadlines = [
            handle.deadline
            for wheel in self._wheels
            for slot in wheel
            for handle in slot
            if handle.active
        ]
        return min(deadlines) if deadlines else None
