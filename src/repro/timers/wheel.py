"""Hashed timing wheel (Varghese & Lauck, scheme 6).

A circular array of ``slots`` buckets, each ``tick`` seconds wide.  A
timer hashes to slot ``ticks(deadline) % slots``; each tick visits one
slot and fires entries whose deadline has arrived, leaving far-future
entries (more than one revolution away) in place.  Start/stop are O(1);
per-tick work is proportional to the entries hashed to the current slot.

All slot arithmetic happens in integer ticks with an epsilon guard so
float deadlines that land exactly on tick boundaries (0.3 / 0.01 =
29.999...) classify deterministically.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional

from .base import TimerFacility, TimerHandle

#: Relative guard added before flooring a deadline/tick quotient.
_EPS = 1e-7


class HashedWheel(TimerFacility):
    """Single hashed wheel with per-slot deadline checks."""

    def __init__(self, tick: float = 0.01, slots: int = 256) -> None:
        if tick <= 0:
            raise ValueError("tick must be positive")
        if slots < 2:
            raise ValueError("need at least 2 slots")
        super().__init__()
        self.tick = tick
        self.slots = slots
        self._wheel: list[list[TimerHandle]] = [[] for _ in range(slots)]
        self._tick_count = 0  # The tick currently being scanned.
        self._armed = 0

    def _ticks(self, time: float) -> int:
        """Convert a time to an integer tick index, guarding boundaries."""
        return int(math.floor(time / self.tick + _EPS))

    def schedule_at(self, deadline: float, callback: Callable[[], None], payload: Any = None) -> TimerHandle:
        self._check_deadline(deadline)
        handle = TimerHandle(deadline, callback, payload)
        self._wheel[self._ticks(deadline) % self.slots].append(handle)
        self.ops += 1  # O(1) insert.
        self._armed += 1
        return handle

    def _scan_slot(self, time: float) -> int:
        """Fire due entries in the current slot; keep the rest."""
        cursor = self._tick_count % self.slots
        slot = self._wheel[cursor]
        self.ops += 1  # Slot visit.
        if not slot:
            return 0
        # Detach the slot before firing anything: a callback may re-arm
        # into this very slot (retransmit timers reschedule themselves),
        # and those appends must survive the scan, not be overwritten by
        # the keep-list below.
        self._wheel[cursor] = []
        fired = 0
        keep: list[TimerHandle] = []
        # Sort so same-slot timers fire in deadline order.
        for handle in sorted(slot, key=lambda h: (h.deadline, h.seq)):
            self.ops += 1  # One deadline comparison per entry.
            if handle.cancelled:
                self._armed -= 1
                continue
            # Due if its tick has been reached (not a future revolution)
            # and its exact deadline has passed.
            if self._ticks(handle.deadline) <= self._tick_count and handle.deadline <= time:
                self.now = max(self.now, handle.deadline)
                handle.fired = True
                self._armed -= 1
                fired += 1
                handle.callback()
            else:
                keep.append(handle)
        # Callback-era arrivals are already in the fresh list; keep them.
        self._wheel[cursor] = keep + self._wheel[cursor]
        return fired

    def advance_to(self, time: float) -> int:
        self._check_advance(time)
        fired = 0
        target_tick = self._ticks(time)
        while True:
            fired += self._scan_slot(time)
            if self._tick_count < target_tick:
                self._tick_count += 1
            else:
                break
        self.now = time
        return fired

    @property
    def pending(self) -> int:
        return sum(1 for slot in self._wheel for h in slot if h.active)

    def next_deadline(self) -> Optional[float]:
        deadlines = [h.deadline for slot in self._wheel for h in slot if h.active]
        return min(deadlines) if deadlines else None
