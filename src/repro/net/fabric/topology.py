"""Topology builders: wiring hosts, switches, and routers into fabrics.

The paper measured two hosts on "a switchless, private segment".  These
builders grow that testbed into the three canonical shapes congestion
and forwarding experiments need:

* :func:`star` — one switch, N hosts, one subnet.  Contention appears
  only when two senders target one receiver's edge port.
* :func:`chain` — two hosts joined through N routers, one /24 per
  segment.  Exercises gateway forwarding, TTL, and ICMP errors.
* :func:`dumbbell` — N client/server pairs on fast edges joined by one
  slow trunk.  The classic congestion topology: every data flow shares
  the left switch's trunk port, whose finite queue is where loss lives.

Builders return a :class:`Topology` — a bag of named parts the caller
(tests, benches, :class:`~repro.testbed.FabricTestbed`) composes with
organizations and workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...costs import CostModel, DECSTATION_5000_200
from ...host import Host
from ...sim import Simulator
from ..headers import str_to_ip
from ..link import DuplexLink, Link
from .queues import RedQueue, TailDropQueue
from .router import Router
from .routing import RouteTable, prefix_mask
from .switch import Switch, SwitchPort


def fabric_mac(n: int) -> bytes:
    """Locally-administered MAC #``n`` (02:00:00:00:xx:xx)."""
    if not 0 <= n <= 0xFFFF:
        raise ValueError(f"MAC index {n} out of range")
    return bytes([0x02, 0, 0, 0, n >> 8, n & 0xFF])


@dataclass
class Topology:
    """The parts a builder wired together."""

    sim: Simulator
    name: str
    hosts: list[Host] = field(default_factory=list)
    routers: list[Router] = field(default_factory=list)
    switches: list[Switch] = field(default_factory=list)
    links: list[Link] = field(default_factory=list)
    #: Dumbbell only: the left switch's trunk port — the one place
    #: forward-path congestion drops are expected.
    bottleneck: Optional[SwitchPort] = None
    #: Dumbbell only: sender-side hosts, index-paired with ``servers``.
    clients: list[Host] = field(default_factory=list)
    servers: list[Host] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"<Topology {self.name}: {len(self.hosts)} hosts, "
            f"{len(self.routers)} routers, {len(self.switches)} switches>"
        )


def _edge_host(
    sim: Simulator,
    switch: Switch,
    name: str,
    ip: str,
    mac_index: int,
    rate: float,
    costs: CostModel,
    demux_style: str,
    topo: Topology,
) -> Host:
    """One host on its own duplex cable into ``switch``."""
    cable = DuplexLink(sim, bit_rate=rate)
    host = Host(
        sim,
        cable,
        name,
        str_to_ip(ip),
        fabric_mac(mac_index),
        costs=costs,
        demux_style=demux_style,
    )
    switch.add_port(cable)
    topo.links.append(cable)
    topo.hosts.append(host)
    return host


def star(
    sim: Simulator,
    n_hosts: int,
    edge_rate: float = 10e6,
    queue_bytes: Optional[int] = None,
    costs: CostModel = DECSTATION_5000_200,
    demux_style: str = "synthesized",
) -> Topology:
    """One switch, ``n_hosts`` hosts (10.0.0.1..N), one subnet."""
    if n_hosts < 2:
        raise ValueError("a star needs at least two hosts")
    topo = Topology(sim, f"star{n_hosts}")
    switch = Switch(sim, "sw0", default_queue_bytes=queue_bytes or Switch.DEFAULT_QUEUE_BYTES)
    topo.switches.append(switch)
    for i in range(n_hosts):
        _edge_host(
            sim, switch, f"h{i}", f"10.0.0.{i + 1}", i + 1,
            edge_rate, costs, demux_style, topo,
        )
    return topo


def chain(
    sim: Simulator,
    n_routers: int,
    edge_rate: float = 10e6,
    costs: CostModel = DECSTATION_5000_200,
    demux_style: str = "synthesized",
) -> Topology:
    """host_a — r0 — r1 — … — host_b, one /24 per segment.

    Segment ``i`` is ``10.0.i.0/24``; its left node is ``.1``, its
    right node ``.2``.  Hosts get default routes to their adjacent
    router; routers get static routes to every non-adjacent segment.
    """
    if n_routers < 1:
        raise ValueError("a chain needs at least one router")
    topo = Topology(sim, f"chain{n_routers}")
    segments = [DuplexLink(sim, bit_rate=edge_rate) for _ in range(n_routers + 1)]
    topo.links.extend(segments)
    mac = iter(range(1, 2 * n_routers + 3)).__next__

    def seg_ip(segment: int, last_octet: int) -> int:
        return str_to_ip(f"10.0.{segment}.{last_octet}")

    host_a = Host(
        sim, segments[0], "ha", seg_ip(0, 1), fabric_mac(mac()),
        costs=costs, demux_style=demux_style,
    )
    last = n_routers
    host_b = Host(
        sim, segments[last], "hb", seg_ip(last, 2), fabric_mac(mac()),
        costs=costs, demux_style=demux_style,
    )
    topo.hosts.extend([host_a, host_b])

    for k in range(n_routers):
        router = Router(sim, f"r{k}", costs=costs)
        router.add_interface(segments[k], seg_ip(k, 2), fabric_mac(mac()))
        router.add_interface(segments[k + 1], seg_ip(k + 1, 1), fabric_mac(mac()))
        topo.routers.append(router)

    # Hosts default-route to their adjacent router.
    host_a.routes = RouteTable()
    host_a.routes.add(seg_ip(0, 0), 24)  # On-link.
    host_a.routes.add_default(seg_ip(0, 2))
    host_b.routes = RouteTable()
    host_b.routes.add(seg_ip(last, 0), 24)
    host_b.routes.add_default(seg_ip(last, 1))

    # Routers reach distant segments through their neighbours.
    for k, router in enumerate(topo.routers):
        for j in range(n_routers + 1):
            if j in (k, k + 1):
                continue  # Connected.
            gateway = seg_ip(k, 1) if j < k else seg_ip(k + 1, 2)
            router.add_route(seg_ip(j, 0) & prefix_mask(24), 24, gateway)
    return topo


def dumbbell(
    sim: Simulator,
    pairs: int,
    edge_rate: float = 100e6,
    bottleneck_rate: float = 10e6,
    queue_bytes: int = Switch.DEFAULT_QUEUE_BYTES,
    red: bool = False,
    red_seed: int = 0,
    costs: CostModel = DECSTATION_5000_200,
    demux_style: str = "synthesized",
) -> Topology:
    """``pairs`` clients and servers joined by one slow trunk.

    Clients (10.0.0.x) hang off the left switch, servers (10.0.1.x)
    off the right, each on an ``edge_rate`` duplex cable; the switches
    are joined by one ``bottleneck_rate`` trunk.  All data flows share
    the left switch's trunk port — its ``queue_bytes`` egress queue
    (tail-drop, or RED when ``red``) is the congestion point.  One flat
    subnet: no routers, loss is pure L2 queue overflow.
    """
    if pairs < 1:
        raise ValueError("a dumbbell needs at least one pair")
    topo = Topology(sim, f"dumbbell{pairs}")
    sw_l = Switch(sim, "swL", default_queue_bytes=queue_bytes)
    sw_r = Switch(sim, "swR", default_queue_bytes=queue_bytes)
    topo.switches.extend([sw_l, sw_r])

    trunk = DuplexLink(sim, bit_rate=bottleneck_rate)
    topo.links.append(trunk)

    def trunk_queue(queue_sim: Simulator, capacity: int):
        if red:
            return RedQueue(queue_sim, capacity, seed=red_seed)
        return TailDropQueue(queue_sim, capacity)

    bottleneck = sw_l.add_port(trunk, queue=trunk_queue(sim, queue_bytes))
    sw_r.add_port(trunk, queue=trunk_queue(sim, queue_bytes))
    topo.bottleneck = bottleneck

    for i in range(pairs):
        client = _edge_host(
            sim, sw_l, f"c{i}", f"10.0.0.{i + 1}", 0x100 + i,
            edge_rate, costs, demux_style, topo,
        )
        server = _edge_host(
            sim, sw_r, f"s{i}", f"10.0.1.{i + 1}", 0x200 + i,
            edge_rate, costs, demux_style, topo,
        )
        topo.clients.append(client)
        topo.servers.append(server)
    topo.meta.update(
        trunk=trunk,
        edge_rate=edge_rate,
        bottleneck_rate=bottleneck_rate,
        queue_bytes=queue_bytes,
        red=red,
    )
    return topo
