"""Topology builders: wiring hosts, switches, and routers into fabrics.

The paper measured two hosts on "a switchless, private segment".  These
builders grow that testbed into the three canonical shapes congestion
and forwarding experiments need:

* :func:`star` — one switch, N hosts, one subnet.  Contention appears
  only when two senders target one receiver's edge port.
* :func:`chain` — two hosts joined through N routers, one /24 per
  segment.  Exercises gateway forwarding, TTL, and ICMP errors.
* :func:`dumbbell` — N client/server pairs on fast edges joined by one
  slow trunk.  The classic congestion topology: every data flow shares
  the left switch's trunk port, whose finite queue is where loss lives.

Builders return a :class:`Topology` — a bag of named parts the caller
(tests, benches, :class:`~repro.testbed.FabricTestbed`) composes with
organizations and workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...costs import CostModel, DECSTATION_5000_200
from ...host import Host
from ...sim import Simulator
from ..headers import str_to_ip
from ..link import DuplexLink, Link
from .queues import RedQueue, TailDropQueue
from .router import Router
from .routing import RouteTable, prefix_mask
from .switch import Switch, SwitchPort


#: 10.0.0.0 — the builders' host address space, composed by octet shifts.
_TEN_SLASH_8 = 10 << 24


def fabric_mac(n: int) -> bytes:
    """Locally-administered MAC #``n`` (02:00:xx:xx:xx:xx).

    Four index bytes: a 1k-host fat tree burns thousands of addresses
    (hosts plus router interfaces), far past the old single-byte/16-bit
    ceiling."""
    if not 0 <= n <= 0xFFFFFFFF:
        raise ValueError(f"MAC index {n} out of range")
    return bytes([0x02, 0]) + n.to_bytes(4, "big")


@dataclass
class Topology:
    """The parts a builder wired together."""

    sim: Simulator
    name: str
    hosts: list[Host] = field(default_factory=list)
    routers: list[Router] = field(default_factory=list)
    switches: list[Switch] = field(default_factory=list)
    links: list[Link] = field(default_factory=list)
    #: Dumbbell only: the left switch's trunk port — the one place
    #: forward-path congestion drops are expected.
    bottleneck: Optional[SwitchPort] = None
    #: Dumbbell only: sender-side hosts, index-paired with ``servers``.
    clients: list[Host] = field(default_factory=list)
    servers: list[Host] = field(default_factory=list)
    meta: dict = field(default_factory=dict)
    #: MACs handed out so far — the collision guard for small builders
    #: that pick indices by hand.
    used_macs: set = field(default_factory=set, repr=False)
    #: Next index for :meth:`next_mac`'s guard-free allocation.
    mac_counter: int = 1

    def alloc_mac(self, n: int) -> bytes:
        """``fabric_mac(n)`` with a uniqueness guard within this topology."""
        mac = fabric_mac(n)
        if mac in self.used_macs:
            raise ValueError(f"duplicate fabric MAC index {n}")
        self.used_macs.add(mac)
        return mac

    def next_mac(self) -> bytes:
        """Sequential MAC allocation: unique by construction.

        Big fabrics burn thousands of addresses; a monotone counter
        cannot collide, so this skips both the range check and the
        per-allocation set guard that :meth:`alloc_mac` pays.  A
        builder must not mix the two schemes within one topology.
        """
        n = self.mac_counter
        self.mac_counter = n + 1
        return b"\x02\x00" + n.to_bytes(4, "big")

    def __repr__(self) -> str:
        return (
            f"<Topology {self.name}: {len(self.hosts)} hosts, "
            f"{len(self.routers)} routers, {len(self.switches)} switches>"
        )


def _edge_host(
    sim: Simulator,
    switch: Switch,
    name: str,
    ip: int,
    mac: bytes,
    rate: float,
    costs: CostModel,
    demux_style: str,
    topo: Topology,
) -> Host:
    """One host on its own duplex cable into ``switch``."""
    cable = DuplexLink(sim, bit_rate=rate)
    host = Host(
        sim,
        cable,
        name,
        ip,
        mac,
        costs=costs,
        demux_style=demux_style,
    )
    switch.add_port(cable)
    topo.links.append(cable)
    topo.hosts.append(host)
    return host


def star(
    sim: Simulator,
    n_hosts: int,
    edge_rate: float = 10e6,
    queue_bytes: Optional[int] = None,
    costs: CostModel = DECSTATION_5000_200,
    demux_style: str = "synthesized",
) -> Topology:
    """One switch, ``n_hosts`` hosts (10.0.0.1..N), one subnet."""
    if n_hosts < 2:
        raise ValueError("a star needs at least two hosts")
    topo = Topology(sim, f"star{n_hosts}")
    switch = Switch(sim, "sw0", default_queue_bytes=queue_bytes or Switch.DEFAULT_QUEUE_BYTES)
    topo.switches.append(switch)
    base = str_to_ip("10.0.0.0")
    for i in range(n_hosts):
        _edge_host(
            sim, switch, f"h{i}", base + i + 1, topo.alloc_mac(i + 1),
            edge_rate, costs, demux_style, topo,
        )
    return topo


def chain(
    sim: Simulator,
    n_routers: int,
    edge_rate: float = 10e6,
    costs: CostModel = DECSTATION_5000_200,
    demux_style: str = "synthesized",
) -> Topology:
    """host_a — r0 — r1 — … — host_b, one /24 per segment.

    Segment ``i`` is ``10.0.i.0/24``; its left node is ``.1``, its
    right node ``.2``.  Hosts get default routes to their adjacent
    router; routers get static routes to every non-adjacent segment.
    """
    if n_routers < 1:
        raise ValueError("a chain needs at least one router")
    topo = Topology(sim, f"chain{n_routers}")
    segments = [DuplexLink(sim, bit_rate=edge_rate) for _ in range(n_routers + 1)]
    topo.links.extend(segments)
    mac = iter(range(1, 2 * n_routers + 3)).__next__

    def seg_ip(segment: int, last_octet: int) -> int:
        return str_to_ip(f"10.0.{segment}.{last_octet}")

    host_a = Host(
        sim, segments[0], "ha", seg_ip(0, 1), topo.alloc_mac(mac()),
        costs=costs, demux_style=demux_style,
    )
    last = n_routers
    host_b = Host(
        sim, segments[last], "hb", seg_ip(last, 2), topo.alloc_mac(mac()),
        costs=costs, demux_style=demux_style,
    )
    topo.hosts.extend([host_a, host_b])

    for k in range(n_routers):
        router = Router(sim, f"r{k}", costs=costs)
        router.add_interface(segments[k], seg_ip(k, 2), topo.alloc_mac(mac()))
        router.add_interface(segments[k + 1], seg_ip(k + 1, 1), topo.alloc_mac(mac()))
        topo.routers.append(router)

    # Hosts default-route to their adjacent router.
    host_a.routes = RouteTable()
    host_a.routes.add(seg_ip(0, 0), 24)  # On-link.
    host_a.routes.add_default(seg_ip(0, 2))
    host_b.routes = RouteTable()
    host_b.routes.add(seg_ip(last, 0), 24)
    host_b.routes.add_default(seg_ip(last, 1))

    # Routers reach distant segments through their neighbours.
    for k, router in enumerate(topo.routers):
        for j in range(n_routers + 1):
            if j in (k, k + 1):
                continue  # Connected.
            gateway = seg_ip(k, 1) if j < k else seg_ip(k + 1, 2)
            router.add_route(seg_ip(j, 0) & prefix_mask(24), 24, gateway)
    return topo


def dumbbell(
    sim: Simulator,
    pairs: int,
    edge_rate: float = 100e6,
    bottleneck_rate: float = 10e6,
    queue_bytes: int = Switch.DEFAULT_QUEUE_BYTES,
    red: bool = False,
    red_seed: int = 0,
    costs: CostModel = DECSTATION_5000_200,
    demux_style: str = "synthesized",
) -> Topology:
    """``pairs`` clients and servers joined by one slow trunk.

    Clients (10.0.0.x) hang off the left switch, servers (10.0.1.x)
    off the right, each on an ``edge_rate`` duplex cable; the switches
    are joined by one ``bottleneck_rate`` trunk.  All data flows share
    the left switch's trunk port — its ``queue_bytes`` egress queue
    (tail-drop, or RED when ``red``) is the congestion point.  One flat
    subnet: no routers, loss is pure L2 queue overflow.
    """
    if pairs < 1:
        raise ValueError("a dumbbell needs at least one pair")
    topo = Topology(sim, f"dumbbell{pairs}")
    sw_l = Switch(sim, "swL", default_queue_bytes=queue_bytes)
    sw_r = Switch(sim, "swR", default_queue_bytes=queue_bytes)
    topo.switches.extend([sw_l, sw_r])

    trunk = DuplexLink(sim, bit_rate=bottleneck_rate)
    topo.links.append(trunk)

    def trunk_queue(queue_sim: Simulator, capacity: int):
        if red:
            return RedQueue(queue_sim, capacity, seed=red_seed)
        return TailDropQueue(queue_sim, capacity)

    bottleneck = sw_l.add_port(trunk, queue=trunk_queue(sim, queue_bytes))
    sw_r.add_port(trunk, queue=trunk_queue(sim, queue_bytes))
    topo.bottleneck = bottleneck

    client_base = str_to_ip("10.0.0.0")
    server_base = str_to_ip("10.0.1.0")
    for i in range(pairs):
        client = _edge_host(
            sim, sw_l, f"c{i}", client_base + i + 1,
            topo.alloc_mac(0x100 + i), edge_rate, costs, demux_style, topo,
        )
        server = _edge_host(
            sim, sw_r, f"s{i}", server_base + i + 1,
            topo.alloc_mac(0x200 + i), edge_rate, costs, demux_style, topo,
        )
        topo.clients.append(client)
        topo.servers.append(server)
    topo.meta.update(
        trunk=trunk,
        edge_rate=edge_rate,
        bottleneck_rate=bottleneck_rate,
        queue_bytes=queue_bytes,
        red=red,
    )
    return topo


def fat_tree(
    sim: Simulator,
    k: int = 4,
    hosts_per_edge: Optional[int] = None,
    edge_rate: float = 100e6,
    agg_rate: float = 100e6,
    core_rate: float = 100e6,
    edge_queue_bytes: int = Switch.DEFAULT_QUEUE_BYTES,
    agg_queue_packets: int = 128,
    core_queue_packets: int = 256,
    costs: CostModel = DECSTATION_5000_200,
    demux_style: str = "synthesized",
) -> Topology:
    """A k-ary fat-tree/Clos: L2 edge switches, L3 aggregation and core.

    ``k`` pods, each with ``k/2`` edge switches (learning bridges) and
    ``k/2`` aggregation routers; ``(k/2)**2`` core routers join the
    pods.  Edge subnet ``(p, e)`` is ``10.p.e.0/24``: hosts at ``.1..``,
    every aggregation router ``q`` of the pod at ``.200+q`` on that
    same L2 segment.  Aggregation↔core links are point-to-point /30s
    carved from ``172.16.0.0``; core router ``(q, j)`` connects to
    aggregation router ``q`` of *every* pod, so a packet's up-path
    pins its down-path aggregation router.

    Deterministic multi-path spreading, no ECMP randomness:

    * host ``h`` default-routes via aggregation router ``h % (k/2)``;
    * aggregation router ``q`` in pod ``p`` reaches pod ``p'`` through
      core ``(q, (p' + q) % (k/2))`` (a ``10.p'.0.0/16`` route);
    * core ``(q, j)`` reaches pod ``p`` through its link to that pod's
      aggregation router ``q``.

    Per-tier queueing: edge switch ports hold ``edge_queue_bytes``;
    aggregation/core routers take ``agg_queue_packets`` /
    ``core_queue_packets`` forwarding-input slots.

    Host count is ``k * (k/2) * hosts_per_edge`` (``hosts_per_edge``
    defaults to the classic ``k/2``): k=4 → 16, k=8 (8 hosts/edge) →
    256, k=16 (8 hosts/edge) → 1024.
    """
    if k < 2 or k % 2:
        raise ValueError("fat tree needs an even k >= 2")
    half = k // 2
    hpe = half if hosts_per_edge is None else hosts_per_edge
    if not 1 <= hpe <= 199:
        raise ValueError("hosts_per_edge must be in 1..199")
    topo = Topology(sim, f"fat-tree-k{k}")
    # Allocation is precomputed arithmetic: sequential MACs (unique by
    # construction, no guard set) and shifted-octet IPs (no per-host
    # string formatting + parse).  At 4096 hosts the formatting path
    # alone was a measurable slice of build wall time.
    mac = topo.next_mac

    def subnet_ip(pod: int, edge: int, last: int) -> int:
        return _TEN_SLASH_8 | (pod << 16) | (edge << 8) | last

    # Core routers first: core[q][j].
    p2p_base = str_to_ip("172.16.0.0")
    p2p_index = 0
    #: (pod, agg index, core column) -> core-side /30 address.
    core_ip: dict[tuple[int, int, int], int] = {}
    cores = [
        [
            Router(
                sim, f"core-{q}-{j}", costs=costs,
                input_queue_packets=core_queue_packets,
            )
            for j in range(half)
        ]
        for q in range(half)
    ]
    for row in cores:
        topo.routers.extend(row)

    edge_switches: list[Switch] = []
    agg_routers: list[list[Router]] = []  # agg_routers[p][q]

    for p in range(k):
        pod_aggs = [
            Router(
                sim, f"agg-p{p}a{q}", costs=costs,
                input_queue_packets=agg_queue_packets,
            )
            for q in range(half)
        ]
        agg_routers.append(pod_aggs)
        topo.routers.extend(pod_aggs)

        for e in range(half):
            switch = Switch(
                sim, f"sw-p{p}e{e}", default_queue_bytes=edge_queue_bytes
            )
            edge_switches.append(switch)
            topo.switches.append(switch)

            # Aggregation routers join this edge segment at .200+q.
            subnet = subnet_ip(p, e, 0)
            for q, agg in enumerate(pod_aggs):
                cable = DuplexLink(sim, bit_rate=agg_rate)
                agg.add_interface(cable, subnet + 200 + q, mac())
                switch.add_port(cable)
                topo.links.append(cable)

            # Hosts: 10.p.e.1 .. 10.p.e.hpe, gateway spread by h % half.
            for h in range(hpe):
                host = _edge_host(
                    sim, switch, f"h-p{p}e{e}n{h}",
                    subnet + h + 1, mac(),
                    edge_rate, costs, demux_style, topo,
                )
                host.routes = RouteTable()
                host.routes.add(subnet, 24)  # On-link.
                host.routes.add_default(subnet + 200 + h % half)

        # Aggregation q uplinks to cores (q, 0..half-1), one /30 each.
        for q, agg in enumerate(pod_aggs):
            for j in range(half):
                core = cores[q][j]
                base = p2p_base + 4 * p2p_index
                p2p_index += 1
                link = DuplexLink(sim, bit_rate=core_rate)
                agg.add_interface(link, base + 1, mac(), prefix_len=30)
                core.add_interface(link, base + 2, mac(), prefix_len=30)
                topo.links.append(link)
                # Core reaches this whole pod through this agg router.
                core.add_route(subnet_ip(p, 0, 0), 16, gateway=base + 1)
                core_ip[(p, q, j)] = base + 2

    # Aggregation inter-pod routes: pod p' via core (q, (p' + q) % half).
    for p in range(k):
        for q, agg in enumerate(agg_routers[p]):
            for p2 in range(k):
                if p2 == p:
                    continue
                j = (p2 + q) % half
                agg.add_route(
                    subnet_ip(p2, 0, 0), 16, gateway=core_ip[(p, q, j)]
                )

    topo.meta.update(
        k=k,
        hosts_per_edge=hpe,
        pods=k,
        edge_switches=edge_switches,
        agg_routers=agg_routers,
        core_routers=cores,
        edge_rate=edge_rate,
        agg_rate=agg_rate,
        core_rate=core_rate,
    )
    return topo
