"""An IP router: the gateway function the paper's library omits.

The paper's user-level IP "does not implement the functions required
for handling gateway traffic"; multi-hop topologies need exactly that.
A :class:`Router` is a multi-homed workstation — its own
:class:`~repro.mach.kernel.Kernel`, one :class:`PmaddNic` +
:class:`NetworkIoModule` + :class:`ArpStack` per attached segment —
whose kernel forwards between interfaces: longest-prefix route lookup,
TTL decrement (ICMP time-exceeded on expiry), ICMP network-unreachable
when no route matches.

Forwarding is decoupled from the receive interrupt through a bounded
input queue drained by a worker process.  The NIC's receive interrupt
must never block (an ARP resolution there would deadlock the very
interrupt path that delivers the ARP reply), so rx context only
classifies the packet, charges ``ip_input``, and enqueues; the worker
pays ``ip_forward``, resolves the next hop, and transmits.  A full
input queue tail-drops — a router under overload sheds load exactly
like a switch port does.
"""

from __future__ import annotations

from ...counters import Counters
from typing import Generator, Optional

from ...costs import CostModel, DECSTATION_5000_200
from ...mach import Kernel
from ...obs import profile as _profile
from ...obs import spans as _spans
from ...netio.module import LinkInfo, NetworkIoModule
from ...protocols.arp import ArpStack, SendArp
from ...protocols.icmp import (
    UNREACH_NET,
    decode_echo,
    encode_time_exceeded,
    encode_unreachable,
    is_icmp_error,
    make_reply,
)
from ...protocols.ip import IpError, forwarded_copy
from ...sim import Simulator, Store, Timeout
from ..buf import prepend
from ..headers import (
    ETHERTYPE_ARP,
    ETHERTYPE_IP,
    ArpPacket,
    HeaderError,
    Ipv4Header,
    PROTO_ICMP,
    ip_to_str,
)
from ..link import Link
from ..nic.pmadd import PmaddNic
from .routing import RouteTable, prefix_mask


class RouterInterface:
    """One of a router's network attachments: NIC + I/O module + ARP."""

    def __init__(
        self,
        router: "Router",
        link: Link,
        ip: int,
        mac: bytes,
        prefix_len: int,
        index: int,
    ) -> None:
        self.router = router
        self.link = link
        self.ip = ip
        self.mac = mac
        self.prefix_len = prefix_len
        self.index = index
        self.name = f"{router.name}-eth{index}"
        self.nic = PmaddNic(router.kernel, link, mac, name=self.name)
        self.netio = NetworkIoModule(router.kernel, self.nic)
        self.netio.kernel_rx = self._kernel_rx
        self.arp = ArpStack(ip, mac)

    def __repr__(self) -> str:
        return f"<RouterInterface {self.name} {ip_to_str(self.ip)}/{self.prefix_len}>"

    def _kernel_rx(
        self, ethertype: int, payload: bytes, link_info: LinkInfo
    ) -> Generator:
        # Plain call returning the router's generator (not a delegating
        # generator itself): one less frame on every receive resume.
        return self.router._rx(self, ethertype, payload, link_info)


class Router:
    """A multi-homed host that forwards IP between its interfaces."""

    #: Bound on packets awaiting the forwarding worker; arrivals beyond
    #: it are tail-dropped in rx context (counted as ``input_dropped``).
    INPUT_QUEUE_PACKETS = 64

    def __init__(
        self,
        sim: Simulator,
        name: str = "rtr",
        costs: CostModel = DECSTATION_5000_200,
        input_queue_packets: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.kernel = Kernel(sim, costs, name=name)
        self.interfaces: list[RouterInterface] = []
        self.routes = RouteTable()
        # Per-tier capacity: fat-tree builders give aggregation/core
        # routers deeper input queues than the class default.
        self._input: Store = Store(
            sim, capacity=input_queue_packets or self.INPUT_QUEUE_PACKETS
        )
        self.stats = Counters()
        sim.process(self._worker(), name=f"{name}-fwd")

    def __repr__(self) -> str:
        return f"<Router {self.name} ifaces={len(self.interfaces)}>"

    def add_interface(
        self, link: Link, ip: int, mac: bytes, prefix_len: int = 24
    ) -> RouterInterface:
        """Attach the router to ``link`` and install the connected route."""
        iface = RouterInterface(
            self, link, ip, mac, prefix_len, len(self.interfaces)
        )
        self.interfaces.append(iface)
        self.routes.add(ip & prefix_mask(prefix_len), prefix_len, None, iface)
        return iface

    def add_route(
        self,
        prefix: int,
        prefix_len: int,
        gateway: Optional[int] = None,
        interface: Optional[RouterInterface] = None,
    ) -> None:
        """Install a static route.  With a gateway and no interface, the
        egress interface is inferred from the connected route covering
        the gateway."""
        if interface is None and gateway is not None:
            via = self.routes.lookup(gateway)
            if via is None or via.interface is None:
                raise ValueError(
                    f"{self.name}: gateway {ip_to_str(gateway)} is not on "
                    "any connected network"
                )
            interface = via.interface
        if interface is None:
            raise ValueError("route needs a gateway or an interface")
        self.routes.add(prefix, prefix_len, gateway, interface)

    @property
    def local_ips(self) -> set[int]:
        return {iface.ip for iface in self.interfaces}

    @property
    def route_cache_stats(self) -> dict[str, int]:
        """Destination-cache counters (netstat's fast-path table)."""
        routes = self.routes
        return {
            "hits": routes.cache_hits,
            "misses": routes.cache_misses,
            "invalidations": routes.cache_invalidations,
        }

    # ------------------------------------------------------------------
    # Receive (interrupt context — must never block on the network)
    # ------------------------------------------------------------------

    def _rx(
        self,
        iface: RouterInterface,
        ethertype: int,
        payload: bytes,
        link_info: LinkInfo,
    ) -> Generator:
        if ethertype == ETHERTYPE_ARP:
            yield from self._arp_rx(iface, payload)
            return
        if ethertype != ETHERTYPE_IP:
            return
        try:
            header = Ipv4Header.unpack(payload)
        except HeaderError:
            return
        # Open-coded cpu.consume(ip_input): per-packet on every hop.
        cpu = self.kernel.cpu
        cost = self.kernel.cost_table.ip_input
        if cost:
            request = cpu.claim()
            try:
                yield request
            except BaseException:
                cpu.abandon(request)
                raise
            try:
                yield Timeout(self.sim, cost)
                cpu.busy_time += cost
            finally:
                cpu.unclaim(request)
        if header.dst in self.local_ips:
            yield from self._local_rx(iface, header, payload, link_info)
            return
        if not self._input.try_put(("forward", iface, header, payload)):
            self.stats["input_dropped"] += 1

    def _arp_rx(self, iface: RouterInterface, payload: bytes) -> Generator:
        try:
            packet = ArpPacket.unpack(payload)
        except HeaderError:
            return
        for action in iface.arp.receive(packet, self.sim.now):
            if isinstance(action, SendArp):
                yield from iface.netio.kernel_send(
                    action.packet.pack(), action.dst_mac, ETHERTYPE_ARP
                )

    def _local_rx(
        self,
        iface: RouterInterface,
        header: Ipv4Header,
        packet: bytes,
        link_info: LinkInfo,
    ) -> Generator:
        """Traffic addressed to the router itself: answer ICMP echo."""
        self.stats["delivered_local"] += 1
        if header.protocol != PROTO_ICMP:
            return
        if header.frag_offset != 0 or header.more_fragments:
            return  # Routers don't reassemble; ping payloads fit the MTU.
        echo = decode_echo(packet[Ipv4Header.LENGTH : header.total_length])
        if echo is None or not echo.is_request:
            return
        # Reply straight out the ingress interface: the querier (or the
        # previous-hop gateway) is by definition reachable there.
        yield from self._emit(
            iface, header.src, make_reply(echo), link_dst=link_info.src
        )

    # ------------------------------------------------------------------
    # Forwarding worker (process context — free to block on ARP)
    # ------------------------------------------------------------------

    def _worker(self) -> Generator:
        cpu = self.kernel.cpu
        sim = self.sim
        while True:
            job = yield self._input.get()
            kind, iface, header, packet = job
            assert kind == "forward"
            cost = self.kernel.cost_table.ip_forward
            prof = _profile.PROFILER
            if prof is not None:
                prof.charge("router.forward", cost)
            rec = _spans.RECORDER
            if rec is not None:
                rec.touch(
                    packet, "router.fwd", self.sim.now, self.name,
                    detail=f"ttl={header.ttl}", cost=cost,
                )
            if cost:
                request = cpu.claim()
                try:
                    yield request
                except BaseException:
                    cpu.abandon(request)
                    raise
                try:
                    yield Timeout(sim, cost)
                    cpu.busy_time += cost
                finally:
                    cpu.unclaim(request)
            # Forwarding logic lives inline (not in a helper generator):
            # every CPU charge and transmit below resumes through this
            # frame, and the extra delegation hop is measurable at
            # fabric scale.
            route = self.routes.lookup(header.dst)
            if route is None:
                self.stats["no_route"] += 1
                yield from self._icmp_error(
                    iface, header, packet,
                    encode_unreachable(UNREACH_NET, packet),
                )
                continue
            if header.ttl <= 1:
                self.stats["ttl_expired"] += 1
                yield from self._icmp_error(
                    iface, header, packet, encode_time_exceeded(packet)
                )
                continue
            try:
                rewritten = forwarded_copy(header, packet)
            except IpError:
                continue
            out_iface = route.interface
            next_hop = route.gateway if route.gateway is not None else header.dst
            link_dst = yield from self._resolve(out_iface, next_hop)
            if link_dst is None:
                self.stats["arp_failed"] += 1
                continue
            self.stats["forwarded"] += 1
            yield from out_iface.netio.kernel_send(rewritten, link_dst)

    def _icmp_error(
        self,
        in_iface: RouterInterface,
        header: Ipv4Header,
        packet: bytes,
        message: bytes,
    ) -> Generator:
        """Send an ICMP error about ``packet`` back toward its source —
        unless the packet is itself an ICMP error (RFC 1122 forbids
        answering errors with errors, which would loop)."""
        if header.protocol == PROTO_ICMP and is_icmp_error(
            packet[Ipv4Header.LENGTH :]
        ):
            return
        yield from self._emit(in_iface, header.src, message)

    def _emit(
        self,
        iface: RouterInterface,
        dst_ip: int,
        icmp_payload: bytes,
        link_dst: object = None,
    ) -> Generator:
        """Originate an ICMP message from ``iface`` toward ``dst_ip``.

        Routed toward the source like any other packet: if a route says
        the destination is beyond another gateway, follow it; otherwise
        resolve on ``iface``'s own segment.
        """
        out_iface, next_hop = iface, dst_ip
        route = self.routes.lookup(dst_ip)
        if route is not None and route.interface is not None:
            out_iface = route.interface
            if route.gateway is not None:
                next_hop = route.gateway
        if link_dst is None:
            link_dst = yield from self._resolve(out_iface, next_hop)
            if link_dst is None:
                self.stats["arp_failed"] += 1
                return
        yield from self.kernel.cpu.consume(self.kernel.cost_table.ip_output)
        ip_packet = prepend(
            Ipv4Header(
                src=out_iface.ip,
                dst=dst_ip,
                protocol=PROTO_ICMP,
                total_length=Ipv4Header.LENGTH + len(icmp_payload),
            ).pack(),
            icmp_payload,
        )
        yield from out_iface.netio.kernel_send(ip_packet, link_dst)

    def _resolve(
        self, iface: RouterInterface, next_hop: int
    ) -> Generator:
        """ARP ``next_hop`` on ``iface``'s segment; None after timeout.

        Runs only in worker context — blocking here stalls the
        forwarding queue, not the receive interrupt.
        """
        for _ in range(100):
            mac = iface.arp.lookup(next_hop, self.sim.now)
            if mac is not None:
                return mac
            for action in iface.arp.resolve(next_hop, None, self.sim.now):
                if isinstance(action, SendArp):
                    yield from iface.netio.kernel_send(
                        action.packet.pack(), action.dst_mac, ETHERTYPE_ARP
                    )
            yield self.sim.timeout(0.5e-3)
        return None
