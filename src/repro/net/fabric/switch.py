"""A store-and-forward Ethernet switch with learning and finite queues.

The paper's testbed was "a switchless, private segment" — two hosts,
no contention beyond the shared medium.  To exercise the TCP machinery
and the demux engine under *many* contending flows, the fabric adds the
missing middle of the network: switches whose output ports serialize at
the attached link's bit rate and whose finite egress queues are where
congestion loss actually comes from.

A :class:`SwitchPort` duck-types the NIC protocol a :class:`~repro.net.link.Link`
expects (``accepts``/``wire_deliver``) but belongs to no host kernel:
switching consumes no host CPU, only wire time and queue space.  Frames
arrive fully serialized (the ingress link delivers whole frames), are
bridged by destination MAC — learned from source addresses, flooded
while unknown — and then queued on the egress port, whose transmit loop
drains one frame at a time through the egress link.
"""

from __future__ import annotations

from ...counters import Counters
from typing import Callable, Generator, Optional

from ...sim import Simulator
from ..buf import as_wire_bytes
from ..headers import BROADCAST_MAC, EthernetHeader, HeaderError, mac_to_str
from ..link import Link
from .queues import EgressQueue, TailDropQueue


class SwitchPort:
    """One switch port: promiscuous receiver + queued transmitter."""

    def __init__(
        self,
        switch: "Switch",
        link: Link,
        index: int,
        queue: EgressQueue,
    ) -> None:
        self.switch = switch
        self.link = link
        self.index = index
        self.queue = queue
        self.name = f"{switch.name}[{index}]"
        # Label the queue for span timelines and netstat tables.
        queue.name = self.name
        self.stats = Counters()
        link.attach(self)
        switch.sim.process(self._tx_loop(), name=f"{self.name}-tx")

    def __repr__(self) -> str:
        return f"<SwitchPort {self.name}>"

    @property
    def drops(self) -> int:
        """Frames this port's egress queue has discarded."""
        return self.queue.stats["dropped"]

    # The link-facing NIC protocol -------------------------------------

    def accepts(self, dst: object) -> bool:
        return True  # Promiscuous: a bridge sees every frame.

    def wire_deliver(self, frame: bytes) -> None:
        # Links deliver flat wire bytes; enforce that invariant locally
        # (idempotent for bytes) so the whole store-and-forward path —
        # ingress, egress queue, retransmission — holds one buffer by
        # reference and never copies it per hop.
        frame = as_wire_bytes(frame)
        self.stats["rx_frames"] += 1
        self.stats["rx_bytes"] += len(frame)
        self.switch._ingress(self, frame)

    # Egress ------------------------------------------------------------

    def _tx_loop(self) -> Generator:
        while True:
            frame = yield self.queue.get()
            self.stats["tx_frames"] += 1
            self.stats["tx_bytes"] += len(frame)
            yield from self.link.transmit(self, frame)


class Switch:
    """A learning Ethernet bridge with per-port egress queues."""

    #: Learned MAC entries expire after this many seconds (IEEE 802.1D
    #: uses 300 s by default).
    MAC_TTL = 300.0
    DEFAULT_QUEUE_BYTES = 48 * 1024

    def __init__(
        self,
        sim: Simulator,
        name: str = "sw",
        forward_latency: float = 5e-6,
        default_queue_bytes: int = DEFAULT_QUEUE_BYTES,
        queue_factory: Optional[Callable[[Simulator, int], EgressQueue]] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.forward_latency = forward_latency
        self.default_queue_bytes = default_queue_bytes
        self.queue_factory = queue_factory or TailDropQueue
        self.ports: list[SwitchPort] = []
        #: MAC -> (port, learned_at).
        self._macs: dict[bytes, tuple[SwitchPort, float]] = {}
        self.stats = Counters()

    def __repr__(self) -> str:
        return f"<Switch {self.name} ports={len(self.ports)}>"

    def add_port(
        self,
        link: Link,
        queue: Optional[EgressQueue] = None,
        queue_bytes: Optional[int] = None,
    ) -> SwitchPort:
        """Attach a new port to ``link`` with its own egress queue."""
        if queue is None:
            queue = self.queue_factory(
                self.sim, queue_bytes or self.default_queue_bytes
            )
        port = SwitchPort(self, link, len(self.ports), queue)
        self.ports.append(port)
        return port

    @property
    def mac_table(self) -> dict[str, int]:
        """Learned forwarding table as ``mac string -> port index``."""
        return {
            mac_to_str(mac): port.index
            for mac, (port, _) in self._macs.items()
        }

    # Bridging ----------------------------------------------------------

    def _ingress(self, port: SwitchPort, frame: bytes) -> None:
        try:
            header = EthernetHeader.unpack(frame)
        except HeaderError:
            self.stats["malformed"] += 1
            return
        self.stats["frames"] += 1
        self._learn(header.src, port)
        out = self._lookup(header.dst)
        if header.dst == BROADCAST_MAC or out is None:
            self.stats["flooded"] += 1
            targets = [p for p in self.ports if p is not port]
        elif out is port:
            # Destination lives on the ingress segment: nothing to do.
            self.stats["filtered"] += 1
            return
        else:
            self.stats["forwarded"] += 1
            targets = [out]
        for target in targets:
            self._after(
                self.forward_latency,
                lambda t=target, f=frame: t.queue.offer(f),
            )

    def _learn(self, src: bytes, port: SwitchPort) -> None:
        if src == BROADCAST_MAC:
            return
        if src not in self._macs:
            self.stats["learned"] += 1
        self._macs[src] = (port, self.sim.now)

    def _lookup(self, dst: bytes) -> Optional[SwitchPort]:
        entry = self._macs.get(dst)
        if entry is None:
            return None
        port, learned_at = entry
        if self.sim.now - learned_at > self.MAC_TTL:
            del self._macs[dst]
            return None
        return port

    def _after(self, delay: float, fn: Callable[[], object]) -> None:
        """Run ``fn`` after ``delay`` (the store-and-forward latency)."""
        event = self.sim.event()
        event.callbacks.append(lambda _: fn())
        event._ok = True
        event._value = None
        self.sim.schedule(event, delay=delay)
