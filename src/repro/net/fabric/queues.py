"""Finite per-port egress queues for the switched fabric.

This is where congestion becomes *loss*: a switch output port drains at
the attached link's bit rate, and frames arriving faster than that
accumulate here until the byte capacity is exceeded — after which the
queue discipline decides who is discarded.  Two disciplines are
provided: plain byte-capacity tail drop, and RED (random early
detection) which begins dropping probabilistically as the *average*
occupancy rises, before the queue is physically full.

Queues also keep the observability the benchmarks need: drop counters,
peak depth, and an occupancy histogram (fraction-of-capacity buckets
sampled at every arrival) that :mod:`repro.netstat` renders.
"""

from __future__ import annotations

from ...counters import Counters
import random
from collections import deque
from typing import Deque, Optional

from ...obs import hist as _hist
from ...obs import spans as _spans
from ...sim import Simulator
from ...sim.events import Event


class EgressQueue:
    """Byte-capacity FIFO with tail drop; base class for disciplines.

    The kernel side calls :meth:`offer` (non-blocking: the frame is
    queued or dropped, never back-pressured — a switch cannot pause the
    wire); the port's transmit loop calls :meth:`get` and blocks until
    a frame is available.
    """

    #: Occupancy histogram resolution: fraction-of-capacity buckets.
    BUCKETS = 10

    def __init__(self, sim: Simulator, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("queue capacity must be positive")
        self.sim = sim
        self.capacity = capacity_bytes
        #: Span/netstat label; the owning port overwrites it with its own.
        self.name = "queue"
        self._frames: Deque[bytes] = deque()
        self._getters: Deque[Event] = deque()
        self.depth_bytes = 0
        self.peak_bytes = 0
        #: Histogram of queue occupancy (depth/capacity) sampled at
        #: each arrival, including arrivals that end up dropped.
        self.occupancy = [0] * self.BUCKETS
        self.stats = Counters()

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def discipline(self) -> str:
        return "taildrop"

    def _admit(self, frame: bytes) -> bool:
        """Discipline hook: may ``frame`` enter the queue right now?"""
        return self.depth_bytes + len(frame) <= self.capacity

    def offer(self, frame: bytes) -> bool:
        """Kernel side: enqueue ``frame`` or drop it.  Never blocks."""
        bucket = min(
            self.BUCKETS - 1,
            int(self.depth_bytes * self.BUCKETS / self.capacity),
        )
        self.occupancy[bucket] += 1
        reg = _hist.REGISTRY
        if reg is not None:
            reg.record("queue.occupancy", self.depth_bytes / self.capacity)
        rec = _spans.RECORDER
        if not self._admit(frame):
            self.stats["dropped"] += 1
            self.stats["dropped_bytes"] += len(frame)
            if rec is not None:
                rec.touch(
                    frame, "queue.drop", self.sim.now, self.name,
                    detail=f"depth={self.depth_bytes}/{self.capacity}",
                )
            return False
        self.stats["enqueued"] += 1
        self.stats["enqueued_bytes"] += len(frame)
        if rec is not None:
            rec.touch(
                frame, "queue.enq", self.sim.now, self.name,
                detail=f"depth={self.depth_bytes}/{self.capacity}",
            )
        if self._getters:
            # The transmitter is idle and waiting: hand the frame
            # straight over without it ever occupying the queue.
            getter = self._getters.popleft()
            self.stats["dequeued"] += 1
            getter.succeed(frame)
            return True
        self._frames.append(frame)
        self.depth_bytes += len(frame)
        self.peak_bytes = max(self.peak_bytes, self.depth_bytes)
        return True

    def get(self) -> Event:
        """Port side: event that fires with the next frame to send."""
        event = Event(self.sim)
        if self._frames:
            frame = self._frames.popleft()
            self.depth_bytes -= len(frame)
            self.stats["dequeued"] += 1
            rec = _spans.RECORDER
            if rec is not None:
                rec.touch(frame, "queue.deq", self.sim.now, self.name)
            event.succeed(frame)
        else:
            self._getters.append(event)
        return event

    def mean_occupancy(self) -> float:
        """Average sampled occupancy as a fraction of capacity."""
        samples = sum(self.occupancy)
        if not samples:
            return 0.0
        width = 1.0 / self.BUCKETS
        total = sum(
            count * (index + 0.5) * width
            for index, count in enumerate(self.occupancy)
        )
        return total / samples


class TailDropQueue(EgressQueue):
    """The default discipline: admit until the byte capacity is hit."""


class RedQueue(EgressQueue):
    """Random early detection (Floyd & Jacobson 1993).

    Tracks an EWMA of the queue depth; arrivals are admitted below
    ``min_th``, dropped with a probability ramping to ``max_p`` between
    ``min_th`` and ``max_th``, and dropped outright above ``max_th``.
    A physically full queue still tail-drops regardless of the average.
    The RNG is seeded so runs stay reproducible.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity_bytes: int,
        min_th: Optional[int] = None,
        max_th: Optional[int] = None,
        max_p: float = 0.1,
        weight: float = 0.2,
        seed: int = 0,
    ) -> None:
        super().__init__(sim, capacity_bytes)
        self.min_th = min_th if min_th is not None else capacity_bytes // 4
        self.max_th = max_th if max_th is not None else (capacity_bytes * 3) // 4
        if not 0 < self.min_th < self.max_th <= capacity_bytes:
            raise ValueError(
                f"need 0 < min_th ({self.min_th}) < max_th ({self.max_th})"
                f" <= capacity ({capacity_bytes})"
            )
        self.max_p = max_p
        self.weight = weight
        self.avg_bytes = 0.0
        self._rng = random.Random(seed)

    @property
    def discipline(self) -> str:
        return "red"

    def _admit(self, frame: bytes) -> bool:
        self.avg_bytes += self.weight * (self.depth_bytes - self.avg_bytes)
        if self.depth_bytes + len(frame) > self.capacity:
            return False  # Physically full: forced tail drop.
        if self.avg_bytes < self.min_th:
            return True
        if self.avg_bytes >= self.max_th:
            self.stats["early_dropped"] += 1
            return False
        probability = (
            self.max_p
            * (self.avg_bytes - self.min_th)
            / (self.max_th - self.min_th)
        )
        if self._rng.random() < probability:
            self.stats["early_dropped"] += 1
            return False
        return True
