"""Longest-prefix-match route tables for hosts and routers.

The paper's IP library "does not implement the functions required for
handling gateway traffic"; the fabric lifts that restriction.  A
:class:`RouteTable` answers two questions: which interface/next hop a
destination goes through (routers), and whether a destination is
on-link or must go via a gateway (hosts' ``resolve_link``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..headers import ip_to_str


def prefix_mask(prefix_len: int) -> int:
    """A /``prefix_len`` netmask as a 32-bit int."""
    if not 0 <= prefix_len <= 32:
        raise ValueError(f"bad prefix length {prefix_len}")
    if prefix_len == 0:
        return 0
    return (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF


#: All 33 netmasks, precomputed: the lookup path is per-packet on every
#: router, and rebuilding the mask per match is measurable at scale.
_MASKS = tuple(prefix_mask(n) for n in range(33))

#: Destination-cache sentinel for "looked up, no route".  Distinct from
#: absent so unreachable destinations don't re-probe every packet.
_NO_ROUTE = object()


@dataclass(frozen=True)
class Route:
    """One routing entry.

    ``gateway`` None means the destination network is directly attached
    (deliver to the destination itself); ``interface`` is whatever
    egress object the owner associates — a router interface, or None
    for single-homed hosts.
    """

    prefix: int
    prefix_len: int
    gateway: Optional[int] = None
    interface: object = None

    def matches(self, dst: int) -> bool:
        mask = _MASKS[self.prefix_len]
        return (dst & mask) == (self.prefix & mask)

    def __str__(self) -> str:
        via = ip_to_str(self.gateway) if self.gateway is not None else "link"
        return f"{ip_to_str(self.prefix)}/{self.prefix_len} via {via}"


class RouteTable:
    """Longest-prefix-match over a set of static routes.

    Lookup is tiered: one dict of masked-prefix→route per prefix length
    present in the table, probed longest-first.  A fat-tree core router
    holding one /16 per pod answers in a couple of dict probes instead
    of a linear scan — the difference between O(routes) and O(distinct
    prefix lengths) per forwarded packet.
    """

    #: Destination-cache bound: a fat-tree pod sees a few thousand
    #: distinct destinations; past that, evict wholesale rather than
    #: track LRU order on the per-packet path.
    CACHE_LIMIT = 8192

    def __init__(self) -> None:
        self._routes: list[Route] = []
        #: prefix_len -> {masked prefix -> first route added for it}.
        self._tiers: dict[int, dict[int, Route]] = {}
        #: Prefix lengths present, longest first.
        self._lens: list[int] = []
        #: dst -> Route (or _NO_ROUTE for a cached negative).  Purely a
        #: wall-clock memo over the tier probes — hits and misses return
        #: exactly what the probe loop would; invalidated on any add().
        self._cache: dict[int, object] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_invalidations = 0

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self) -> Iterator[Route]:
        return iter(self._routes)

    def add(
        self,
        prefix: int,
        prefix_len: int,
        gateway: Optional[int] = None,
        interface: object = None,
    ) -> Route:
        route = Route(
            prefix & _MASKS[prefix_len], prefix_len, gateway, interface
        )
        self._routes.append(route)
        # Longest prefix first; insertion order breaks ties.
        self._routes.sort(key=lambda r: -r.prefix_len)
        tier = self._tiers.get(prefix_len)
        if tier is None:
            tier = self._tiers[prefix_len] = {}
            self._lens.append(prefix_len)
            self._lens.sort(reverse=True)
        # First-added wins on duplicates, matching the stable-sort scan.
        tier.setdefault(route.prefix, route)
        if self._cache:
            # A new route can shadow any cached answer (including cached
            # "no route"), so the whole memo goes.
            self._cache.clear()
            self.cache_invalidations += 1
        return route

    def add_default(self, gateway: int, interface: object = None) -> Route:
        """Install a 0.0.0.0/0 route through ``gateway``."""
        return self.add(0, 0, gateway, interface)

    def lookup(self, dst: int) -> Optional[Route]:
        """The most specific route covering ``dst``, or None."""
        cached = self._cache.get(dst)
        if cached is not None:
            self.cache_hits += 1
            return cached if cached is not _NO_ROUTE else None
        self.cache_misses += 1
        tiers = self._tiers
        for prefix_len in self._lens:
            route = tiers[prefix_len].get(dst & _MASKS[prefix_len])
            if route is not None:
                if len(self._cache) >= self.CACHE_LIMIT:
                    self._cache.clear()
                self._cache[dst] = route
                return route
        if len(self._cache) >= self.CACHE_LIMIT:
            self._cache.clear()
        self._cache[dst] = _NO_ROUTE
        return None

    def next_hop(self, dst: int) -> int:
        """The IP to resolve at the link layer when sending to ``dst``.

        Hosts call this from ``resolve_link``: a matched route with a
        gateway redirects the ARP to the gateway; an on-link match (or
        no route at all, the pre-fabric behaviour) resolves the
        destination directly.
        """
        route = self.lookup(dst)
        if route is None or route.gateway is None:
            return dst
        return route.gateway
