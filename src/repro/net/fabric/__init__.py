"""The switched fabric: the network *between* the end hosts.

The paper's testbed was two workstations on a private segment; this
package adds the middle of the network so many-flow congestion and
multi-hop forwarding experiments are possible: learning switches with
finite per-port egress queues (tail-drop or RED), IP routers lifting
the library's no-gateway-traffic restriction, and topology builders
(star / chain / dumbbell / fat_tree) that wire them to :class:`~repro.host.Host`.
"""

from .queues import EgressQueue, RedQueue, TailDropQueue
from .router import Router, RouterInterface
from .routing import Route, RouteTable, prefix_mask
from .switch import Switch, SwitchPort
from .topology import Topology, chain, dumbbell, fabric_mac, fat_tree, star

__all__ = [
    "EgressQueue",
    "TailDropQueue",
    "RedQueue",
    "Switch",
    "SwitchPort",
    "Route",
    "RouteTable",
    "prefix_mask",
    "Router",
    "RouterInterface",
    "Topology",
    "star",
    "chain",
    "dumbbell",
    "fat_tree",
    "fabric_mac",
]
