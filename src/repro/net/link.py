"""Simulated links: the shared 10 Mb/s Ethernet, the 100 Mb/s AN1, and
the full-duplex point-to-point cables of the switched fabric.

A link serializes frames at its bit rate (with per-frame overheads
accounted exactly — preamble, FCS, inter-frame gap), applies the fault
injector, and delivers to receiving NICs after a propagation delay.
Links never consume host CPU: all CPU charging happens in the NICs and
the network I/O modules.
"""

from __future__ import annotations

from ..counters import Counters
import abc
from typing import TYPE_CHECKING, Callable, Optional

from ..obs import spans as _spans
from ..sim import Event, Resource, Simulator, Timeout
from .buf import as_wire_bytes
from .faults import FaultInjector, FaultPlan, PERFECT
from .headers import An1Header, BROADCAST_MAC, EthernetHeader

if TYPE_CHECKING:
    from .nic.base import Nic

#: Observer of fault decisions: ``(link, offered_frame, plan)``.  Called
#: for every frame after the injector decides its fate — the hook the
#: conformance campaign uses to log exactly which frames were dropped,
#: corrupted, or duplicated (the wire tracer only sees pre-fault bytes).
FaultObserver = Callable[["Link", bytes, FaultPlan], None]


class Link(abc.ABC):
    """Base class for simulated network segments."""

    def __init__(
        self,
        sim: Simulator,
        bit_rate: float,
        propagation_delay: float,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.sim = sim
        self.bit_rate = bit_rate
        self.propagation_delay = propagation_delay
        self.faults = faults or PERFECT
        self.nics: list["Nic"] = []
        self.fault_observers: list[FaultObserver] = []
        # Per-frame traffic counters live as plain attributes: three
        # dict-subclass item assignments per transmitted frame show up
        # at fabric scale.  ``stats`` materializes them on read.
        self._frames = 0
        self._tx_bytes = 0
        self._busy_time = 0.0

    @property
    def stats(self) -> dict:
        """Traffic counters plus the injector's authoritative fault
        counters.  The fault numbers are *read* from the injector rather
        than counted a second time here, so ``Link.stats`` and
        ``FaultInjector.stats`` can never disagree."""
        merged = Counters()
        merged["frames"] = self._frames
        merged["bytes"] = self._tx_bytes
        merged["busy_time"] = self._busy_time
        fault_stats = self.faults.stats
        merged["dropped"] = fault_stats["dropped"]
        merged["corrupted"] = fault_stats["corrupted"]
        merged["duplicated"] = fault_stats["duplicated"]
        return merged

    def attach(self, nic: "Nic") -> None:
        """Register a NIC on this segment.

        A NIC may appear on the segment only once: a double attach would
        silently double-deliver every frame addressed to it.
        """
        if nic in self.nics:
            raise ValueError(f"{nic!r} is already attached to this link")
        self.nics.append(nic)

    @property
    @abc.abstractmethod
    def max_frame(self) -> int:
        """Largest frame the link accepts, link headers included."""

    @abc.abstractmethod
    def transmit(self, sender: "Nic", frame: bytes):
        """Generator: serialize ``frame`` onto the wire and deliver it.

        ``frame`` may be a fragment chain; the wire is where it becomes
        flat octets (the simulated DMA/PIO boundary), so fault injection
        and receivers always see real bytes."""

    def _deliver_later(self, receivers: list["Nic"], frame: bytes) -> None:
        faults = self.faults
        if faults.inert and not self.fault_observers and _spans.RECORDER is None:
            # No fault model, nobody watching: skip the per-frame
            # FaultPlan allocation entirely.  Same deliveries, same
            # engine events as the planned path would produce.
            delay = self.propagation_delay
            for nic in receivers:
                self._schedule_delivery(nic, frame, delay)
            return
        plan = faults.plan(frame)
        for observer in self.fault_observers:
            observer(self, frame, plan)
        rec = _spans.RECORDER
        if rec is not None:
            tid = rec.trace_of(frame)
            if tid is not None:
                node = type(self).__name__
                if not plan.deliveries:
                    rec.record(tid, "link.drop", self.sim.now, node, detail="fault")
                else:
                    detail = ""
                    if plan.corrupted:
                        detail = "corrupt"
                    if len(plan.deliveries) > 1:
                        detail = (detail + f" dup x{len(plan.deliveries)}").strip()
                    rec.record(tid, "link.tx", self.sim.now, node, detail=detail)
                    # Corruption and duplication replace or copy the wire
                    # bytes; re-bind the delivered objects so the receive
                    # side still resolves them to this trace.
                    for _, data in plan.deliveries:
                        if data is not frame:
                            rec.bind_wire(data, tid)
        for extra_delay, data in plan.deliveries:
            for nic in receivers:
                self._schedule_delivery(
                    nic, data, self.propagation_delay + extra_delay
                )

    @staticmethod
    def _claim(resource: Resource) -> Event:
        """Inline capacity-1 acquire: the returned event fires once the
        caller holds ``resource``.

        Event-for-event identical to ``resource.request()`` (grant
        scheduled at ``now`` when free, FIFO queueing otherwise) without
        the generic request/trigger machinery — transmit serialization
        runs once per frame on every link in the fabric.
        """
        sim = resource.sim
        request = Event(sim)
        users = resource._users
        if not users:
            users.append(request)
            request._ok = True
            request._value = request
            sim.schedule(request)
        else:
            resource._queue.append(request)
        return request

    @staticmethod
    def _unclaim(resource: Resource, request: Event) -> None:
        """Release an inline claim; grants the next FIFO waiter."""
        users = resource._users
        users.remove(request)
        queue = resource._queue
        if queue:
            nxt = queue.popleft()
            users.append(nxt)
            nxt._ok = True
            nxt._value = nxt
            resource.sim.schedule(nxt)

    def _schedule_delivery(self, nic: "Nic", data: bytes, delay: float) -> None:
        def callback(event) -> None:
            nic.wire_deliver(data)

        sim = self.sim
        event = Event(sim)
        event.callbacks.append(callback)
        event._ok = True
        event._value = None
        sim.schedule(event, delay=delay)


class EthernetLink(Link):
    """10 Mb/s shared-medium Ethernet.

    One transmitter at a time (contention modelled as FIFO queueing for
    the medium, a fair simplification of CSMA/CD on a two-host segment).
    Per-frame overhead: 8-byte preamble, 4-byte FCS, minimum 64-byte
    frame, and the 9.6 µs inter-frame gap — this is what makes the
    standalone saturation figure ~9.5 Mb/s of user payload rather
    than 10.
    """

    PREAMBLE = 8
    FCS = 4
    MIN_FRAME = 64
    IFG = 9.6e-6
    MTU_DATA = 1500  # Payload after the 14-byte link header.

    def __init__(
        self,
        sim: Simulator,
        bit_rate: float = 10e6,
        propagation_delay: float = 10e-6,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        super().__init__(sim, bit_rate, propagation_delay, faults)
        self._medium = Resource(sim, capacity=1)

    @property
    def max_frame(self) -> int:
        return EthernetHeader.LENGTH + self.MTU_DATA

    def frame_time(self, length: int) -> float:
        """Wire occupancy for a frame of ``length`` bytes (ex. IFG)."""
        on_wire = self.PREAMBLE + max(length, self.MIN_FRAME) + self.FCS
        return on_wire * 8 / self.bit_rate

    def transmit(self, sender: "Nic", frame: bytes):
        if len(frame) > self.max_frame:
            raise ValueError(
                f"frame of {len(frame)} bytes exceeds Ethernet maximum "
                f"{self.max_frame}"
            )
        frame = as_wire_bytes(frame)
        medium = self._medium
        request = self._claim(medium)
        yield request
        try:
            busy = self.frame_time(len(frame)) + self.IFG
            yield Timeout(self.sim, busy)
            self._frames += 1
            self._tx_bytes += len(frame)
            self._busy_time += busy
            # The wire only routes on the destination MAC; decoding the
            # full header per frame is receiver-side work.
            dst = frame[:6]
            receivers = [
                nic
                for nic in self.nics
                if nic is not sender and nic.accepts(dst)
            ]
            self._deliver_later(receivers, frame)
        finally:
            self._unclaim(medium, request)


class DuplexLink(EthernetLink):
    """Full-duplex point-to-point Ethernet-framed segment.

    The switched fabric's cabling: each endpoint (a host NIC or a switch
    port) serializes independently at the link's bit rate, so the two
    directions never contend — unlike the shared-medium
    :class:`EthernetLink`, there is no CSMA queueing between them.  The
    frame format, per-frame overheads, and MTU are plain Ethernet, which
    is what lets :class:`~repro.net.nic.pmadd.PmaddNic` drive one
    unmodified.
    """

    def __init__(
        self,
        sim: Simulator,
        bit_rate: float = 10e6,
        propagation_delay: float = 2e-6,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        super().__init__(sim, bit_rate, propagation_delay, faults)
        #: One serialization resource per transmitter (full duplex).
        self._tx_channels: dict[int, Resource] = {}

    def transmit(self, sender: "Nic", frame: bytes):
        if len(frame) > self.max_frame:
            raise ValueError(
                f"frame of {len(frame)} bytes exceeds Ethernet maximum "
                f"{self.max_frame}"
            )
        frame = as_wire_bytes(frame)
        channel = self._tx_channels.get(id(sender))
        if channel is None:
            channel = self._tx_channels[id(sender)] = Resource(
                self.sim, capacity=1
            )
        request = self._claim(channel)
        yield request
        try:
            busy = self.frame_time(len(frame)) + self.IFG
            yield Timeout(self.sim, busy)
            self._frames += 1
            self._tx_bytes += len(frame)
            self._busy_time += busy
            dst = frame[:6]
            receivers = [
                nic
                for nic in self.nics
                if nic is not sender and nic.accepts(dst)
            ]
            self._deliver_later(receivers, frame)
        finally:
            self._unclaim(channel, request)


class An1Link(Link):
    """100 Mb/s DEC SRC AN1 (Autonet) private segment.

    The paper used "a switchless, private segment": effectively a
    full-duplex point-to-point link, so each transmitter gets its own
    serialization resource.  The frame-size limit is NOT the hardware's
    (AN1 frames can reach 64 KB) — the paper's driver "encapsulates data
    into an Ethernet datagram and restricts network transmissions to
    1500-byte packets", an artifact the benchmarks must reproduce, so
    the driver enforces it, not the link.
    """

    OVERHEAD = 12  # Flag/CRC/framing bytes around the AN1 header.
    GAP = 1e-6
    HARDWARE_MAX_DATA = 65536

    def __init__(
        self,
        sim: Simulator,
        bit_rate: float = 100e6,
        propagation_delay: float = 5e-6,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        super().__init__(sim, bit_rate, propagation_delay, faults)
        self._channels: dict[int, Resource] = {}

    @property
    def max_frame(self) -> int:
        return An1Header.LENGTH + self.HARDWARE_MAX_DATA

    def frame_time(self, length: int) -> float:
        return (length + self.OVERHEAD) * 8 / self.bit_rate

    def transmit(self, sender: "Nic", frame: bytes):
        if len(frame) > self.max_frame:
            raise ValueError(
                f"frame of {len(frame)} bytes exceeds AN1 maximum"
            )
        frame = as_wire_bytes(frame)
        channel = self._channels.get(id(sender))
        if channel is None:
            channel = self._channels[id(sender)] = Resource(
                self.sim, capacity=1
            )
        request = self._claim(channel)
        yield request
        try:
            busy = self.frame_time(len(frame)) + self.GAP
            yield Timeout(self.sim, busy)
            self._frames += 1
            self._tx_bytes += len(frame)
            self._busy_time += busy
            header = An1Header.unpack(frame)
            receivers = [
                nic
                for nic in self.nics
                if nic is not sender and nic.accepts(header.dst)
            ]
            self._deliver_later(receivers, frame)
        finally:
            self._unclaim(channel, request)
