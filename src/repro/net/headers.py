"""Wire formats: real struct-packed headers for every protocol we speak.

Everything that crosses a simulated link is real bytes produced and
parsed by these classes — Ethernet, AN1 (with its buffer-queue-index
field), ARP, IPv4, UDP, TCP, and ICMP.  Checksums are genuine RFC 1071
sums; the fault-injection layer flips real bits and receivers really
reject the damage.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional

from .checksum import internet_checksum


def _octets(data):
    """Normalize ``data`` for ``struct.unpack_from``.

    bytes/bytearray/memoryview pass through; a scatter-gather chain
    (anything else with ``tobytes``, e.g. :class:`~repro.net.buf.PacketBuffer`)
    is fused — its flat image is cached, so repeated unpacks stay cheap.
    """
    if isinstance(data, (bytes, bytearray, memoryview)):
        return data
    tobytes = getattr(data, "tobytes", None)
    return tobytes() if tobytes is not None else bytes(data)


# ----------------------------------------------------------------------
# Address helpers
# ----------------------------------------------------------------------

ETHERTYPE_IP = 0x0800
ETHERTYPE_ARP = 0x0806

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

BROADCAST_MAC = b"\xff" * 6


def mac_to_str(mac: bytes) -> str:
    """``b'\\x02\\x00...'`` → ``'02:00:...'``."""
    return ":".join(f"{b:02x}" for b in mac)


def str_to_mac(text: str) -> bytes:
    """``'02:00:00:00:00:01'`` → 6 bytes."""
    parts = text.split(":")
    if len(parts) != 6:
        raise ValueError(f"bad MAC address {text!r}")
    return bytes(int(p, 16) for p in parts)


def ip_to_str(ip: int) -> str:
    """32-bit int → dotted quad."""
    return ".".join(str((ip >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def str_to_ip(text: str) -> int:
    """Dotted quad → 32-bit int."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IP address {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"bad IP address {text!r}")
        value = (value << 8) | octet
    return value


class HeaderError(ValueError):
    """A header failed to parse or validate."""


# ----------------------------------------------------------------------
# Link level: Ethernet and AN1
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class EthernetHeader:
    """Classic DIX Ethernet II header: dst, src, ethertype."""

    dst: bytes
    src: bytes
    ethertype: int

    LENGTH = 14
    _STRUCT = struct.Struct("!6s6sH")

    def __post_init__(self) -> None:
        if len(self.dst) != 6 or len(self.src) != 6:
            raise HeaderError("MAC addresses must be 6 bytes")
        if not 0 <= self.ethertype <= 0xFFFF:
            raise HeaderError(f"bad ethertype {self.ethertype:#x}")

    def pack(self) -> bytes:
        return self._STRUCT.pack(self.dst, self.src, self.ethertype)

    @classmethod
    def unpack(cls, data: bytes) -> "EthernetHeader":
        data = _octets(data)
        if len(data) < cls.LENGTH:
            raise HeaderError(f"short Ethernet header ({len(data)} bytes)")
        dst, src, ethertype = cls._STRUCT.unpack_from(data)
        return cls(dst, src, ethertype)


@dataclass(frozen=True)
class An1Header:
    """DEC SRC AN1 link header.

    The field that matters to the paper is ``bqi``, the *buffer queue
    index*: "a single field in the link-level packet header provides a
    level of indirection into a table kept in the controller" — the
    receiving controller DMAs the packet into the host buffer ring that
    the BQI names.  BQI zero is the default and refers to protected
    kernel memory.

    Station addresses are 16-bit (Autonet addressed
    point-to-point switches); ``ethertype`` selects the encapsulated
    protocol exactly as on Ethernet.

    ``adv_bqi`` models the paper's BQI-exchange trick: the registry
    server "inserts the BQI into an unused field in the AN1 link header
    which is extracted by the remote server" during the three-way
    handshake — so each side learns which BQI to stamp on subsequent
    packets for this connection.
    """

    dst: int
    src: int
    ethertype: int
    bqi: int = 0
    adv_bqi: int = 0

    LENGTH = 10
    _STRUCT = struct.Struct("!HHHHH")
    MAX_BQI = 0xFFFF

    def __post_init__(self) -> None:
        for name, value in (
            ("dst", self.dst),
            ("src", self.src),
            ("ethertype", self.ethertype),
            ("bqi", self.bqi),
            ("adv_bqi", self.adv_bqi),
        ):
            if not 0 <= value <= 0xFFFF:
                raise HeaderError(f"bad AN1 {name} {value:#x}")

    def pack(self) -> bytes:
        return self._STRUCT.pack(
            self.dst, self.src, self.ethertype, self.bqi, self.adv_bqi
        )

    @classmethod
    def unpack(cls, data: bytes) -> "An1Header":
        data = _octets(data)
        if len(data) < cls.LENGTH:
            raise HeaderError(f"short AN1 header ({len(data)} bytes)")
        dst, src, ethertype, bqi, adv_bqi = cls._STRUCT.unpack_from(data)
        return cls(dst, src, ethertype, bqi, adv_bqi)

    def with_bqi(self, bqi: int) -> "An1Header":
        """Copy with a different buffer queue index."""
        return An1Header(self.dst, self.src, self.ethertype, bqi, self.adv_bqi)


# ----------------------------------------------------------------------
# ARP
# ----------------------------------------------------------------------

ARP_REQUEST = 1
ARP_REPLY = 2


@dataclass(frozen=True)
class ArpPacket:
    """ARP for IPv4-over-Ethernet (RFC 826)."""

    oper: int
    sender_mac: bytes
    sender_ip: int
    target_mac: bytes
    target_ip: int

    LENGTH = 28
    _STRUCT = struct.Struct("!HHBBH6sI6sI")

    def __post_init__(self) -> None:
        if self.oper not in (ARP_REQUEST, ARP_REPLY):
            raise HeaderError(f"bad ARP operation {self.oper}")
        if len(self.sender_mac) != 6 or len(self.target_mac) != 6:
            raise HeaderError("ARP MAC addresses must be 6 bytes")

    def pack(self) -> bytes:
        return self._STRUCT.pack(
            1,  # htype: Ethernet
            ETHERTYPE_IP,
            6,
            4,
            self.oper,
            self.sender_mac,
            self.sender_ip,
            self.target_mac,
            self.target_ip,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "ArpPacket":
        data = _octets(data)
        if len(data) < cls.LENGTH:
            raise HeaderError(f"short ARP packet ({len(data)} bytes)")
        htype, ptype, hlen, plen, oper, sha, spa, tha, tpa = cls._STRUCT.unpack_from(data)
        if htype != 1 or ptype != ETHERTYPE_IP or hlen != 6 or plen != 4:
            raise HeaderError("unsupported ARP hardware/protocol types")
        return cls(oper, sha, spa, tha, tpa)


# ----------------------------------------------------------------------
# IPv4
# ----------------------------------------------------------------------

IP_FLAG_DF = 0x2
IP_FLAG_MF = 0x1


@dataclass(frozen=True)
class Ipv4Header:
    """IPv4 header without options (RFC 791)."""

    src: int
    dst: int
    protocol: int
    total_length: int
    ident: int = 0
    flags: int = 0
    frag_offset: int = 0  # In 8-byte units.
    ttl: int = 64
    tos: int = 0

    LENGTH = 20
    _STRUCT = struct.Struct("!BBHHHBBHII")

    def __post_init__(self) -> None:
        if not 0 <= self.total_length <= 0xFFFF:
            raise HeaderError(f"bad total length {self.total_length}")
        if not 0 <= self.frag_offset <= 0x1FFF:
            raise HeaderError(f"bad fragment offset {self.frag_offset}")
        if not 0 <= self.ident <= 0xFFFF:
            raise HeaderError(f"bad ident {self.ident}")
        if not 0 <= self.ttl <= 0xFF:
            raise HeaderError(f"bad TTL {self.ttl}")

    @property
    def more_fragments(self) -> bool:
        return bool(self.flags & IP_FLAG_MF)

    @property
    def dont_fragment(self) -> bool:
        return bool(self.flags & IP_FLAG_DF)

    def pack(self) -> bytes:
        fields = [
            (4 << 4) | 5,  # Version 4, IHL 5 words.
            self.tos,
            self.total_length,
            self.ident,
            (self.flags << 13) | self.frag_offset,
            self.ttl,
            self.protocol,
            0,  # Checksum placeholder.
            self.src,
            self.dst,
        ]
        fields[7] = internet_checksum(self._STRUCT.pack(*fields))
        return self._STRUCT.pack(*fields)

    @classmethod
    def unpack(cls, data: bytes, verify: bool = True) -> "Ipv4Header":
        data = _octets(data)
        if len(data) < cls.LENGTH:
            raise HeaderError(f"short IPv4 header ({len(data)} bytes)")
        (
            ver_ihl,
            tos,
            total_length,
            ident,
            flags_frag,
            ttl,
            protocol,
            checksum,
            src,
            dst,
        ) = cls._STRUCT.unpack_from(data)
        version = ver_ihl >> 4
        ihl = ver_ihl & 0xF
        if version != 4:
            raise HeaderError(f"not IPv4 (version={version})")
        if ihl != 5:
            raise HeaderError(f"IPv4 options unsupported (ihl={ihl})")
        if verify and internet_checksum(data[: cls.LENGTH]) != 0:
            raise HeaderError("IPv4 header checksum mismatch")
        return cls(
            src=src,
            dst=dst,
            protocol=protocol,
            total_length=total_length,
            ident=ident,
            flags=flags_frag >> 13,
            frag_offset=flags_frag & 0x1FFF,
            ttl=ttl,
            tos=tos,
        )


# ----------------------------------------------------------------------
# UDP
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class UdpHeader:
    """UDP header (RFC 768)."""

    sport: int
    dport: int
    length: int
    checksum: int = 0

    LENGTH = 8
    _STRUCT = struct.Struct("!HHHH")

    def __post_init__(self) -> None:
        for name, value in (("sport", self.sport), ("dport", self.dport)):
            if not 0 <= value <= 0xFFFF:
                raise HeaderError(f"bad UDP {name} {value}")
        if self.length < self.LENGTH:
            raise HeaderError(f"bad UDP length {self.length}")

    def pack(self) -> bytes:
        return self._STRUCT.pack(self.sport, self.dport, self.length, self.checksum)

    @classmethod
    def unpack(cls, data: bytes) -> "UdpHeader":
        data = _octets(data)
        if len(data) < cls.LENGTH:
            raise HeaderError(f"short UDP header ({len(data)} bytes)")
        sport, dport, length, checksum = cls._STRUCT.unpack_from(data)
        return cls(sport, dport, length, checksum)


# ----------------------------------------------------------------------
# TCP
# ----------------------------------------------------------------------

TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_PSH = 0x08
TCP_ACK = 0x10
TCP_URG = 0x20

TCPOPT_END = 0
TCPOPT_NOP = 1
TCPOPT_MSS = 2


@dataclass(frozen=True)
class TcpHeader:
    """TCP header (RFC 793) with MSS-option support."""

    sport: int
    dport: int
    seq: int
    ack: int
    flags: int
    window: int
    checksum: int = 0
    urgent: int = 0
    mss: Optional[int] = None  # MSS option, SYN segments only.

    LENGTH = 20
    _STRUCT = struct.Struct("!HHIIBBHHH")

    def __post_init__(self) -> None:
        for name, value in (("sport", self.sport), ("dport", self.dport)):
            if not 0 <= value <= 0xFFFF:
                raise HeaderError(f"bad TCP {name} {value}")
        for name, value in (("seq", self.seq), ("ack", self.ack)):
            if not 0 <= value <= 0xFFFFFFFF:
                raise HeaderError(f"bad TCP {name} {value}")
        if not 0 <= self.window <= 0xFFFF:
            raise HeaderError(f"bad TCP window {self.window}")
        if self.mss is not None and not 0 < self.mss <= 0xFFFF:
            raise HeaderError(f"bad TCP MSS {self.mss}")

    @property
    def header_length(self) -> int:
        """Header length in bytes including options."""
        return self.LENGTH + (4 if self.mss is not None else 0)

    def _flag(self, bit: int) -> bool:
        return bool(self.flags & bit)

    @property
    def syn(self) -> bool:
        return self._flag(TCP_SYN)

    @property
    def ack_flag(self) -> bool:
        return self._flag(TCP_ACK)

    @property
    def fin(self) -> bool:
        return self._flag(TCP_FIN)

    @property
    def rst(self) -> bool:
        return self._flag(TCP_RST)

    @property
    def psh(self) -> bool:
        return self._flag(TCP_PSH)

    def pack(self) -> bytes:
        options = b""
        if self.mss is not None:
            options = struct.pack("!BBH", TCPOPT_MSS, 4, self.mss)
        offset_words = (self.LENGTH + len(options)) // 4
        return (
            self._STRUCT.pack(
                self.sport,
                self.dport,
                self.seq,
                self.ack,
                offset_words << 4,
                self.flags,
                self.window,
                self.checksum,
                self.urgent,
            )
            + options
        )

    @classmethod
    def unpack(cls, data: bytes) -> "TcpHeader":
        data = _octets(data)
        if len(data) < cls.LENGTH:
            raise HeaderError(f"short TCP header ({len(data)} bytes)")
        (
            sport,
            dport,
            seq,
            ack,
            offset_byte,
            flags,
            window,
            checksum,
            urgent,
        ) = cls._STRUCT.unpack_from(data)
        header_len = (offset_byte >> 4) * 4
        if header_len < cls.LENGTH or header_len > len(data):
            raise HeaderError(f"bad TCP data offset {header_len}")
        mss = cls._parse_mss(data[cls.LENGTH : header_len])
        return cls(sport, dport, seq, ack, flags, window, checksum, urgent, mss)

    @staticmethod
    def _parse_mss(options: bytes) -> Optional[int]:
        i = 0
        while i < len(options):
            kind = options[i]
            if kind == TCPOPT_END:
                break
            if kind == TCPOPT_NOP:
                i += 1
                continue
            if i + 1 >= len(options):
                raise HeaderError("truncated TCP option")
            length = options[i + 1]
            if length < 2 or i + length > len(options):
                raise HeaderError("bad TCP option length")
            if kind == TCPOPT_MSS:
                if length != 4:
                    raise HeaderError("bad MSS option length")
                return struct.unpack_from("!H", options, i + 2)[0]
            i += length
        return None


# ----------------------------------------------------------------------
# ICMP
# ----------------------------------------------------------------------

ICMP_ECHO_REPLY = 0
ICMP_ECHO_REQUEST = 8
ICMP_DEST_UNREACHABLE = 3
ICMP_TIME_EXCEEDED = 11


@dataclass(frozen=True)
class IcmpHeader:
    """ICMP header for echo request/reply (RFC 792)."""

    icmp_type: int
    code: int
    ident: int = 0
    seq: int = 0
    checksum: int = 0

    LENGTH = 8
    _STRUCT = struct.Struct("!BBHHH")

    def pack(self) -> bytes:
        return self._STRUCT.pack(
            self.icmp_type, self.code, self.checksum, self.ident, self.seq
        )

    @classmethod
    def unpack(cls, data: bytes) -> "IcmpHeader":
        data = _octets(data)
        if len(data) < cls.LENGTH:
            raise HeaderError(f"short ICMP header ({len(data)} bytes)")
        icmp_type, code, checksum, ident, seq = cls._STRUCT.unpack_from(data)
        return cls(icmp_type, code, ident, seq, checksum)
