"""The Internet checksum (RFC 1071).

The real 16-bit one's-complement sum over real bytes.  TCP/IP/UDP wire
encoding uses it, corruption injection in the link layer really breaks
it, and the protocol input paths really discard segments that fail it.

The implementation sums 16-bit words via :mod:`array` for speed (the
simulation checksums every packet of every benchmark transfer), then
folds carries.
"""

from __future__ import annotations

import array
import sys


def internet_checksum(data: bytes) -> int:
    """RFC 1071 checksum of ``data``: 16-bit one's-complement of the sum.

    Returns the checksum value as an int in [0, 0xFFFF].  The returned
    value is what should be *stored* in a header whose checksum field was
    zero while summing.
    """
    if len(data) % 2:
        data = data + b"\x00"
    words = array.array("H", data)
    if sys.byteorder == "little":
        words.byteswap()
    total = sum(words)
    # Fold 32-bit (or larger) sum to 16 bits, adding carries back in.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True if ``data`` (with its checksum field in place) sums to zero.

    RFC 1071: summing a datagram *including* a correct checksum field
    yields 0xFFFF, whose complement is zero.
    """
    return internet_checksum(data) == 0


def pseudo_header(src_ip: int, dst_ip: int, protocol: int, length: int) -> bytes:
    """IPv4 pseudo-header used by TCP and UDP checksums (RFC 793 §3.1)."""
    return (
        src_ip.to_bytes(4, "big")
        + dst_ip.to_bytes(4, "big")
        + bytes((0, protocol))
        + length.to_bytes(2, "big")
    )
