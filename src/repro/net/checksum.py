"""The Internet checksum (RFC 1071) and incremental updates (RFC 1624).

The real 16-bit one's-complement sum over real bytes.  TCP/IP/UDP wire
encoding uses it, corruption injection in the link layer really breaks
it, and the protocol input paths really discard segments that fail it.

The implementation sums 16-bit words via :mod:`array` for speed (the
simulation checksums every packet of every benchmark transfer).  It
accepts ``bytes``, ``bytearray`` and ``memoryview`` without conversion,
and an odd-length buffer costs one integer add — not a full copy of the
data — because the trailing byte folds in arithmetically as the high
octet of a zero-padded word.

:func:`checksum_parts` checksums a scatter-gather sequence of fragments
without joining them (RFC 1071 §2(C): a part starting at an odd offset
contributes the byte-swap of its own sum), and
:func:`incremental_update` recomputes a checksum after a small header
patch via RFC 1624 equation 3 — the template fast path's tool.
"""

from __future__ import annotations

import array
import sys


def sum16(data) -> int:
    """Unfolded 16-bit one's-complement partial sum of ``data``.

    ``data`` is any bytes-like object; it is summed in place, with no
    copy made for odd lengths (the tail byte is added as ``byte << 8``,
    i.e. the high octet of the zero-padded final word).
    """
    view = data if isinstance(data, memoryview) else memoryview(data)
    if view.itemsize != 1:
        view = view.cast("B")
    n = len(view)
    if n == 0:
        return 0
    tail = 0
    if n % 2:
        tail = view[n - 1] << 8
        view = view[: n - 1]
    words = array.array("H")
    words.frombytes(view)
    if sys.byteorder == "little":
        words.byteswap()
    return sum(words) + tail


def fold(total: int) -> int:
    """Fold a partial sum to 16 bits, adding carries back in."""
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def internet_checksum(data) -> int:
    """RFC 1071 checksum of ``data``: 16-bit one's-complement of the sum.

    Returns the checksum value as an int in [0, 0xFFFF].  The returned
    value is what should be *stored* in a header whose checksum field was
    zero while summing.
    """
    return ~fold(sum16(data)) & 0xFFFF


def checksum_parts(*parts) -> int:
    """RFC 1071 checksum of the concatenation of ``parts``, unjoined.

    Equivalent to ``internet_checksum(b"".join(parts))`` but never
    builds the joined buffer: each part is summed where it lies, and a
    part that begins at an odd global offset contributes its sum
    byte-swapped (RFC 1071 §2(C)).  Parts may be bytes-like objects or
    fragment chains exposing ``.fragments``.
    """
    total = 0
    odd = False
    for part in _iter_leaves(parts):
        n = len(part)
        if n == 0:
            continue
        s = fold(sum16(part))
        if odd:
            s = ((s & 0xFF) << 8) | (s >> 8)
        total += s
        if n % 2:
            odd = not odd
    return ~fold(total) & 0xFFFF


def _iter_leaves(parts):
    for part in parts:
        frags = getattr(part, "fragments", None)
        if frags is not None:
            yield from _iter_leaves(frags)
        else:
            yield part


def incremental_update(old_checksum: int, old_bytes, new_bytes) -> int:
    """RFC 1624 eqn. 3: the checksum after ``old_bytes`` → ``new_bytes``.

    ``old_checksum`` is the stored (complemented) checksum of a buffer in
    which the even-aligned field ``old_bytes`` is being overwritten with
    ``new_bytes`` of the same (even) length.  Returns the new stored
    checksum without resumming the buffer:  HC' = ~(~HC + ~m + m').
    """
    if len(old_bytes) != len(new_bytes):
        raise ValueError("patched field must keep its length")
    if len(old_bytes) % 2:
        raise ValueError("patched field must be 16-bit aligned")
    total = ~old_checksum & 0xFFFF
    total += fold(~fold(sum16(old_bytes)) & 0xFFFF)
    total += fold(sum16(new_bytes))
    return ~fold(total) & 0xFFFF


def verify_checksum(data) -> bool:
    """True if ``data`` (with its checksum field in place) sums to zero.

    RFC 1071: summing a datagram *including* a correct checksum field
    yields 0xFFFF, whose complement is zero.
    """
    return internet_checksum(data) == 0


def pseudo_header(src_ip: int, dst_ip: int, protocol: int, length: int) -> bytes:
    """IPv4 pseudo-header used by TCP and UDP checksums (RFC 793 §3.1)."""
    return (
        src_ip.to_bytes(4, "big")
        + dst_ip.to_bytes(4, "big")
        + bytes((0, protocol))
        + length.to_bytes(2, "big")
    )
