"""Scatter-gather packet buffers: the paper's no-copy datapath.

The paper's second host mechanism is *protected shared packet buffers*:
the library builds a segment in place and the device sends it "without
copies".  :class:`PacketBuffer` is the simulator's equivalent of a BSD
mbuf chain or an iovec: an ordered list of read-only fragments
(``bytes``/``memoryview``) that supports cheap header prepend, trim and
split, with the flat ``bytes`` image produced lazily — once — when the
frame actually reaches a wire (or a tracer / fault injector that needs
real octets to corrupt).

Copy accounting
---------------
Every byte the datapath copies, avoids copying, or fuses for the wire is
counted in a module-global :class:`CopyStats`, so benchmarks can report
*bytes copied per delivered segment* — the quantity the paper's shared
buffers eliminate.  Two global modes exist so the before/after
comparison runs the same code:

``chain`` (default)
    :func:`prepend` builds fragment chains and :func:`slice_view`
    returns ``memoryview`` windows; the bytes that the legacy path
    would have copied are counted as *avoided*.

``eager``
    Both helpers degrade to the legacy behaviour — real concatenation
    and real slice copies — and the copied bytes are counted.  This is
    the "before" arm of ``benchmarks/bench_zero_copy.py``.
"""

from __future__ import annotations

from typing import Iterator, Union

Fragment = Union[bytes, bytearray, memoryview]

#: Global datapath mode: "chain" (zero-copy) or "eager" (legacy copies).
_MODE = "chain"


class CopyStats:
    """Byte-granular accounting of datapath copy behaviour."""

    __slots__ = ("copied_bytes", "copy_ops", "avoided_bytes",
                 "materialized_bytes", "materialize_ops")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        #: Bytes physically copied by the host datapath (concat, slice).
        self.copied_bytes = 0
        self.copy_ops = 0
        #: Bytes a legacy copy would have moved that a view/chain did not.
        self.avoided_bytes = 0
        #: Bytes fused into flat wire images at the device boundary.
        self.materialized_bytes = 0
        self.materialize_ops = 0

    @property
    def total_copied(self) -> int:
        """All bytes that crossed a copy: host copies plus wire fusion."""
        return self.copied_bytes + self.materialized_bytes

    def snapshot(self) -> dict:
        return {
            "copied_bytes": self.copied_bytes,
            "copy_ops": self.copy_ops,
            "avoided_bytes": self.avoided_bytes,
            "materialized_bytes": self.materialized_bytes,
            "materialize_ops": self.materialize_ops,
            "total_copied": self.total_copied,
        }


#: The process-wide accounting instance (reset per benchmark arm).
STATS = CopyStats()

#: Observability hook: when packet-lifecycle tracing is enabled
#: (``repro.obs.spans.enable``), this holds a ``bind(fused_bytes,
#: trace_id)`` callable so the flat wire image produced by
#: :meth:`PacketBuffer.tobytes` stays associated with the chain's trace
#: id after the chain itself is gone.  ``None`` (the default) keeps the
#: fusion path free of any tracing cost beyond this one identity test.
SPAN_BINDER = None


def set_mode(mode: str) -> None:
    """Switch the datapath between "chain" and "eager" behaviour."""
    global _MODE
    if mode not in ("chain", "eager"):
        raise ValueError(f"unknown buffer mode {mode!r}")
    _MODE = mode


def get_mode() -> str:
    return _MODE


def reset_stats() -> None:
    STATS.reset()


class PacketBuffer:
    """An immutable-content chain of packet fragments.

    Fragments are stored outermost-header-first.  The chain itself can
    grow at the front (:meth:`prepend_header`) and shrink at the tail
    (:meth:`trim`), mirroring mbuf usage; the underlying fragment bytes
    are never mutated, so a cached segment image can appear in many
    frames at once (the retransmit path relies on this).
    """

    __slots__ = ("_frags", "_length", "_fused", "trace_id")

    def __init__(self, fragments: "Iterator[Fragment] | tuple | list" = ()) -> None:
        frags: list[Fragment] = []
        trace_id = None
        for frag in fragments:
            if isinstance(frag, PacketBuffer):
                frags.extend(frag._frags)
                # Encapsulation builds a new chain around the payload
                # chain; inheriting the payload's trace id here is what
                # lets one id minted at encode survive IP and link
                # framing without per-layer plumbing.
                if trace_id is None:
                    trace_id = frag.trace_id
            elif len(frag):
                frags.append(frag)
        self._frags = frags
        self._length = sum(len(f) for f in frags)
        self._fused: bytes | None = None
        self.trace_id = trace_id

    # -- construction ---------------------------------------------------

    @classmethod
    def from_bytes(cls, data: Fragment) -> "PacketBuffer":
        return cls((data,))

    def prepend_header(self, header: Fragment) -> "PacketBuffer":
        """Attach ``header`` in front of the chain (in place, O(1))."""
        if isinstance(header, PacketBuffer):
            self._frags[:0] = header._frags
            self._length += len(header)
        elif len(header):
            self._frags.insert(0, header)
            self._length += len(header)
        self._fused = None
        return self

    def append(self, frag: Fragment) -> "PacketBuffer":
        if isinstance(frag, PacketBuffer):
            self._frags.extend(frag._frags)
            self._length += len(frag)
        elif len(frag):
            self._frags.append(frag)
            self._length += len(frag)
        self._fused = None
        return self

    # -- mbuf-style editing ---------------------------------------------

    def trim(self, n: int) -> "PacketBuffer":
        """Drop the last ``n`` bytes (in place, no data copied)."""
        if n <= 0:
            return self
        remaining = n
        while remaining and self._frags:
            tail = self._frags[-1]
            if len(tail) <= remaining:
                remaining -= len(tail)
                self._frags.pop()
            else:
                keep = len(tail) - remaining
                view = tail if isinstance(tail, memoryview) else memoryview(tail)
                self._frags[-1] = view[:keep]
                remaining = 0
        self._length -= n - remaining
        self._fused = None
        return self

    def split(self, offset: int) -> "tuple[PacketBuffer, PacketBuffer]":
        """Split into two chains at ``offset`` without copying data."""
        head: list[Fragment] = []
        tail: list[Fragment] = []
        remaining = offset
        for frag in self._frags:
            if remaining >= len(frag):
                head.append(frag)
                remaining -= len(frag)
            elif remaining > 0:
                view = frag if isinstance(frag, memoryview) else memoryview(frag)
                head.append(view[:remaining])
                tail.append(view[remaining:])
                remaining = 0
            else:
                tail.append(frag)
        return PacketBuffer(head), PacketBuffer(tail)

    # -- reading --------------------------------------------------------

    @property
    def fragments(self) -> "tuple[Fragment, ...]":
        return tuple(self._frags)

    def tobytes(self) -> bytes:
        """The flat wire image; fused once, then cached."""
        if self._fused is None:
            if len(self._frags) == 1:
                self._fused = bytes(self._frags[0])
            else:
                self._fused = b"".join(
                    f if isinstance(f, bytes) else bytes(f)
                    for f in self._frags
                )
            STATS.materialized_bytes += self._length
            STATS.materialize_ops += 1
            if self.trace_id is not None and SPAN_BINDER is not None:
                SPAN_BINDER(self._fused, self.trace_id)
        return self._fused

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __iter__(self) -> Iterator[int]:
        for frag in self._frags:
            yield from (frag if isinstance(frag, (bytes, bytearray))
                        else bytes(frag))

    def __getitem__(self, key):
        if isinstance(key, int):
            if key < 0:
                key += self._length
            if not 0 <= key < self._length:
                raise IndexError("PacketBuffer index out of range")
            for frag in self._frags:
                if key < len(frag):
                    return frag[key]
                key -= len(frag)
            raise IndexError("PacketBuffer index out of range")
        if isinstance(key, slice):
            start, stop, step = key.indices(self._length)
            if step != 1:
                raise ValueError("PacketBuffer slices must be contiguous")
            if self._fused is not None:
                return self._fused[start:stop]
            out = bytearray()
            want = stop - start
            for frag in self._frags:
                if want <= 0:
                    break
                if start >= len(frag):
                    start -= len(frag)
                    continue
                piece = frag[start:start + want]
                out.extend(piece)
                want -= len(piece)
                start = 0
            return bytes(out)
        raise TypeError(f"bad PacketBuffer index {key!r}")

    def __add__(self, other) -> "PacketBuffer":
        """Concatenation composes chains without fusing either side."""
        if isinstance(other, (PacketBuffer, bytes, bytearray, memoryview)):
            return PacketBuffer((self, other))
        return NotImplemented

    def __radd__(self, other) -> "PacketBuffer":
        if isinstance(other, (bytes, bytearray, memoryview)):
            return PacketBuffer((other, self))
        return NotImplemented

    def __eq__(self, other) -> bool:
        if isinstance(other, PacketBuffer):
            return self.tobytes() == other.tobytes()
        if isinstance(other, (bytes, bytearray, memoryview)):
            return self.tobytes() == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.tobytes())

    def __repr__(self) -> str:
        return (
            f"PacketBuffer({len(self._frags)} frags, {self._length} bytes"
            f"{', fused' if self._fused is not None else ''})"
        )


# ----------------------------------------------------------------------
# Datapath helpers — every encode/decode site goes through these.
# ----------------------------------------------------------------------

def prepend(header: Fragment, payload) -> "PacketBuffer | bytes":
    """Put ``header`` in front of ``payload`` — the encapsulation step.

    Chain mode returns a fresh :class:`PacketBuffer` (the payload chain
    is shared, not copied, so cached segment images stay reusable);
    eager mode performs the legacy concatenation and counts the copy.
    """
    if _MODE == "chain":
        STATS.avoided_bytes += len(payload)
        return PacketBuffer((header, payload))
    flat = _flatten(header) + _flatten(payload)
    STATS.copied_bytes += len(flat)
    STATS.copy_ops += 1
    return flat


def slice_view(data, start: int, stop: "int | None" = None):
    """A window into ``data`` — the decapsulation step.

    Chain mode returns a ``memoryview`` (zero copy, counted as avoided);
    eager mode returns a fresh ``bytes`` slice (counted as copied).
    """
    if isinstance(data, PacketBuffer):
        data = data.tobytes()
    if stop is None:
        stop = len(data)
    if _MODE == "chain":
        view = memoryview(data)[start:stop]
        STATS.avoided_bytes += len(view)
        return view
    piece = bytes(data[start:stop])
    STATS.copied_bytes += len(piece)
    STATS.copy_ops += 1
    return piece


def as_wire_bytes(frame) -> bytes:
    """Materialize ``frame`` into flat octets at a device boundary.

    Idempotent and cached: a chain fused for a tracer is not fused again
    by the link.  Plain ``bytes`` pass through untouched.
    """
    if isinstance(frame, bytes):
        return frame
    if isinstance(frame, PacketBuffer):
        return frame.tobytes()
    flat = bytes(frame)
    STATS.materialized_bytes += len(flat)
    STATS.materialize_ops += 1
    return flat


def _flatten(data) -> bytes:
    if isinstance(data, bytes):
        return data
    if isinstance(data, PacketBuffer):
        return data.tobytes()
    return bytes(data)
