"""Deterministic fault injection for simulated links.

Drops, duplicates, bit-corruption, and extra delay (reordering), driven
by a seeded RNG so every test run is reproducible.  Corruption flips
real bits in the frame — the link-level CRC is modelled as *not*
catching it (as if the damage occurred past the link layer), so the
protocol checksums are what must detect it, which is exactly the code
path we want exercised.
"""

from __future__ import annotations

from ..counters import Counters
import random
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class FaultPlan:
    """What should happen to one transmitted frame."""

    deliveries: tuple[tuple[float, bytes], ...]  # (extra_delay, data)
    dropped: bool = False
    corrupted: bool = False


class FaultInjector:
    """Per-link fault model with independent event probabilities.

    The injector's ``stats`` counters are the *authoritative* fault
    accounting: they are incremented exactly once, inside :meth:`plan`,
    at the moment the fate of a frame is decided.  Links expose them
    read-only through ``Link.stats`` rather than keeping a second set of
    counters — the conformance checkers (:mod:`repro.check`) rely on
    there being one source of truth to conserve against.
    """

    def __init__(
        self,
        drop_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        max_extra_delay: float = 0.0,
        seed: int = 0,
    ) -> None:
        for name, rate in (
            ("drop_rate", drop_rate),
            ("corrupt_rate", corrupt_rate),
            ("duplicate_rate", duplicate_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if max_extra_delay < 0:
            raise ValueError("max_extra_delay must be non-negative")
        self.drop_rate = drop_rate
        self.corrupt_rate = corrupt_rate
        self.duplicate_rate = duplicate_rate
        self.max_extra_delay = max_extra_delay
        self._rng = random.Random(seed)
        self.stats = Counters()

    @property
    def inert(self) -> bool:
        """True when every fault rate is zero: :meth:`plan` would return
        one on-time, unmodified delivery, so links may skip planning."""
        return not (
            self.drop_rate
            or self.corrupt_rate
            or self.duplicate_rate
            or self.max_extra_delay
        )

    def snapshot(self) -> dict:
        """A copy of the fault counters (for reports and evidence)."""
        return Counters(self.stats)

    def plan(self, data: bytes) -> FaultPlan:
        """Decide the fate of one frame."""
        if self.drop_rate and self._rng.random() < self.drop_rate:
            self.stats["dropped"] += 1
            return FaultPlan(deliveries=(), dropped=True)
        corrupted = False
        if self.corrupt_rate and self._rng.random() < self.corrupt_rate:
            corrupted = True
            self.stats["corrupted"] += 1
            data = self._flip_bit(data)
        deliveries = [(self._delay(), data)]
        if self.duplicate_rate and self._rng.random() < self.duplicate_rate:
            self.stats["duplicated"] += 1
            deliveries.append((self._delay(), data))
        return FaultPlan(deliveries=tuple(deliveries), corrupted=corrupted)

    def _delay(self) -> float:
        if not self.max_extra_delay:
            return 0.0
        extra = self._rng.random() * self.max_extra_delay
        if extra:
            self.stats["delayed"] += 1
        return extra

    def _flip_bit(self, data: bytes) -> bytes:
        if not data:
            return data
        frame = bytearray(data)
        index = self._rng.randrange(len(frame))
        frame[index] ^= 1 << self._rng.randrange(8)
        return bytes(frame)


#: A fault injector that never does anything — the default for links.
PERFECT = FaultInjector()
