"""Host-network interfaces: PMADD-AA (PIO Ethernet) and AN1 (DMA + BQI)."""

from .an1ctrl import AN1_BROADCAST, An1Nic, BufferRing
from .base import Nic, RxHandler
from .pmadd import PmaddNic

__all__ = ["Nic", "RxHandler", "PmaddNic", "An1Nic", "BufferRing", "AN1_BROADCAST"]
