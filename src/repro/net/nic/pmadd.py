"""The DEC PMADD-AA TurboChannel Ethernet interface (LANCE-based).

The paper (§3.3): "This interface does not have DMA capabilities to and
from the host memory.  Instead, there are special packet buffers on
board the controller that serve as a staging area for data.  The host
transfers data between these buffers and host memory using programmed
I/O."

So every byte crossing this NIC costs host CPU (the PIO rate), on both
transmit and receive — the dominant per-packet cost on the Ethernet
path, and the reason AN1 (DMA) changes the balance in Tables 2/3.
"""

from __future__ import annotations

from typing import Any, Generator

from ...counters import Counters
from ...mach.kernel import Kernel
from ...obs import spans as _spans
from ...sim import Store, Timeout
from ..headers import BROADCAST_MAC, EthernetHeader
from ..link import EthernetLink
from .base import Nic


class PmaddNic(Nic):
    """Programmed-I/O Ethernet controller with on-board staging buffers."""

    #: Staging capacity in each direction: the board's slots plus the
    #: driver's receive descriptor ring in host memory (LANCE drivers
    #: typically configured 16-32 ring entries).
    BOARD_BUFFERS = 32

    def __init__(
        self,
        kernel: Kernel,
        link: EthernetLink,
        mac: bytes,
        name: str = "pmadd",
    ) -> None:
        super().__init__(kernel, link, name)
        if len(mac) != 6:
            raise ValueError("MAC must be 6 bytes")
        self.mac = mac
        self._tx_buffers: Store = Store(kernel.sim, capacity=self.BOARD_BUFFERS)
        self._rx_buffers: list[bytes] = []
        self._rx_interrupt_pending = False
        self._rxintr_name = f"{name}-rxintr"
        # Per-frame counters as plain attributes (two Counters item
        # assignments per frame each way are measurable at fabric
        # scale); ``stats`` merges them with the base dict on read.
        self._tx_frames = 0
        self._tx_byte_count = 0
        self._rx_frames = 0
        self._rx_byte_count = 0
        kernel.sim.process(self._tx_loop(), name=f"{name}-tx")

    @property
    def stats(self):
        merged = Counters()
        merged.update(self._stats)
        merged["tx_frames"] = self._tx_frames
        merged["tx_bytes"] = self._tx_byte_count
        merged["rx_frames"] = self._rx_frames
        merged["rx_bytes"] = self._rx_byte_count
        return merged

    @stats.setter
    def stats(self, value) -> None:
        # The base __init__ assigns ``self.stats = Counters()``; route
        # that (and any test override) to the rare-counter dict.
        self._stats = value

    @property
    def mtu_data(self) -> int:
        return EthernetLink.MTU_DATA

    def accepts(self, dst: Any) -> bool:
        return dst == self.mac or dst == BROADCAST_MAC

    # ------------------------------------------------------------------
    # Transmit: PIO copy to board, then board puts it on the wire.
    # ------------------------------------------------------------------

    def driver_transmit(self, frame: bytes) -> Generator:
        costs = self.kernel.cost_table
        cost = costs.pio_cost(len(frame)) + costs.pmadd_per_packet
        rec = _spans.RECORDER
        if rec is not None:
            rec.touch(frame, "nic.tx", self.sim.now, self.name, cost=cost)
        # Open-coded cpu.consume(cost): identical event sequence, one
        # less generator frame per transmitted frame (see CPU.claim).
        cpu = self.kernel.cpu
        if cost:
            request = cpu.claim()
            try:
                yield request
            except BaseException:
                cpu.abandon(request)
                raise
            try:
                yield Timeout(self.sim, cost)
                cpu.busy_time += cost
            finally:
                cpu.unclaim(request)
        # Blocks when all staging buffers are full: natural backpressure.
        yield self._tx_buffers.put(frame)
        self._tx_frames += 1
        self._tx_byte_count += len(frame)

    def _tx_loop(self) -> Generator:
        while True:
            frame = yield self._tx_buffers.get()
            yield from self.link.transmit(self, frame)

    # ------------------------------------------------------------------
    # Receive: stage on board, interrupt, PIO copy to host, hand off.
    # ------------------------------------------------------------------

    def wire_deliver(self, frame: bytes) -> None:
        rec = _spans.RECORDER
        if len(self._rx_buffers) >= self.BOARD_BUFFERS:
            self._stats["rx_dropped_no_buffer"] += 1
            if rec is not None:
                rec.touch(frame, "nic.drop", self.sim.now, self.name,
                          detail="no rx buffer")
            return
        if rec is not None:
            rec.touch(frame, "nic.rx", self.sim.now, self.name)
        self._rx_buffers.append(frame)
        if not self._rx_interrupt_pending:
            self._rx_interrupt_pending = True
            self.sim.process(self._rx_interrupt(), name=self._rxintr_name)

    def _rx_interrupt(self) -> Generator:
        costs = self.kernel.cost_table
        cpu = self.kernel.cpu
        sim = self.sim
        try:
            while self._rx_buffers:
                # Two open-coded cpu.consume charges (interrupt entry,
                # then the PIO copy): same events, no delegating frames
                # on the hottest per-frame path in the simulator.
                cost = costs.interrupt
                if cost:
                    request = cpu.claim()
                    try:
                        yield request
                    except BaseException:
                        cpu.abandon(request)
                        raise
                    try:
                        yield Timeout(sim, cost)
                        cpu.busy_time += cost
                    finally:
                        cpu.unclaim(request)
                # Drain every frame staged by the time we got the CPU —
                # the natural interrupt-coalescing a busy receiver sees.
                frame = self._rx_buffers.pop(0)
                cost = costs.pio_cost(len(frame))
                if cost:
                    request = cpu.claim()
                    try:
                        yield request
                    except BaseException:
                        cpu.abandon(request)
                        raise
                    try:
                        yield Timeout(sim, cost)
                        cpu.busy_time += cost
                    finally:
                        cpu.unclaim(request)
                self._rx_frames += 1
                self._rx_byte_count += len(frame)
                # Dispatch straight to the handler: the _run_rx_handler
                # wrapper would add a generator frame to every resume of
                # the whole downstream receive path.
                handler = self.rx_handler
                if handler is None:
                    self._stats["rx_ignored"] += 1
                else:
                    yield from handler(frame, None)
        finally:
            # Never wedge the interrupt path: even if a handler raised,
            # the next delivery must be able to spawn a fresh handler.
            self._rx_interrupt_pending = False
