"""The DEC SRC AN1 host-network interface with BQI hardware demux.

The paper (§2.2, §3.3): the controller keeps a table indexed by the
*buffer queue index* (BQI) carried in the link header.  Each entry names
a ring of pinned host buffers; an arriving packet is DMAed directly into
the next buffer of the ring its BQI selects — hardware packet
demultiplexing to the final destination process, with "strict access
control to the index ... maintained through memory protection".

BQI zero is the default and refers to protected kernel memory.  Rings
for non-zero BQIs are installed only by the (privileged) network I/O
module on the registry server's instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ...mach.kernel import Kernel
from ...obs import spans as _spans
from ...sim import Store
from ..headers import An1Header, HeaderError
from ..link import An1Link
from .base import Nic

#: AN1 broadcast station address.
AN1_BROADCAST = 0xFFFF


@dataclass(eq=False)  # identity semantics: rings are charged/attributed by object
class BufferRing:
    """One BQI table entry: a ring of receive buffers in host memory.

    ``available`` counts free buffers; the owner replenishes by handing
    consumed buffers back (paper: "When the library is done with the
    buffer it hands it back to the network module which adds it to the
    BQI ring").
    """

    bqi: int
    capacity: int
    available: int = 0
    #: Identifies the owning channel (opaque to the controller).
    owner: Any = None
    #: Tenant attribution (a tenant_id string), stamped by the network
    #: I/O module when the ring is charged against a tenant's BQI quota.
    tenant_id: Any = None
    stats: dict = field(default_factory=lambda: {"delivered": 0, "dropped": 0})

    def __post_init__(self) -> None:
        if self.available == 0:
            self.available = self.capacity

    def take(self) -> bool:
        """Consume one buffer for an incoming packet, if any is free."""
        if self.available == 0:
            self.stats["dropped"] += 1
            return False
        self.available -= 1
        self.stats["delivered"] += 1
        return True

    def replenish(self, n: int = 1) -> None:
        """Return ``n`` buffers to the ring."""
        self.available = min(self.capacity, self.available + n)


class An1Nic(Nic):
    """DMA-capable AN1 controller with a BQI ring table."""

    #: DMA engine latency per packet (bus arbitration + transfer start).
    DMA_LATENCY = 5e-6

    def __init__(
        self,
        kernel: Kernel,
        link: An1Link,
        station: int,
        name: str = "an1",
        driver_mtu_data: int = 1500,
    ) -> None:
        """``driver_mtu_data`` defaults to the paper's artifact: the
        driver encapsulates into Ethernet-sized datagrams even though the
        hardware takes 64 KB frames.  The ablation bench raises it."""
        super().__init__(kernel, link, name)
        if not 0 <= station < AN1_BROADCAST:
            raise ValueError(f"bad station address {station}")
        self._driver_mtu_data = driver_mtu_data
        self.station = station
        self._tx_queue: Store = Store(kernel.sim, capacity=32)
        #: The hardware BQI table.  Entry 0 (kernel default) is installed
        #: by the network I/O module at boot.
        self.bqi_table: dict[int, BufferRing] = {}
        self._next_bqi = 1
        kernel.sim.process(self._tx_loop(), name=f"{name}-tx")

    @property
    def mtu_data(self) -> int:
        return min(
            self._driver_mtu_data, self.link.max_frame - An1Header.LENGTH
        )

    def accepts(self, dst: Any) -> bool:
        return dst == self.station or dst == AN1_BROADCAST

    # ------------------------------------------------------------------
    # BQI table management (privileged; called via the netio module)
    # ------------------------------------------------------------------

    def allocate_bqi(self, capacity: int, owner: Any = None) -> BufferRing:
        """Install a fresh ring and return it (its index is ring.bqi)."""
        bqi = self._next_bqi
        self._next_bqi += 1
        ring = BufferRing(bqi=bqi, capacity=capacity, owner=owner)
        self.bqi_table[bqi] = ring
        return ring

    def install_default_ring(self, capacity: int = 64) -> BufferRing:
        """BQI 0: the protected kernel ring."""
        ring = BufferRing(bqi=0, capacity=capacity, owner="kernel")
        self.bqi_table[0] = ring
        return ring

    def release_bqi(self, bqi: int) -> None:
        if bqi == 0:
            raise ValueError("cannot release the kernel's BQI 0")
        self.bqi_table.pop(bqi, None)

    # ------------------------------------------------------------------
    # Transmit: descriptor write, then the controller DMAs and sends.
    # ------------------------------------------------------------------

    def driver_transmit(self, frame: bytes) -> Generator:
        if len(frame) > self.mtu_data + An1Header.LENGTH:
            raise ValueError(
                f"frame of {len(frame)} bytes exceeds driver MTU "
                f"{self.mtu_data}"
            )
        cost = self.kernel.cost_table.an1_dma_setup
        rec = _spans.RECORDER
        if rec is not None:
            rec.touch(frame, "nic.tx", self.sim.now, self.name, cost=cost)
        yield from self.kernel.cpu.consume(cost)
        yield self._tx_queue.put(frame)
        self.stats["tx_frames"] += 1
        self.stats["tx_bytes"] += len(frame)

    def _tx_loop(self) -> Generator:
        while True:
            frame = yield self._tx_queue.get()
            yield self.sim.timeout(self.DMA_LATENCY)  # Fetch via DMA.
            yield from self.link.transmit(self, frame)

    # ------------------------------------------------------------------
    # Receive: hardware BQI demux straight into a host ring.
    # ------------------------------------------------------------------

    def wire_deliver(self, frame: bytes) -> None:
        try:
            header = An1Header.unpack(frame)
        except HeaderError:
            self.stats["rx_ignored"] += 1
            return
        ring = self.bqi_table.get(header.bqi)
        if ring is None:
            # Unknown BQI: hardware falls back to the kernel's ring.
            ring = self.bqi_table.get(0)
        rec = _spans.RECORDER
        if ring is None or not ring.take():
            self.stats["rx_dropped_no_buffer"] += 1
            if rec is not None:
                rec.touch(frame, "nic.drop", self.sim.now, self.name,
                          detail="no ring buffer")
            return
        if rec is not None:
            rec.touch(frame, "nic.rx", self.sim.now, self.name,
                      detail=f"bqi={ring.bqi}")
        self.sim.process(
            self._rx_dma(frame, ring), name=f"{self.name}-rxdma"
        )

    def _rx_dma(self, frame: bytes, ring: BufferRing) -> Generator:
        yield self.sim.timeout(self.DMA_LATENCY)  # DMA into the ring.
        yield from self.kernel.cpu.consume(self.kernel.cost_table.interrupt)
        self.stats["rx_frames"] += 1
        self.stats["rx_bytes"] += len(frame)
        yield from self._run_rx_handler(frame, ring)
