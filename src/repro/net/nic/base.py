"""Host-network interface base class.

A NIC sits between a host kernel (CPU costs, interrupt handlers) and a
link (wire time).  The network I/O module installs ``rx_handler``; the
driver side calls :meth:`driver_transmit` from within a host process.
"""

from __future__ import annotations

from ...counters import Counters
import abc
from typing import Any, Callable, Generator, Optional

from ...mach.kernel import Kernel
from ..link import Link

#: Installed by the network I/O module: ``handler(frame, context)`` is a
#: generator run in interrupt context.  ``context`` is None for NICs
#: without hardware demux, or the ring the hardware selected.
RxHandler = Callable[[bytes, Any], Generator]


class Nic(abc.ABC):
    """One host-network interface attached to one link."""

    def __init__(self, kernel: Kernel, link: Link, name: str) -> None:
        self.kernel = kernel
        self.sim = kernel.sim
        self.link = link
        self.name = name
        self.rx_handler: Optional[RxHandler] = None
        self.stats = Counters()
        link.attach(self)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"

    @property
    @abc.abstractmethod
    def mtu_data(self) -> int:
        """Payload bytes available above the link header."""

    @abc.abstractmethod
    def accepts(self, dst: Any) -> bool:
        """Hardware address filter (free: done by the controller)."""

    @abc.abstractmethod
    def driver_transmit(self, frame: bytes) -> Generator:
        """Send ``frame``; charges the driver-side device costs."""

    @abc.abstractmethod
    def wire_deliver(self, frame: bytes) -> None:
        """Called by the link when a frame arrives at this NIC."""

    def _run_rx_handler(self, frame: bytes, context: Any) -> Generator:
        if self.rx_handler is None:
            self.stats["rx_ignored"] += 1
            return
        yield from self.rx_handler(frame, context)
