"""The monolithic protocol organizations (left side of paper Figure 1).

One :class:`MonolithicTcpStack` implementation serves four variants,
distinguished only by their :class:`~repro.org.base.PathProfile`:

* **Ultrix in-kernel** — app traps into the kernel; the stack runs in
  kernel context next to the driver.
* **Mach/UX single-server (mapped device)** — app reaches the UX server
  by Mach IPC; the server maps the device and drives it directly.
* **Mach/UX single-server (unmapped device)** — as above, but the
  kernel driver and the server exchange messages per packet (the paper
  notes this variant performs worse than the mapped one).
* **Dedicated servers** — one server per protocol stack plus separate
  device management: extra address-space crossings on the common path
  (the organization the paper's design explicitly outperforms).

The TCP/IP code executed is the *same sans-io stack* our library
organization runs — the paper's "apples to apples" setup.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..costs import CostModel
from ..host import Host
from ..net.headers import PROTO_TCP
from ..netio.module import LinkInfo
from ..protocols.tcp import (
    ChecksumError,
    Segment,
    TcpConfig,
    TcpMachine,
    decode_segment,
    encode_segment,
)
from ..net.headers import HeaderError, TCP_RST, TCP_ACK
from ..sim import Event, Store
from .base import PathProfile, TcpConnection, TcpListener, TcpService, no_cost
from .runner import MachineRunner


# ----------------------------------------------------------------------
# Path profiles
# ----------------------------------------------------------------------


def _copy_in_bsd(costs: CostModel, nbytes: int) -> float:
    """BSD/Ultrix user↔kernel data movement.

    The paper: Ultrix has the same copy-eliminating buffer organization
    we do, "but it is invoked only when the user packet size is 1024
    bytes or larger" — below that it pays the byte copy.
    """
    if nbytes >= 1024:
        return 120e-6  # Page-remap bookkeeping instead of a copy.
    # Small transfers pay the byte copy plus mbuf-chain handling.
    return costs.copy_cost(nbytes) + costs.mbuf_small


ULTRIX = PathProfile(
    name="ultrix-inkernel",
    send_entry=lambda c, n: c.syscall_trap + c.socket_op + _copy_in_bsd(c, n),
    send_device=no_cost,  # The stack runs beside the driver.
    recv_dispatch=no_cost,  # Interrupt context flows into tcp_input.
    # Per read(): trap + socket work + the data movement.  The wakeup
    # context switch is charged separately, only when the read blocked.
    recv_exit=lambda c, n: c.syscall_trap + c.socket_op + _copy_in_bsd(c, n),
    pcb_lookup=True,
    setup_overhead=0.9e-3,
    ipc_counts=(0, 0, 0, 0),
)

MACH_UX_MAPPED = PathProfile(
    name="machux-single-server",
    # write(): IPC to the UX server carrying the data, plus the reply.
    send_entry=lambda c, n: c.ipc_cost(n) + c.mach_ipc + c.socket_op,
    # Mapped device: the server pokes it directly; small user-space
    # device-access premium.
    send_device=lambda c, n: 50e-6,
    # Interrupt in the kernel, then a dispatch to the server task.
    recv_dispatch=lambda c, n: c.context_switch,
    # read(): data crosses server→app by IPC.
    recv_exit=lambda c, n: c.ipc_cost(n) + c.mach_ipc,
    pcb_lookup=True,
    setup_overhead=4.0e-3,
    ipc_counts=(2, 0, 0, 2),
)

MACH_UX_UNMAPPED = PathProfile(
    name="machux-unmapped",
    send_entry=MACH_UX_MAPPED.send_entry,
    # Device in the kernel: each packet crosses server→kernel by message.
    send_device=lambda c, n: c.ipc_cost(n),
    recv_dispatch=lambda c, n: c.context_switch + c.ipc_cost(n),
    recv_exit=MACH_UX_MAPPED.recv_exit,
    pcb_lookup=True,
    setup_overhead=4.5e-3,
    ipc_counts=(2, 1, 1, 2),
)

DEDICATED_SERVERS = PathProfile(
    name="dedicated-servers",
    # app → protocol server, protocol server → device server, each hop
    # a full message with the data.
    send_entry=lambda c, n: c.ipc_cost(n) + c.mach_ipc + c.socket_op,
    send_device=lambda c, n: c.ipc_cost(n) + c.mach_ipc,
    recv_dispatch=lambda c, n: c.context_switch + c.ipc_cost(n) + c.mach_ipc,
    recv_exit=lambda c, n: c.ipc_cost(n) + c.mach_ipc + c.context_switch,
    pcb_lookup=True,
    setup_overhead=5.5e-3,
    ipc_counts=(2, 2, 2, 2),
)


# ----------------------------------------------------------------------
# The stack
# ----------------------------------------------------------------------


class MonolithicTcpStack(TcpService):
    """TCP living in one trusted place (kernel or server)."""

    def __init__(
        self,
        host: Host,
        profile: PathProfile,
        config: Optional[TcpConfig] = None,
    ) -> None:
        self.host = host
        self.profile = profile
        self.config = config or TcpConfig()
        self.kernel = host.kernel
        self.sim = host.sim
        self._connections: dict[tuple[int, int, int], "MonoConnection"] = {}
        self._listeners: dict[int, "MonoListener"] = {}
        self._next_port = 1024
        self._next_iss = 1
        host.tcp_kernel_handler = self._tcp_rx
        self.stats = {"rx_segments": 0, "rx_bad_checksum": 0, "rx_no_match": 0}

    # ------------------------------------------------------------------
    # Service API
    # ------------------------------------------------------------------

    def listen(self, port: int) -> Generator:
        if port in self._listeners:
            raise OSError(f"port {port} already listening")
        listener = MonoListener(self, port)
        self._listeners[port] = listener
        yield from self.kernel.cpu.consume(self.kernel.cost_table.socket_op)
        return listener

    def connect(self, remote_ip: int, remote_port: int, local_port: int = 0) -> Generator:
        costs = self.kernel.costs
        if local_port == 0:
            local_port = self._allocate_port()
        # Crossings to reach the stack with the request.
        yield from self.kernel.cpu.consume(
            self.profile.setup_overhead + costs.socket_op
        )
        link_dst = yield from self.host.resolve_link(remote_ip)
        connection = self._make_connection(
            local_port, remote_ip, remote_port, link_dst
        )
        yield from connection.runner.start(active=True)
        ok = yield from connection.runner.wait_connected()
        if not ok:
            reason = connection.runner.closed_reason
            raise ConnectionError(f"connect failed: {reason}")
        return connection

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _allocate_port(self) -> int:
        for _ in range(0xFFFF):
            port = self._next_port
            self._next_port = self._next_port + 1
            if self._next_port >= 0x10000:
                self._next_port = 1024
            if (
                port not in self._listeners
                and not any(key[0] == port for key in self._connections)
            ):
                return port
        raise OSError("out of ports")

    def _iss(self) -> int:
        iss = self._next_iss
        self._next_iss = (self._next_iss + 64_000) % (1 << 32)
        return iss

    def _make_connection(
        self, local_port: int, remote_ip: int, remote_port: int, link_dst: object
    ) -> "MonoConnection":
        machine = TcpMachine(
            local_port, remote_port, config=self.config, iss=self._iss()
        )
        connection = MonoConnection(
            self, machine, local_port, remote_ip, remote_port, link_dst
        )
        self._connections[(local_port, remote_ip, remote_port)] = connection
        return connection

    def _remove_connection(self, connection: "MonoConnection") -> None:
        key = (
            connection.local_port,
            connection.remote_ip,
            connection.remote_port,
        )
        self._connections.pop(key, None)

    def _tcp_rx(self, payload: bytes, src_ip: int, link_info: LinkInfo) -> Generator:
        """Kernel TCP input: checksum, PCB lookup, machine dispatch."""
        costs = self.kernel.costs
        self.stats["rx_segments"] += 1
        if self.profile.ipc_counts[2]:
            self.kernel.count("ipc_messages", self.profile.ipc_counts[2])
        yield from self.kernel.cpu.consume(costs.checksum_cost(len(payload)))
        try:
            segment = decode_segment(payload, src_ip, self.host.ip)
        except (ChecksumError, HeaderError):
            self.stats["rx_bad_checksum"] += 1
            return
        tcp_cost = costs.tcp_input if segment.payload else costs.tcp_input_ack
        yield from self.kernel.cpu.consume(
            self.profile.recv_dispatch(costs, len(payload))
            + (costs.tcp_pcb_lookup if self.profile.pcb_lookup else 0.0)
            + tcp_cost
        )
        key = (segment.dport, src_ip, segment.sport)
        connection = self._connections.get(key)
        if connection is not None:
            yield from connection.runner.feed_segment(segment)
            return
        listener = self._listeners.get(segment.dport)
        if listener is not None and segment.syn and not segment.has_ack:
            yield from self._passive_open(listener, segment, src_ip, link_info)
            return
        self.stats["rx_no_match"] += 1
        yield from self._respond_rst(segment, src_ip)

    def _passive_open(
        self,
        listener: "MonoListener",
        syn: Segment,
        src_ip: int,
        link_info: LinkInfo,
    ) -> Generator:
        connection = self._make_connection(
            syn.dport, src_ip, syn.sport, link_info.src
        )
        yield from connection.runner.start(active=False)
        yield from connection.runner.feed_segment(syn)
        # Hand the connection to accept() once established.
        self.sim.process(
            self._complete_accept(listener, connection),
            name=f"{self.host.name}-accept",
        )

    def _complete_accept(self, listener: "MonoListener", connection: "MonoConnection") -> Generator:
        ok = yield from connection.runner.wait_connected()
        if ok and not listener.closed:
            yield listener.backlog.put(connection)
        elif not ok:
            self._remove_connection(connection)

    def _respond_rst(self, segment: Segment, src_ip: int) -> Generator:
        """RFC 793: segments for nonexistent connections draw a RST."""
        if segment.rst:
            return
        closed = TcpMachine(segment.dport, segment.sport, config=self.config)
        from ..protocols.tcp.events import SegmentArrives

        actions = closed.handle(SegmentArrives(segment), self.sim.now)
        for action in actions:
            if hasattr(action, "segment"):
                yield from self._transmit(
                    action.segment, src_ip, None
                )

    def _transmit(self, segment: Segment, remote_ip: int, link_dst: object) -> Generator:
        costs = self.kernel.costs
        if self.profile.ipc_counts[1]:
            self.kernel.count("ipc_messages", self.profile.ipc_counts[1])
        payload = encode_segment(segment, self.host.ip, remote_ip)
        yield from self.kernel.cpu.consume(
            costs.tcp_output
            + costs.checksum_cost(len(payload))
            + self.profile.send_device(costs, len(payload))
        )
        yield from self.host.ip_send(remote_ip, PROTO_TCP, payload, link_dst)


class MonoConnection(TcpConnection):
    """A connection whose machine runs inside the monolithic stack."""

    def __init__(
        self,
        stack: MonolithicTcpStack,
        machine: TcpMachine,
        local_port: int,
        remote_ip: int,
        remote_port: int,
        link_dst: object,
    ) -> None:
        self.stack = stack
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.link_dst = link_dst
        self.runner = MachineRunner(
            stack.kernel,
            machine,
            emit_fn=self._emit,
            name=f"{stack.host.name}:{local_port}",
        )

    def _emit(self, segment: Segment) -> Generator:
        yield from self.stack._transmit(segment, self.remote_ip, self.link_dst)

    @property
    def _costs(self):
        return self.stack.kernel.costs

    def send(self, data: bytes) -> Generator:
        profile = self.stack.profile
        kernel = self.stack.kernel
        if profile.ipc_counts[0]:
            kernel.count("ipc_messages", profile.ipc_counts[0])
        else:
            kernel.count("traps")
        yield from kernel.cpu.consume(
            profile.send_entry(self._costs, len(data))
        )
        yield from self.runner.app_send(data)

    def recv(self, max_bytes: int) -> Generator:
        blocked = not self.runner.rx_buffer
        data = yield from self.runner.app_recv(max_bytes)
        profile = self.stack.profile
        kernel = self.stack.kernel
        if profile.ipc_counts[3]:
            kernel.count("ipc_messages", profile.ipc_counts[3])
        else:
            kernel.count("traps")
        cost = profile.recv_exit(self._costs, len(data))
        if blocked:
            # The reader slept; waking it costs a context switch.
            cost += self._costs.context_switch
        yield from kernel.cpu.consume(cost)
        return data

    def close(self) -> Generator:
        """Orderly release.  Returns once the close is initiated (BSD
        semantics: close() does not wait out TIME-WAIT); the connection
        is reaped in the background when it reaches CLOSED."""
        yield from self.stack.kernel.cpu.consume(
            self._costs.syscall_trap + self._costs.socket_op
        )
        yield from self.runner.app_close()
        self.stack.sim.process(self._finalize(), name="close-reap")

    def _finalize(self) -> Generator:
        yield from self.runner.wait_closed()
        self.stack._remove_connection(self)

    def abort(self) -> Generator:
        yield from self.runner.app_abort()
        self.stack._remove_connection(self)


class MonoListener(TcpListener):
    def __init__(self, stack: MonolithicTcpStack, port: int) -> None:
        self.stack = stack
        self.port = port
        self.backlog: Store = Store(stack.sim)
        self.closed = False

    def accept(self) -> Generator:
        connection = yield self.backlog.get()
        return connection

    def close(self) -> None:
        self.closed = True
        self.stack._listeners.pop(self.port, None)
