"""MachineRunner: drives one sans-io TcpMachine on the simulator.

Executes the machine's actions — transmitting segments through an
organization-supplied path, arming simulator-backed timers, buffering
delivered data, and waking blocked readers/writers.  All organizations
share this runner; they differ only in the ``emit`` path and in the
costs charged around it.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Generator, Optional

from ..mach.kernel import Kernel
from ..obs import profile as _profile
from ..protocols.tcp import (
    AppAbort,
    AppClose,
    AppRead,
    AppSend,
    CancelTimer,
    DeliverData,
    DeliverFin,
    EmitSegment,
    NotifyClosed,
    NotifyConnected,
    Segment,
    SegmentArrives,
    SendSpaceAvailable,
    SetTimer,
    TcpMachine,
    TimerExpires,
)
from ..sim import Event, Simulator

#: Costed transmission path: generator sending one segment to the peer.
EmitFn = Callable[[Segment], Generator]


class MachineRunner:
    """One connection's machine plus its simulator plumbing."""

    #: Arm TCP timers on the kernel's coalesced wheels (one engine
    #: wakeup per earliest deadline across the whole host) instead of
    #: one engine event + generator process per timer.  The off switch
    #: exists for the equivalence tests that prove both wirings yield
    #: identical traces.
    use_coalesced_timers = True

    def __init__(
        self,
        kernel: Kernel,
        machine: TcpMachine,
        emit_fn: EmitFn,
        name: str = "tcp",
    ) -> None:
        self.kernel = kernel
        self.sim: Simulator = kernel.sim
        self.machine = machine
        self.emit_fn = emit_fn
        self.name = name
        # Receive side.
        self.rx_buffer = bytearray()
        self.eof = False
        self._readers: list[Event] = []
        self._writers: list[Event] = []
        # Lifecycle.
        self.connected = False
        self.closed_reason: Optional[str] = None
        self._connect_waiters: list[Event] = []
        self._close_waiters: list[Event] = []
        # Timers: name -> generation; stale firings are discarded.
        self._timer_gen: dict[str, int] = {}
        #: name -> live wheel handle (coalesced wiring only).  Handles
        #: are cancelled eagerly so the wheels don't scan tombstones of
        #: the many set-then-cancel retransmit timers.
        self._timer_handles: dict[str, object] = {}
        #: True while the emit_fn started by _execute is for a segment
        #: the machine flagged as a retransmission.  Set immediately
        #: before the emit generator's first resumption, so an emit_fn
        #: reading it before its first yield sees its own flag.
        self.emitting_retransmit = False

    # ------------------------------------------------------------------
    # Event entry points (all are generators; costs ride on emit_fn)
    # ------------------------------------------------------------------

    def handle(self, event) -> Generator:
        """Feed one event to the machine and execute its actions."""
        prof = _profile.PROFILER
        if prof is None:
            actions = self.machine.handle(event, self.sim.now)
        else:
            # The machine is the synchronous protocol callback: this is
            # the one place its real CPU time can be measured whole.
            t0 = perf_counter()
            actions = self.machine.handle(event, self.sim.now)
            prof.charge(_machine_site(event), 0.0, perf_counter() - t0)
        yield from self._execute(actions)

    def start(self, active: bool) -> Generator:
        actions = self.machine.open(self.sim.now, active=active)
        yield from self._execute(actions)

    def feed_segment(self, segment: Segment) -> Generator:
        """Deliver one received segment to the machine.

        Header prediction runs first: :meth:`TcpMachine.fast_input`
        handles the predicted ESTABLISHED-state shapes (pure in-window
        ACK, next-in-sequence data) without event dispatch; a miss falls
        back to the full :meth:`handle` machinery.  The profiler
        attributes the two outcomes to distinct sites so the fast/slow
        split is visible in its report.
        """
        machine = self.machine
        prof = _profile.PROFILER
        if prof is None:
            actions = machine.fast_input(segment, self.sim.now)
            if actions is None:
                actions = machine.handle(SegmentArrives(segment), self.sim.now)
        else:
            t0 = perf_counter()
            actions = machine.fast_input(segment, self.sim.now)
            site = "tcp.machine.fastpath"
            if actions is None:
                actions = machine.handle(SegmentArrives(segment), self.sim.now)
                site = "tcp.machine.input"
            prof.charge(site, 0.0, perf_counter() - t0)
        yield from self._execute(actions)

    def app_send(self, data: bytes) -> Generator:
        """Blocking write: waits for send-buffer space, then queues."""
        offset = 0
        while offset < len(data):
            space = self.machine.tcb.send_buffer_space
            if space == 0:
                if self.closed_reason is not None:
                    raise ConnectionResetError(
                        f"connection closed ({self.closed_reason})"
                    )
                event = self.sim.event()
                self._writers.append(event)
                yield event
                continue
            chunk = bytes(data[offset : offset + space])
            offset += len(chunk)
            yield from self.handle(AppSend(chunk))

    def app_recv(self, max_bytes: int) -> Generator:
        """Blocking read: returns up to ``max_bytes`` (b'' at EOF)."""
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        while not self.rx_buffer:
            if self.eof or self.closed_reason is not None:
                return b""
            event = self.sim.event()
            self._readers.append(event)
            yield event
        data = bytes(self.rx_buffer[:max_bytes])
        del self.rx_buffer[: len(data)]
        # Tell the machine the app consumed data (window update logic).
        yield from self.handle(AppRead(len(data)))
        return data

    def app_close(self) -> Generator:
        yield from self.handle(AppClose())

    def app_abort(self) -> Generator:
        yield from self.handle(AppAbort())

    def wait_connected(self) -> Generator:
        if self.connected:
            return True
        if self.closed_reason is not None:
            return False
        event = self.sim.event()
        self._connect_waiters.append(event)
        yield event
        return self.connected

    def wait_closed(self) -> Generator:
        if self.closed_reason is not None:
            return self.closed_reason
        event = self.sim.event()
        self._close_waiters.append(event)
        yield event
        return self.closed_reason

    # ------------------------------------------------------------------
    # Action execution
    # ------------------------------------------------------------------

    def _execute(self, actions) -> Generator:
        """Run one handle()'s actions.

        Bookkeeping (timer generations, buffers, wakeups) is applied
        *synchronously*, before any simulated time passes, so it always
        matches the machine's decision order.  Several host processes
        (the app thread, the reader thread, timer processes) drive the
        same runner; if a CancelTimer were executed after its handle
        yielded for CPU, it could race a SetTimer issued by a later
        handle and silently kill the fresh timer.  Only the costed work
        (timer-op CPU charges and segment emission) yields.
        """
        costs = self.kernel.costs
        emissions: list[tuple[Segment, bool]] = []
        timer_ops = 0
        for action in actions:
            if isinstance(action, EmitSegment):
                emissions.append((action.segment, action.retransmit))
            elif isinstance(action, SetTimer):
                timer_ops += 1
                generation = self._timer_gen.get(action.name, 0) + 1
                self._timer_gen[action.name] = generation
                self._arm_timer(action.name, generation, action.delay)
            elif isinstance(action, CancelTimer):
                if action.name in self._timer_gen:
                    timer_ops += 1
                    self._timer_gen[action.name] += 1
                    handle = self._timer_handles.pop(action.name, None)
                    if handle is not None:
                        handle.cancel()
            elif isinstance(action, DeliverData):
                self.rx_buffer.extend(action.data)
                self._wake(self._readers)
            elif isinstance(action, DeliverFin):
                self.eof = True
                self._wake(self._readers)
            elif isinstance(action, NotifyConnected):
                self.connected = True
                self._wake(self._connect_waiters)
            elif isinstance(action, NotifyClosed):
                self.closed_reason = action.reason
                self._cancel_all_timers()
                self._wake(self._readers)
                self._wake(self._writers)
                self._wake(self._connect_waiters)
                self._wake(self._close_waiters)
            elif isinstance(action, SendSpaceAvailable):
                self._wake(self._writers)
            else:
                raise AssertionError(f"unhandled action {action!r}")
        if timer_ops:
            prof = _profile.PROFILER
            if prof is not None:
                prof.charge("tcp.timer_op", costs.timer_op * timer_ops)
            yield from self.kernel.cpu.consume(costs.timer_op * timer_ops)
        for segment, retransmit in emissions:
            self.emitting_retransmit = retransmit
            try:
                yield from self.emit_fn(segment)
            finally:
                self.emitting_retransmit = False

    def _arm_timer(self, name: str, generation: int, delay: float) -> None:
        """Arm one named timer, preferring the coalesced wheels.

        Both wirings resolve a firing identically: check the generation
        (stale set/cancel races are discarded), check liveness, consume
        the generation, then feed ``TimerExpires`` to the machine in
        process context.  A deadline beyond the wheel horizon falls
        back to a dedicated engine event — correctness never depends on
        the wheel's range.
        """
        if self.use_coalesced_timers:
            old = self._timer_handles.pop(name, None)
            if old is not None:
                old.cancel()
            try:
                self._timer_handles[name] = self.kernel.timer_service.schedule(
                    delay, lambda: self._wheel_fire(name, generation)
                )
                return
            except ValueError:
                pass  # Beyond the wheel horizon.
        self.sim.process(
            self._timer(name, generation, delay),
            name=f"{self.name}-{name}",
        )

    def _wheel_fire(self, name: str, generation: int) -> None:
        """Wheel callback: resume the timer in a fresh process.

        Runs synchronously inside the engine's wakeup event, so it must
        not block; it performs the same generation/liveness gate as the
        legacy timer process, then spawns the TimerExpires handling,
        which the engine resumes immediately after the wakeup (spawns
        are urgent at the current timestamp).
        """
        if self._timer_gen.get(name) != generation:
            return  # Cancelled or re-armed since.
        if self.closed_reason is not None:
            return
        self._timer_gen[name] = generation + 1  # Consumed.
        self._timer_handles.pop(name, None)
        self.sim.process(
            self.handle(TimerExpires(name)), name=f"{self.name}-{name}"
        )

    def _timer(self, name: str, generation: int, delay: float) -> Generator:
        yield self.sim.timeout(delay)
        if self._timer_gen.get(name) != generation:
            return  # Cancelled or re-armed since.
        if self.closed_reason is not None:
            return
        self._timer_gen[name] = generation + 1  # Consumed.
        yield from self.handle(TimerExpires(name))

    def _cancel_all_timers(self) -> None:
        for name in self._timer_gen:
            self._timer_gen[name] += 1
        if self._timer_handles:
            for handle in self._timer_handles.values():
                handle.cancel()
            self._timer_handles.clear()

    @staticmethod
    def _wake(waiters: list[Event]) -> None:
        while waiters:
            waiters.pop().succeed()


def _machine_site(event) -> str:
    """Profiler site for one machine callback, by event kind."""
    if isinstance(event, SegmentArrives):
        return "tcp.machine.input"
    if isinstance(event, TimerExpires):
        return "tcp.machine.timer"
    return "tcp.machine.app"
