"""A user-level UDP library — the connectionless case (paper §5).

The paper's conclusions discuss connectionless protocols explicitly:
they have no connection-setup phase in which to exchange BQIs, so on
AN1 "the hardware packet demultiplexing mechanism is difficult to
exploit ... In other cases" — unless the endpoints *discover* "the
index value of their peer by examining the link-level headers of
incoming messages" (§2.2).

This library implements exactly that:

* **Binding** goes through the registry (ports are names; untrusted
  libraries don't mint them): the registry installs a UDP channel —
  demux filter on Ethernet, BQI ring on AN1 — and a send template that
  pins the source address and port.
* **Datagrams to unknown peers** leave with BQI 0 and arrive through
  the *kernel* path at the receiver (BQI 0 is protected kernel memory);
  a kernel-side forwarder the registry installs relays them into the
  channel — the slow path.
* Every datagram **advertises the sender's own ring index** in the AN1
  link header's spare field; receivers cache the peer's BQI and stamp
  it on subsequent datagrams — after the first exchange, delivery is
  pure hardware demux, no kernel software on the path.

This is the Topaz-UDP / request-response-protocol story the paper tells,
with the strict protection its own design adds.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, Optional, TYPE_CHECKING

from ..host import Host
from ..mach.ipc import Message, rpc, send
from ..mach.task import Task
from ..net.buf import STATS, PacketBuffer, prepend, slice_view
from ..net.headers import HeaderError, Ipv4Header, PROTO_UDP
from ..netio.channels import Channel, ChannelClosed
from ..protocols.udp import UdpDatagram, decode_datagram, encode_datagram
from ..sim import Event
from ..tenancy.tenant import RateLimited

if TYPE_CHECKING:
    from ..registry.server import RegistryServer


class LibraryUdpService:
    """The UDP library instance linked into one application."""

    def __init__(self, host: Host, app: Task, registry: "RegistryServer") -> None:
        self.host = host
        self.app = app
        self.registry = registry
        self.kernel = host.kernel
        self.sim = host.sim
        self._registry_right = registry.client_right(app)

    def bind(self, port: int = 0) -> Generator:
        """Bind a UDP port through the registry; returns a
        :class:`UdpEndpoint` backed by a protected channel."""
        reply = yield from rpc(
            self.app,
            self._registry_right,
            Message("bind_udp", body={"port": port}),
        )
        if reply.op != "grant":
            raise OSError(str(reply.body))
        grant = reply.body
        return UdpEndpoint(self, grant["port"], grant["channel"])


class UdpEndpoint:
    """One bound UDP port, with BQI discovery on AN1."""

    def __init__(self, service: LibraryUdpService, port: int, channel: Channel) -> None:
        self.service = service
        self.kernel = service.kernel
        self.sim = service.sim
        self.port = port
        self.channel = channel
        #: The wildcard flow the registry installed for this binding —
        #: the same entry the kernel's forwarder resolves datagrams by.
        self.flow_key = channel.flow_key
        self._datagrams: Deque[UdpDatagram] = deque()
        self._readers: list[Event] = []
        #: Discovered peer rings: ip -> BQI (learned from adv_bqi).
        self.peer_bqi: dict[int, int] = {}
        self._closed = False
        self._reader = service.app.spawn(
            self._receive_loop(), name=f"udp-rx-{port}"
        )
        self.stats = {"sent": 0, "received": 0, "bqi_learned": 0, "throttled": 0}

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------

    def sendto(self, dst_ip: int, dst_port: int, data: bytes) -> Generator:
        """Transmit one datagram through the protected channel."""
        if self._closed:
            raise OSError("endpoint is closed")
        costs = self.kernel.costs
        yield from self.kernel.cpu.consume(
            costs.socket_op + costs.udp_packet
            + costs.checksum_cost(len(data) + 8)
        )
        udp = encode_datagram(
            self.port, dst_port, data, self.service.host.ip, dst_ip
        )
        packet = prepend(
            Ipv4Header(
                src=self.service.host.ip,
                dst=dst_ip,
                protocol=PROTO_UDP,
                total_length=Ipv4Header.LENGTH + len(udp),
            ).pack(),
            udp,
        )
        link_dst = yield from self.service.host.resolve_link(dst_ip)
        own_bqi = self.channel.ring.bqi if self.channel.ring else 0
        try:
            yield from self.service.host.netio.send(
                self.service.app,
                self.channel,
                packet,
                link_dst=link_dst,
                # Known peer ring -> hardware demux; else BQI 0 (kernel path).
                bqi=self.peer_bqi.get(dst_ip, 0),
                # Advertise our own ring so the peer can discover it.
                adv_bqi=own_bqi,
            )
        except RateLimited:
            # Datagram semantics: an over-budget send is dropped and
            # counted, never queued — the app sees UDP being UDP.
            self.stats["throttled"] += 1
            return False
        self.stats["sent"] += 1
        return True

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------

    def recvfrom(self) -> Generator:
        """Block for the next datagram; returns (data, (src_ip, src_port))."""
        while not self._datagrams:
            if self._closed:
                raise OSError("endpoint is closed")
            event = self.sim.event()
            self._readers.append(event)
            yield event
        datagram = self._datagrams.popleft()
        yield from self.kernel.cpu.consume(self.kernel.cost_table.socket_op)
        payload = datagram.payload
        if not isinstance(payload, (bytes, bytearray)):
            # Application boundary: the read hands back owned bytes —
            # the single user copy the receive path still pays.
            payload = bytes(payload)
            STATS.copied_bytes += len(payload)
            STATS.copy_ops += 1
        return payload, (datagram.src_ip, datagram.src_port)

    def _receive_loop(self) -> Generator:
        costs = self.kernel.costs
        while True:
            try:
                batch = yield from self.channel.receive_batch()
            except (ChannelClosed, GeneratorExit):
                return
            except BaseException as exc:
                from ..sim import Interrupt

                if isinstance(exc, Interrupt):
                    return  # Task terminated.
                raise  # Real bugs must surface, not hang the endpoint.
            yield from self.kernel.cpu.consume(
                costs.user_wakeup + 2 * costs.cthread_switch
            )
            for item in batch:
                packet, link_info = item
                yield from self.kernel.cpu.consume(
                    costs.ip_input + costs.udp_packet
                )
                if isinstance(packet, PacketBuffer):
                    # Locally forwarded chains (the kernel UDP relay)
                    # fuse here — the one copy the legacy concat made.
                    packet = packet.tobytes()
                try:
                    header = Ipv4Header.unpack(packet)
                    datagram = decode_datagram(
                        slice_view(packet, Ipv4Header.LENGTH),
                        header.src,
                        header.dst,
                    )
                except HeaderError:
                    continue
                # BQI discovery: remember the peer's advertised ring.
                if link_info is not None and getattr(link_info, "adv_bqi", 0):
                    if self.peer_bqi.get(datagram.src_ip) != link_info.adv_bqi:
                        self.peer_bqi[datagram.src_ip] = link_info.adv_bqi
                        self.stats["bqi_learned"] += 1
                self.stats["received"] += 1
                self._datagrams.append(datagram)
                while self._readers:
                    self._readers.pop().succeed()

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def close(self) -> Generator:
        if self._closed:
            return
        self._closed = True
        yield from send(
            self.service.app,
            self.service._registry_right,
            Message("release_udp", body={"channel": self.channel}),
        )
        while self._readers:
            self._readers.pop().succeed()
