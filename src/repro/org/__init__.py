"""Protocol organizations (paper Figure 1): the same sans-io stack under
in-kernel, single-server, dedicated-server, and user-library plumbing."""

from .base import PathProfile, TcpConnection, TcpListener, TcpService
from .monolithic import (
    DEDICATED_SERVERS,
    MACH_UX_MAPPED,
    MACH_UX_UNMAPPED,
    MonolithicTcpStack,
    ULTRIX,
)
from .runner import MachineRunner
from .udplib import LibraryUdpService, UdpEndpoint
from .userlib import LibraryConnection, LibraryListener, LibraryTcpService

__all__ = [
    "TcpService",
    "TcpConnection",
    "TcpListener",
    "PathProfile",
    "MachineRunner",
    "MonolithicTcpStack",
    "ULTRIX",
    "MACH_UX_MAPPED",
    "MACH_UX_UNMAPPED",
    "DEDICATED_SERVERS",
    "LibraryTcpService",
    "LibraryUdpService",
    "UdpEndpoint",
    "LibraryConnection",
    "LibraryListener",
]
