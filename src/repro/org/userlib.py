"""The user-level library organization — the paper's proposed structure.

The protocol library is linked into the application: TCP, IP, and ARP
functions execute in the application's address space, reached by plain
procedure calls.  Connection setup goes through the registry server by
Mach RPC; the established connection's state comes back in the grant,
after which data transfer involves only the library and the network I/O
module (Figure 2's common case) — sends take the specialized trap with
a template check, receives arrive through the shared region with
batched semaphore notifications and are dispatched to per-connection
upcall threads (no PCB lookup).
"""

from __future__ import annotations

from typing import Generator, Optional

from ..host import Host
from ..mach.ipc import Message, rpc, send
from ..mach.task import Task
from ..net.buf import PacketBuffer
from ..net.headers import HeaderError, PROTO_TCP
from ..obs import profile as _profile
from ..obs import spans as _spans
from ..netio.channels import Channel, ChannelClosed
from ..protocols.ip import IpStack
from ..tenancy.tenant import RateLimited
from ..protocols.tcp import (
    ChecksumError,
    Segment,
    TcpConfig,
    TcpMachine,
    TcpSegmentEncoder,
    decode_segment,
)
from ..sim import Store
from .base import TcpConnection, TcpListener, TcpService
from .runner import MachineRunner

if True:  # Deferred to break the registry<->userlib import cycle.
    from typing import TYPE_CHECKING

    if TYPE_CHECKING:
        from ..registry.server import ConnectionGrant, RegistryServer


class LibraryTcpService(TcpService):
    """The protocol library instance linked into one application."""

    def __init__(
        self,
        host: Host,
        app: Task,
        registry: "RegistryServer",
        config: Optional[TcpConfig] = None,
        zero_copy: bool = True,
    ) -> None:
        self.host = host
        self.app = app
        self.registry = registry
        #: Ablation switch: when False, the library copies data between
        #: the application buffers and the packet buffers the way a
        #: conventional buffer layer would, instead of building/reading
        #: packets in the shared region directly.
        self.zero_copy = zero_copy
        self.config = config or registry.config
        self.kernel = host.kernel
        self.sim = host.sim
        self._registry_right = registry.client_right(app)
        #: The library links its own IP instance (paper: an application
        #: using TCP links the TCP, IP, and ARP libraries).
        self.ip_lib = IpStack(host.ip)

    # ------------------------------------------------------------------
    # Service API (all registry interactions are real Mach RPCs)
    # ------------------------------------------------------------------

    def connect(self, remote_ip: int, remote_port: int, local_port: int = 0) -> Generator:
        reply = yield from rpc(
            self.app,
            self._registry_right,
            Message(
                "connect",
                body={
                    "remote_ip": remote_ip,
                    "remote_port": remote_port,
                    "local_port": local_port,
                },
            ),
        )
        if reply.op != "grant":
            raise ConnectionError(str(reply.body))
        return LibraryConnection(self, reply.body)

    def listen(self, port: int) -> Generator:
        reply = yield from rpc(
            self.app, self._registry_right, Message("listen", body={"port": port})
        )
        if reply.op != "ok":
            raise OSError(str(reply.body))
        return LibraryListener(self, port)

    def _release(self, channel: Channel) -> Generator:
        yield from send(
            self.app,
            self._registry_right,
            Message("release", body={"channel": channel}),
        )


class LibraryListener(TcpListener):
    """A listening port whose connections the registry establishes."""

    def __init__(self, service: LibraryTcpService, port: int) -> None:
        self.service = service
        self.port = port
        self.closed = False

    def accept(self) -> Generator:
        reply = yield from rpc(
            self.service.app,
            self.service._registry_right,
            Message("accept", body={"port": self.port}),
        )
        if reply.op != "grant":
            raise ConnectionError(str(reply.body))
        return LibraryConnection(self.service, reply.body)

    def close(self) -> None:
        self.closed = True
        # Fire-and-forget unlisten RPC.
        self.service.app.spawn(
            _unlisten(self.service, self.port), name=f"unlisten-{self.port}"
        )


def _unlisten(service: LibraryTcpService, port: int) -> Generator:
    yield from rpc(
        service.app, service._registry_right, Message("unlisten", body={"port": port})
    )


class LibraryConnection(TcpConnection):
    """A connection owned by the application's protocol library."""

    def __init__(self, service: LibraryTcpService, grant: "ConnectionGrant") -> None:
        self.service = service
        self.kernel = service.kernel
        self.sim = service.sim
        self.channel: Channel = grant.channel
        self.local_port = grant.local_port
        self.remote_ip = grant.remote_ip
        self.remote_port = grant.remote_port
        #: The demux flow the registry installed for this connection.
        #: The library cross-checks it against the grant's addressing:
        #: a channel wired to someone else's flow would let the kernel
        #: deliver a stranger's packets here.
        self.flow_key = grant.channel.flow_key
        if self.flow_key is not None and self.flow_key.is_exact and (
            self.flow_key.local_port != grant.local_port
            or self.flow_key.remote_ip != grant.remote_ip
            or self.flow_key.remote_port != grant.remote_port
        ):
            raise ConnectionError(
                f"grant addressing does not match flow {self.flow_key}"
            )
        #: Template fast-path encoder (paper: the send side preformats
        #: headers; only seq/ack/len/flags change between segments, so
        #: retransmissions reuse the cached image and ack/window moves
        #: are patched with RFC 1624 incremental checksum updates).
        self.encoder = TcpSegmentEncoder(
            sport=grant.local_port,
            dport=grant.remote_port,
            src_ip=service.host.ip,
            dst_ip=grant.remote_ip,
        )
        self.runner = MachineRunner(
            self.kernel,
            grant.machine,
            emit_fn=self._emit,
            name=f"{service.app.name}:{grant.local_port}",
        )
        self.runner.connected = True
        self.runner.rx_buffer.extend(grant.rx_pending)
        self._released = False
        #: The per-connection upcalled receive thread (paper §3.2:
        #: "protocol control block lookups are eliminated by having
        #: separate threads per connection that are upcalled").
        self._reader = service.app.spawn(
            self._receive_loop(), name=f"rx-{grant.local_port}"
        )

    # ------------------------------------------------------------------
    # Send path: library code + specialized trap into the I/O module
    # ------------------------------------------------------------------

    def _emit(self, segment: Segment) -> Generator:
        costs = self.kernel.costs
        # Latched before the first yield: the runner sets it immediately
        # before starting this generator, so the read cannot race other
        # simulation processes.
        retransmit = self.runner.emitting_retransmit
        payload = self.encoder.encode(segment)
        cost = (
            costs.tcp_output
            + costs.checksum_cost(len(payload))
            + costs.ip_output
        )
        prof = _profile.PROFILER
        if prof is not None:
            prof.charge("tcp.output", cost)
        rec = _spans.RECORDER
        if rec is not None:
            # Birth of the trace: every transmission (including each
            # retransmission) gets its own id, so one seq number can be
            # followed through several wire attempts.
            detail = (
                f"seq={segment.seq} len={len(segment.payload)}"
                f" flags={segment.flags:#04x}"
                + (" retransmit" if retransmit else "")
            )
            tid = rec.mint(self.sim.now, detail)
            if isinstance(payload, PacketBuffer):
                payload.trace_id = tid
            else:
                rec.bind_wire(payload, tid)  # eager-mode fallback
            rec.record(
                tid, "encode", self.sim.now, self.service.app.name,
                detail=detail, cost=cost,
            )
        # TCP output + checksum run in the library (application CPU
        # time); the segment is built directly in the shared region, so
        # there is no extra copy toward the kernel.
        yield from self.kernel.cpu.consume(cost)
        packets = self.service.ip_lib.send(
            self.remote_ip, PROTO_TCP, payload, mtu=self.service.host.mtu
        )
        for packet in packets:
            while True:
                try:
                    yield from self.service.host.netio.send(
                        self.service.app, self.channel, packet
                    )
                    break
                except RateLimited as exc:
                    # The module refuses over-budget packets rather than
                    # queueing them; waiting out the token bucket is the
                    # *library's* job, on the tenant's own CPU time.
                    self.channel.stats["tx_throttled"] += 1
                    yield self.sim.timeout(exc.retry_after)

    # ------------------------------------------------------------------
    # Receive path: shared region -> library thread -> upcall
    # ------------------------------------------------------------------

    def _receive_loop(self) -> Generator:
        costs = self.kernel.costs
        while True:
            try:
                batch = yield from self.channel.receive_batch()
            except (ChannelClosed, GeneratorExit):
                return
            except BaseException as exc:
                from ..sim import Interrupt

                if isinstance(exc, Interrupt):
                    return  # Task terminated or connection handed off.
                raise  # Real bugs must surface, not hang the reader.
            # Per-notification costs, amortized over the whole batch:
            # the kernel->user wakeup of the library thread (paid only
            # when the thread actually slept - a saturated receiver
            # finds packets banked on the semaphore and stays running)
            # plus the two C-Threads switches of the upcall (into the
            # per-connection thread and back).  The paper's batching
            # optimization is exactly this amortization.
            wakeup_cost = costs.user_wakeup + 2 * costs.cthread_switch
            prof = _profile.PROFILER
            if prof is not None:
                prof.charge("lib.wakeup", wakeup_cost)
            yield from self.kernel.cpu.consume(wakeup_cost)
            for packet in batch:
                datagram = self.service.ip_lib.receive(packet, now=self.sim.now)
                if datagram is None:
                    continue
                try:
                    segment = decode_segment(
                        datagram.payload, datagram.src, self.service.host.ip
                    )
                except (ChecksumError, HeaderError):
                    continue
                # Header-prediction fast path for pure ACKs; no PCB
                # lookup either way (per-connection upcall threads).
                tcp_cost = (
                    costs.tcp_input if segment.payload else costs.tcp_input_ack
                )
                rx_cost = (
                    costs.ip_input
                    + costs.checksum_cost(len(datagram.payload))
                    + tcp_cost
                )
                prof = _profile.PROFILER
                if prof is not None:
                    prof.charge("tcp.input", rx_cost)
                rec = _spans.RECORDER
                if rec is not None:
                    rec.touch(
                        packet, "tcp.input", self.sim.now,
                        self.service.app.name,
                        detail=f"seq={segment.seq} ack={segment.ack}",
                        cost=rx_cost,
                    )
                yield from self.kernel.cpu.consume(rx_cost)
                yield from self.runner.feed_segment(segment)
            if self.runner.closed_reason is not None and not self.channel.rx_queue:
                return

    # ------------------------------------------------------------------
    # Application API (procedure calls into the library)
    # ------------------------------------------------------------------

    def send(self, data: bytes) -> Generator:
        cost = self.kernel.cost_table.socket_op
        if not self.service.zero_copy:
            cost += self.kernel.cost_table.copy_cost(len(data))
        yield from self.kernel.cpu.consume(cost)
        yield from self.runner.app_send(data)

    def recv(self, max_bytes: int) -> Generator:
        data = yield from self.runner.app_recv(max_bytes)
        # Shared-region buffer organization: no kernel->user copy
        # (unless the ablation re-enables conventional copying).
        cost = self.kernel.cost_table.socket_op
        if not self.service.zero_copy:
            cost += self.kernel.cost_table.copy_cost(len(data))
        yield from self.kernel.cpu.consume(cost)
        return data

    def close(self) -> Generator:
        """Orderly release.  Returns once the close is initiated (BSD
        semantics: close() does not wait out TIME-WAIT); the library
        notifies the registry in the background when the connection
        reaches CLOSED, so the port lingers for the 2MSL period."""
        yield from self.runner.app_close()
        self.service.app.spawn(self._finalize(), name="close-reap")

    def _finalize(self) -> Generator:
        yield from self.runner.wait_closed()
        yield from self._do_release()

    def abort(self) -> Generator:
        yield from self.runner.app_abort()
        yield from self._do_release()

    def _do_release(self) -> Generator:
        if self._released:
            return
        self._released = True
        yield from self.service._release(self.channel)

    # ------------------------------------------------------------------
    # Connection hand-off (inetd-style, paper §3.2)
    # ------------------------------------------------------------------

    def hand_off(self, new_app: Task, new_service: "LibraryTcpService") -> "LibraryConnection":
        """Pass this established connection to another application
        "without involving the registry server or the network I/O
        module.  The port abstractions provided by the Mach kernel are
        sufficient for this."  The channel (capability) moves to the
        new task; this side must stop using it."""
        if self.runner.closed_reason is not None:
            raise ConnectionError("cannot hand off a closed connection")
        from ..registry.server import ConnectionGrant

        # Quiesce our plumbing without touching the connection state.
        self.runner._cancel_all_timers()
        if self._reader.is_alive:
            self._reader.interrupt("handed-off")
        self.channel.owner = new_app  # Capability moves with the message.
        grant = ConnectionGrant(
            machine=self.runner.machine,
            channel=self.channel,
            local_port=self.local_port,
            remote_ip=self.remote_ip,
            remote_port=self.remote_port,
            link_dst=None,
            rx_pending=bytes(self.runner.rx_buffer),
        )
        self._released = True  # The new owner releases, not us.
        return LibraryConnection(new_service, grant)
