"""Interfaces shared by all protocol organizations (paper Figure 1).

An :class:`Organization` builds, for one host, a :class:`TcpService` —
the app-facing API (listen/connect and per-connection read/write).  The
same sans-io protocol stack runs under every organization; what varies
is which address-space crossings, copies, and signals appear on the
send/receive path, captured by each organization's :class:`PathProfile`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator, Optional

from ..costs import CostModel

if TYPE_CHECKING:
    from ..host import Host
    from .runner import MachineRunner


class TcpConnection(abc.ABC):
    """One established connection, as the application sees it."""

    @abc.abstractmethod
    def send(self, data: bytes) -> Generator:
        """Blocking write of all of ``data``."""

    @abc.abstractmethod
    def recv(self, max_bytes: int) -> Generator:
        """Blocking read of up to ``max_bytes``; b'' at EOF."""

    @abc.abstractmethod
    def close(self) -> Generator:
        """Orderly release."""

    @abc.abstractmethod
    def abort(self) -> Generator:
        """Abortive release (RST)."""

    def recv_exactly(self, nbytes: int) -> Generator:
        """Convenience: read exactly ``nbytes`` (raises on early EOF)."""
        chunks = []
        remaining = nbytes
        while remaining:
            chunk = yield from self.recv(remaining)
            if not chunk:
                raise ConnectionError(
                    f"EOF after {nbytes - remaining} of {nbytes} bytes"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)


class TcpListener(abc.ABC):
    """A listening endpoint."""

    @abc.abstractmethod
    def accept(self) -> Generator:
        """Block until a connection is established; returns it."""

    @abc.abstractmethod
    def close(self) -> None:
        """Stop listening."""


class TcpService(abc.ABC):
    """The per-host (or per-application) transport API."""

    @abc.abstractmethod
    def listen(self, port: int) -> Generator:
        """Passive open; returns a :class:`TcpListener`."""

    @abc.abstractmethod
    def connect(self, remote_ip: int, remote_port: int, local_port: int = 0) -> Generator:
        """Active open; returns an established :class:`TcpConnection`."""


@dataclass(frozen=True)
class PathProfile:
    """Per-organization crossing/copy costs around the shared stack.

    Each entry is ``f(costs, nbytes) -> seconds`` charged at a specific
    point on the path.  The NIC, link, and protocol-processing costs are
    charged elsewhere (identically for every organization); these
    profiles encode only the *structural* differences Figure 1 is about.
    """

    name: str
    #: App write entry: syscall / IPC / procedure call into the stack.
    send_entry: Callable[[CostModel, int], float]
    #: Per-segment cost after TCP output, before the device.
    send_device: Callable[[CostModel, int], float]
    #: Per-segment receive cost between demux and TCP input.
    recv_dispatch: Callable[[CostModel, int], float]
    #: Cost of handing received data to the application per read.
    recv_exit: Callable[[CostModel, int], float]
    #: Whether TCP input pays a PCB lookup (our library upcalls
    #: per-connection threads instead).
    pcb_lookup: bool
    #: Fixed extra cost at connection setup (crossings to reach the
    #: stack), beyond the handshake itself.
    setup_overhead: float
    #: Structural crossing counts for Figure 1's comparison: IPC
    #: messages implied per (send call, tx segment, rx segment, recv
    #: call) under this organization.
    ipc_counts: tuple = (0, 0, 0, 0)


def no_cost(costs: CostModel, nbytes: int) -> float:
    """A free path segment."""
    return 0.0
