"""The discrete-event simulation engine.

:class:`Simulator` owns the event schedule and the simulated clock.  Time
is a float number of seconds; resolution is limited only by float
precision, which comfortably exceeds the 40 ns clock the paper used.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, Optional, Union

from .errors import EmptySchedule, StopSimulation
from .events import (
    NORMAL,
    AllOf,
    AnyOf,
    Event,
    Process,
    Timeout,
)

Until = Union[None, float, int, Event]

#: Bound once: ``step`` runs per scheduled event, and the attribute
#: lookup on the module is measurable at millions of events per run.
_heappop = heapq.heappop


class Simulator:
    """Event loop, schedule, and clock for one simulated world."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None

    # ------------------------------------------------------------------
    # Clock and introspection
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    # ------------------------------------------------------------------
    # Event construction helpers
    # ------------------------------------------------------------------

    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that fires when any of ``events`` fires."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Place a triggered event on the schedule ``delay`` from now."""
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    def step(self) -> None:
        """Process the single next event."""
        try:
            self._now, _, _, event = _heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        # Detach the list rather than copying or clearing it: the event
        # keeps None (its "processed" marker) and the loop below walks
        # the original allocation — nothing is reallocated per step.
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            return  # Event was already processed (e.g. duplicate schedule).
        for callback in callbacks:
            callback(event)

    def run(self, until: Until = None) -> Any:
        """Run until the schedule empties, a time passes, or an event fires.

        * ``until=None`` — run until no events remain.
        * ``until=<number>`` — run until the clock reaches that time.
        * ``until=<Event>`` — run until that event is processed and
          return its value (re-raising if the event failed).
        """
        stop_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    # Already processed: nothing to run.
                    if stop_event._ok:
                        return stop_event._value
                    raise stop_event._value
                stop_event.callbacks.append(_stop_simulation)
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(
                        f"until={at} is in the past (now={self._now})"
                    )
                stop_event = Event(self)
                stop_event._ok = True
                stop_event._value = None
                stop_event.callbacks.append(_stop_simulation)
                self.schedule(stop_event, delay=at - self._now)

        try:
            step = self.step  # bound once for the hot loop
            while True:
                step()
        except StopSimulation as stop:
            return stop.value
        except EmptySchedule:
            if stop_event is not None and isinstance(until, Event):
                raise RuntimeError(
                    "simulation ran out of events before the target event fired"
                ) from None
            return None

    def run_all(self, limit: float = float("inf")) -> None:
        """Run until the schedule empties or the clock exceeds ``limit``."""
        queue, step = self._queue, self.step
        while queue and queue[0][0] <= limit:
            step()


def _stop_simulation(event: Event) -> None:
    if event._ok:
        raise StopSimulation(event._value)
    raise event._value
