"""The discrete-event simulation engine.

:class:`Simulator` owns the event schedule and the simulated clock.  Time
is a float number of seconds; resolution is limited only by float
precision, which comfortably exceeds the 40 ns clock the paper used.

Scale refactor: the schedule is a *bucket heap*.  Instead of one heap
entry per event (``(time, priority, eid, event)`` tuples), the heap holds
each distinct timestamp once and a dict maps the timestamp to the events
due then.  One :meth:`Simulator.step` drains the whole batch, so the
delay-0 cascades that dominate protocol workloads (every ``succeed``,
resource grant, and store trigger lands at ``now``) cost one heap
operation per *timestamp* rather than per *event*.  The dict value is the
bare event until a second arrival upgrades it to a :class:`_Bucket`, so
sparse schedules don't pay for batching they never use.  Batch callbacks
run straight out of the bucket's own lists — the lists *are* the batch
buffer; nothing is copied per step.

Ordering is byte-identical to the original tuple-heap engine: URGENT
before NORMAL at equal times, FIFO within a priority, and events
scheduled *during* a batch at the same timestamp join the live batch in
the same order the tuple heap would have given them
(``tests/sim/test_engine_batching.py`` locks this in against
:class:`LegacySimulator`, the original engine kept for comparison).
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, Optional, Union

from .errors import EmptySchedule, StopSimulation
from .events import (
    NORMAL,
    AllOf,
    AnyOf,
    Event,
    Process,
    Timeout,
)

Until = Union[None, float, int, Event]

#: Bound once: ``step`` runs per batch and the module-attribute lookup is
#: measurable at millions of events per run.
_heappop = heapq.heappop
_heappush = heapq.heappush


class _Bucket:
    """All events due at one timestamp, split by priority.

    Both lists always exist (possibly empty).  Their identity is stable
    for the bucket's lifetime — schedulers append in place, never
    replace — which lets :meth:`Simulator.step` bind them to locals once
    per batch instead of re-reading slots on every event.
    """

    __slots__ = ("urgent", "normal")

    def __init__(self) -> None:
        self.urgent: list[Event] = []
        self.normal: list[Event] = []


class Simulator:
    """Event loop, schedule, and clock for one simulated world."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        #: timestamp -> the single event due then, or a _Bucket of them.
        self._buckets: dict[float, Union[Event, _Bucket]] = {}
        #: heap of distinct pending timestamps (each appears once).
        self._heap: list[float] = []
        self._active_process: Optional[Process] = None
        # Engine statistics (see ``engine_stats``).  ``skipped`` counts
        # events popped with no callback list: duplicate schedules of an
        # already-processed event plus cancelled tombstones.  ``cancelled``
        # counts Event.cancel() calls, so genuine duplicate-schedule skips
        # are ``skipped - cancelled`` once the schedule drains.
        self.events_processed = 0
        self.steps = 0
        self.max_batch = 0
        self.skipped = 0
        self.cancelled = 0

    # ------------------------------------------------------------------
    # Clock and introspection
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0] if self._heap else float("inf")

    def engine_stats(self) -> dict[str, int]:
        """Snapshot of the engine counters (cheap; plain ints)."""
        return {
            "events": self.events_processed,
            "steps": self.steps,
            "batched": self.events_processed - self.steps,
            "max_batch": self.max_batch,
            "skipped": self.skipped,
            "cancelled": self.cancelled,
        }

    # ------------------------------------------------------------------
    # Event construction helpers
    # ------------------------------------------------------------------

    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that fires when any of ``events`` fires."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Place a triggered event on the schedule ``delay`` from now."""
        t = self._now + delay
        buckets = self._buckets
        b = buckets.get(t)
        if b is None:
            # First arrival at this timestamp.  NORMAL events (the vast
            # majority) are stored bare — no bucket, no list.
            if priority:
                buckets[t] = event
            else:
                nb = _Bucket()
                nb.urgent.append(event)
                buckets[t] = nb
            _heappush(self._heap, t)
        elif type(b) is _Bucket:
            if priority:
                b.normal.append(event)
            else:
                b.urgent.append(event)
        else:
            # Second arrival: upgrade the bare event to a bucket.  The
            # existing entry was NORMAL (bare storage implies it), so it
            # leads the normal list; an URGENT newcomer still runs first.
            nb = _Bucket()
            nb.normal.append(b)
            if priority:
                nb.normal.append(event)
            else:
                nb.urgent.append(event)
            buckets[t] = nb

    def step(self) -> None:
        """Advance to the next timestamp and process its whole batch."""
        try:
            t = _heappop(self._heap)
        except IndexError:
            raise EmptySchedule() from None
        self._now = t
        self.steps += 1
        bucket = self._buckets[t]
        if type(bucket) is not _Bucket:
            # Single event.  Drop the dict entry *before* callbacks so a
            # delay-0 reschedule lands in a fresh entry for the next step.
            del self._buckets[t]
            self.events_processed += 1
            # Detach the list rather than copying or clearing it: the
            # event keeps None (its "processed" marker) and the loop
            # walks the original allocation.
            callbacks, bucket.callbacks = bucket.callbacks, None
            if callbacks is None:
                # Already processed (duplicate schedule) or cancelled.
                self.skipped += 1
                return
            if len(callbacks) == 1:
                callbacks[0](bucket)
            else:
                for callback in callbacks:
                    callback(bucket)
            return

        # Batch: run URGENT entries first, re-checking the urgent bound
        # on every iteration so an URGENT scheduled mid-batch
        # (Initialize, Interruption) preempts the remaining NORMALs
        # exactly as the tuple heap's (time, priority, eid) order would.
        # Events scheduled at ``t`` during the batch append to these
        # same lists (identity is stable, so locals stay valid) and are
        # drained before the step returns.
        u = bucket.urgent
        n = bucket.normal
        ui = ni = skipped = 0
        ln = len(n)
        try:
            while True:
                # ``len(u)`` is re-read every iteration (an URGENT
                # arrival must preempt immediately); the NORMAL bound is
                # cached and only refreshed once the cached run drains,
                # halving the len() traffic of the common all-NORMAL
                # batch.
                if ui < len(u):
                    event = u[ui]
                    ui += 1
                elif ni < ln:
                    event = n[ni]
                    ni += 1
                else:
                    ln = len(n)
                    if ni < ln:
                        event = n[ni]
                        ni += 1
                    else:
                        break
                callbacks, event.callbacks = event.callbacks, None
                if callbacks is None:
                    skipped += 1
                    continue
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
        except BaseException:
            # A callback raised mid-batch (StopSimulation from
            # ``run(until=...)``, or a real error).  Keep the unprocessed
            # tail so a later run() resumes exactly where the tuple heap
            # would have: trim the consumed prefixes and re-push ``t``.
            del u[:ui]
            del n[:ni]
            if u or n:
                _heappush(self._heap, t)
            else:
                del self._buckets[t]
            self.skipped += skipped
            self.events_processed += ui + ni
            if ui + ni > self.max_batch:
                self.max_batch = ui + ni
            raise
        del self._buckets[t]
        self.skipped += skipped
        batch = ui + ni
        self.events_processed += batch
        if batch > self.max_batch:
            self.max_batch = batch

    def run(self, until: Until = None) -> Any:
        """Run until the schedule empties, a time passes, or an event fires.

        * ``until=None`` — run until no events remain.
        * ``until=<number>`` — run until the clock reaches that time.
        * ``until=<Event>`` — run until that event is processed and
          return its value (re-raising if the event failed).
        """
        stop_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    # Already processed: nothing to run.
                    if stop_event._ok:
                        return stop_event._value
                    raise stop_event._value
                stop_event.callbacks.append(_stop_simulation)
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(
                        f"until={at} is in the past (now={self._now})"
                    )
                stop_event = Event(self)
                stop_event._ok = True
                stop_event._value = None
                stop_event.callbacks.append(_stop_simulation)
                self.schedule(stop_event, delay=at - self._now)

        try:
            step = self.step  # bound once for the hot loop
            while True:
                step()
        except StopSimulation as stop:
            return stop.value
        except EmptySchedule:
            if stop_event is not None and isinstance(until, Event):
                raise RuntimeError(
                    "simulation ran out of events before the target event fired"
                ) from None
            return None

    def run_all(self, limit: float = float("inf")) -> None:
        """Run until the schedule empties or the clock exceeds ``limit``."""
        heap, step = self._heap, self.step
        while heap and heap[0] <= limit:
            step()


class LegacySimulator(Simulator):
    """The original one-event-per-heap-entry engine.

    Kept as the comparison arm for ``benchmarks/bench_scale.py`` (the
    events/sec speedup of the batched engine is measured against this)
    and as the ordering oracle for the batching tests.  Semantics are the
    pre-refactor engine's, verbatim, plus the same stats counters the
    batched engine keeps.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        super().__init__(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = count()

    def peek(self) -> float:
        return self._queue[0][0] if self._queue else float("inf")

    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        _heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    def step(self) -> None:
        try:
            self._now, _, _, event = _heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self.steps += 1
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            self.skipped += 1
            return
        for callback in callbacks:
            callback(event)

    def run_all(self, limit: float = float("inf")) -> None:
        queue, step = self._queue, self.step
        while queue and queue[0][0] <= limit:
            step()


def _stop_simulation(event: Event) -> None:
    if event._ok:
        raise StopSimulation(event._value)
    raise event._value
