"""Exceptions used by the discrete-event simulation engine."""

from __future__ import annotations


class SimError(Exception):
    """Base class for all simulation-engine errors."""


class EmptySchedule(SimError):
    """Raised by :meth:`Simulator.step` when no events remain."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` at a target event.

    Carries the value of the event that ended the run.
    """

    def __init__(self, value: object = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The interrupting party supplies ``cause``, an arbitrary object that
    the interrupted process can inspect to decide how to react.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> object:
        return self.args[0]
