"""Event primitives for the discrete-event simulation engine.

The model follows the classic generator-coroutine style: a *process* is a
Python generator that yields :class:`Event` objects and is resumed when the
yielded event fires.  Events carry either a success value or a failure
exception; failed events re-raise inside the waiting process.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional

from .errors import Interrupt, SimError

#: Sentinel meaning "this event has not been given a value yet".
PENDING = object()

#: Scheduling priorities (lower sorts earlier at equal times).
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence at a point in simulated time.

    An event moves through three stages: *untriggered* (just created),
    *triggered* (given a value and placed on the schedule), and *processed*
    (its callbacks have run).  Processes wait on events by yielding them.
    """

    #: Slotted: the engine allocates one Event per scheduled occurrence —
    #: millions per benchmark run — and per-instance dicts dominate the
    #: allocation cost otherwise.  Subclasses declare their own slots.
    __slots__ = ("sim", "callbacks", "_value", "_ok", "_cancelled")

    def __init__(self, sim: "Simulator") -> None:  # noqa: F821
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._cancelled = False

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is on the schedule."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been invoked."""
        return self.callbacks is None and not self._cancelled

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` retired the event before it fired."""
        return self._cancelled

    def cancel(self) -> bool:
        """Lazily cancel a scheduled event: its callbacks never run.

        The schedule entry is *not* removed — the engine skips the
        tombstone when its timestamp comes up (counted in the engine's
        ``skipped``/``cancelled`` stats) — so cancellation is O(1) no
        matter how deep the event sits in the heap.  Only events the
        caller owns outright should be cancelled: any callbacks already
        registered (e.g. a process waiting on the event) are dropped and
        never resumed.  Returns False if the event already fired.
        """
        if self.callbacks is None:
            return False
        self.callbacks = None
        self._cancelled = True
        self.sim.cancelled += 1
        return True

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimError("event value is not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception) once triggered."""
        if self._value is PENDING:
            raise SimError("event value is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters see ``exception`` raised."""
        if not isinstance(exception, BaseException):
            raise ValueError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise SimError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.sim.schedule(self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("_delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:  # noqa: F821
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Slots set directly rather than via Event.__init__: one timeout
        # exists per costed CPU charge, so the extra call is measurable.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._cancelled = False
        self._delay = delay
        sim.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay}>"


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process") -> None:  # noqa: F821
        self.sim = sim
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self._cancelled = False
        sim.schedule(self, priority=URGENT)


class Interruption(Event):
    """Internal event that delivers an :class:`Interrupt` to a process."""

    __slots__ = ("_process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.sim)
        if process.triggered:
            raise SimError("cannot interrupt a terminated process")
        if process is self.sim.active_process:
            raise SimError("a process cannot interrupt itself")
        self.callbacks = [self._deliver]
        self._ok = False
        self._value = Interrupt(cause)
        self._process = process
        self.sim.schedule(self, priority=URGENT)

    def _deliver(self, event: Event) -> None:
        process = self._process
        if process.triggered:
            return  # The process ended before the interrupt arrived.
        # Detach the process from whatever it was waiting on so that the
        # original event does not also resume it later.
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:
                pass
        process._resume(self)


class Process(Event):
    """A running generator; also an event that fires when it returns.

    The process succeeds with the generator's return value, or fails with
    the exception that escaped the generator.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: Optional[str] = None) -> None:  # noqa: F821
        if not hasattr(generator, "throw"):
            raise ValueError(f"{generator!r} is not a generator")
        self.sim = sim
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._cancelled = False
        self._generator = generator
        self._target: Optional[Event] = Initialize(sim, self)
        self.name = name or getattr(generator, "__name__", "process")

    def __repr__(self) -> str:
        return f"<Process {self.name} at {id(self):#x}>"

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        sim = self.sim
        sim._active_process = self
        gen = self._generator
        while True:
            advance = gen.send if event._ok else gen.throw
            try:
                target = advance(event._value)
            except StopIteration as exc:
                self._ok = True
                self._value = exc.value
                sim.schedule(self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                sim.schedule(self)
                break

            # ``target.callbacks`` doubles as the Event duck-type check:
            # anything without the attribute was never an Event (the
            # isinstance this replaces ran once per yield, engine-wide).
            try:
                callbacks = target.callbacks
            except AttributeError:
                exc = SimError(
                    f"process {self.name!r} yielded {target!r}, "
                    "which is not an Event"
                )
                try:
                    gen.throw(exc)
                except StopIteration as stop:
                    self._ok = True
                    self._value = stop.value
                    sim.schedule(self)
                except BaseException as err:
                    self._ok = False
                    self._value = err
                    sim.schedule(self)
                break

            if callbacks is not None:
                # Event not yet processed: wait for it.
                callbacks.append(self._resume)
                self._target = target
                break
            # Already-processed event: continue immediately with its value.
            event = target
        sim._active_process = None


class Condition(Event):
    """An event that fires when ``evaluate`` says enough children fired.

    The value is an ordered dict mapping each triggered child event to its
    value, in the order the children were given.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        sim: "Simulator",  # noqa: F821
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(sim)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.sim is not sim:
                raise ValueError("cannot mix events from different simulators")

        if not self._events:
            self.succeed(self._collect())
            return

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        # Only *processed* children count: a Timeout carries its value from
        # creation, so `triggered` alone would claim not-yet-fired timeouts.
        return {
            event: event._value
            for event in self._events
            if event.callbacks is None and event._ok and not event._cancelled
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect())

    @staticmethod
    def all_events(events: list[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: list[Event], count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Fires when every child event has fired."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:  # noqa: F821
        super().__init__(sim, Condition.all_events, events)


class AnyOf(Condition):
    """Fires when the first child event fires."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:  # noqa: F821
        super().__init__(sim, Condition.any_events, events)
