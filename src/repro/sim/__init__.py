"""A small discrete-event simulation engine.

Generator-based processes over a float-seconds clock.  This is the
substrate on which the Mach-like kernel, the simulated networks, and all
protocol organizations run.
"""

from .engine import LegacySimulator, Simulator
from .errors import EmptySchedule, Interrupt, SimError, StopSimulation
from .events import (
    NORMAL,
    PENDING,
    URGENT,
    AllOf,
    AnyOf,
    Condition,
    Event,
    Process,
    Timeout,
)
from .resources import CPU, Resource, ResourceRequest, Store, StoreGet, StorePut

__all__ = [
    "Simulator",
    "LegacySimulator",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Store",
    "StoreGet",
    "StorePut",
    "Resource",
    "ResourceRequest",
    "CPU",
    "Interrupt",
    "SimError",
    "EmptySchedule",
    "StopSimulation",
    "PENDING",
    "NORMAL",
    "URGENT",
]
