"""Shared-resource primitives built on the event engine.

Three primitives cover everything the substrate needs:

* :class:`Store` — an unbounded-or-bounded FIFO of items; the universal
  mailbox/queue used by NICs, IPC, and device drivers.
* :class:`Resource` — a counted resource with FIFO service; used to model
  a host CPU (capacity 1) so that protocol processing, application work,
  and interrupt handling contend for cycles.
* :class:`CPU` — a thin convenience wrapper over a capacity-1 Resource
  that charges a cost-model duration while holding the resource.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from .engine import Simulator
from .errors import SimError
from .events import PENDING, Event, Timeout


class StorePut(Event):
    """Request to place ``item`` into a store."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        self.sim = store.sim
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._cancelled = False
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    """Request to take the next item out of a store."""

    __slots__ = ()

    def __init__(self, store: "Store") -> None:
        self.sim = store.sim
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._cancelled = False
        store._get_queue.append(self)
        store._trigger()


class Store:
    """A FIFO of items with event-based put/get.

    ``capacity`` bounds the number of buffered items; puts beyond the
    bound block until space frees.  The default is unbounded.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._put_queue: Deque[StorePut] = deque()
        self._get_queue: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Event that fires when ``item`` has entered the store."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Event that fires with the next item."""
        return StoreGet(self)

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False if the store is full."""
        if len(self.items) >= self.capacity and not self._get_queue:
            return False
        StorePut(self, item)
        return True

    def try_get(self) -> Any:
        """Non-blocking get; returns None if the store is empty."""
        if not self.items:
            return None
        item = self.items.popleft()
        self._trigger()
        return item

    def _trigger(self) -> None:
        items = self.items
        put_queue = self._put_queue
        get_queue = self._get_queue
        capacity = self.capacity
        while True:
            progressed = False
            while put_queue and len(items) < capacity:
                put = put_queue.popleft()
                items.append(put.item)
                put.succeed()
                progressed = True
            while get_queue and items:
                get_queue.popleft().succeed(items.popleft())
                progressed = True
            if not progressed:
                return


class ResourceRequest(Event):
    """A pending claim on one unit of a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        self.sim = resource.sim
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._cancelled = False
        self.resource = resource
        resource._queue.append(self)
        resource._trigger()

    def release(self) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request."""
        if self.triggered:
            raise SimError("cannot cancel a granted request; release instead")
        try:
            self.resource._queue.remove(self)
        except ValueError:
            pass


class Resource:
    """``capacity`` units served strictly FIFO."""

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.sim = sim
        self.capacity = capacity
        self._users: list[ResourceRequest] = []
        self._queue: Deque[ResourceRequest] = deque()

    @property
    def count(self) -> int:
        """Units currently in use."""
        return len(self._users)

    @property
    def queued(self) -> int:
        """Requests waiting for a unit."""
        return len(self._queue)

    def request(self) -> ResourceRequest:
        """Event granted when a unit becomes available."""
        return ResourceRequest(self)

    def release(self, request: ResourceRequest) -> None:
        """Return the unit held by ``request``."""
        try:
            self._users.remove(request)
        except ValueError:
            raise SimError("releasing a request that holds no unit") from None
        self._trigger()

    def _trigger(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            request = self._queue.popleft()
            self._users.append(request)
            request.succeed(request)


class CPU:
    """A host processor: a capacity-1 FIFO resource plus a cost meter.

    All costed work on a host funnels through :meth:`consume`, so
    concurrent activities (interrupt handling, protocol processing,
    application copies) serialize exactly as they would on the paper's
    uniprocessor DECstations.
    """

    def __init__(self, sim: Simulator, name: str = "cpu") -> None:
        self.sim = sim
        self.name = name
        self._resource = Resource(sim, capacity=1)
        self.busy_time = 0.0

    @property
    def utilization_time(self) -> float:
        """Total simulated seconds this CPU has spent busy."""
        return self.busy_time

    def claim(self) -> Event:
        """Inline capacity-1 acquire for open-coded hot paths.

        Returns the grant event (fires once the CPU is held).  The
        caller must ``yield`` it, guard the wait with
        :meth:`abandon`, and pair it with :meth:`unclaim` — the pattern
        :meth:`consume` wraps.  Hot receive/transmit paths open-code
        that pattern in their own generator frame: it saves one
        delegating generator per CPU charge, which is the dominant
        per-event cost at fabric scale.
        """
        res = self._resource
        users = res._users
        sim = self.sim
        request = Event(sim)
        if not users:
            users.append(request)
            request._ok = True
            request._value = request
            sim.schedule(request)
        else:
            res._queue.append(request)
        return request

    def abandon(self, request: Event) -> None:
        """Back out of a claim after an exception at the wait point."""
        if request._value is PENDING:
            try:
                self._resource._queue.remove(request)
            except ValueError:
                pass
        else:
            self._resource._users.remove(request)
            self._resource._trigger()

    def unclaim(self, request: Event) -> None:
        """Release a granted claim; grants the next FIFO waiter."""
        res = self._resource
        res._users.remove(request)
        queue = res._queue
        if queue:
            nxt = queue.popleft()
            res._users.append(nxt)
            nxt._ok = True
            nxt._value = nxt
            self.sim.schedule(nxt)

    def consume(self, cost: float) -> Generator[Event, Any, None]:
        """Generator: acquire the CPU, hold it ``cost`` seconds, release.

        Usage inside a process::

            yield from host.cpu.consume(costs.trap)

        This is the single hottest function in the simulator (every
        costed instruction on every host funnels through it), so the
        capacity-1 grant/queue/release dance is inlined here rather than
        going through the generic :class:`Resource` machinery.  The
        event sequence — grant scheduled at ``now``, then a cost-long
        timeout — is identical to what ``request()``/``release()`` would
        produce, and the inlined paths share ``_users``/``_queue`` with
        the Resource so external ``cpu._resource.request()`` holders
        still contend correctly.
        """
        if cost < 0:
            raise ValueError(f"negative cost {cost}")
        if cost == 0.0:
            return
        res = self._resource
        users = res._users
        sim = self.sim
        request = Event(sim)
        if not users:
            # Uncontended (the common case): grant immediately.  A free
            # capacity-1 resource always has an empty queue, so FIFO
            # order is preserved.
            users.append(request)
            request._ok = True
            request._value = request
            sim.schedule(request)
        else:
            res._queue.append(request)
        try:
            yield request
        except BaseException:
            # Interrupted while queued for the CPU: withdraw the claim
            # (or return the unit if the grant raced the interrupt) so
            # the processor is never leaked.
            if request._value is PENDING:
                try:
                    res._queue.remove(request)
                except ValueError:
                    pass
            else:
                users.remove(request)
                res._trigger()
            raise
        try:
            yield Timeout(sim, cost)
            self.busy_time += cost
        finally:
            users.remove(request)
            queue = res._queue
            if queue:
                nxt = queue.popleft()
                users.append(nxt)
                nxt._ok = True
                nxt._value = nxt
                sim.schedule(nxt)
