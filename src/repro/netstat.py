"""netstat-style introspection over a running testbed.

Because the protocol state lives in user-level libraries and a trusted
registry — not buried in a kernel — a management tool can walk it
directly.  :func:`connection_table` lists every TCP connection the
registries know about, with live TCB state; :func:`channel_table` lists
the network I/O modules' protected channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .net.headers import ip_to_str

if TYPE_CHECKING:
    from .testbed import Testbed


@dataclass(frozen=True)
class ConnectionEntry:
    """One row of the connection table."""

    host: str
    owner: str
    local: str
    remote: str
    state: str
    snd_in_flight: int
    rcv_buffered: int
    retransmits: int

    def __str__(self) -> str:
        return (
            f"{self.host:8s} {self.owner:10s} {self.local:21s} "
            f"{self.remote:21s} {self.state:12s} "
            f"flight={self.snd_in_flight:<6d} rexmt={self.retransmits}"
        )


@dataclass(frozen=True)
class ChannelEntry:
    """One row of the channel table."""

    host: str
    name: str
    owner: str
    kind: str  # "filter" (software demux) or f"bqi {n}" (hardware ring).
    delivered: int
    tx_packets: int
    mean_batch: float

    def __str__(self) -> str:
        return (
            f"{self.host:8s} {self.name:18s} {self.owner:10s} {self.kind:10s}"
            f" rx={self.delivered:<7d} tx={self.tx_packets:<7d}"
            f" batch={self.mean_batch:.2f}"
        )


def connection_table(testbed: "Testbed") -> list[ConnectionEntry]:
    """All TCP connections the registries have granted (userlib only)."""
    entries: list[ConnectionEntry] = []
    for registry in (testbed.registry_a, testbed.registry_b):
        if registry is None:
            continue
        host = registry.host
        for record in registry._records:
            grant = record.grant
            machine = grant.machine
            if machine is None:
                continue  # A UDP binding, listed by channel_table.
            tcb = machine.tcb
            entries.append(
                ConnectionEntry(
                    host=host.name,
                    owner=record.owner.name,
                    local=f"{ip_to_str(host.ip)}:{grant.local_port}",
                    remote=f"{ip_to_str(grant.remote_ip)}:{grant.remote_port}",
                    state=machine.state.value,
                    snd_in_flight=tcb.flight_size,
                    rcv_buffered=tcb.rcv_user,
                    retransmits=machine.stats["retransmits"],
                )
            )
    return entries


def channel_table(testbed: "Testbed") -> list[ChannelEntry]:
    """All protected channels in both network I/O modules."""
    entries: list[ChannelEntry] = []
    for host in (testbed.host_a, testbed.host_b):
        for channel in host.netio.channels:
            if channel.ring is not None:
                kind = f"bqi {channel.ring.bqi}"
            elif channel.demux_filter is not None:
                kind = "filter"
            else:
                kind = "none"
            entries.append(
                ChannelEntry(
                    host=host.name,
                    name=channel.name,
                    owner=channel.owner.name,
                    kind=kind,
                    delivered=channel.stats["delivered"],
                    tx_packets=channel.stats["tx_packets"],
                    mean_batch=channel.mean_batch_size,
                )
            )
    return entries


def render(testbed: "Testbed") -> str:
    """The full netstat report as text."""
    lines = ["Active TCP connections (registry view)"]
    connections = connection_table(testbed)
    if connections:
        lines.extend(str(entry) for entry in connections)
    else:
        lines.append("  (none)")
    lines.append("")
    lines.append("Protected channels (network I/O module view)")
    channels = channel_table(testbed)
    if channels:
        lines.extend(str(entry) for entry in channels)
    else:
        lines.append("  (none)")
    return "\n".join(lines)
