"""netstat-style introspection over a running testbed.

Because the protocol state lives in user-level libraries and a trusted
registry — not buried in a kernel — a management tool can walk it
directly.  :func:`connection_table` lists every TCP connection the
registries know about, with live TCB state; :func:`channel_table` lists
the network I/O modules' protected channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .net.headers import ip_to_str

if TYPE_CHECKING:
    from .testbed import Testbed


@dataclass(frozen=True)
class ConnectionEntry:
    """One row of the connection table."""

    host: str
    owner: str
    local: str
    remote: str
    state: str
    snd_in_flight: int
    rcv_buffered: int
    retransmits: int

    def __str__(self) -> str:
        return (
            f"{self.host:8s} {self.owner:10s} {self.local:21s} "
            f"{self.remote:21s} {self.state:12s} "
            f"flight={self.snd_in_flight:<6d} rexmt={self.retransmits}"
        )


@dataclass(frozen=True)
class ChannelEntry:
    """One row of the channel table."""

    host: str
    name: str
    owner: str
    kind: str  # Demux tier: "exact"/"wildcard"/"scan", or f"bqi {n}".
    delivered: int
    tx_packets: int
    mean_batch: float

    def __str__(self) -> str:
        return (
            f"{self.host:8s} {self.name:18s} {self.owner:10s} {self.kind:10s}"
            f" rx={self.delivered:<7d} tx={self.tx_packets:<7d}"
            f" batch={self.mean_batch:.2f}"
        )


@dataclass(frozen=True)
class DemuxEntry:
    """One host's flow-table engine state and per-tier hit counters."""

    host: str
    style: str
    exact: int
    wildcard: int
    scan: int
    exact_hits: int
    wildcard_hits: int
    scan_hits: int
    misses: int
    mean_scan: float

    def __str__(self) -> str:
        return (
            f"{self.host:8s} {self.style:11s}"
            f" flows={self.exact}/{self.wildcard}/{self.scan}"
            f" hits={self.exact_hits}/{self.wildcard_hits}/{self.scan_hits}"
            f" miss={self.misses} scan~{self.mean_scan:.1f}"
        )


def connection_table(testbed: "Testbed") -> list[ConnectionEntry]:
    """All TCP connections the registries have granted (userlib only)."""
    entries: list[ConnectionEntry] = []
    for registry in (testbed.registry_a, testbed.registry_b):
        if registry is None:
            continue
        host = registry.host
        for record in registry._records:
            grant = record.grant
            machine = grant.machine
            if machine is None:
                continue  # A UDP binding, listed by channel_table.
            tcb = machine.tcb
            entries.append(
                ConnectionEntry(
                    host=host.name,
                    owner=record.owner.name,
                    local=f"{ip_to_str(host.ip)}:{grant.local_port}",
                    remote=f"{ip_to_str(grant.remote_ip)}:{grant.remote_port}",
                    state=machine.state.value,
                    snd_in_flight=tcb.flight_size,
                    rcv_buffered=tcb.rcv_user,
                    retransmits=machine.stats["retransmits"],
                )
            )
    return entries


def channel_table(testbed: "Testbed") -> list[ChannelEntry]:
    """All protected channels in both network I/O modules."""
    entries: list[ChannelEntry] = []
    for host in (testbed.host_a, testbed.host_b):
        for channel in host.netio.channels:
            if channel.ring is not None:
                kind = f"bqi {channel.ring.bqi}"
            elif channel.demux_filter is not None:
                kind = "scan"
            elif channel.flow_key is not None:
                kind = "exact" if channel.flow_key.is_exact else "wildcard"
            else:
                kind = "none"
            entries.append(
                ChannelEntry(
                    host=host.name,
                    name=channel.name,
                    owner=channel.owner.name,
                    kind=kind,
                    delivered=channel.stats["delivered"],
                    tx_packets=channel.stats["tx_packets"],
                    mean_batch=channel.mean_batch_size,
                )
            )
    return entries


def demux_table(testbed: "Testbed") -> list[DemuxEntry]:
    """Per-host flow-table engine state: installed entries per tier
    (exact/wildcard/scan) and the hit/miss counters of each."""
    entries: list[DemuxEntry] = []
    for host in (testbed.host_a, testbed.host_b):
        table = host.netio.flow_table
        stats = table.stats
        scans = stats["exact_hits"] + stats["wildcard_hits"] \
            + stats["scan_hits"] + stats["misses"]
        entries.append(
            DemuxEntry(
                host=host.name,
                style=getattr(table, "style", "custom"),
                exact=table.exact_count,
                wildcard=table.wildcard_count,
                scan=table.scan_count,
                exact_hits=stats["exact_hits"],
                wildcard_hits=stats["wildcard_hits"],
                scan_hits=stats["scan_hits"],
                misses=stats["misses"],
                mean_scan=stats["filters_scanned"] / scans if scans else 0.0,
            )
        )
    return entries


def render(testbed: "Testbed") -> str:
    """The full netstat report as text."""
    lines = ["Active TCP connections (registry view)"]
    connections = connection_table(testbed)
    if connections:
        lines.extend(str(entry) for entry in connections)
    else:
        lines.append("  (none)")
    lines.append("")
    lines.append("Protected channels (network I/O module view)")
    channels = channel_table(testbed)
    if channels:
        lines.extend(str(entry) for entry in channels)
    else:
        lines.append("  (none)")
    lines.append("")
    lines.append(
        "Demux engine (flows exact/wildcard/scan · hits per tier)"
    )
    lines.extend(str(entry) for entry in demux_table(testbed))
    return "\n".join(lines)
