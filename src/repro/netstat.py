"""netstat-style introspection over a running testbed.

Because the protocol state lives in user-level libraries and a trusted
registry — not buried in a kernel — a management tool can walk it
directly.  :func:`connection_table` lists every TCP connection the
registries know about, with live TCB state; :func:`channel_table` lists
the network I/O modules' protected channels; :func:`link_table` and
:func:`switch_table` cover the fabric — per-link fault accounting and
per-switch-port queue behaviour (depth, drops, occupancy).

Works over anything exposing the testbed surface: ``hosts``,
``registries``, ``links``, ``switches`` (both :class:`~repro.testbed.Testbed`
and :class:`~repro.testbed.FabricTestbed`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Optional

from .net.headers import ip_to_str
from .obs import hist as _hist
from .obs import profile as _profile
from .obs import spans as _spans

if TYPE_CHECKING:
    from .testbed import Testbed


def _hosts(testbed) -> list:
    hosts = getattr(testbed, "hosts", None)
    if hosts is not None:
        return list(hosts)
    return [testbed.host_a, testbed.host_b]


def _registries(testbed) -> list:
    registries = getattr(testbed, "registries", None)
    if registries is not None:
        return list(registries)
    return [r for r in (testbed.registry_a, testbed.registry_b) if r is not None]


@dataclass(frozen=True)
class ConnectionEntry:
    """One row of the connection table."""

    host: str
    owner: str
    local: str
    remote: str
    state: str
    snd_in_flight: int
    rcv_buffered: int
    retransmits: int

    def __str__(self) -> str:
        return (
            f"{self.host:8s} {self.owner:10s} {self.local:21s} "
            f"{self.remote:21s} {self.state:12s} "
            f"flight={self.snd_in_flight:<6d} rexmt={self.retransmits}"
        )


@dataclass(frozen=True)
class ChannelEntry:
    """One row of the channel table."""

    host: str
    name: str
    owner: str
    kind: str  # Demux tier: "exact"/"wildcard"/"scan", or f"bqi {n}".
    delivered: int
    tx_packets: int
    mean_batch: float

    def __str__(self) -> str:
        return (
            f"{self.host:8s} {self.name:18s} {self.owner:10s} {self.kind:10s}"
            f" rx={self.delivered:<7d} tx={self.tx_packets:<7d}"
            f" batch={self.mean_batch:.2f}"
        )


@dataclass(frozen=True)
class DemuxEntry:
    """One host's flow-table engine state and per-tier hit counters."""

    host: str
    style: str
    exact: int
    wildcard: int
    scan: int
    exact_hits: int
    wildcard_hits: int
    scan_hits: int
    misses: int
    mean_scan: float

    def __str__(self) -> str:
        return (
            f"{self.host:8s} {self.style:11s}"
            f" flows={self.exact}/{self.wildcard}/{self.scan}"
            f" hits={self.exact_hits}/{self.wildcard_hits}/{self.scan_hits}"
            f" miss={self.misses} scan~{self.mean_scan:.1f}"
        )


def connection_table(testbed: "Testbed") -> list[ConnectionEntry]:
    """All TCP connections the registries have granted (userlib only)."""
    entries: list[ConnectionEntry] = []
    for registry in _registries(testbed):
        host = registry.host
        for record in registry._records:
            grant = record.grant
            machine = grant.machine
            if machine is None:
                continue  # A UDP binding, listed by channel_table.
            tcb = machine.tcb
            entries.append(
                ConnectionEntry(
                    host=host.name,
                    owner=record.owner.name,
                    local=f"{ip_to_str(host.ip)}:{grant.local_port}",
                    remote=f"{ip_to_str(grant.remote_ip)}:{grant.remote_port}",
                    state=machine.state.value,
                    snd_in_flight=tcb.flight_size,
                    rcv_buffered=tcb.rcv_user,
                    retransmits=machine.stats["retransmits"],
                )
            )
    return entries


def channel_table(testbed: "Testbed") -> list[ChannelEntry]:
    """All protected channels in both network I/O modules."""
    entries: list[ChannelEntry] = []
    for host in _hosts(testbed):
        for channel in host.netio.channels:
            if channel.ring is not None:
                kind = f"bqi {channel.ring.bqi}"
            elif channel.demux_filter is not None:
                kind = "scan"
            elif channel.flow_key is not None:
                kind = "exact" if channel.flow_key.is_exact else "wildcard"
            else:
                kind = "none"
            entries.append(
                ChannelEntry(
                    host=host.name,
                    name=channel.name,
                    owner=channel.owner.name,
                    kind=kind,
                    delivered=channel.stats["delivered"],
                    tx_packets=channel.stats["tx_packets"],
                    mean_batch=channel.mean_batch_size,
                )
            )
    return entries


def demux_table(testbed: "Testbed") -> list[DemuxEntry]:
    """Per-host flow-table engine state: installed entries per tier
    (exact/wildcard/scan) and the hit/miss counters of each."""
    entries: list[DemuxEntry] = []
    for host in _hosts(testbed):
        table = host.netio.flow_table
        stats = table.stats
        scans = stats["exact_hits"] + stats["wildcard_hits"] \
            + stats["scan_hits"] + stats["misses"]
        entries.append(
            DemuxEntry(
                host=host.name,
                style=getattr(table, "style", "custom"),
                exact=table.exact_count,
                wildcard=table.wildcard_count,
                scan=table.scan_count,
                exact_hits=stats["exact_hits"],
                wildcard_hits=stats["wildcard_hits"],
                scan_hits=stats["scan_hits"],
                misses=stats["misses"],
                mean_scan=stats["filters_scanned"] / scans if scans else 0.0,
            )
        )
    return entries


@dataclass(frozen=True)
class FastpathEntry:
    """One node's hot-path effectiveness.

    Host rows aggregate receive-side TCP header prediction over every
    connection on the host plus the demux engine's last-flow memo;
    router rows report the flow-keyed next-hop cache in front of the
    longest-prefix-match table.
    """

    node: str
    kind: str  # "host" or "router"
    ack_hits: int = 0
    data_hits: int = 0
    slow_path: int = 0
    hit_rate: float = 0.0
    memo_hits: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0

    def __str__(self) -> str:
        if self.kind == "router":
            total = self.cache_hits + self.cache_misses
            rate = self.cache_hits / total if total else 0.0
            return (
                f"{self.node:8s} {self.kind:7s}"
                f" nexthop={self.cache_hits}/{total} ({rate:.1%})"
                f" inval={self.cache_invalidations}"
            )
        return (
            f"{self.node:8s} {self.kind:7s}"
            f" predicted={self.ack_hits + self.data_hits:<7d}"
            f" (ack={self.ack_hits} data={self.data_hits})"
            f" slow={self.slow_path:<6d} rate={self.hit_rate:.1%}"
            f" memo={self.memo_hits}"
        )


def fastpath_table(testbed) -> list[FastpathEntry]:
    """Per-node fast-path counters: header-prediction hits/misses and
    demux memo hits for hosts, next-hop cache behaviour for routers."""
    machines_by_host: dict[str, list] = {}
    for registry in _registries(testbed):
        rows = machines_by_host.setdefault(registry.host.name, [])
        for record in registry._records:
            machine = record.grant.machine
            if machine is not None:
                rows.append(machine)
    for service in getattr(testbed, "services", []):
        connections = getattr(service, "_connections", None)
        if connections is None:
            continue  # Library service: its machines came via the registry.
        rows = machines_by_host.setdefault(service.host.name, [])
        rows.extend(c.runner.machine for c in connections.values())
    entries: list[FastpathEntry] = []
    for host in _hosts(testbed):
        ack = data = miss = 0
        for machine in machines_by_host.get(host.name, ()):
            stats = machine.stats
            ack += stats["fastpath_ack_hits"]
            data += stats["fastpath_data_hits"]
            miss += stats["fastpath_misses"]
        total = ack + data + miss
        entries.append(
            FastpathEntry(
                node=host.name,
                kind="host",
                ack_hits=ack,
                data_hits=data,
                slow_path=miss,
                hit_rate=(ack + data) / total if total else 0.0,
                memo_hits=host.netio.flow_table.stats["memo_hits"],
            )
        )
    for router in getattr(testbed, "routers", []):
        cache = router.route_cache_stats
        entries.append(
            FastpathEntry(
                node=router.name,
                kind="router",
                cache_hits=cache["hits"],
                cache_misses=cache["misses"],
                cache_invalidations=cache["invalidations"],
            )
        )
    return entries


@dataclass(frozen=True)
class LinkEntry:
    """One link's traffic and fault accounting."""

    name: str
    frames: int
    bytes: int
    dropped: int
    corrupted: int
    duplicated: int

    def __str__(self) -> str:
        return (
            f"{self.name:12s} frames={self.frames:<8d} bytes={self.bytes:<10d}"
            f" drop={self.dropped:<5d} corrupt={self.corrupted:<5d}"
            f" dup={self.duplicated}"
        )


@dataclass(frozen=True)
class SwitchPortEntry:
    """One switch port's forwarding and egress-queue behaviour."""

    name: str
    rate_mbps: float
    rx_frames: int
    tx_frames: int
    drops: int
    early_drops: int
    depth_bytes: int
    peak_bytes: int
    mean_occupancy: float
    discipline: str

    def __str__(self) -> str:
        return (
            f"{self.name:10s} {self.rate_mbps:6.1f}Mb {self.discipline:8s}"
            f" rx={self.rx_frames:<7d} tx={self.tx_frames:<7d}"
            f" drop={self.drops:<5d} early={self.early_drops:<4d}"
            f" depth={self.depth_bytes:<6d} peak={self.peak_bytes:<6d}"
            f" occ~{self.mean_occupancy:4.0%}"
        )


def link_table(testbed) -> list[LinkEntry]:
    """Per-link frame counts and fault-injection accounting."""
    entries: list[LinkEntry] = []
    for i, link in enumerate(getattr(testbed, "links", [])):
        stats = link.stats
        entries.append(
            LinkEntry(
                name=f"link{i}",
                frames=stats["frames"],
                bytes=stats["bytes"],
                dropped=stats["dropped"],
                corrupted=stats["corrupted"],
                duplicated=stats["duplicated"],
            )
        )
    return entries


def switch_table(testbed) -> list[SwitchPortEntry]:
    """Every switch port's counters and egress-queue occupancy."""
    entries: list[SwitchPortEntry] = []
    for switch in getattr(testbed, "switches", []):
        for port in switch.ports:
            queue = port.queue
            entries.append(
                SwitchPortEntry(
                    name=port.name,
                    rate_mbps=port.link.bit_rate / 1e6,
                    rx_frames=port.stats["rx_frames"],
                    tx_frames=port.stats["tx_frames"],
                    drops=queue.stats["dropped"],
                    early_drops=queue.stats.get("early_dropped", 0),
                    depth_bytes=queue.depth_bytes,
                    peak_bytes=queue.peak_bytes,
                    mean_occupancy=queue.mean_occupancy(),
                    discipline=queue.discipline,
                )
            )
    return entries


@dataclass(frozen=True)
class CopyEntry:
    """One row of the copy-accounting table.

    Process-global rows (``datapath``, ``tcp-encoder``) cover the buf
    counters and the template-encoder aggregate; per-host rows cover the
    demux tier's view accounting.
    """

    scope: str
    detail: str
    copied_bytes: int
    avoided_bytes: int
    ops: int

    def __str__(self) -> str:
        return (
            f"{self.scope:12s} {self.detail:34s}"
            f" copied={self.copied_bytes:<10d}"
            f" avoided={self.avoided_bytes:<10d} ops={self.ops}"
        )


def copy_table(testbed: "Testbed") -> list[CopyEntry]:
    """Copy accounting: global buf counters, template-encoder hits, and
    per-host demux payload views (the ``netstat -m`` of this stack)."""
    from .net.buf import STATS, get_mode
    from .protocols.tcp.wire import TcpSegmentEncoder

    entries = [
        CopyEntry(
            scope="datapath",
            detail=f"mode={get_mode()} host copies",
            copied_bytes=STATS.copied_bytes,
            avoided_bytes=STATS.avoided_bytes,
            ops=STATS.copy_ops,
        ),
        CopyEntry(
            scope="datapath",
            detail="wire-image fusion",
            copied_bytes=STATS.materialized_bytes,
            avoided_bytes=0,
            ops=STATS.materialize_ops,
        ),
    ]
    enc = TcpSegmentEncoder.GLOBAL_STATS
    entries.append(
        CopyEntry(
            scope="tcp-encoder",
            detail=(
                f"full={enc['full_encodes']}"
                f" patch={enc['template_patches']}"
                f" reuse={enc['retransmit_reuses']}"
            ),
            copied_bytes=0,
            avoided_bytes=0,
            ops=sum(enc.values()),
        )
    )
    for host in _hosts(testbed):
        stats = getattr(host.netio.flow_table, "stats", None) or {}
        entries.append(
            CopyEntry(
                scope=host.name,
                detail="demux payload views",
                copied_bytes=0,
                avoided_bytes=stats.get("bytes_copy_avoided", 0),
                ops=stats.get("payload_views", 0),
            )
        )
    return entries


@dataclass(frozen=True)
class TenantEntry:
    """One tenant's row: occupancy against quota plus the audited
    enforcement history (throttles, rejections, cross-tenant blocks)."""

    tenant: str
    channels: int
    region_used: int
    region_quota: int
    bqi_used: int
    bqi_quota: int
    tx_bytes: int
    rx_bytes: int
    throttles: int
    rejections: int
    drops: int

    def __str__(self) -> str:
        return (
            f"{self.tenant:10s} chan={self.channels:<3d}"
            f" region={self.region_used}/{self.region_quota}"
            f" bqi={self.bqi_used}/{self.bqi_quota}"
            f" tx={self.tx_bytes:<9d} rx={self.rx_bytes:<9d}"
            f" throttle={self.throttles:<5d} reject={self.rejections:<4d}"
            f" drop={self.drops}"
        )


def tenant_table(testbed, tenant: Optional[str] = None) -> list[TenantEntry]:
    """Per-tenant occupancy and enforcement counters, optionally
    filtered to one tenant id.  Empty on untenanted testbeds."""
    manager = getattr(testbed, "tenants", None)
    if manager is None:
        return []
    entries: list[TenantEntry] = []
    for t in sorted(manager, key=lambda t: t.tenant_id):
        if tenant is not None and t.tenant_id != tenant:
            continue
        counters = t.counters
        entries.append(
            TenantEntry(
                tenant=t.tenant_id,
                channels=t.channel_count,
                region_used=t.region_bytes_used,
                region_quota=t.budget.region_bytes,
                bqi_used=t.bqi_buffers_used,
                bqi_quota=t.budget.bqi_buffers,
                tx_bytes=counters["tx_bytes"],
                rx_bytes=counters["rx_bytes"],
                throttles=counters["throttle_events"],
                rejections=counters["rejections"],
                drops=counters["rx_dropped"],
            )
        )
    return entries


@dataclass(frozen=True)
class EngineEntry:
    """The event engine's own counters: batching effectiveness plus the
    skip accounting (duplicate schedules of already-processed events,
    and lazily-cancelled tombstones) that used to vanish silently."""

    events: int
    steps: int
    batched: int
    max_batch: int
    skipped: int
    cancelled: int

    def __str__(self) -> str:
        return (
            f"  events={self.events} steps={self.steps} "
            f"batched={self.batched} max_batch={self.max_batch} "
            f"skipped={self.skipped} cancelled={self.cancelled}"
        )


def engine_table(testbed) -> list[EngineEntry]:
    """Engine counters for the testbed's (or topology's) simulator."""
    stats = testbed.sim.engine_stats()
    return [EngineEntry(**stats)]


@dataclass(frozen=True)
class InvariantEntry:
    """One conformance invariant's verdict over a run."""

    invariant: str
    checked: int
    violations: int

    def __str__(self) -> str:
        verdict = "ok" if self.violations == 0 else "VIOLATED"
        return (
            f"{self.invariant:20s} checked={self.checked:<7d}"
            f" violations={self.violations:<4d} {verdict}"
        )


def invariant_table(results) -> list[InvariantEntry]:
    """Summarize :class:`~repro.check.invariants.CheckResult` rows."""
    return [
        InvariantEntry(
            invariant=r.invariant,
            checked=r.checked,
            violations=len(r.violations),
        )
        for r in results
    ]


def render_invariants(results) -> str:
    """The conformance summary as text (the ``repro.check`` footer)."""
    lines = ["Conformance invariants (evidence checked · violations)"]
    entries = invariant_table(results)
    if entries:
        lines.extend(str(entry) for entry in entries)
    else:
        lines.append("  (none)")
    return "\n".join(lines)


@dataclass(frozen=True)
class SpanTraceEntry:
    """One traced packet's condensed lifecycle (full timelines via
    :meth:`~repro.obs.spans.SpanRecorder.render_timeline`)."""

    trace: int
    detail: str
    hops: int
    first_stage: str
    last_stage: str
    elapsed_us: float

    def __str__(self) -> str:
        return (
            f"{self.trace:<6d} hops={self.hops:<3d}"
            f" {self.first_stage}->{self.last_stage:<10s}"
            f" {self.elapsed_us:9.1f}us  {self.detail}"
        )


def span_table(limit: Optional[int] = None) -> list[SpanTraceEntry]:
    """One row per trace retained in the span ring (newest last).

    Empty when span tracing is disabled.  ``limit`` keeps only the last
    N traces.
    """
    recorder = _spans.RECORDER
    if recorder is None:
        return []
    entries: list[SpanTraceEntry] = []
    timelines: dict[int, list] = {}
    for event in recorder.events:
        timelines.setdefault(event.trace_id, []).append(event)
    for tid, events in timelines.items():
        birth = recorder._births.get(tid)
        entries.append(
            SpanTraceEntry(
                trace=tid,
                detail=birth[1] if birth else events[0].detail,
                hops=len(events),
                first_stage=events[0].stage,
                last_stage=events[-1].stage,
                elapsed_us=(events[-1].time - events[0].time) * 1e6,
            )
        )
    if limit is not None:
        entries = entries[-limit:]
    return entries


def profile_table(top: Optional[int] = None) -> list:
    """Sim-time profiler report rows (empty when profiling is off)."""
    profiler = _profile.PROFILER
    if profiler is None:
        return []
    return profiler.report(top)


@dataclass(frozen=True)
class HistEntry:
    """One histogram's quantile summary."""

    name: str
    count: int
    mean: float
    min: float
    max: float
    p50: float
    p90: float
    p99: float
    p999: float

    def __str__(self) -> str:
        # Occupancy histograms hold dimensionless ratios; everything
        # else registered here is seconds.
        fmt = _ratio if self.name.endswith("occupancy") else _si
        return (
            f"{self.name:26s} n={self.count:<8d}"
            f" p50={fmt(self.p50)} p90={fmt(self.p90)}"
            f" p99={fmt(self.p99)} p999={fmt(self.p999)}"
            f" mean={fmt(self.mean)} max={fmt(self.max)}"
        )


def _si(value: float) -> str:
    """Compact engineering formatting for histogram quantiles."""
    if value == 0:
        return "0"
    for scale, suffix in ((1.0, "s"), (1e-3, "ms"), (1e-6, "us"), (1e-9, "ns")):
        if abs(value) >= scale:
            return f"{value / scale:.3g}{suffix}"
    return f"{value:.3g}"


def _ratio(value: float) -> str:
    return f"{value:.3f}"


def hist_table() -> list[HistEntry]:
    """All registered histograms' summaries (empty when disabled)."""
    registry = _hist.REGISTRY
    if registry is None:
        return []
    return [
        HistEntry(name=name, **summary)
        for name, summary in sorted(registry.summaries().items())
    ]


def render_spans(limit: Optional[int] = 20) -> str:
    lines = ["Packet spans (trace · hops · lifecycle)"]
    recorder = _spans.RECORDER
    if recorder is None:
        lines.append("  (span tracing disabled — repro.obs.enable())")
        return "\n".join(lines)
    stats = recorder.stats()
    lines.append(
        f"  minted={stats['minted']} recorded={stats['recorded']}"
        f" retained={stats['retained']}/{stats['capacity']}"
    )
    lines.extend(str(entry) for entry in span_table(limit))
    return "\n".join(lines)


def render_profile(top: Optional[int] = 15) -> str:
    profiler = _profile.PROFILER
    if profiler is None:
        return (
            "Sim-time profile\n  (profiling disabled — repro.obs.enable())"
        )
    return profiler.render(top)


def render_hist() -> str:
    lines = ["Latency histograms (log-bucketed)"]
    entries = hist_table()
    if _hist.REGISTRY is None:
        lines.append("  (histograms disabled — repro.obs.enable())")
    elif not entries:
        lines.append("  (no samples)")
    else:
        lines.extend(str(entry) for entry in entries)
    return "\n".join(lines)


def as_json(testbed: "Testbed", tenant: Optional[str] = None) -> dict:
    """Every netstat table as one JSON-safe dict.

    Observability sections (``spans``/``profile``/``histograms``) are
    present but empty when the corresponding plane is disabled.
    """
    recorder = _spans.RECORDER
    return {
        "connections": [asdict(e) for e in connection_table(testbed)],
        "channels": [asdict(e) for e in channel_table(testbed)],
        "demux": [asdict(e) for e in demux_table(testbed)],
        "fastpath": [asdict(e) for e in fastpath_table(testbed)],
        "copy": [asdict(e) for e in copy_table(testbed)],
        "links": [asdict(e) for e in link_table(testbed)],
        "switch_ports": [asdict(e) for e in switch_table(testbed)],
        "tenants": [asdict(e) for e in tenant_table(testbed, tenant=tenant)],
        "engine": [asdict(e) for e in engine_table(testbed)],
        "spans": {
            "stats": recorder.stats() if recorder is not None else {},
            "traces": [asdict(e) for e in span_table()],
        },
        "profile": [r.as_dict() for r in profile_table()],
        "histograms": (
            _hist.REGISTRY.summaries() if _hist.REGISTRY is not None else {}
        ),
    }


def render(testbed: "Testbed", tenant: Optional[str] = None) -> str:
    """The full netstat report as text.

    ``tenant`` filters the tenant table to one id (the CLI's
    ``--tenant`` flag); the other tables are unaffected.
    """
    lines = ["Active TCP connections (registry view)"]
    connections = connection_table(testbed)
    if connections:
        lines.extend(str(entry) for entry in connections)
    else:
        lines.append("  (none)")
    lines.append("")
    lines.append("Protected channels (network I/O module view)")
    channels = channel_table(testbed)
    if channels:
        lines.extend(str(entry) for entry in channels)
    else:
        lines.append("  (none)")
    lines.append("")
    lines.append(
        "Demux engine (flows exact/wildcard/scan · hits per tier)"
    )
    lines.extend(str(entry) for entry in demux_table(testbed))
    lines.append("")
    lines.append(
        "Fast paths (header prediction · demux memo · next-hop cache)"
    )
    lines.extend(str(entry) for entry in fastpath_table(testbed))
    lines.append("")
    lines.append("Copy accounting (bytes moved vs avoided)")
    lines.extend(str(entry) for entry in copy_table(testbed))
    links = link_table(testbed)
    if links:
        lines.append("")
        lines.append("Links (traffic · injected faults)")
        lines.extend(str(entry) for entry in links)
    switch_ports = switch_table(testbed)
    if switch_ports:
        lines.append("")
        lines.append("Switch ports (egress queues)")
        lines.extend(str(entry) for entry in switch_ports)
    tenants = tenant_table(testbed, tenant=tenant)
    if tenants or tenant is not None:
        lines.append("")
        lines.append(
            "Tenants (occupancy vs quota · throttles · rejections)"
        )
        if tenants:
            lines.extend(str(entry) for entry in tenants)
        else:
            lines.append(f"  (no tenant {tenant!r})")
    lines.append("")
    lines.append("Event engine (batching · skip accounting)")
    lines.extend(str(entry) for entry in engine_table(testbed))
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    """``python -m repro.netstat``: run a small tenanted workload and
    print the report — a demo of the introspection surface, with
    ``--tenant`` filtering the tenant table."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro.netstat")
    parser.add_argument(
        "--tenant", default=None, help="show only this tenant's row"
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit every table as machine-readable JSON",
    )
    parser.add_argument(
        "--spans", action="store_true",
        help="enable span tracing and print the packet-span table",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="enable the sim-time profiler and print its report",
    )
    parser.add_argument(
        "--hist", action="store_true",
        help="enable latency histograms and print their summaries",
    )
    args = parser.parse_args(argv)

    from . import obs
    from .metrics import measure_throughput
    from .tenancy.tenant import TenantBudget, attach_tenancy
    from .testbed import Testbed

    want_obs = args.spans or args.profile or args.hist or args.json
    if want_obs:
        obs.enable(
            spans_on=args.spans or args.json,
            profile_on=args.profile or args.json,
            hist_on=args.hist or args.json,
        )
    try:
        bed = Testbed(network="ethernet", organization="userlib")
        manager = attach_tenancy(bed)
        for name, task in (("alpha", bed.app_a), ("beta", bed.app_b)):
            manager.bind_task(task, manager.create_tenant(name, TenantBudget()))
        measure_throughput(bed, total_bytes=192 * 1024)
        if args.json:
            import json

            print(json.dumps(as_json(bed, tenant=args.tenant), indent=2))
            return 0
        print(render(bed, tenant=args.tenant))
        if args.spans:
            print()
            print(render_spans())
        if args.profile:
            print()
            print(render_profile())
        if args.hist:
            print()
            print(render_hist())
    finally:
        if want_obs:
            obs.disable()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
