"""``python -m repro`` — a quick tour of the reproduction.

Runs a condensed version of the paper's evaluation (one throughput row,
one latency row, connection setup) and prints the paper's numbers
alongside, so a fresh checkout shows the headline results in under a
minute.  The full grid lives in ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import argparse

from .metrics import measure_latency, measure_setup, measure_throughput
from .testbed import Testbed

PAPER_THROUGHPUT_4096 = {
    ("ethernet", "ultrix"): 7.6,
    ("ethernet", "mach-ux"): 3.5,
    ("ethernet", "userlib"): 5.0,
    ("an1", "ultrix"): 11.9,
    ("an1", "userlib"): 11.9,
}
PAPER_RTT_512 = {
    ("ethernet", "ultrix"): 3.5,
    ("ethernet", "mach-ux"): 10.8,
    ("ethernet", "userlib"): 5.2,
    ("an1", "ultrix"): 2.7,
    ("an1", "userlib"): 3.4,
}
PAPER_SETUP = {
    ("ethernet", "ultrix"): 2.6,
    ("ethernet", "mach-ux"): 6.8,
    ("ethernet", "userlib"): 11.9,
    ("an1", "ultrix"): 2.9,
    ("an1", "userlib"): 12.3,
}


def main() -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="condensed reproduction of the paper's evaluation",
    )
    parser.add_argument(
        "--network",
        choices=("ethernet", "an1", "both"),
        default="both",
    )
    args = parser.parse_args()
    networks = ("ethernet", "an1") if args.network == "both" else (args.network,)

    print("Implementing Network Protocols at User Level (SIGCOMM '93)")
    print("condensed reproduction — simulated time, calibrated cost model")

    for network in networks:
        label = "10 Mb/s Ethernet" if network == "ethernet" else "100 Mb/s AN1"
        print(f"\n=== {label} ===")
        print(f"{'system':10s} {'tput@4096':>12s} {'rtt@512':>10s} {'setup':>9s}"
              f"   (paper in parentheses)")
        for org in ("ultrix", "mach-ux", "userlib"):
            if (network, org) not in PAPER_THROUGHPUT_4096:
                continue
            tput = measure_throughput(
                Testbed(network=network, organization=org),
                total_bytes=400_000,
                chunk_size=4096,
            ).throughput_mbps
            rtt = measure_latency(
                Testbed(network=network, organization=org),
                message_size=512,
                rounds=30,
            ).rtt_ms
            setup = measure_setup(
                Testbed(network=network, organization=org), rounds=5
            ).setup_ms
            paper = (
                PAPER_THROUGHPUT_4096[(network, org)],
                PAPER_RTT_512[(network, org)],
                PAPER_SETUP[(network, org)],
            )
            print(
                f"{org:10s} {tput:6.2f} ({paper[0]:4.1f}) Mb/s"
                f" {rtt:5.2f} ({paper[1]:4.1f})ms"
                f" {setup:5.2f} ({paper[2]:4.1f})ms"
            )

    print("\nshape reproduced: the user-level library beats the single")
    print("server, trails the kernel on Ethernet, and converges on AN1 —")
    print("while paying its one real cost at connection setup.")
    print("full evaluation: pytest benchmarks/ --benchmark-only")


if __name__ == "__main__":
    main()
