"""TCP port namespace management for the registry server.

The paper (§3.4): "connection end-points act as names of the
communicating entities and are therefore unique across a machine for a
particular protocol.  Thus, having untrusted user libraries allocate
these names is a security and administrative concern" — the registry
owns the namespace.

It also owns post-mortem state: "when the application exits, the
registry server inherits the connections and ensures that the protocol
specified delay period is maintained before the connection is reused" —
modelled here as lingering reservations that expire 2*MSL after
release.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class PortInUse(OSError):
    """The requested port is bound or still lingering in TIME-WAIT."""


@dataclass
class _Reservation:
    owner: str
    #: None while in use; otherwise the simulated time the lingering
    #: reservation expires.
    lingering_until: Optional[float] = None


class PortNamespace:
    """Allocation, reservation, and 2MSL linger for one protocol."""

    EPHEMERAL_START = 1024

    def __init__(self, msl: float = 30.0) -> None:
        self.msl = msl
        self._ports: dict[int, _Reservation] = {}
        self._next_ephemeral = self.EPHEMERAL_START

    def __len__(self) -> int:
        return len(self._ports)

    def _gc(self, now: float) -> None:
        stale = [
            port
            for port, res in self._ports.items()
            if res.lingering_until is not None and res.lingering_until <= now
        ]
        for port in stale:
            del self._ports[port]

    def reserve(self, port: int, owner: str, now: float) -> int:
        """Claim a specific port; raises :class:`PortInUse` if taken."""
        if not 0 < port < 0x10000:
            raise ValueError(f"bad port {port}")
        self._gc(now)
        if port in self._ports:
            res = self._ports[port]
            state = "lingering" if res.lingering_until is not None else "bound"
            raise PortInUse(f"port {port} is {state} (owner {res.owner})")
        self._ports[port] = _Reservation(owner)
        return port

    def allocate_ephemeral(self, owner: str, now: float) -> int:
        """Pick a free ephemeral port."""
        self._gc(now)
        for _ in range(0x10000 - self.EPHEMERAL_START):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral >= 0x10000:
                self._next_ephemeral = self.EPHEMERAL_START
            if port not in self._ports:
                self._ports[port] = _Reservation(owner)
                return port
        raise PortInUse("ephemeral port space exhausted")

    def release(self, port: int, now: float, linger: bool = True) -> None:
        """Free a port, optionally holding it for 2*MSL first."""
        res = self._ports.get(port)
        if res is None:
            return
        if linger:
            res.lingering_until = now + 2 * self.msl
        else:
            del self._ports[port]

    def is_lingering(self, port: int, now: float) -> bool:
        self._gc(now)
        res = self._ports.get(port)
        return res is not None and res.lingering_until is not None

    def is_bound(self, port: int, now: float) -> bool:
        self._gc(now)
        res = self._ports.get(port)
        return res is not None and res.lingering_until is None
