"""The registry server: trusted endpoint allocation, handshake
execution, channel setup, and connection inheritance."""

from .namespace import PortInUse, PortNamespace
from .server import ConnectionGrant, RegistryServer

__all__ = ["RegistryServer", "ConnectionGrant", "PortNamespace", "PortInUse"]
