"""The registry server: trusted connection establishment (paper §3.4).

A privileged task, one per protocol per host, that:

* allocates and deallocates connection end-points (TCP ports) — the
  names of communicating entities — so untrusted libraries never mint
  them;
* executes the three-way handshake on the application's behalf,
  reaching the network through standard Mach IPC (the expensive path:
  the paper's Table 4 breakdown attributes most of the 11.9 ms setup to
  exactly this);
* exchanges BQIs with the remote registry through the AN1 link header
  during the handshake;
* asks the network I/O module to set up the protected channel (shared
  region, demux filter or BQI ring, send template) and then *transfers
  the established connection's TCP state into the application library*,
  after which it is completely bypassed on the data path (Figure 2);
* inherits connections at application exit — maintaining the 2MSL
  delay before ports are reused, and issuing a RST to the remote peer
  if the application terminated abnormally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from ..host import Host
from ..mach.ipc import Message, receive, reply_to, send
from ..mach.task import Task
from ..net.headers import PROTO_TCP, TCP_ACK, TCP_RST
from ..netio.module import LinkInfo
from ..protocols.tcp import (
    ChecksumError,
    Segment,
    TcpConfig,
    TcpMachine,
    decode_segment,
    encode_segment,
)
from ..net.headers import HeaderError
from ..sim import Store
from ..tenancy.tenant import TenantViolation
from .namespace import PortInUse, PortNamespace
from ..org.runner import MachineRunner


@dataclass
class ConnectionGrant:
    """Everything the library needs to take over an established
    connection: the live machine, the channel, and addressing."""

    machine: Optional[TcpMachine]
    channel: object
    local_port: int
    remote_ip: int
    remote_port: int
    link_dst: object
    #: Data that arrived while the registry still owned the machine.
    rx_pending: bytes = b""


@dataclass
class _ConnectionRecord:
    """Registry-side bookkeeping for a granted connection."""

    grant: ConnectionGrant
    owner: Task
    released: bool = False


@dataclass
class _Listener:
    port: int
    owner: Task
    backlog: Store
    closed: bool = False


class RegistryServer:
    """One host's TCP registry."""

    #: Modelled size of the TCP state crossing to the library.
    STATE_BYTES = 512

    def __init__(self, host: Host, config: Optional[TcpConfig] = None) -> None:
        self.host = host
        self.sim = host.sim
        self.kernel = host.kernel
        self.config = config or TcpConfig()
        self.task = host.create_task("registry", privileged=True)
        self._service_rx = self.task.allocate_port("registry-svc")
        self.ports = PortNamespace(msl=self.config.msl)
        self._listeners: dict[int, _Listener] = {}
        #: In-flight handshakes keyed by (local_port, remote_ip, remote_port).
        self._pending: dict[tuple[int, int, int], MachineRunner] = {}
        self._peer_bqi: dict[tuple[int, int, int], int] = {}
        self._records: list[_ConnectionRecord] = []
        self._next_iss = 1
        #: TenantManager when the host is shared among principals; the
        #: registry is the second enforcement point (port grants), the
        #: network I/O module the first (quotas, templates, rate).
        self.tenants = None
        host.tcp_kernel_handler = self._tcp_rx
        self.task.spawn(self._main_loop(), name="main")
        self.stats = {
            "connects": 0,
            "accepts": 0,
            "handshake_segments": 0,
            "resets_sent": 0,
            "inherited": 0,
            "data_path_requests": 0,
        }
        #: Phase timings of the most recent active open, in seconds —
        #: the paper's Table 4 breakdown (measured, not assumed).
        self.last_breakdown: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Client-side helpers
    # ------------------------------------------------------------------

    def client_right(self, task: Task):
        """Mint a send right to the registry for an application."""
        right = self.task.make_send_right(self._service_rx)
        self.task.remove_right(right)
        task.insert_right(right)
        return right

    # ------------------------------------------------------------------
    # Main loop: one worker per request
    # ------------------------------------------------------------------

    def _main_loop(self) -> Generator:
        while True:
            message = yield from receive(self.task, self._service_rx)
            self.task.spawn(
                self._dispatch(message), name=f"req-{message.op}"
            )

    def _dispatch(self, message: Message) -> Generator:
        handler = {
            "listen": self._op_listen,
            "unlisten": self._op_unlisten,
            "accept": self._op_accept,
            "connect": self._op_connect,
            "release": self._op_release,
            "bind_udp": self._op_bind_udp,
            "release_udp": self._op_release_udp,
        }.get(message.op)
        if handler is None:
            if message.reply_to is not None:
                yield from reply_to(
                    self.task, message, Message("error", body="bad op")
                )
            return
        try:
            yield from handler(message)
        except (PortInUse, ConnectionError, LookupError, TenantViolation) as exc:
            if message.reply_to is not None:
                yield from reply_to(
                    self.task, message, Message("error", body=str(exc))
                )

    # ------------------------------------------------------------------
    # Tenancy guard
    # ------------------------------------------------------------------

    def _tenant_of(self, task: Task):
        if self.tenants is None:
            return None
        return self.tenants.tenant_of(task)

    def _guard(self, app: Task, kind: str, check) -> None:
        """Run one tenancy admission check for ``app``.

        Refusals are audited facts regardless; they only *raise* (and
        so reach the app as an error reply) when the manager enforces.
        """
        tenant = self._tenant_of(app)
        if tenant is None:
            return
        try:
            check(tenant)
        except TenantViolation as exc:
            self.tenants.note(self.sim.now, kind, tenant.tenant_id, str(exc))
            if self.tenants.enforcing:
                raise

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def _op_listen(self, message: Message) -> Generator:
        port = message.body["port"]
        app = message.sender
        self.ports.reserve(port, app.name, self.sim.now)
        listener = _Listener(port=port, owner=app, backlog=Store(self.sim))
        # Wildcard flow to the kernel: SYNs for this port classify as a
        # listener hit feeding the handshake path, not a stray miss.
        # The module vets the owner's port grant and attributes the
        # wildcard entry; on refusal the reservation must not leak.
        try:
            self.host.netio.install_listener(
                self.task, PROTO_TCP, port, local_ip=self.host.ip, owner=app
            )
        except Exception:
            self.ports.release(port, self.sim.now, linger=False)
            raise
        self._listeners[port] = listener
        # A dead application's listener must release its port and
        # wildcard flow exactly like its connections are inherited.
        app.on_exit(lambda task, p=port, a=app: self._inherit_listener(p, a))
        yield from reply_to(self.task, message, Message("ok"))

    def _inherit_listener(self, port: int, app: Task) -> None:
        listener = self._listeners.get(port)
        if listener is None or listener.owner is not app or listener.closed:
            return
        self._listeners.pop(port, None)
        listener.closed = True
        self.stats["inherited"] += 1
        self.host.netio.remove_listener(
            self.task, PROTO_TCP, port, local_ip=self.host.ip
        )
        self.ports.release(port, self.sim.now, linger=False)

    def _op_unlisten(self, message: Message) -> Generator:
        port = message.body["port"]
        listener = self._listeners.pop(port, None)
        if listener is not None:
            listener.closed = True
            self.host.netio.remove_listener(
                self.task, PROTO_TCP, port, local_ip=self.host.ip
            )
            self.ports.release(port, self.sim.now, linger=False)
        yield from reply_to(self.task, message, Message("ok"))

    def _op_accept(self, message: Message) -> Generator:
        port = message.body["port"]
        listener = self._listeners.get(port)
        if listener is None:
            yield from reply_to(
                self.task, message, Message("error", body=f"not listening on {port}")
            )
            return
        grant = yield from self._grant_from_store(listener.backlog)
        self.stats["accepts"] += 1
        yield from self._transfer(message, grant)

    def _grant_from_store(self, backlog: Store) -> Generator:
        grant = yield backlog.get()
        return grant

    def _op_connect(self, message: Message) -> Generator:
        remote_ip = message.body["remote_ip"]
        remote_port = message.body["remote_port"]
        local_port = message.body.get("local_port", 0)
        app = message.sender
        costs = self.kernel.costs
        self.stats["connects"] += 1
        breakdown = {"request_at": self.sim.now}

        # Paper breakdown item 2: allocating connection identifiers and
        # the non-overlappable start of connection setup.
        mark = self.sim.now
        yield from self.kernel.cpu.consume(costs.registry_alloc)
        # Tenancy admission *before* any handshake traffic: an explicit
        # source port must be in the caller's grant, and the channel the
        # connection will need must fit the budget — refusing now costs
        # the network nothing.
        if local_port:
            self._guard(app, "connect_refused", lambda t: t.check_port(local_port))
        self._guard(
            app,
            "connect_refused",
            lambda t: t.precheck_channel(
                self.host.netio.DEFAULT_REGION_SIZE
            ),
        )
        if local_port:
            self.ports.reserve(local_port, app.name, self.sim.now)
        else:
            local_port = self.ports.allocate_ephemeral(app.name, self.sim.now)
            tenant = self._tenant_of(app)
            if tenant is not None:
                tenant.grant_ephemeral(local_port)

        link_dst = yield from self.host.resolve_link(remote_ip)
        try:
            ring = self.host.netio.allocate_ring(self.task, owner=app)
        except TenantViolation:
            self.ports.release(local_port, self.sim.now, linger=False)
            raise
        if ring is not None:
            yield from self.kernel.cpu.consume(costs.bqi_setup)
        breakdown["non_overlapped_outbound"] = self.sim.now - mark

        runner = self._make_handshake_runner(
            local_port, remote_ip, remote_port, link_dst, ring
        )
        key = (local_port, remote_ip, remote_port)
        self._pending[key] = runner
        mark = self.sim.now
        yield from runner.start(active=True)
        ok = yield from runner.wait_connected()
        breakdown["remote_and_back"] = self.sim.now - mark
        self._pending.pop(key, None)
        if not ok:
            self._peer_bqi.pop(key, None)
            self.ports.release(local_port, self.sim.now, linger=False)
            # The pre-allocated BQI ring never reached a channel; hand
            # it (and its tenant charge) back or the index leaks.
            self.host.netio.release_ring(self.task, ring)
            yield from reply_to(
                self.task,
                message,
                Message("error", body=f"connect: {runner.closed_reason}"),
            )
            return
        mark = self.sim.now
        try:
            grant = yield from self._finish_connection(
                app, runner, local_port, remote_ip, remote_port, link_dst, ring
            )
        except TenantViolation:
            # The handshake succeeded but the channel was refused
            # (quota exhausted while we were connecting): reset the
            # remote peer, return every resource, report the refusal.
            self._peer_bqi.pop(key, None)
            self.host.netio.release_ring(self.task, ring)
            runner._cancel_all_timers()
            self.task.spawn(
                self._send_rst(
                    local_port,
                    remote_port,
                    runner.machine.tcb.snd_nxt,
                    remote_ip,
                    link_dst,
                ),
                name="refused-rst",
            )
            self.ports.release(local_port, self.sim.now, linger=False)
            raise
        breakdown["channel_setup"] = self.sim.now - mark
        mark = self.sim.now
        yield from self._transfer(message, grant)
        breakdown["state_transfer"] = self.sim.now - mark
        breakdown["reply_at"] = self.sim.now
        self.last_breakdown = breakdown

    def _op_release(self, message: Message) -> Generator:
        """The library finished closing a connection."""
        body = message.body
        for record in list(self._records):
            if record.grant.channel is body.get("channel") and not record.released:
                record.released = True
                self.host.netio.destroy_channel(self.task, record.grant.channel)
                self.ports.release(
                    record.grant.local_port, self.sim.now, linger=True
                )
                self._records.remove(record)
                break
        yield from ()  # One-way message; no reply.

    def _op_bind_udp(self, message: Message) -> Generator:
        """Bind a UDP port and build its protected channel.

        Connectionless binding is the paper's §5 'address binding
        phase': it authorizes the end-point once, after which datagrams
        bypass every server."""
        from ..netio.template import udp_send_template

        port = message.body.get("port", 0)
        app = message.sender
        costs = self.kernel.costs
        yield from self.kernel.cpu.consume(costs.registry_alloc / 2)
        if port:
            self._guard(app, "bind_refused", lambda t: t.check_port(port))
            self.ports.reserve(port, app.name, self.sim.now)
        else:
            port = self.ports.allocate_ephemeral(app.name, self.sim.now)
            tenant = self._tenant_of(app)
            if tenant is not None:
                tenant.grant_ephemeral(port)
        try:
            channel = yield from self.host.netio.create_channel(
                self.task,
                app,
                udp_send_template(self.host.ip, port),
                local_ip=self.host.ip,
                local_port=port,
                protocol="udp",
                with_link_info=True,
            )
        except TenantViolation:
            self.ports.release(port, self.sim.now, linger=False)
            raise
        tenant = self._tenant_of(app)
        if tenant is not None:
            tenant.note_bound(port)
        # Kernel fallback needs no extra bookkeeping: the channel's
        # wildcard flow entry doubles as the forwarder lookup, so
        # datagrams arriving via the kernel path (BQI 0 on AN1, or
        # pre-filter races) still reach the channel.
        record = _ConnectionRecord(
            grant=ConnectionGrant(
                machine=None, channel=channel, local_port=port,
                remote_ip=0, remote_port=0, link_dst=None,
            ),
            owner=app,
        )
        self._records.append(record)
        app.on_exit(lambda task, r=record: self._inherit_udp(r))
        yield from reply_to(
            self.task,
            message,
            Message("grant", body={"port": port, "channel": channel}),
        )

    def _op_release_udp(self, message: Message) -> Generator:
        channel = message.body.get("channel")
        for record in list(self._records):
            if record.grant.channel is channel and not record.released:
                record.released = True
                self._release_udp_record(record)
                self._records.remove(record)
                break
        yield from ()

    def _inherit_udp(self, record: _ConnectionRecord) -> None:
        if record.released:
            return
        record.released = True
        if record in self._records:
            self._records.remove(record)
        self.stats["inherited"] += 1
        self._release_udp_record(record)

    def _release_udp_record(self, record: _ConnectionRecord) -> None:
        port = record.grant.local_port
        self.host.netio.destroy_channel(self.task, record.grant.channel)
        # Datagram ports carry no TIME-WAIT obligation.
        self.ports.release(port, self.sim.now, linger=False)

    # ------------------------------------------------------------------
    # Handshake machinery
    # ------------------------------------------------------------------

    def _iss(self) -> int:
        iss = self._next_iss
        self._next_iss = (self._next_iss + 64_000) % (1 << 32)
        return iss

    def _make_handshake_runner(
        self,
        local_port: int,
        remote_ip: int,
        remote_port: int,
        link_dst: object,
        ring,
    ) -> MachineRunner:
        machine = TcpMachine(
            local_port, remote_port, config=self.config, iss=self._iss()
        )
        adv_bqi = ring.bqi if ring is not None else 0

        def emit(segment: Segment) -> Generator:
            costs = self.kernel.costs
            self.stats["handshake_segments"] += 1
            # The registry reaches the device through standard Mach IPC,
            # not shared memory (paper breakdown item 1).
            yield from self.kernel.cpu.consume(
                costs.registry_device_access
                + costs.tcp_output
                + costs.checksum_cost(segment.wire_length)
            )
            payload = encode_segment(segment, self.host.ip, remote_ip)
            key = (local_port, remote_ip, remote_port)
            peer_bqi = self._peer_bqi.get(key, 0)
            yield from self.host.ip_send(
                remote_ip, PROTO_TCP, payload, link_dst,
                bqi=peer_bqi, adv_bqi=adv_bqi,
            )

        return MachineRunner(
            self.kernel, machine, emit, name=f"registry:{local_port}"
        )

    def _tcp_rx(self, payload: bytes, src_ip: int, link_info: LinkInfo) -> Generator:
        """Kernel-path TCP segments: handshakes and strays only — the
        demultiplexer sends established-connection traffic straight to
        library channels, bypassing this entirely."""
        costs = self.kernel.costs
        yield from self.kernel.cpu.consume(
            costs.registry_device_access + costs.checksum_cost(len(payload))
        )
        try:
            segment = decode_segment(payload, src_ip, self.host.ip)
        except (ChecksumError, HeaderError):
            return
        yield from self.kernel.cpu.consume(costs.tcp_input)
        self.stats["handshake_segments"] += 1
        key = (segment.dport, src_ip, segment.sport)
        if link_info.adv_bqi:
            self._peer_bqi[key] = link_info.adv_bqi
        runner = self._pending.get(key)
        if runner is not None:
            yield from runner.feed_segment(segment)
            return
        listener = self._listeners.get(segment.dport)
        if listener is not None and segment.syn and not segment.has_ack:
            yield from self._passive_open(listener, segment, src_ip, link_info)
            return
        yield from self._respond_rst(segment, src_ip, link_info.src)

    def _passive_open(
        self,
        listener: _Listener,
        syn: Segment,
        src_ip: int,
        link_info: LinkInfo,
    ) -> Generator:
        try:
            ring = self.host.netio.allocate_ring(
                self.task, owner=listener.owner
            )
        except TenantViolation:
            # Listener's tenant out of BQI budget: refuse the SYN.
            yield from self._respond_rst(syn, src_ip, link_info.src)
            return
        if ring is not None:
            yield from self.kernel.cpu.consume(self.kernel.costs.bqi_setup)
        runner = self._make_handshake_runner(
            syn.dport, src_ip, syn.sport, link_info.src, ring
        )
        key = (syn.dport, src_ip, syn.sport)
        self._pending[key] = runner
        yield from runner.start(active=False)
        yield from runner.feed_segment(syn)
        self.task.spawn(
            self._complete_passive(listener, runner, key, src_ip, link_info.src, ring),
            name=f"passive-{syn.sport}",
        )

    def _complete_passive(
        self, listener, runner, key, src_ip, link_src, ring
    ) -> Generator:
        ok = yield from runner.wait_connected()
        self._pending.pop(key, None)
        if not ok or listener.closed:
            self._peer_bqi.pop(key, None)
            self.host.netio.release_ring(self.task, ring)
            return
        local_port, remote_ip, remote_port = key
        try:
            grant = yield from self._finish_connection(
                listener.owner, runner, local_port, remote_ip, remote_port,
                link_src, ring,
            )
        except TenantViolation:
            # Channel refused after the peer connected: reset it and
            # return the ring; the listening port itself stays bound.
            self._peer_bqi.pop(key, None)
            self.host.netio.release_ring(self.task, ring)
            runner._cancel_all_timers()
            yield from self._send_rst(
                local_port,
                remote_port,
                runner.machine.tcb.snd_nxt,
                remote_ip,
                link_src,
            )
            return
        yield listener.backlog.put(grant)

    def _finish_connection(
        self,
        app: Task,
        runner: MachineRunner,
        local_port: int,
        remote_ip: int,
        remote_port: int,
        link_dst: object,
        ring,
    ) -> Generator:
        """Channel setup after a successful handshake (breakdown item 3)."""
        from ..netio.template import tcp_send_template

        costs = self.kernel.costs
        key = (local_port, remote_ip, remote_port)
        channel = yield from self.host.netio.create_channel(
            self.task,
            app,
            tcp_send_template(self.host.ip, local_port, remote_ip, remote_port),
            local_ip=self.host.ip,
            local_port=local_port,
            remote_ip=remote_ip,
            remote_port=remote_port,
            link_dst=link_dst,
            peer_bqi=self._peer_bqi.pop(key, 0),
            ring=ring,
        )
        yield from self.kernel.cpu.consume(costs.registry_channel_misc)
        tenant = self._tenant_of(app)
        if tenant is not None:
            tenant.note_bound(local_port)
        runner._cancel_all_timers()
        grant = ConnectionGrant(
            machine=runner.machine,
            channel=channel,
            local_port=local_port,
            remote_ip=remote_ip,
            remote_port=remote_port,
            link_dst=link_dst,
            rx_pending=bytes(runner.rx_buffer),
        )
        record = _ConnectionRecord(grant=grant, owner=app)
        self._records.append(record)
        app.on_exit(lambda task, r=record: self._inherit(r))
        return grant

    def _transfer(self, request: Message, grant: ConnectionGrant) -> Generator:
        """Move the established connection's state to the library
        (breakdown item 5), then answer the app's RPC (item 4)."""
        yield from self.kernel.cpu.consume(
            self.kernel.costs.registry_state_transfer
        )
        yield from reply_to(
            self.task,
            request,
            Message("grant", body=grant, inline_bytes=self.STATE_BYTES),
        )

    # ------------------------------------------------------------------
    # Inheritance and resets
    # ------------------------------------------------------------------

    def _inherit(self, record: _ConnectionRecord) -> None:
        """Exit hook: reclaim a dead application's connection."""
        if record.released:
            return
        record.released = True
        if record in self._records:
            self._records.remove(record)
        self.stats["inherited"] += 1
        machine = record.grant.machine
        grant = record.grant
        if machine.state.value not in ("CLOSED", "TIME-WAIT"):
            # Abnormal termination: reset the remote peer.
            self.task.spawn(
                self._send_rst(
                    grant.local_port,
                    grant.remote_port,
                    machine.tcb.snd_nxt,
                    grant.remote_ip,
                    grant.link_dst,
                ),
                name="inherit-rst",
            )
        self.host.netio.destroy_channel(self.task, grant.channel)
        # Hold the port for the protocol-specified delay before reuse.
        self.ports.release(grant.local_port, self.sim.now, linger=True)

    def _send_rst(
        self, sport: int, dport: int, seq: int, remote_ip: int, link_dst: object
    ) -> Generator:
        self.stats["resets_sent"] += 1
        rst = Segment(
            sport=sport, dport=dport, seq=seq, ack=0, flags=TCP_RST, window=0
        )
        payload = encode_segment(rst, self.host.ip, remote_ip)
        yield from self.kernel.cpu.consume(
            self.kernel.costs.registry_device_access
        )
        yield from self.host.ip_send(remote_ip, PROTO_TCP, payload, link_dst)

    def _respond_rst(self, segment: Segment, src_ip: int, link_src: object) -> Generator:
        if segment.rst:
            return
        if segment.has_ack:
            rst = Segment(
                sport=segment.dport, dport=segment.sport,
                seq=segment.ack, ack=0, flags=TCP_RST, window=0,
            )
        else:
            from ..protocols.tcp.seq import seq_add

            rst = Segment(
                sport=segment.dport, dport=segment.sport,
                seq=0, ack=seq_add(segment.seq, segment.seg_len),
                flags=TCP_RST | TCP_ACK, window=0,
            )
        self.stats["resets_sent"] += 1
        payload = encode_segment(rst, self.host.ip, src_ip)
        yield from self.host.ip_send(src_ip, PROTO_TCP, payload, link_src)
