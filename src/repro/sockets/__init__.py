"""BSD-style socket interface over any protocol organization."""

from .api import AF_INET, SOCK_STREAM, Socket, SocketError, socket

__all__ = ["socket", "Socket", "SocketError", "AF_INET", "SOCK_STREAM"]
