"""A BSD-flavoured socket facade over any protocol organization.

Paper §3.2: "users of the protocol library continue to create sockets
with socket, call bind to bind to sockets, and use connect, listen, and
accept to establish connections over sockets.  Data transfer on
connected sockets ... is done as usual with read and write calls.  The
library handles all the bookkeeping details."

This module provides that familiar shape on top of the
:class:`~repro.org.base.TcpService` API, so application code reads like
classic sockets code.  All calls are generators (the simulation's
blocking idiom): ``data = yield from sock.recv(100)``.
"""

from __future__ import annotations

import enum
from typing import Generator, Optional

from ..org.base import TcpConnection, TcpListener, TcpService

AF_INET = "AF_INET"
SOCK_STREAM = "SOCK_STREAM"


class SocketError(OSError):
    """Misuse of the socket API (wrong state, bad arguments)."""


class _State(enum.Enum):
    FRESH = "fresh"
    BOUND = "bound"
    LISTENING = "listening"
    CONNECTED = "connected"
    CLOSED = "closed"


class Socket:
    """One endpoint in the BSD style."""

    def __init__(self, service: TcpService, family: str = AF_INET, kind: str = SOCK_STREAM) -> None:
        if family != AF_INET or kind != SOCK_STREAM:
            raise SocketError(f"unsupported socket type {family}/{kind}")
        self._service = service
        self._state = _State.FRESH
        self._local_port = 0
        self._listener: Optional[TcpListener] = None
        self._connection: Optional[TcpConnection] = None

    # ------------------------------------------------------------------
    # Naming / passive open
    # ------------------------------------------------------------------

    def bind(self, port: int) -> None:
        """Claim a local port (the registry enforces uniqueness later)."""
        if self._state is not _State.FRESH:
            raise SocketError(f"bind in state {self._state.value}")
        if not 0 <= port < 0x10000:
            raise SocketError(f"bad port {port}")
        self._local_port = port
        self._state = _State.BOUND

    def listen(self, backlog: int = 5) -> Generator:
        """Passive open on the bound port."""
        if self._state is not _State.BOUND:
            raise SocketError(f"listen in state {self._state.value}")
        if self._local_port == 0:
            raise SocketError("listen needs a bound port")
        self._listener = yield from self._service.listen(self._local_port)
        self._state = _State.LISTENING

    def accept(self) -> Generator:
        """Block for the next established connection; returns a new
        connected :class:`Socket`."""
        if self._state is not _State.LISTENING:
            raise SocketError(f"accept in state {self._state.value}")
        connection = yield from self._listener.accept()
        child = Socket(self._service)
        child._connection = connection
        child._state = _State.CONNECTED
        return child

    # ------------------------------------------------------------------
    # Active open
    # ------------------------------------------------------------------

    def connect(self, remote_ip: int, remote_port: int) -> Generator:
        if self._state not in (_State.FRESH, _State.BOUND):
            raise SocketError(f"connect in state {self._state.value}")
        self._connection = yield from self._service.connect(
            remote_ip, remote_port, local_port=self._local_port
        )
        self._state = _State.CONNECTED

    # ------------------------------------------------------------------
    # Data transfer
    # ------------------------------------------------------------------

    def send(self, data: bytes) -> Generator:
        """Write all of ``data`` (like write() on a blocking socket)."""
        conn = self._connected()
        yield from conn.send(data)
        return len(data)

    def recv(self, max_bytes: int) -> Generator:
        """Read up to ``max_bytes``; b'' at EOF (like read())."""
        conn = self._connected()
        data = yield from conn.recv(max_bytes)
        return data

    def recv_exactly(self, nbytes: int) -> Generator:
        conn = self._connected()
        data = yield from conn.recv_exactly(nbytes)
        return data

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def close(self) -> Generator:
        if self._state is _State.CONNECTED:
            yield from self._connection.close()
        elif self._state is _State.LISTENING:
            self._listener.close()
        self._state = _State.CLOSED

    def abort(self) -> Generator:
        if self._state is _State.CONNECTED:
            yield from self._connection.abort()
        self._state = _State.CLOSED

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def connected(self) -> bool:
        return self._state is _State.CONNECTED

    @property
    def connection(self) -> Optional[TcpConnection]:
        """The underlying connection (for hand-off, stats, etc.)."""
        return self._connection

    def _connected(self) -> TcpConnection:
        if self._state is not _State.CONNECTED:
            raise SocketError(f"not connected (state {self._state.value})")
        return self._connection


def socket(service: TcpService, family: str = AF_INET, kind: str = SOCK_STREAM) -> Socket:
    """BSD-style constructor: ``sock = socket(service)``."""
    return Socket(service, family, kind)
