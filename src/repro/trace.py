"""A tcpdump-style wire tracer for simulated links.

Attach a :class:`WireTrace` to any link and every frame that crosses it
is decoded (link header, IP, TCP/UDP/ICMP/ARP) into a
:class:`TraceRecord` and optionally pretty-printed — the debugging tool
the paper's "ease of prototyping, debugging, and maintenance"
motivation calls for, usable because the wire carries real bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Optional

from .net.buf import as_wire_bytes
from .net.headers import (
    ARP_REQUEST,
    An1Header,
    ArpPacket,
    ETHERTYPE_ARP,
    ETHERTYPE_IP,
    EthernetHeader,
    HeaderError,
    IcmpHeader,
    Ipv4Header,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    TcpHeader,
    UdpHeader,
    ip_to_str,
    mac_to_str,
)
from .net.link import An1Link, Link


@dataclass
class TraceRecord:
    """One decoded frame."""

    time: float
    link_src: str
    link_dst: str
    summary: str
    protocol: str
    length: int
    #: Decoded headers, outermost first (for programmatic inspection).
    layers: list = field(default_factory=list)
    #: The captured frame bytes (what pcap export writes).
    raw: bytes = b""

    def __str__(self) -> str:
        return (
            f"{self.time * 1e3:10.3f} ms  {self.link_src} > {self.link_dst}"
            f"  {self.summary}  ({self.length} bytes)"
        )

    def as_dict(self) -> dict:
        """Structured export (JSON-safe: layers become class names)."""
        return {
            "time": self.time,
            "link_src": self.link_src,
            "link_dst": self.link_dst,
            "summary": self.summary,
            "protocol": self.protocol,
            "length": self.length,
            "layers": [type(layer).__name__ for layer in self.layers],
        }


_TCP_FLAG_NAMES = (
    (0x02, "S"),
    (0x10, "."),
    (0x01, "F"),
    (0x04, "R"),
    (0x08, "P"),
)


def _tcp_flags(flags: int) -> str:
    text = "".join(name for bit, name in _TCP_FLAG_NAMES if flags & bit)
    return text or "none"


class WireTrace:
    """Observe every frame on a link.

    Wraps the link's ``transmit`` so captures see exactly what was
    offered to the wire (before any fault injection).  Records accumulate
    in :attr:`records`; pass ``printer`` to also emit lines live.
    """

    def __init__(
        self,
        link: Link,
        printer: Optional[Callable[[str], None]] = None,
        capture: bool = True,
    ) -> None:
        self.link = link
        self.printer = printer
        self.capture = capture
        self.records: list[TraceRecord] = []
        self._original_transmit = link.transmit
        link.transmit = self._traced_transmit  # type: ignore[method-assign]

    def detach(self) -> None:
        """Stop tracing; restores the link's transmit."""
        self.link.transmit = self._original_transmit  # type: ignore[method-assign]

    def _traced_transmit(self, sender, frame: bytes):
        # Materialize fragment chains once here; the fused image is
        # cached, so the link's own wire boundary reuses it.
        frame = as_wire_bytes(frame)
        record = self.decode(self.link.sim.now, frame)
        record.raw = bytes(frame)
        if self.capture:
            self.records.append(record)
        if self.printer is not None:
            self.printer(str(record))
        return self._original_transmit(sender, frame)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def decode(self, time: float, frame: bytes) -> TraceRecord:
        """Decode one frame into a :class:`TraceRecord`.

        Decoding never raises: a frame the decoders cannot parse (a
        truncated or bit-flipped capture) becomes a ``malformed`` record
        instead of aborting the simulation from inside ``transmit``.
        """
        try:
            return self._decode(time, frame)
        except HeaderError:
            return TraceRecord(
                time, "?", "?", "malformed frame", "malformed", len(frame)
            )
        except (ValueError, IndexError, struct.error) as exc:
            return TraceRecord(
                time,
                "?",
                "?",
                f"malformed frame ({type(exc).__name__})",
                "malformed",
                len(frame),
            )

    def _decode(self, time: float, frame: bytes) -> TraceRecord:
        if isinstance(self.link, An1Link):
            header = An1Header.unpack(frame)
            link_src, link_dst = f"an1:{header.src}", f"an1:{header.dst}"
            extra = (
                f" [bqi {header.bqi}"
                + (f" adv {header.adv_bqi}" if header.adv_bqi else "")
                + "]"
            )
            ethertype = header.ethertype
            payload = frame[An1Header.LENGTH :]
        else:
            header = EthernetHeader.unpack(frame)
            link_src = mac_to_str(header.src)[-5:]
            link_dst = mac_to_str(header.dst)[-5:]
            extra = ""
            ethertype = header.ethertype
            payload = frame[EthernetHeader.LENGTH :]

        record = TraceRecord(
            time, link_src, link_dst, "", "link", len(frame), layers=[header]
        )
        if ethertype == ETHERTYPE_ARP:
            self._decode_arp(record, payload)
        elif ethertype == ETHERTYPE_IP:
            self._decode_ip(record, payload)
        else:
            record.summary = f"ethertype {ethertype:#06x}"
            record.protocol = "other"
        record.summary += extra
        return record

    def _decode_arp(self, record: TraceRecord, payload: bytes) -> None:
        record.protocol = "arp"
        try:
            arp = ArpPacket.unpack(payload)
        except HeaderError:
            record.summary = "ARP (malformed)"
            return
        record.layers.append(arp)
        if arp.oper == ARP_REQUEST:
            record.summary = (
                f"ARP who-has {ip_to_str(arp.target_ip)}"
                f" tell {ip_to_str(arp.sender_ip)}"
            )
        else:
            record.summary = (
                f"ARP {ip_to_str(arp.sender_ip)} is-at "
                f"{mac_to_str(arp.sender_mac)}"
            )

    def _decode_ip(self, record: TraceRecord, payload: bytes) -> None:
        try:
            ip = Ipv4Header.unpack(payload, verify=False)
        except HeaderError:
            record.protocol = "ip"
            record.summary = "IP (malformed)"
            return
        record.layers.append(ip)
        body = payload[Ipv4Header.LENGTH : ip.total_length]
        src, dst = ip_to_str(ip.src), ip_to_str(ip.dst)
        if ip.frag_offset or ip.more_fragments:
            record.protocol = "ip-frag"
            record.summary = (
                f"IP fragment {src} > {dst} off={ip.frag_offset * 8}"
                f"{' MF' if ip.more_fragments else ''} id={ip.ident}"
            )
            return
        if ip.protocol == PROTO_TCP:
            self._decode_tcp(record, body, src, dst)
        elif ip.protocol == PROTO_UDP:
            self._decode_udp(record, body, src, dst)
        elif ip.protocol == PROTO_ICMP:
            self._decode_icmp(record, body, src, dst)
        else:
            record.protocol = "ip"
            record.summary = f"IP {src} > {dst} proto {ip.protocol}"

    def _decode_tcp(self, record: TraceRecord, body: bytes, src: str, dst: str) -> None:
        record.protocol = "tcp"
        try:
            tcp = TcpHeader.unpack(body)
        except HeaderError:
            record.summary = f"TCP {src} > {dst} (malformed)"
            return
        record.layers.append(tcp)
        data_len = len(body) - tcp.header_length
        record.summary = (
            f"TCP {src}:{tcp.sport} > {dst}:{tcp.dport}"
            f" [{_tcp_flags(tcp.flags)}] seq={tcp.seq}"
            + (f" ack={tcp.ack}" if tcp.flags & 0x10 else "")
            + f" win={tcp.window} len={data_len}"
            + (f" mss={tcp.mss}" if tcp.mss else "")
        )

    def _decode_udp(self, record: TraceRecord, body: bytes, src: str, dst: str) -> None:
        record.protocol = "udp"
        try:
            udp = UdpHeader.unpack(body)
        except HeaderError:
            record.summary = f"UDP {src} > {dst} (malformed)"
            return
        record.layers.append(udp)
        record.summary = (
            f"UDP {src}:{udp.sport} > {dst}:{udp.dport}"
            f" len={udp.length - UdpHeader.LENGTH}"
        )

    def _decode_icmp(self, record: TraceRecord, body: bytes, src: str, dst: str) -> None:
        record.protocol = "icmp"
        try:
            icmp = IcmpHeader.unpack(body)
        except HeaderError:
            record.summary = f"ICMP {src} > {dst} (malformed)"
            return
        record.layers.append(icmp)
        kind = {0: "echo-reply", 8: "echo-request", 3: "dest-unreachable"}.get(
            icmp.icmp_type, f"type {icmp.icmp_type}"
        )
        record.summary = f"ICMP {src} > {dst} {kind} id={icmp.ident} seq={icmp.seq}"

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def matching(self, protocol: str) -> list[TraceRecord]:
        """Captured records for one protocol ('tcp', 'udp', 'arp', ...)."""
        return [r for r in self.records if r.protocol == protocol]

    def export(self) -> list[dict]:
        """All captured records as JSON-safe dicts (see TraceRecord.as_dict)."""
        return [record.as_dict() for record in self.records]

    def summary_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.protocol] = counts.get(record.protocol, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # pcap export
    # ------------------------------------------------------------------

    @property
    def pcap_linktype(self) -> int:
        """DLT for this link: Ethernet, or DLT_USER0 for AN1 frames."""
        return LINKTYPE_AN1 if isinstance(self.link, An1Link) else LINKTYPE_ETHERNET

    def export_pcap(self, path) -> int:
        """Write all captured frames as a standard pcap file.

        Ethernet captures open directly in Wireshark/tcpdump (linktype
        1); AN1 captures use DLT_USER0 (147) since the header is
        simulator-local.  Returns the number of records written.
        """
        return write_pcap(path, self.records, linktype=self.pcap_linktype)


#: pcap global-header constants (libpcap classic format, v2.4).
PCAP_MAGIC = 0xA1B2C3D4
LINKTYPE_ETHERNET = 1
#: DLT_USER0 — private linktype for the simulator's AN1 frames.
LINKTYPE_AN1 = 147
_PCAP_GLOBAL = struct.Struct("<IHHiIII")
_PCAP_RECORD = struct.Struct("<IIII")


def write_pcap(path, records, linktype: int = LINKTYPE_ETHERNET) -> int:
    """Write TraceRecords (or any objects with ``.time``/``.raw``) as a
    classic little-endian pcap v2.4 file.  Records without captured
    bytes are skipped.  Returns the count written."""
    written = 0
    with open(path, "wb") as fh:
        fh.write(_PCAP_GLOBAL.pack(PCAP_MAGIC, 2, 4, 0, 0, 65535, linktype))
        for record in records:
            raw = record.raw
            if not raw:
                continue
            ts_sec = int(record.time)
            ts_usec = int(round((record.time - ts_sec) * 1e6))
            if ts_usec >= 1_000_000:  # rounding carried into the next second
                ts_sec, ts_usec = ts_sec + 1, ts_usec - 1_000_000
            fh.write(_PCAP_RECORD.pack(ts_sec, ts_usec, len(raw), len(raw)))
            fh.write(raw)
            written += 1
    return written


def read_pcap(path) -> tuple[int, list[tuple[float, bytes]]]:
    """Read a classic pcap file back: ``(linktype, [(time, frame), ...])``.

    Understands both byte orders and nanosecond-magic variants — enough
    for round-trip tests and for re-decoding captures with
    :meth:`WireTrace.decode`.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    if len(data) < _PCAP_GLOBAL.size:
        raise ValueError("truncated pcap: missing global header")
    magic = struct.unpack("<I", data[:4])[0]
    if magic in (0xA1B2C3D4, 0xA1B23C4D):
        endian = "<"
    elif magic in (0xD4C3B2A1, 0x4D3CB2A1):
        endian = ">"
    else:
        raise ValueError(f"not a pcap file (magic {magic:#010x})")
    nanos = struct.unpack(endian + "I", data[:4])[0] in (0xA1B23C4D, 0x4D3CB2A1)
    header = struct.Struct(endian + "IHHiIII")
    record = struct.Struct(endian + "IIII")
    linktype = header.unpack_from(data)[6]
    frames: list[tuple[float, bytes]] = []
    offset = header.size
    while offset + record.size <= len(data):
        ts_sec, ts_frac, incl_len, _orig = record.unpack_from(data, offset)
        offset += record.size
        if offset + incl_len > len(data):
            raise ValueError("truncated pcap: partial record")
        frame = data[offset : offset + incl_len]
        offset += incl_len
        scale = 1e-9 if nanos else 1e-6
        frames.append((ts_sec + ts_frac * scale, frame))
    return linktype, frames
