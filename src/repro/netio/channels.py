"""Channels: the per-connection conduit between the network I/O module
and a protocol library.

A channel owns the shared buffer region, the receive queue, the
lightweight notification semaphore (with the paper's packet batching:
"our implementation attempts, where possible, to batch multiple network
packets per semaphore notification in order to amortize the cost of
signaling"), and the send-side capability (template).
"""

from __future__ import annotations

from ..counters import Counters
from collections import deque
from typing import TYPE_CHECKING, Deque, Generator, Optional

from ..mach.sync import Semaphore
from ..mach.task import Task
from ..mach.vm import SharedRegion
from .template import HeaderTemplate

if TYPE_CHECKING:
    from ..net.nic.an1ctrl import BufferRing
    from .demux import FlowKey
    from .pktfilter import CompiledDemux, FilterProgram


class ChannelClosed(Exception):
    """Operation on a torn-down channel."""


class Channel:
    """One protected packet path between kernel and library."""

    _counter = 0

    def __init__(
        self,
        owner: Task,
        template: HeaderTemplate,
        region: SharedRegion,
        demux_filter: "FilterProgram | CompiledDemux | None" = None,
        ring: "Optional[BufferRing]" = None,
        name: str = "",
        batching: bool = True,
        with_link_info: bool = False,
    ) -> None:
        Channel._counter += 1
        #: Ablation switch: when False, every packet needs its own
        #: notification and receive_batch returns one packet at a time.
        self.batching = batching
        #: Connectionless channels receive (payload, link_info) pairs so
        #: the library can *discover* peer BQIs from link headers (paper
        #: §5); connection channels receive bare payloads.
        self.with_link_info = with_link_info
        self.owner = owner
        self.template = template
        self.region = region
        #: Legacy scan-tier filter (interpreted demux styles only).
        self.demux_filter = demux_filter
        #: The flow-table entry this channel owns, set by the network
        #: I/O module when the flow is registered.
        self.flow_key: "Optional[FlowKey]" = None
        self.ring = ring  # AN1 hardware ring, if any.
        #: Tenant attribution, stamped by the network I/O module at
        #: creation (None on untenanted stacks).  Compared against the
        #: *current* owner task's tenant on every send and delivery, so
        #: a channel handed off across the tenant boundary stops
        #: working instead of leaking the flow.
        self.tenant_id: Optional[str] = None
        #: Back-reference to the creating module so Tenant.teardown()
        #: can sweep leaked channels through the one release path.
        self.module = None
        self.name = name or f"channel-{Channel._counter}"
        self.sem = Semaphore(owner.kernel, name=f"{self.name}-sem")
        self.rx_queue: Deque[bytes] = deque()
        self._notified = False
        #: True when the last receive_batch had to block (the waiter was
        #: asleep and needed a kernel wakeup); False when packets were
        #: already queued and the C-Threads semaphore was a fast path.
        self.last_wait_blocked = False
        self.closed = False
        self.stats = Counters()

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"{len(self.rx_queue)} queued"
        return f"<Channel {self.name} owner={self.owner.name} {state}>"

    @property
    def signal_cost_due(self) -> bool:
        """True when the next delivery must pay a semaphore signal."""
        return not self._notified

    def deliver(self, frame: bytes, link_info: object = None) -> bool:
        """Kernel side: queue a frame for the library.

        Returns True when the caller owes a semaphore-signal cost (the
        batching optimization: frames queued while the library hasn't
        yet drained ride the same notification for free).
        """
        if self.closed:
            return False
        if self.with_link_info:
            frame = (frame, link_info)
        self.rx_queue.append(frame)
        self.stats["delivered"] += 1
        if not self.batching:
            self.stats["signals"] += 1
            self.sem.signal()
            return True
        if not self._notified:
            self._notified = True
            self.stats["signals"] += 1
            self.sem.signal()
            return True
        return False

    def receive_batch(self) -> Generator:
        """Library side: wait for the semaphore, drain everything queued.

        Returns the list of frames (possibly many per one signal).
        """
        if self.closed:
            raise ChannelClosed(self.name)
        self.last_wait_blocked = self.sem.value == 0
        yield from self.sem.wait()
        if self.closed:
            raise ChannelClosed(self.name)
        if self.batching:
            batch = list(self.rx_queue)
            self.rx_queue.clear()
        else:
            batch = [self.rx_queue.popleft()] if self.rx_queue else []
        self._notified = False
        self.stats["batches"] += 1
        self.stats["batched_packets"] += len(batch)
        if self.ring is not None:
            # Hand consumed buffers back to the hardware ring.
            self.ring.replenish(len(batch))
        return batch

    @property
    def mean_batch_size(self) -> float:
        """Average packets amortized per semaphore notification."""
        if not self.stats["batches"]:
            return 0.0
        return self.stats["batched_packets"] / self.stats["batches"]

    def close(self) -> None:
        """Tear down: wake any waiter so it can observe the closure."""
        if self.closed:
            return
        self.closed = True
        self.rx_queue.clear()
        self.sem.signal(max(1, self.sem.waiting))
