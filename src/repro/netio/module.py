"""The network I/O module: the kernel-resident half of the design.

One module per host-network interface (paper §3.3).  It provides:

* **Protected transmission** — libraries enter through a specialized
  trap; the module verifies the packet against the header template
  bound to the channel's capability before it touches the wire.
* **Protected input delivery** — software demux (synthesized or
  interpreted, per configuration) on Ethernet; hardware BQI rings on
  AN1.  Matched packets land in the channel's shared region and the
  library is signalled through the lightweight semaphore, with
  batching.
* **Channel setup** — privileged-only: creating a channel maps and
  wires the shared region, installs the demux filter or allocates the
  BQI ring, and registers the send template.
"""

from __future__ import annotations

from ..counters import Counters
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Generator, Optional

from ..mach.kernel import Kernel
from ..mach.task import Task
from ..mach.vm import SharedRegion, vm_wire
from ..net.buf import prepend, slice_view
from ..net.headers import (
    ETHERTYPE_IP,
    PROTO_TCP,
    PROTO_UDP,
    An1Header,
    EthernetHeader,
)
from ..net.nic.an1ctrl import An1Nic, BufferRing
from ..net.nic.base import Nic
from ..obs import hist as _hist
from ..sim import Timeout
from ..obs import profile as _profile
from ..obs import spans as _spans
from .channels import Channel
from .demux import DemuxEngine, FlowKey, FlowTable, KERNEL_FLOW
from .pktfilter import (
    FilterProgram,
    tcp_filter_program,
    udp_filter_program,
)
from .template import HeaderTemplate, TemplateViolation
from ..tenancy.tenant import QuotaExceeded, RateLimited, TenantViolation


class SecurityViolation(Exception):
    """An unprivileged or unauthorized operation was refused."""


@dataclass(frozen=True)
class LinkInfo:
    """Link-level facts about a received frame the kernel may need:
    the source address, and (on AN1) the BQI the sender stamped —
    that is how registries exchange BQIs during connection setup."""

    src: object
    bqi: int = 0
    adv_bqi: int = 0


#: Kernel-side consumer for packets no channel claims (the monolithic
#: stack, the registry server's handshake path, ARP).  Called as a
#: generator with (ethertype, payload, link_info).
KernelRx = Callable[[int, bytes, LinkInfo], Generator]

DemuxStyle = str  # "synthesized" | "cspf" | "bpf"


class NetworkIoModule:
    """Kernel service co-located with one device driver."""

    DEFAULT_REGION_SIZE = 64 * 1024
    DEFAULT_RING_CAPACITY = 32

    def __init__(
        self,
        kernel: Kernel,
        nic: Nic,
        demux_style: DemuxStyle = "synthesized",
        name: str = "",
        batching: bool = True,
        engine: Optional[DemuxEngine] = None,
    ) -> None:
        if demux_style not in ("synthesized", "cspf", "bpf"):
            raise ValueError(f"unknown demux style {demux_style!r}")
        self.kernel = kernel
        self.nic = nic
        self.batching = batching
        self.demux_style = demux_style
        self.name = name or f"netio-{nic.name}"
        self.channels: list[Channel] = []
        #: The pluggable demux engine; the receive path asks it to
        #: classify every IP frame instead of scanning channels.
        self.flow_table: DemuxEngine = engine or FlowTable(demux_style)
        #: The demux engine's counter dict, resolved once (``flow_table``
        #: never changes after construction); None for engines without one.
        self._table_stats = getattr(self.flow_table, "stats", None)
        self.kernel_rx: Optional[KernelRx] = None
        #: TenantManager when the stack is shared among principals;
        #: None (the default) keeps every check a no-op.
        self.tenants = None
        #: Physical wired-memory pool for shared packet regions.  When
        #: set, region allocation fails once the pool is exhausted —
        #: this is the scarcity per-tenant quotas arbitrate; with
        #: enforcement off a hoarder can genuinely starve its
        #: neighbours.  None models an unbounded host.
        self.region_pool_bytes: Optional[int] = None
        self.region_pool_used = 0
        kernel.register_device(self.name, self)
        nic.rx_handler = self._rx_handler
        #: Cached once: the abc isinstance check is too slow to repeat
        #: per received frame.
        self.is_an1: bool = isinstance(nic, An1Nic)
        if self.is_an1 and 0 not in nic.bqi_table:
            nic.install_default_ring()
        self.stats = Counters()
        # Per-frame counters as plain attributes — two Python-level
        # Counters assignments per frame are measurable at fabric scale.
        # ``stats`` merges them with the rare-counter dict on read.
        self._tx_count = 0
        self._rx_to_kernel = 0
        self._rx_demuxed = 0

    @property
    def stats(self):
        merged = Counters()
        merged.update(self._stats)
        merged["tx"] = self._stats["tx"] + self._tx_count
        merged["rx_to_kernel"] = self._rx_to_kernel
        merged["rx_demuxed"] = self._rx_demuxed
        return merged

    @stats.setter
    def stats(self, value) -> None:
        # ``__init__`` (and tests) assign a fresh Counters; the rare,
        # off-path counters keep living in that dict.
        self._stats = value

    # ------------------------------------------------------------------
    # Tenancy plumbing
    # ------------------------------------------------------------------

    def _tenant_for(self, task: Task):
        """The tenant a task belongs to, or None (untenanted stack)."""
        if self.tenants is None or task is None:
            return None
        return self.tenants.tenant_of(task)

    def _reserve_region(self, nbytes: int) -> None:
        """Debit the physical wired-memory pool (independent of tenant
        quotas: this is real scarcity, not policy)."""
        if self.region_pool_bytes is None:
            return
        if self.region_pool_used + nbytes > self.region_pool_bytes:
            self._stats["region_pool_refused"] += 1
            raise QuotaExceeded(
                f"wired packet-buffer pool exhausted "
                f"({self.region_pool_used}/{self.region_pool_bytes}B used,"
                f" {nbytes}B asked)"
            )
        self.region_pool_used += nbytes

    def _release_region(self, nbytes: int) -> None:
        if self.region_pool_bytes is not None:
            self.region_pool_used -= nbytes

    # ------------------------------------------------------------------
    # Channel setup (privileged)
    # ------------------------------------------------------------------

    def create_channel(
        self,
        caller: Task,
        owner: Task,
        template: HeaderTemplate,
        local_ip: int = 0,
        local_port: int = 0,
        remote_ip: int = 0,
        remote_port: int = 0,
        link_dst: object = None,
        peer_bqi: int = 0,
        region_size: int = DEFAULT_REGION_SIZE,
        install_demux: bool = True,
        ring: Optional[BufferRing] = None,
        protocol: str = "tcp",
        with_link_info: bool = False,
    ) -> Generator:
        """Create a protected channel for ``owner``.

        Only privileged tasks (the registry server) may call this; the
        checks are what keeps untrusted libraries from granting
        themselves network access.  Returns the new :class:`Channel`.
        """
        if not caller.privileged:
            raise SecurityViolation(
                f"task {caller.name!r} may not create channels"
            )
        costs = self.kernel.costs
        proto = PROTO_UDP if protocol == "udp" else PROTO_TCP
        flow_key = FlowKey(proto, local_ip, local_port, remote_ip, remote_port)

        # Tenancy admission: template and flow key vetted against the
        # owner's grant, quotas debited — all before any resource is
        # built, so a refusal allocates nothing.  Refusals are audited
        # facts even when a sabotaged stack chooses not to act on them.
        tenant = self._tenant_for(owner)
        manager = self.tenants
        if tenant is not None:
            ring_buffers = self.DEFAULT_RING_CAPACITY if (
                install_demux and self.is_an1 and ring is None
            ) else 0
            try:
                tenant.check_template(template)
                if install_demux:
                    tenant.check_flow_key(flow_key)
                tenant.precheck_channel(region_size, ring_buffers)
            except TenantViolation as exc:
                manager.note(
                    self.kernel.sim.now,
                    "admission_refused",
                    tenant.tenant_id,
                    str(exc),
                )
                if manager.enforcing:
                    raise
        # Physical pool admission is unconditional: memory is memory.
        self._reserve_region(region_size)

        # Shared, pinned packet-buffer region mapped into the library.
        region = SharedRegion(self.kernel, region_size)
        region.mapped.add(owner)
        yield from self.kernel.cpu.consume(costs.vm_map_region)
        yield from vm_wire(self.kernel, region)

        demux: Optional[FilterProgram] = None
        if install_demux:
            if self.is_an1:
                if ring is None:
                    ring = self.nic.allocate_bqi(
                        capacity=self.DEFAULT_RING_CAPACITY
                    )
                    yield from self.kernel.cpu.consume(costs.bqi_setup)
            elif self.demux_style != "synthesized":
                # Interpreted styles carry a real filter program for the
                # legacy scan tier, with its per-instruction costs.
                if protocol == "udp":
                    demux = udp_filter_program(local_ip, local_port)
                else:
                    demux = tcp_filter_program(
                        local_ip, local_port, remote_ip, remote_port
                    )

        channel = Channel(
            owner=owner,
            template=template,
            region=region,
            demux_filter=demux,
            ring=ring,
            name=f"{owner.name}:{local_port}",
            batching=self.batching,
            with_link_info=with_link_info,
        )
        channel.link_dst = link_dst
        channel.peer_bqi = peer_bqi
        channel.module = self
        if tenant is not None:
            channel.tenant_id = tenant.tenant_id
        if ring is not None:
            ring.owner = channel
            if tenant is not None:
                ring.tenant_id = tenant.tenant_id
                tenant.attach_ring(ring)  # no-op if charged at pre-alloc
        if install_demux:
            # The flow entry is installed on every network and style:
            # on Ethernet it *is* the demux; on AN1 (hardware demux) and
            # under interpreted styles it still serves kernel-side flow
            # resolution (the UDP forwarder) and observability.
            try:
                self.flow_table.install(
                    flow_key, channel, filter=demux, owner=channel.tenant_id
                )
            except Exception:
                # Unwind everything already built (region pool, ring,
                # BQI charge) — a refused flow must allocate nothing.
                self._release_region(region_size)
                if ring is not None and self.is_an1:
                    ring.owner = None
                    if tenant is not None:
                        tenant.release_ring(ring)
                    self.nic.release_bqi(ring.bqi)
                channel.close()
                if tenant is not None and manager is not None:
                    manager.note(
                        self.kernel.sim.now,
                        "flow_install_refused",
                        tenant.tenant_id,
                        str(flow_key),
                    )
                raise
            channel.flow_key = flow_key
        if tenant is not None:
            tenant.attach_channel(channel, region_size)
            tenant.counters["channels_created"] += 1
        self.channels.append(channel)
        return channel

    def destroy_channel(self, caller: Task, channel: Channel) -> None:
        """Tear a channel down (privileged, or the owner itself).

        This is the *single* release path for everything a channel
        holds: flow entry (exact or wildcard), legacy filter, BQI ring,
        wired region bytes, and every tenant-attributed charge — so a
        crashed tenant swept through here leaks nothing.
        """
        if not caller.privileged and caller is not channel.owner:
            raise SecurityViolation(
                f"task {caller.name!r} may not destroy {channel.name}"
            )
        if channel.closed and channel not in self.channels:
            return  # already destroyed; teardown sweeps may race
        if channel in self.channels:
            self.channels.remove(channel)
        if channel.flow_key is not None:
            self.flow_table.remove(channel.flow_key, channel)
            channel.flow_key = None
        if channel.ring is not None and self.is_an1:
            # Disown the ring before handing the BQI back: frames in
            # flight toward a recycled index must land in the kernel,
            # never in the closed channel.
            channel.ring.owner = None
            self.nic.release_bqi(channel.ring.bqi)
        self._release_region(channel.region.size)
        if self.tenants is not None and channel.tenant_id is not None:
            tenant = self.tenants.get(channel.tenant_id)
            if tenant is not None:
                if channel.ring is not None:
                    tenant.release_ring(channel.ring)
                tenant.release_channel(channel)
                tenant.counters["channels_destroyed"] += 1
        channel.close()

    def install_listener(
        self,
        caller: Task,
        proto: int,
        local_port: int,
        local_ip: int = 0,
        owner: Optional[Task] = None,
    ) -> None:
        """Route a listening port's flow to the kernel (privileged).

        The registry installs a wildcard entry targeting
        :data:`KERNEL_FLOW` so incoming SYNs for the port classify as a
        wildcard hit feeding the handshake path, distinguishable in the
        stats from genuine misses.  ``owner`` is the task the listen is
        installed on behalf of: its tenant's port grant is checked and
        the wildcard entry carries the attribution, so an out-of-grant
        listen is refused instead of shadowing another tenant's flows.
        """
        if not caller.privileged:
            raise SecurityViolation("only the registry may install listeners")
        tenant = self._tenant_for(owner)
        if tenant is not None:
            try:
                tenant.check_port(local_port)
            except TenantViolation as exc:
                self.tenants.note(
                    self.kernel.sim.now,
                    "listen_refused",
                    tenant.tenant_id,
                    str(exc),
                )
                if self.tenants.enforcing:
                    raise
        self.flow_table.install(
            FlowKey(proto, local_ip, local_port),
            KERNEL_FLOW,
            owner=tenant.tenant_id if tenant is not None else None,
        )
        if tenant is not None:
            tenant.note_bound(local_port)

    def remove_listener(
        self, caller: Task, proto: int, local_port: int, local_ip: int = 0
    ) -> None:
        if not caller.privileged:
            raise SecurityViolation("only the registry may remove listeners")
        self.flow_table.remove(FlowKey(proto, local_ip, local_port))

    def set_peer_bqi(self, caller: Task, channel: Channel, bqi: int) -> None:
        """Record the BQI the remote side told us to stamp on packets."""
        if not caller.privileged:
            raise SecurityViolation("only the registry may set peer BQIs")
        channel.peer_bqi = bqi

    def allocate_ring(
        self,
        caller: Task,
        capacity: int = DEFAULT_RING_CAPACITY,
        owner: Optional[Task] = None,
    ):
        """Pre-allocate a BQI ring before the handshake (privileged).

        The registry needs the index *before* sending the SYN so the
        remote side can be told which BQI to use; the ring is later
        bound to the channel at create_channel(ring=...).  ``owner``
        attributes the ring to a tenant, whose BQI-buffer quota is
        debited immediately (not at bind time: the scarce resource is
        the hardware ring, held from this moment on).
        """
        if not caller.privileged:
            raise SecurityViolation("only the registry may allocate rings")
        if not self.is_an1:
            return None
        tenant = self._tenant_for(owner)
        if tenant is not None:
            try:
                tenant.admit_ring(capacity)
            except TenantViolation as exc:
                self.tenants.note(
                    self.kernel.sim.now,
                    "ring_refused",
                    tenant.tenant_id,
                    str(exc),
                )
                if self.tenants.enforcing:
                    raise
        ring = self.nic.allocate_bqi(capacity=capacity)
        if tenant is not None:
            ring.tenant_id = tenant.tenant_id
            tenant.attach_ring(ring)
        return ring

    def release_ring(self, caller: Task, ring: BufferRing) -> None:
        """Release a pre-allocated ring that never made it onto a
        channel (failed handshake): BQI back to the NIC, charge back to
        the tenant."""
        if not caller.privileged:
            raise SecurityViolation("only the registry may release rings")
        if ring is None or not self.is_an1:
            return
        ring.owner = None
        if self.tenants is not None and ring.tenant_id is not None:
            tenant = self.tenants.get(ring.tenant_id)
            if tenant is not None:
                tenant.release_ring(ring)
        if ring.bqi in self.nic.bqi_table:
            self.nic.release_bqi(ring.bqi)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------

    def send(
        self,
        task: Task,
        channel: Channel,
        ip_packet: bytes,
        link_dst: object = None,
        bqi: Optional[int] = None,
        adv_bqi: int = 0,
    ) -> Generator:
        """Library data path: trap, template check, transmit.

        The packet already sits in the shared region (no copy); the
        module charges the specialized trap and the template match,
        builds the link header, and hands the frame to the device.

        Connectionless libraries pass ``link_dst``/``bqi`` per datagram
        (the template still pins the IP source, so varying the link
        destination grants no impersonation power); ``adv_bqi``
        advertises the sender's own ring for peer BQI discovery.
        """
        costs = self.kernel.cost_table
        yield from self.kernel.fast_trap()
        if channel.closed or channel not in self.channels:
            raise SecurityViolation(f"channel {channel.name} is not active")
        if task is not channel.owner:
            self._stats["tx_refused"] += 1
            raise SecurityViolation(
                f"task {task.name!r} does not own channel {channel.name}"
            )
        manager = self.tenants
        if manager is not None and channel.tenant_id is not None:
            tenant = manager.tenant_of(task)
            sender_id = tenant.tenant_id if tenant is not None else None
            if sender_id != channel.tenant_id:
                # A channel capability that crossed the tenant boundary
                # (leaked hand-off / stolen port right) stops working at
                # the trap, not at some library-side honour check.
                manager.note(
                    self.kernel.sim.now,
                    "cross_tenant_send",
                    sender_id,
                    f"channel {channel.name} belongs to {channel.tenant_id}",
                )
                if manager.enforcing:
                    self._stats["tx_refused"] += 1
                    raise SecurityViolation(
                        f"task {task.name!r} (tenant {sender_id}) may not"
                        f" send on tenant {channel.tenant_id}'s channel"
                    )
            elif tenant is not None:
                retry_after = tenant.admit_tx(
                    len(ip_packet), self.kernel.sim.now
                )
                if retry_after > 0:
                    if manager.enforcing:
                        # Refused, not queued: the module holds no
                        # tenant state beyond the bucket; the *library*
                        # decides whether to retry after the hint.
                        self._stats["tx_throttled"] += 1
                        raise RateLimited(retry_after)
                    # Sabotaged stack: the frame goes out anyway, so
                    # the tx ledger must say so — rate conformance is
                    # judged from what hit the wire, not what the
                    # bucket would have admitted.
                    tenant.counters["tx_bytes"] += len(ip_packet)
                    tenant.counters["tx_packets"] += 1
        yield from self.kernel.cpu.consume(costs.template_check)
        try:
            channel.template.verify(ip_packet)
        except TemplateViolation:
            self._stats["tx_refused"] += 1
            raise
        channel.stats["tx_packets"] += 1
        self._stats["tx"] += 1
        prof = _profile.PROFILER
        if prof is not None:
            prof.charge("netio.send", costs.template_check)
        rec = _spans.RECORDER
        if rec is not None:
            rec.touch(
                ip_packet, "netio.send", self.kernel.sim.now, self.name,
                detail=channel.name, cost=costs.template_check,
            )
        frame = self._encapsulate(
            ip_packet,
            channel.link_dst if link_dst is None else link_dst,
            channel.peer_bqi if bqi is None else bqi,
            adv_bqi=adv_bqi,
        )
        yield from self.nic.driver_transmit(frame)

    def kernel_send(
        self,
        payload: bytes,
        link_dst: object,
        ethertype: int = ETHERTYPE_IP,
        bqi: int = 0,
        adv_bqi: int = 0,
    ) -> Generator:
        """Trusted in-kernel transmission (monolithic stacks, registry,
        ARP).  No trap, no template.

        A plain function returning the driver's generator: under
        ``yield from`` this behaves identically to a delegating
        generator but removes one frame from every resume of the
        transmit path beneath it.
        """
        self._tx_count += 1
        rec = _spans.RECORDER
        if rec is not None:
            rec.touch(payload, "netio.send", self.kernel.sim.now, self.name,
                      detail="kernel")
        frame = self._encapsulate(payload, link_dst, bqi, ethertype, adv_bqi)
        return self.nic.driver_transmit(frame)

    def _encapsulate(
        self,
        payload: bytes,
        link_dst: object,
        bqi: int,
        ethertype: int = ETHERTYPE_IP,
        adv_bqi: int = 0,
    ) -> bytes:
        if link_dst is None:
            raise ValueError("channel has no link destination")
        if self.is_an1:
            header = An1Header(
                dst=link_dst,
                src=self.nic.station,
                ethertype=ethertype,
                bqi=bqi,
                adv_bqi=adv_bqi,
            )
        else:
            header = EthernetHeader(link_dst, self.nic.mac, ethertype)
        return prepend(header.pack(), payload)

    # ------------------------------------------------------------------
    # Reception
    # ------------------------------------------------------------------

    def _rx_handler(self, frame: bytes, context: object) -> Generator:
        costs = self.kernel.cost_table
        if self.is_an1:
            yield from self.kernel.cpu.consume(costs.an1_bqi_bookkeeping)
            ring = context
            owner = getattr(ring, "owner", None)
            if isinstance(owner, Channel):
                # Hardware demuxed straight to the channel's ring: the
                # ring buffer receives a view of the DMAed frame, not a
                # fresh copy.
                header = An1Header.unpack(frame)
                payload = slice_view(frame, An1Header.LENGTH)
                rec = _spans.RECORDER
                if rec is not None:
                    rec.touch(
                        frame, "demux", self.kernel.sim.now, self.name,
                        detail=f"bqi={header.bqi}",
                        cost=costs.an1_bqi_bookkeeping,
                    )
                yield from self._deliver(
                    owner,
                    payload,
                    LinkInfo(header.src, header.bqi, header.adv_bqi),
                )
                return
            header = An1Header.unpack(frame)
            yield from self._to_kernel(
                header.ethertype,
                slice_view(frame, An1Header.LENGTH),
                LinkInfo(header.src, header.bqi, header.adv_bqi),
            )
            # The kernel's (or an unowned) ring lent the buffer; hand
            # it back once the kernel path has consumed the packet.
            if ring is not None and not isinstance(owner, Channel):
                ring.replenish(1)
            return

        # Ethernet: software demultiplexing over the whole frame.
        # Wire input is untrusted: a truncated frame must be dropped,
        # never allowed to kill the interrupt path with an exception.
        # Only the ethertype and source MAC matter here, so read them
        # straight out of the octets instead of decoding a full header
        # object per frame.
        if len(frame) < EthernetHeader.LENGTH:
            self._stats["rx_dropped"] += 1
            return
        ethertype = (frame[12] << 8) | frame[13]
        src = frame[6:12]
        if ethertype != ETHERTYPE_IP:
            # Non-IP (ARP) goes straight to the kernel consumer.
            kernel_rx = self.kernel_rx
            if kernel_rx is None:
                self._stats["rx_dropped"] += 1
                return
            self._rx_to_kernel += 1
            yield from kernel_rx(
                ethertype,
                slice_view(frame, EthernetHeader.LENGTH),
                LinkInfo(src),
            )
            return
        # One engine call classifies the frame; the decision carries the
        # CPU charge its tier incurred (a fixed indexed lookup for the
        # synthesized style, per-instruction interpretation for the
        # legacy scan tier — Table 5's cost regimes).
        prof = _profile.PROFILER
        if prof is None:
            decision = self.flow_table.classify(frame, costs)
        else:
            t0 = perf_counter()
            decision = self.flow_table.classify(frame, costs)
            prof.charge("demux.classify", decision.cost, perf_counter() - t0)
        cost = decision.cost
        if cost:
            # Open-coded cpu.consume: the demux charge runs once per
            # received IP frame (see CPU.claim).
            cpu = self.kernel.cpu
            request = cpu.claim()
            try:
                yield request
            except BaseException:
                cpu.abandon(request)
                raise
            try:
                yield Timeout(self.kernel.sim, cost)
                cpu.busy_time += cost
            finally:
                cpu.unclaim(request)
        rec = _spans.RECORDER
        if rec is not None:
            rec.touch(
                frame, "demux", self.kernel.sim.now, self.name,
                detail=getattr(decision, "tier", ""), cost=decision.cost,
            )
        matched = decision.channel
        payload = slice_view(frame, EthernetHeader.LENGTH)
        # Copies-avoided accounting rides with the per-tier demux stats:
        # the payload entering the ring is a view, not a sliced copy.
        table_stats = self._table_stats
        if table_stats is not None:
            table_stats["payload_views"] += 1
            table_stats["bytes_copy_avoided"] += len(payload)
        if matched is not None:
            yield from self._deliver(matched, payload, LinkInfo(src))
            return
        kernel_rx = self.kernel_rx
        if kernel_rx is None:
            self._stats["rx_dropped"] += 1
            return
        self._rx_to_kernel += 1
        yield from kernel_rx(ETHERTYPE_IP, payload, LinkInfo(src))

    def _deliver(
        self, channel: Channel, payload: bytes, link_info: Optional[LinkInfo] = None
    ) -> Generator:
        manager = self.tenants
        if manager is not None and channel.tenant_id is not None:
            # The flow matched the tenant the registry installed it
            # for; verify the channel is *still* owned by that tenant
            # before any byte lands in its shared region.
            owner_tenant = manager.tenant_of(channel.owner)
            owner_id = (
                owner_tenant.tenant_id if owner_tenant is not None else None
            )
            delivered = owner_id == channel.tenant_id or not manager.enforcing
            manager.delivery_log.append(
                (
                    self.kernel.sim.now,
                    channel.tenant_id,
                    owner_id,
                    len(payload),
                    delivered,
                )
            )
            if owner_id != channel.tenant_id:
                manager.note(
                    self.kernel.sim.now,
                    "cross_tenant_delivery_blocked"
                    if manager.enforcing
                    else "cross_tenant_delivery",
                    owner_id,
                    f"flow of tenant {channel.tenant_id} on channel"
                    f" {channel.name}",
                )
                if manager.enforcing:
                    self._stats["rx_refused"] += 1
                    flow_tenant = manager.get(channel.tenant_id)
                    if flow_tenant is not None:
                        flow_tenant.counters["rx_dropped"] += 1
                    return
            elif owner_tenant is not None:
                owner_tenant.note_rx(len(payload))
        self._rx_demuxed += 1
        deliver_cost = 0.0
        if not self.is_an1:
            # Ethernet-only: the staging/placement premium of user-level
            # delivery without hardware demux (see costs.eth_user_delivery).
            deliver_cost = self.kernel.cost_table.eth_user_delivery
            yield from self.kernel.cpu.consume(deliver_cost)
        signal_due = channel.signal_cost_due
        if signal_due:
            deliver_cost += self.kernel.cost_table.semaphore_signal
        prof = _profile.PROFILER
        if prof is not None:
            prof.charge("netio.deliver", deliver_cost)
        now = self.kernel.sim.now
        rec = _spans.RECORDER
        if rec is not None:
            tid = rec.touch(
                payload, "deliver", now, self.name,
                detail=channel.name, cost=deliver_cost,
            )
            reg = _hist.REGISTRY
            if reg is not None and tid is not None:
                born = rec.birth(tid)
                if born is not None:
                    latency = now - born
                    reg.record("delivery.latency", latency)
                    if channel.tenant_id is not None:
                        reg.record(
                            f"tenant.{channel.tenant_id}.latency", latency
                        )
        channel.deliver(payload, link_info)
        if signal_due:
            self._stats["signals_charged"] += 1
            yield from self.kernel.cpu.consume(
                self.kernel.cost_table.semaphore_signal
            )

    def _to_kernel(self, ethertype: int, payload: bytes, link_info: LinkInfo) -> Generator:
        if self.kernel_rx is None:
            self._stats["rx_dropped"] += 1
            return
        self._rx_to_kernel += 1
        yield from self.kernel_rx(ethertype, payload, link_info)
